//! `gaps` — command-line front end for the gap-scheduling toolkit.
//!
//! ```text
//! gaps info     --input FILE                       inspect an instance
//! gaps solve    --input FILE [--objective gaps|spans|power] [--alpha N]
//! gaps batch    --input FILE [--threads N] [--objective O] ...  bulk solving
//! gaps batch    --input FILE --replay-online POLICY [--alpha N]  replay arrivals
//! gaps approx   --input FILE --alpha F [--rounds N]   Theorem 3 (multi)
//! gaps simulate --input FILE --alpha N [--policy P]   run on the simulator
//! gaps generate --kind K --seed S [--n N] ...         emit an instance
//! gaps serve    --listen ADDR [--threads N] [--queue N] ...  daemon
//! gaps lint     [--root DIR] [--format text|json] [--rules]
//!               [--baseline FILE] [--dot FILE|-]    static analysis
//! ```
//!
//! Instances use the text format of `gaps_workloads::serialize`
//! (`instance v1` for release/deadline jobs, `multi v1` for allowed-slot
//! jobs); `gaps` auto-detects which one it read. `--input -` reads the
//! instance from stdin, so subcommands compose as
//! `gaps generate ... | gaps solve --input -`.
//!
//! `gaps batch` accepts a *stream* of concatenated instances and drives
//! the `gaps-engine` portfolio (canonicalized result cache + per-instance
//! solver routing + worker pool). Result lines go to stdout — one per
//! instance, in input order, byte-identical for any `--threads` value —
//! and the `EngineReport` (cache hit rate, router mix, latencies) goes to
//! stderr.
//!
//! `gaps batch --replay-online POLICY` switches the input format to
//! `arrivals v1` blocks (`gaps generate --kind arrivals` emits them) and
//! replays each block as one online session through
//! `gaps_engine::OnlineTracker` — the identical code path the serve
//! daemon's `SESSION` verbs drive — printing one
//! `policy=… ratio=…` summary line per block.
//!
//! `gaps serve` runs the same engine loop as a long-lived TCP daemon
//! (see `gaps_serve::protocol` for the wire format): `REQ <id>
//! <instance>` frames are answered with `RES <id> <body>` where `<body>`
//! is byte-identical to the corresponding `gaps batch` result-line tail.
//! Control frames: `PING`, `STATS`, `DRAIN`, and the `SESSION
//! begin/arrive/step/end` online-session family. The daemon prints
//! `listening on <addr>` to stderr once ready and a final metrics report
//! when drained (by `DRAIN`, SIGTERM, or SIGINT).

use gap_scheduling::instance::{Instance, MultiInstance};
use gap_scheduling::multi_interval::approx_min_power;
use gap_scheduling::sim::{
    simulate_schedule, Clairvoyant, NeverSleep, PowerPolicy, SleepImmediately, Timeout,
};
use gap_scheduling::workloads::{adversarial, arrivals, multi_interval, one_interval, serialize};
use gap_scheduling::{edf, lower_bounds, multi_exact, multiproc_dp, power_dp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `lint` distinguishes "findings" (exit 1) from "usage error"
    // (exit 2), so it bypasses the plain Ok/Err printing below.
    if args.first().map(String::as_str) == Some("lint") {
        match cmd_lint(&args) {
            Ok((out, clean)) => {
                print!("{out}");
                if !clean {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        return;
    }
    match run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// `gaps lint`: run the gaps-analyzer rule catalog over the workspace.
/// Returns the rendered report plus whether the workspace is clean.
fn cmd_lint(raw: &[String]) -> Result<(String, bool), String> {
    let args = parse_args(raw)?;
    if args.get("rules").is_some() {
        return Ok((gaps_analyzer::rule_catalog_text(), true));
    }
    // Resolve to the *workspace* root no matter where we were invoked
    // from or what `--root` points at (a subdirectory resolves up), so
    // diagnostic paths — and therefore fingerprints — are always
    // workspace-relative and stable.
    let start = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir)
            .canonicalize()
            .map_err(|e| format!("cannot resolve --root {dir}: {e}"))?,
        None => std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?,
    };
    let root = gaps_analyzer::find_workspace_root(&start)
        .ok_or("no workspace Cargo.toml found at or above the start directory; pass --root DIR")?;
    let sources = gaps_analyzer::load_sources(&root)?;
    let manifests = gaps_analyzer::load_manifests(&root);
    let mut diags = gaps_analyzer::analyze_sources(manifests, &sources);

    // `--dot FILE` renders the lock-acquisition graph (`-` = stdout).
    let mut out = String::new();
    if let Some(target) = args.get("dot") {
        let graph = gaps_analyzer::rules::lock_order::build_graph(&sources);
        let dot = gaps_analyzer::rules::lock_order::render_dot(&graph);
        if target == "-" {
            out.push_str(&dot);
        } else {
            std::fs::write(target, &dot).map_err(|e| format!("cannot write {target}: {e}"))?;
        }
    }

    // `--baseline FILE` drops findings whose fingerprint is baselined.
    let mut suppressed = 0usize;
    if let Some(path) = args.get("baseline") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = gaps_analyzer::baseline::parse(&text);
        (diags, suppressed) = gaps_analyzer::baseline::apply(diags, &baseline);
    }

    let clean = !diags
        .iter()
        .any(|d| d.severity == gaps_analyzer::Severity::Error);
    match args.get("format").unwrap_or("text") {
        "text" => {
            out.push_str(&gaps_analyzer::render_text(&diags));
            if suppressed > 0 {
                out.push_str(&format!(
                    "gaps lint: {suppressed} baselined finding{} suppressed\n",
                    if suppressed == 1 { "" } else { "s" }
                ));
            }
        }
        "json" => out.push_str(&gaps_analyzer::render_json(&diags)),
        other => return Err(format!("unknown --format {other:?} (text|json)")),
    }
    Ok((out, clean))
}

const USAGE: &str = "\
usage:
  gaps info     --input FILE
  gaps solve    --input FILE [--objective gaps|spans|power] [--alpha N]
  gaps batch    --input FILE [--objective gaps|spans|power] [--alpha N]
                [--threads N] [--cache-capacity N] [--exact-slots N]
                [--exact-jobs N] [--multi-exact true|false]
                [--fallback approx,greedy,bound]
                [--replay-online timeout|sleep|never]
                (--threads N also parallelises branch-and-bound inside
                 each large multi-interval instance)
  gaps approx   --input FILE --alpha F [--rounds N]
  gaps simulate --input FILE --alpha N [--policy clairvoyant|timeout|sleep|never]
  gaps generate --kind uniform|feasible|bursty|multi|consultant|online|arrivals
                [--seed S] [--n N] [--horizon H] [--slack L] [--processors P]
                [--pattern uniform|bursty|heavy] [--max-gap G]
  gaps serve    [--listen ADDR] [--threads N] [--max-threads N] [--queue N]
                [--max-conns N] [--objective gaps|spans|power] [--alpha N]
                [--shed-jobs N] [--shed-depth N] [--report-interval SECS]
                [--cache-capacity N]
  gaps lint     [--root DIR] [--format text|json] [--rules list]
                [--baseline FILE] [--dot FILE|-]";

/// Parsed `--flag value` arguments plus the leading subcommand.
struct Args {
    command: String,
    flags: BTreeMap<String, String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing subcommand")?.clone();
    let mut flags = BTreeMap::new();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(Args { command, flags })
}

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }
    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
        }
    }
}

/// Either flavor of instance, as auto-detected from the file header.
enum AnyInstance {
    One(Instance),
    Multi(MultiInstance),
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn load(path: &str) -> Result<AnyInstance, String> {
    let text = read_input(path)?;
    let head = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .unwrap_or("");
    match head {
        "instance v1" => Ok(AnyInstance::One(serialize::instance_from_text(&text)?)),
        "multi v1" => Ok(AnyInstance::Multi(serialize::multi_from_text(&text)?)),
        other => Err(format!("unrecognized header {other:?} in {path}")),
    }
}

fn run(raw: &[String]) -> Result<String, String> {
    let args = parse_args(raw)?;
    match args.command.as_str() {
        "info" => cmd_info(&args),
        "solve" => cmd_solve(&args),
        "batch" => cmd_batch(&args),
        "approx" => cmd_approx(&args),
        "simulate" => cmd_simulate(&args),
        "generate" => cmd_generate(&args),
        "serve" => cmd_serve(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_info(args: &Args) -> Result<String, String> {
    let mut out = String::new();
    match load(args.require("input")?)? {
        AnyInstance::One(inst) => {
            out += "one-interval instance\n";
            out += &gap_scheduling::analysis::analyze_instance(&inst).to_string();
            out += &format!("feasible: {}\n", edf::is_feasible(&inst));
        }
        AnyInstance::Multi(inst) => {
            out += "multi-interval instance\n";
            out += &gap_scheduling::analysis::analyze_multi(&inst).to_string();
            out += &format!(
                "feasible: {}\n",
                gap_scheduling::feasibility::is_feasible(&inst)
            );
            out += &format!(
                "span lower bound: {}\n",
                lower_bounds::min_spans_lower_bound(&inst)
            );
        }
    }
    Ok(out)
}

fn cmd_solve(args: &Args) -> Result<String, String> {
    let objective = args.get("objective").unwrap_or("gaps");
    let alpha: u64 = args.parse_or("alpha", 1u64)?;
    let mut out = String::new();
    match load(args.require("input")?)? {
        AnyInstance::One(inst) => match objective {
            "gaps" => match multiproc_dp::min_gap_schedule(&inst) {
                Some(sol) => {
                    out += &format!("optimal gaps: {}\n", sol.gaps);
                    out += &format!("spans (wake-ups): {}\n", sol.spans);
                    out += &render_schedule(&sol.schedule);
                    out += &render_timeline_for(&inst, &sol.schedule);
                }
                None => out += "infeasible\n",
            },
            "spans" => match multiproc_dp::min_span_schedule(&inst) {
                Some(sol) => {
                    out += &format!("optimal spans: {}\n", sol.spans);
                    out += &render_schedule(&sol.schedule);
                    out += &render_timeline_for(&inst, &sol.schedule);
                }
                None => out += "infeasible\n",
            },
            "power" => match power_dp::min_power_schedule(&inst, alpha) {
                Some(sol) => {
                    out += &format!("optimal power (alpha = {alpha}): {}\n", sol.power);
                    out += &render_schedule(&sol.schedule);
                    out += &render_timeline_for(&inst, &sol.schedule);
                }
                None => out += "infeasible\n",
            },
            other => return Err(format!("unknown --objective {other:?}")),
        },
        AnyInstance::Multi(inst) => {
            // Exact solving is exponential in the (decomposed) job
            // count; guard with the multi-exact solver's router caps and
            // be explicit about it.
            if inst.slot_union().len() > 384 || inst.job_count() > 64 {
                return Err(
                    "multi-interval exact solving is exponential; instance too large \
                     (use `gaps approx` for the Theorem 3 approximation)"
                        .into(),
                );
            }
            let result = match objective {
                "gaps" => multi_exact::min_gaps_multi(&inst),
                "spans" => multi_exact::min_spans_multi(&inst),
                "power" => multi_exact::min_power_multi(&inst, alpha),
                other => return Err(format!("unknown --objective {other:?}")),
            };
            match result {
                Some((v, sched)) => {
                    out += &format!("optimal {objective}: {v}\n");
                    out += &format!("slots used: {:?}\n", sched.occupied());
                }
                None => out += "infeasible\n",
            }
        }
    }
    Ok(out)
}

/// `gaps batch`: stream many instances through the `gaps-engine`
/// portfolio. Deterministic result lines go to stdout (the function's
/// return value); the engine report goes to stderr so stdout stays
/// byte-identical across thread counts.
fn cmd_batch(args: &Args) -> Result<String, String> {
    let text = read_input(args.require("input")?)?;
    let objective = gap_scheduling::engine::Objective::parse(
        args.get("objective").unwrap_or("gaps"),
        args.parse_or("alpha", 1u64)?,
    )?;
    let defaults = gap_scheduling::engine::RouterConfig::default();
    let fallback = match args.get("fallback") {
        None => defaults.fallback,
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(gap_scheduling::engine::FallbackSolver::parse)
            .collect::<Result<_, _>>()?,
    };
    let config = gap_scheduling::engine::EngineConfig {
        threads: args.parse_or("threads", 4usize)?,
        cache_capacity: args.parse_or("cache-capacity", 4096usize)?,
        cache_shards: 16,
        router: gap_scheduling::engine::RouterConfig {
            exact_max_slots: args.parse_or("exact-slots", defaults.exact_max_slots)?,
            exact_max_jobs: args.parse_or("exact-jobs", defaults.exact_max_jobs)?,
            use_multi_exact: args.parse_or("multi-exact", defaults.use_multi_exact)?,
            multi_exact_max_slots: defaults.multi_exact_max_slots,
            multi_exact_max_jobs: defaults.multi_exact_max_jobs,
            // 0 = inherit `--threads`: `Engine::new` resolves it, so the
            // same knob that fans the batch out also powers the
            // intra-instance parallel branch-and-bound on big instances.
            multi_exact_threads: defaults.multi_exact_threads,
            multi_exact_parallel_min_jobs: defaults.multi_exact_parallel_min_jobs,
            approx_rounds: args.parse_or("rounds", defaults.approx_rounds)?,
            fallback,
        },
    };
    let engine = gap_scheduling::engine::Engine::new(config);
    if let Some(policy) = args.get("replay-online") {
        return replay_online(&engine, &text, policy, args.parse_or("alpha", 1u64)?);
    }
    let (out, report) = engine.run_batch_text(&text, objective)?;
    eprintln!("{report}");
    Ok(out)
}

/// `gaps batch --replay-online POLICY`: replay `arrivals v1` blocks as
/// online sessions through the same [`gap_scheduling::engine::OnlineTracker`]
/// the serve daemon's `SESSION` verbs drive. One summary line per block
/// goes to stdout, byte-identical to the corresponding live
/// `SESSION end` reply for the same stream.
fn replay_online(
    engine: &gap_scheduling::engine::Engine,
    text: &str,
    policy: &str,
    alpha: u64,
) -> Result<String, String> {
    let streams = arrivals::arrival_streams_from_text(text)?;
    if streams.is_empty() {
        return Err("no `arrivals v1` block in the input (generate one with \
             `gaps generate --kind arrivals`)"
            .to_string());
    }
    let mut out = String::new();
    for stream in &streams {
        let mut tracker = gap_scheduling::engine::OnlineTracker::new(policy, alpha)?;
        for &t in stream {
            tracker.arrive(t)?;
        }
        let summary = tracker.finish(engine)?;
        out.push_str(&summary.line());
        out.push('\n');
    }
    eprintln!(
        "replayed {} online session(s) under policy {policy} (alpha {alpha})",
        streams.len()
    );
    Ok(out)
}

/// `gaps serve`: run the engine as a long-lived TCP daemon. Blocks
/// until drained (`DRAIN` frame, SIGTERM, or SIGINT); the ready line
/// (`listening on <addr>`) and the final metrics report go to stderr so
/// stdout stays free for redirection.
fn cmd_serve(args: &Args) -> Result<String, String> {
    let objective = gap_scheduling::engine::Objective::parse(
        args.get("objective").unwrap_or("gaps"),
        args.parse_or("alpha", 1u64)?,
    )?;
    let defaults = gap_scheduling::serve::ServeConfig::default();
    let report_interval = match args.get("report-interval") {
        None => None,
        Some(v) => {
            let secs: u64 = v
                .parse()
                .map_err(|_| format!("bad --report-interval value {v:?}"))?;
            (secs > 0).then(|| std::time::Duration::from_secs(secs))
        }
    };
    let config = gap_scheduling::serve::ServeConfig {
        listen: args
            .get("listen")
            .unwrap_or(defaults.listen.as_str())
            .to_string(),
        threads: args.parse_or("threads", defaults.threads)?,
        // `Server::bind` clamps the ceiling up to `threads`, so a bare
        // `--threads 8` gets a fixed 8-worker pool.
        max_threads: args.parse_or("max-threads", defaults.max_threads)?,
        queue_capacity: args.parse_or("queue", defaults.queue_capacity)?,
        max_conns: args.parse_or("max-conns", defaults.max_conns)?,
        objective,
        shed_jobs: args.parse_or("shed-jobs", defaults.shed_jobs)?,
        shed_depth: args.parse_or("shed-depth", defaults.shed_depth)?,
        report_interval,
        engine: gap_scheduling::engine::EngineConfig {
            cache_capacity: args.parse_or("cache-capacity", 4096usize)?,
            ..gap_scheduling::engine::EngineConfig::default()
        },
    };
    let server = gap_scheduling::serve::Server::bind(config)?;
    eprintln!("listening on {}", server.local_addr()?);
    let final_snapshot = server.run()?;
    eprintln!("serve final: {final_snapshot}");
    Ok(String::new())
}

fn cmd_approx(args: &Args) -> Result<String, String> {
    let alpha: f64 = args.parse_or("alpha", 1.0f64)?;
    let rounds: usize = args.parse_or("rounds", 64usize)?;
    let AnyInstance::Multi(inst) = load(args.require("input")?)? else {
        return Err("`gaps approx` expects a multi-interval instance".into());
    };
    let mut out = String::new();
    match approx_min_power(&inst, alpha, rounds) {
        Some(res) => {
            out += &format!("approximate power (alpha = {alpha}): {:.2}\n", res.power);
            out += &format!(
                "packed 2-blocks: {} (parity {})\n",
                res.packed_blocks, res.parity
            );
            out += &format!(
                "power lower bound: {}\n",
                lower_bounds::min_power_lower_bound(&inst, alpha.round() as u64)
            );
            out += &format!("slots used: {:?}\n", res.schedule.occupied());
        }
        None => out += "infeasible\n",
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, String> {
    let alpha: u64 = args.parse_or("alpha", 1u64)?;
    let policy_name = args.get("policy").unwrap_or("clairvoyant");
    let policy: Box<dyn PowerPolicy> = match policy_name {
        "clairvoyant" => Box::new(Clairvoyant { alpha }),
        "timeout" => Box::new(Timeout { threshold: alpha }),
        "sleep" => Box::new(SleepImmediately),
        "never" => Box::new(NeverSleep),
        other => return Err(format!("unknown --policy {other:?}")),
    };
    let AnyInstance::One(inst) = load(args.require("input")?)? else {
        return Err("`gaps simulate` expects a one-interval instance".into());
    };
    let sched = power_dp::min_power_schedule(&inst, alpha)
        .ok_or("instance is infeasible")?
        .schedule;
    let report = simulate_schedule(&inst, &sched, alpha, policy.as_ref());
    let mut out =
        format!("simulated power-optimal schedule under policy {policy_name} (alpha = {alpha})\n");
    out += &format!("total energy: {}\n", report.energy);
    for (q, r) in report.per_processor.iter().enumerate() {
        out += &format!(
            "  P{q}: {} jobs, {} active slots, {} wake-ups, energy {}\n",
            r.jobs_run, r.active_slots, r.wakeups, r.energy
        );
    }
    Ok(out)
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let kind = args.require("kind")?;
    let seed: u64 = args.parse_or("seed", 0u64)?;
    let n: usize = args.parse_or("n", 10usize)?;
    let horizon: i64 = args.parse_or("horizon", 20i64)?;
    let slack: i64 = args.parse_or("slack", 3i64)?;
    let p: u32 = args.parse_or("processors", 1u32)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let out = match kind {
        "uniform" => {
            serialize::instance_to_text(&one_interval::uniform(&mut rng, n, horizon, slack, p))
        }
        "feasible" => {
            serialize::instance_to_text(&one_interval::feasible(&mut rng, n, horizon, slack, p))
        }
        "bursty" => serialize::instance_to_text(&one_interval::bursty(
            &mut rng,
            (n / 4).max(1),
            4,
            horizon.max(4),
            slack.max(1),
            2,
            p,
        )),
        "multi" => {
            serialize::multi_to_text(&multi_interval::feasible_slots(&mut rng, n, horizon, 2))
        }
        "consultant" => serialize::multi_to_text(&adversarial::consultant(
            &mut rng,
            5,
            horizon.clamp(4, 24),
            n,
            2,
            2,
        )),
        "online" => serialize::instance_to_text(&adversarial::online_lower_bound(n)),
        "arrivals" => {
            let pattern = arrivals::ArrivalPattern::parse(
                args.get("pattern").unwrap_or("uniform"),
                args.parse_or("max-gap", 8u64)?,
            )?;
            arrivals::arrivals_to_text(&arrivals::seeded_arrivals(seed, n, &pattern))
        }
        other => return Err(format!("unknown --kind {other:?}")),
    };
    Ok(out)
}

fn render_schedule(sched: &gap_scheduling::schedule::Schedule) -> String {
    let mut out = String::from("assignments (job: time/processor):");
    for (i, a) in sched.assignments().iter().enumerate() {
        if i % 6 == 0 {
            out += "\n  ";
        }
        out += &format!("j{i}:{}@P{}  ", a.time, a.processor);
    }
    out.push('\n');
    out
}

fn render_timeline_for(inst: &Instance, sched: &gap_scheduling::schedule::Schedule) -> String {
    format!(
        "timeline:\n{}",
        gap_scheduling::render::render_timeline(inst, sched, 100)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("gaps-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_str(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_args_flags() {
        let a = parse_args(&["solve".into(), "--alpha".into(), "3".into()]).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.get("alpha"), Some("3"));
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["x".into(), "bare".into()]).is_err());
        assert!(parse_args(&["x".into(), "--dangling".into()]).is_err());
    }

    #[test]
    fn generate_then_info_then_solve() {
        let text = run_str(&[
            "generate",
            "--kind",
            "feasible",
            "--seed",
            "7",
            "--n",
            "6",
            "--horizon",
            "10",
            "--processors",
            "2",
        ])
        .unwrap();
        let path = write_temp("roundtrip.txt", &text);
        let info = run_str(&["info", "--input", &path]).unwrap();
        assert!(info.contains("6 jobs"));
        assert!(info.contains("feasible: true"));
        let solved = run_str(&["solve", "--input", &path, "--objective", "spans"]).unwrap();
        assert!(solved.contains("optimal spans:"));
    }

    #[test]
    fn solve_power_and_simulate_agree() {
        let text = run_str(&[
            "generate",
            "--kind",
            "feasible",
            "--seed",
            "3",
            "--n",
            "5",
            "--horizon",
            "9",
        ])
        .unwrap();
        let path = write_temp("power.txt", &text);
        let solved = run_str(&[
            "solve",
            "--input",
            &path,
            "--objective",
            "power",
            "--alpha",
            "2",
        ])
        .unwrap();
        let simulated = run_str(&["simulate", "--input", &path, "--alpha", "2"]).unwrap();
        // Extract the two numbers and compare.
        let solved_power: u64 = solved
            .lines()
            .find(|l| l.starts_with("optimal power"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|w| w.parse().ok())
            .unwrap();
        let sim_energy: u64 = simulated
            .lines()
            .find(|l| l.starts_with("total energy"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|w| w.parse().ok())
            .unwrap();
        assert_eq!(solved_power, sim_energy);
    }

    #[test]
    fn approx_requires_multi() {
        let text = run_str(&["generate", "--kind", "feasible", "--seed", "1"]).unwrap();
        let path = write_temp("one.txt", &text);
        let err = run_str(&["approx", "--input", &path, "--alpha", "2"]).unwrap_err();
        assert!(err.contains("multi-interval"));
    }

    #[test]
    fn approx_on_multi_instance() {
        let text = run_str(&["generate", "--kind", "multi", "--seed", "5", "--n", "6"]).unwrap();
        let path = write_temp("multi.txt", &text);
        let out = run_str(&["approx", "--input", &path, "--alpha", "2"]).unwrap();
        assert!(out.contains("approximate power"));
        assert!(out.contains("lower bound"));
    }

    #[test]
    fn solve_multi_guard_rejects_large() {
        // 80 jobs / ~480 union slots: past both raised caps (64 jobs,
        // 384 slots), so the exact solver must still refuse.
        let mut rng = StdRng::seed_from_u64(1);
        let inst = multi_interval::feasible_slots(&mut rng, 80, 600, 2);
        let path = write_temp("big.txt", &serialize::multi_to_text(&inst));
        let err = run_str(&["solve", "--input", &path]).unwrap_err();
        assert!(err.contains("exponential"));
    }

    #[test]
    fn unknown_inputs_error_cleanly() {
        assert!(run_str(&["frobnicate"]).is_err());
        assert!(run_str(&["solve", "--input", "/nonexistent/x.txt"]).is_err());
        let path = write_temp("garbage.txt", "not an instance\n");
        assert!(run_str(&["info", "--input", &path]).is_err());
        let ok = write_temp("mini.txt", "instance v1\nprocessors 1\njob 0 1\n");
        assert!(run_str(&["solve", "--input", &ok, "--objective", "velocity"]).is_err());
        assert!(run_str(&["simulate", "--input", &ok, "--policy", "nap"]).is_err());
        assert!(run_str(&["generate", "--kind", "chaotic"]).is_err());
    }

    #[test]
    fn batch_streams_many_instances_deterministically() {
        // Concatenate three generated instances (two identical modulo
        // nothing — exact duplicates — to exercise the cache).
        let a = run_str(&["generate", "--kind", "feasible", "--seed", "11", "--n", "5"]).unwrap();
        let b = run_str(&["generate", "--kind", "multi", "--seed", "12", "--n", "4"]).unwrap();
        let stream = format!("{a}{b}{a}");
        let path = write_temp("batch.txt", &stream);
        let once = run_str(&["batch", "--input", &path, "--threads", "1"]).unwrap();
        let many = run_str(&["batch", "--input", &path, "--threads", "8"]).unwrap();
        assert_eq!(once, many, "batch output must not depend on threads");
        let lines: Vec<&str> = once.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with("0 one n=5 gaps="),
            "line = {}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("1 multi n=4 gaps="),
            "line = {}",
            lines[1]
        );
        // The duplicate instance must produce an identical payload.
        assert_eq!(
            lines[0].split_once(' ').unwrap().1,
            lines[2].split_once(' ').unwrap().1
        );
    }

    #[test]
    fn batch_matches_solve_on_a_single_instance() {
        let text = run_str(&[
            "generate",
            "--kind",
            "feasible",
            "--seed",
            "4",
            "--n",
            "6",
            "--horizon",
            "12",
        ])
        .unwrap();
        let path = write_temp("batch-single.txt", &text);
        let solved = run_str(&[
            "solve",
            "--input",
            &path,
            "--objective",
            "power",
            "--alpha",
            "3",
        ])
        .unwrap();
        let solved_power: u64 = solved
            .lines()
            .find(|l| l.starts_with("optimal power"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|w| w.parse().ok())
            .unwrap();
        let batched = run_str(&[
            "batch",
            "--input",
            &path,
            "--objective",
            "power",
            "--alpha",
            "3",
        ])
        .unwrap();
        assert!(
            batched.contains(&format!("power={solved_power} ")),
            "batch {batched:?} disagrees with solve {solved_power}"
        );
    }

    #[test]
    fn batch_flags_are_validated() {
        let path = write_temp("batch-bad.txt", "instance v1\nprocessors 1\njob 0 1\n");
        assert!(run_str(&["batch", "--input", &path, "--objective", "vibes"]).is_err());
        assert!(run_str(&["batch", "--input", &path, "--fallback", "magic"]).is_err());
        assert!(run_str(&["batch", "--input", &path, "--threads", "x"]).is_err());
        let ok = run_str(&["batch", "--input", &path, "--fallback", "greedy,bound"]).unwrap();
        assert!(ok.contains("solver="));
    }

    #[test]
    fn online_family_generation() {
        let text = run_str(&["generate", "--kind", "online", "--n", "4"]).unwrap();
        let inst = serialize::instance_from_text(&text).unwrap();
        assert_eq!(inst.job_count(), 8);
    }

    #[test]
    fn generate_arrivals_emits_a_replayable_stream() {
        let text = run_str(&[
            "generate",
            "--kind",
            "arrivals",
            "--seed",
            "9",
            "--n",
            "30",
            "--pattern",
            "bursty",
            "--max-gap",
            "12",
        ])
        .unwrap();
        assert!(text.starts_with("arrivals v1\narrive 0\n"), "{text}");
        let streams = arrivals::arrival_streams_from_text(&text).unwrap();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].len(), 30);
        // Same flags, same stream.
        let again = run_str(&[
            "generate",
            "--kind",
            "arrivals",
            "--seed",
            "9",
            "--n",
            "30",
            "--pattern",
            "bursty",
            "--max-gap",
            "12",
        ])
        .unwrap();
        assert_eq!(text, again);
        assert!(run_str(&["generate", "--kind", "arrivals", "--pattern", "psychic"]).is_err());
    }

    #[test]
    fn replay_online_reports_one_ratio_line_per_block() {
        let stream =
            run_str(&["generate", "--kind", "arrivals", "--seed", "5", "--n", "40"]).unwrap();
        // Two blocks = two sessions.
        let path = write_temp("replay.txt", &format!("{stream}{stream}"));
        let out = run_str(&[
            "batch",
            "--input",
            &path,
            "--replay-online",
            "timeout",
            "--alpha",
            "3",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], lines[1], "identical blocks replay identically");
        assert!(
            lines[0].starts_with("policy=timeout alpha=3 jobs=40 online="),
            "{}",
            lines[0]
        );
        let ratio: f64 = lines[0]
            .rsplit("ratio=")
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(
            (1.0..=2.0).contains(&ratio),
            "timeout is 2-competitive: {}",
            lines[0]
        );
        // Replay validates its own input and policy names.
        assert!(run_str(&["batch", "--input", &path, "--replay-online", "clairvoyant"]).is_err());
        let junk = write_temp("replay-junk.txt", "instance v1\nprocessors 1\njob 0 1\n");
        assert!(run_str(&["batch", "--input", &junk, "--replay-online", "timeout"]).is_err());
        let empty = write_temp("replay-empty.txt", "# nothing here\n");
        let err = run_str(&["batch", "--input", &empty, "--replay-online", "timeout"]).unwrap_err();
        assert!(err.contains("no `arrivals v1` block"), "{err}");
    }

    fn lint_str(args: &[&str]) -> Result<(String, bool), String> {
        cmd_lint(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn lint_rules_catalog_lists_lock_order() {
        let (out, clean) = lint_str(&["lint", "--rules", "list"]).unwrap();
        assert!(clean);
        assert!(out.contains("lock-order"), "catalog lists the new rule");
        assert!(out.contains("allow("), "catalog documents the escape hatch");
    }

    #[test]
    fn lint_resolves_workspace_root_from_a_subdirectory() {
        let root = env!("CARGO_MANIFEST_DIR");
        let (from_root, clean) = lint_str(&["lint", "--root", root]).unwrap();
        assert!(clean, "live workspace must lint clean:\n{from_root}");
        // Pointing --root at a crate subdirectory must resolve *up* to
        // the workspace root and produce the identical report.
        let sub = format!("{root}/crates/engine/src");
        let (from_sub, sub_clean) = lint_str(&["lint", "--root", &sub]).unwrap();
        assert!(sub_clean);
        assert_eq!(from_root, from_sub, "report is invocation-dir independent");
    }

    #[test]
    fn lint_dot_renders_the_acquisition_graph() {
        let root = env!("CARGO_MANIFEST_DIR");
        let (out, clean) = lint_str(&["lint", "--root", root, "--dot", "-"]).unwrap();
        assert!(clean);
        assert!(out.starts_with("digraph lock_order"), "{out}");
        assert!(out.contains("rankdir"), "{out}");
    }

    #[test]
    fn lint_accepts_the_committed_baseline() {
        let root = env!("CARGO_MANIFEST_DIR");
        let baseline = format!("{root}/lint-baseline.json");
        let (out, clean) = lint_str(&["lint", "--root", root, "--baseline", &baseline]).unwrap();
        assert!(clean, "baseline run stays clean:\n{out}");
    }

    #[test]
    fn lint_flags_are_validated() {
        assert!(lint_str(&["lint", "--root", "/nonexistent/dir"]).is_err());
        assert!(lint_str(&["lint", "--format", "xml"]).is_err());
        assert!(lint_str(&["lint", "--baseline", "/nonexistent/base.json"]).is_err());
    }
}

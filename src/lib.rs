//! # gap-scheduling
//!
//! A production-quality Rust reproduction of
//!
//! > Erik D. Demaine, Mohammad Ghodsi, MohammadTaghi Hajiaghayi,
//! > Amin S. Sayedi-Roshkhar, Morteza Zadimoghaddam.
//! > *Scheduling to Minimize Gaps and Power Consumption.* SPAA 2007.
//!
//! Unit-length jobs run on processors that can sleep; waking costs α. The
//! paper gives exact polynomial algorithms for the multiprocessor
//! one-interval problems, an approximation algorithm and matching hardness
//! bounds for the multi-interval generalization, and a greedy for
//! throughput under a gap budget. This workspace implements **all of it**,
//! from the bipartite-matching substrate up:
//!
//! | piece | crate/module |
//! |-------|--------------|
//! | exact multiprocessor gap/span DP (Thm 1) | [`multiproc_dp`] |
//! | exact multiprocessor power DP (Thm 2) | [`power_dp`] |
//! | (1 + (2/3 + ε)α)-approximation (Thm 3, Lemmas 3–5) | [`multi_interval`] |
//! | hardness gadgets (Thms 4–10) | [`reductions`] |
//! | O(√n) throughput greedy (Thm 11) | [`min_restart`] |
//! | Baptiste's p = 1 DP \[Bap06\] | [`baptiste`] |
//! | greedy 3-approximation \[FHKN06\] | [`greedy_gap`] |
//! | optimized multi-interval exact solver | [`multi_exact`] |
//! | online lower bound (§1) | [`online`], [`workloads::adversarial`] |
//! | matching substrate | [`matching`] |
//! | set cover / set packing substrate | [`setcover`] |
//! | sleep-state processor simulator | [`sim`] |
//! | workload generators & serialization | [`workloads`] |
//! | concurrent batch engine (cache + portfolio router) | [`engine`] |
//! | long-running scheduling service (TCP, metrics, shedding) | [`serve`] |
//!
//! ## Quick start
//!
//! ```
//! use gap_scheduling::instance::Instance;
//! use gap_scheduling::multiproc_dp::min_gap_schedule;
//! use gap_scheduling::power_dp::min_power_schedule;
//!
//! // Six jobs on two processors.
//! let inst = Instance::from_windows(
//!     [(0, 2), (0, 2), (1, 4), (4, 6), (6, 6), (6, 8)], 2).unwrap();
//!
//! let gaps = min_gap_schedule(&inst).expect("feasible");
//! let power = min_power_schedule(&inst, 3).expect("feasible");
//! assert!(gaps.gaps <= gaps.spans);
//! assert!(power.power >= inst.job_count() as u64 + 3); // n + α lower bound
//! ```
//!
//! See `DESIGN.md` for the system inventory (including one genuine
//! correction to the paper's Lemma 1, validated in experiment E16) and
//! `EXPERIMENTS.md` for claimed-vs-measured outcomes of experiments
//! E1–E21 (`cargo run -p gaps-bench --release --bin experiments`).

pub use gaps_core::*;
pub use gaps_engine as engine;
pub use gaps_matching as matching;
pub use gaps_reductions as reductions;
pub use gaps_serve as serve;
pub use gaps_setcover as setcover;
pub use gaps_sim as sim;
pub use gaps_workloads as workloads;

#!/usr/bin/env python3
"""CI smoke client for `gaps serve`.

Connects to a running daemon, exercises one of every protocol verb
(PING, REQ, a malformed frame, STATS, a full SESSION
begin/arrive/step/end online session, DRAIN), asserts the STATS v3
counters — including the `search.*` branch-and-bound rows — reflect
what was sent, and exits 0 only if the daemon answered everything and
acknowledged the drain. Usage:

    serve_smoke.py HOST PORT
"""

import socket
import sys
import time


def main() -> None:
    host, port = sys.argv[1], int(sys.argv[2])
    sock = socket.create_connection((host, port), timeout=30)
    stream = sock.makefile("rw", newline="\n")

    def send(line: str) -> None:
        stream.write(line + "\n")
        stream.flush()

    def recv() -> str:
        line = stream.readline()
        assert line, "daemon closed the connection"
        return line.rstrip("\n")

    send("PING")
    assert recv() == "PONG"

    send("REQ a instance v1;processors 1;job 0 1")
    res = recv()
    assert res.startswith("RES a one n=1 gaps="), res

    # Malformed input is answered, never fatal.
    send("FROB")
    err = recv()
    assert err.startswith("ERR - unknown verb"), err

    # The same instance again: must be a cache hit, same body.
    send("REQ b instance v1;processors 1;job 0 1")
    res_b = recv()
    assert res_b == "RES b" + res[len("RES a"):], (res, res_b)

    # Let the --report-interval ticker fire at least once (the caller
    # greps the daemon's stderr for its line) and uptime_s reach 1.
    time.sleep(1.5)

    def recv_stats() -> dict:
        send("STATS")
        assert recv() == "STATS v3"
        rows = {}
        while True:
            line = recv()
            if line == "STATS end":
                return rows
            _, key, value = line.split(" ", 2)
            rows[key] = value

    rows = recv_stats()
    assert rows["requests"] == "2", rows
    assert rows["cache_hits"] == "1", rows
    assert rows["cache_misses"] == "1", rows
    assert rows["protocol_errors"] == "1", rows
    assert rows["in_flight"] == "0", rows
    assert int(rows["pool_workers"]) >= 1, rows
    assert int(rows["uptime_s"]) >= 1, rows
    # v3 search rows exist from the first snapshot (zero until a
    # multi-exact branch-and-bound actually runs).
    for key in (
        "search.nodes_expanded",
        "search.subtree_tasks",
        "search.subtree_steals",
        "search.incumbent_updates",
        "search.components_le_1",
        "search.components_le_64",
    ):
        assert key in rows, (key, rows)

    # A multi-interval instance whose span optimum (2) beats every lower
    # bound (single-run union): the branch-and-bound must actually open,
    # so the search counters move.
    send(
        "REQ c multi v1;job 0 1;job 0 1;job 8 9;job 8 9;job 2 3 4 5 6 7"
    )
    res_c = recv()
    assert res_c.startswith("RES c multi n=5 gaps="), res_c
    assert "solver=multi_exact" in res_c, res_c
    rows = recv_stats()
    assert int(rows["search.nodes_expanded"]) > 0, rows
    components = sum(
        int(v) for k, v in rows.items() if k.startswith("search.components_le_")
    )
    assert components > 0, rows

    # One full online session end to end. The replies are pinned byte
    # for byte: they must match `gaps batch --replay-online` for the
    # same arrivals.
    send("SESSION begin timeout 2")
    assert recv() == "SESSION begun policy=timeout alpha=2"
    send("SESSION arrive 0")
    assert recv() == "SESSION t=1 state=awake online=3"
    send("SESSION arrive 5")
    assert recv() == "SESSION t=6 state=awake online=8"
    send("SESSION end")
    end = recv()
    assert end == (
        "SESSION end policy=timeout alpha=2 jobs=2 online=8 offline=6 ratio=1.3333"
    ), end

    # Out-of-order SESSION verbs are answered, never fatal.
    send("SESSION arrive 9")
    err = recv()
    assert err.startswith("ERR - no SESSION active"), err

    rows = recv_stats()
    # The SESSION end offline solve is a real engine request.
    assert rows["requests"] == "4", rows
    assert rows["protocol_errors"] == "2", rows
    assert rows["policy.timeout.sessions"] == "1", rows
    assert rows["policy.timeout.ratio_mean"] == "1.3333", rows
    assert rows["policy.timeout.ratio_max"] == "1.3333", rows

    send("DRAIN")
    assert recv() == "DRAINING"
    print("serve smoke OK:", " ".join(f"{k}={v}" for k, v in sorted(rows.items())))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CI smoke client for `gaps serve`.

Connects to a running daemon, exercises one of every protocol verb
(PING, REQ, a malformed frame, STATS, DRAIN), asserts the STATS
counters reflect what was sent, and exits 0 only if the daemon answered
everything and acknowledged the drain. Usage:

    serve_smoke.py HOST PORT
"""

import socket
import sys
import time


def main() -> None:
    host, port = sys.argv[1], int(sys.argv[2])
    sock = socket.create_connection((host, port), timeout=30)
    stream = sock.makefile("rw", newline="\n")

    def send(line: str) -> None:
        stream.write(line + "\n")
        stream.flush()

    def recv() -> str:
        line = stream.readline()
        assert line, "daemon closed the connection"
        return line.rstrip("\n")

    send("PING")
    assert recv() == "PONG"

    send("REQ a instance v1;processors 1;job 0 1")
    res = recv()
    assert res.startswith("RES a one n=1 gaps="), res

    # Malformed input is answered, never fatal.
    send("FROB")
    err = recv()
    assert err.startswith("ERR - unknown verb"), err

    # The same instance again: must be a cache hit, same body.
    send("REQ b instance v1;processors 1;job 0 1")
    res_b = recv()
    assert res_b == "RES b" + res[len("RES a"):], (res, res_b)

    # Let the --report-interval ticker fire at least once (the caller
    # greps the daemon's stderr for its line) and uptime_s reach 1.
    time.sleep(1.5)

    send("STATS")
    assert recv() == "STATS v1"
    rows = {}
    while True:
        line = recv()
        if line == "STATS end":
            break
        _, key, value = line.split(" ", 2)
        rows[key] = value
    assert rows["requests"] == "2", rows
    assert rows["cache_hits"] == "1", rows
    assert rows["cache_misses"] == "1", rows
    assert rows["protocol_errors"] == "1", rows
    assert rows["in_flight"] == "0", rows
    assert int(rows["uptime_s"]) >= 1, rows

    send("DRAIN")
    assert recv() == "DRAINING"
    print("serve smoke OK:", " ".join(f"{k}={v}" for k, v in sorted(rows.items())))


if __name__ == "__main__":
    main()

//! **Theorem 7**: multi-interval gap scheduling → **2-interval** gap
//! scheduling.
//!
//! A job `j` with `k ≥ 3` allowed intervals `I_1, …, I_k` is replaced by:
//!
//! * an **extra interval** of `2k − 1` fresh slots `e_0 … e_{2k−2}`,
//!   appended after the original timeline (all jobs' extra intervals are
//!   laid out consecutively, forming one block);
//! * `k` **dummy jobs**, the `i`-th pinned to `e_{2i}` (the even
//!   positions) — 1 interval each;
//! * `k` **replacement jobs** `r_1, …, r_k`, where `r_i` may run in `I_i`
//!   or anywhere in the extra interval — 2 intervals each.
//!
//! In a normalized optimal solution every extra interval is completely
//! full, leaving exactly one `r_i` outside per original job — that `r_i`'s
//! position in `I_i` *is* the original job's schedule. The block adds
//! exactly one span, so `OPT′ = OPT + 1` (gap counts, finite convention).
//! The paper removes even that +1 by guessing the last busy slot; we keep
//! the additive constant and account for it in the experiments.

use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::schedule::MultiSchedule;
use gaps_core::time::Time;

/// What a gadget job means in terms of the original instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobRole {
    /// Verbatim copy of original job `j` (had ≤ 2 intervals).
    Copy { original: usize },
    /// Replacement job `r_i` of original job `j`: outside the block it
    /// must sit in interval `i` of job `j`.
    Replacement { original: usize, interval: usize },
    /// Dummy pinned inside an extra interval.
    Dummy,
}

/// The Theorem 7 gadget.
#[derive(Clone, Debug)]
pub struct TwoIntervalGadget {
    /// The 2-interval instance.
    pub multi: MultiInstance,
    /// Role of every gadget job.
    pub roles: Vec<JobRole>,
    /// Extra block of original job `j`, as `(start, len)`; empty if `j`
    /// was copied verbatim.
    pub blocks: Vec<Option<(Time, Time)>>,
    /// Whether any block was created (if not, the gadget is the original
    /// instance and `OPT′ = OPT`).
    pub has_block: bool,
}

/// Build the gadget. Every job of the result has at most 2 maximal
/// intervals.
pub fn build(inst: &MultiInstance) -> TwoIntervalGadget {
    let last = inst.slot_union().last().copied().unwrap_or(0);
    let mut cursor = last + 2; // ≥ 2 separation: the block can never merge
    let mut jobs: Vec<MultiJob> = Vec::new();
    let mut roles = Vec::new();
    let mut blocks = vec![None; inst.job_count()];

    for (j, job) in inst.jobs().iter().enumerate() {
        let intervals = job.intervals();
        if intervals.len() <= 2 {
            jobs.push(job.clone());
            roles.push(JobRole::Copy { original: j });
            continue;
        }
        let k = intervals.len();
        let len = (2 * k - 1) as Time;
        let start = cursor;
        cursor += len;
        blocks[j] = Some((start, len));
        // Dummies at even offsets.
        for i in 0..k {
            jobs.push(MultiJob::new(vec![start + 2 * i as Time]));
            roles.push(JobRole::Dummy);
        }
        // Replacements: interval I_i plus the whole block.
        let block_times: Vec<Time> = (start..start + len).collect();
        for (i, iv) in intervals.iter().enumerate() {
            let mut times: Vec<Time> = iv.iter().collect();
            times.extend(block_times.iter().copied());
            jobs.push(MultiJob::new(times));
            roles.push(JobRole::Replacement {
                original: j,
                interval: i,
            });
        }
    }

    let has_block = blocks.iter().any(Option::is_some);
    let gadget = TwoIntervalGadget {
        multi: MultiInstance::new(jobs).expect("all jobs have slots"),
        roles,
        blocks,
        has_block,
    };
    debug_assert!(gadget.multi.max_intervals_per_job() <= 2);
    gadget
}

impl TwoIntervalGadget {
    /// Expected optimum of the gadget given the original optimum (finite
    /// gap counts): `OPT + 1` if a block exists, else `OPT`.
    pub fn expected_gaps(&self, original_gaps: u64) -> u64 {
        original_gaps + self.has_block as u64
    }

    /// Lift an original schedule into the gadget: copies keep their slot,
    /// the replacement whose interval holds the slot goes there, and the
    /// other replacements fill the block's odd offsets.
    pub fn lift(&self, inst: &MultiInstance, sched: &MultiSchedule) -> MultiSchedule {
        let mut times = vec![0; self.multi.job_count()];
        // Per original job: which replacement stays outside.
        for (g, role) in self.roles.iter().enumerate() {
            match *role {
                JobRole::Copy { original } => times[g] = sched.times()[original],
                JobRole::Dummy => {
                    times[g] = self.multi.jobs()[g].times()[0];
                }
                JobRole::Replacement { .. } => {} // second pass
            }
        }
        for (j, block) in self.blocks.iter().enumerate() {
            let Some((start, _)) = *block else { continue };
            let t = sched.times()[j];
            // Replacements of j, in interval order.
            let reps: Vec<usize> = (0..self.roles.len())
                .filter(|&g| matches!(self.roles[g], JobRole::Replacement { original, .. } if original == j))
                .collect();
            let outside = reps
                .iter()
                .copied()
                .find(|&g| {
                    self.multi.jobs()[g].allows(t) && {
                        // allowed via its own interval, not via the block
                        let JobRole::Replacement { interval, .. } = self.roles[g] else {
                            unreachable!()
                        };
                        inst.jobs()[j].intervals()[interval].contains(t)
                    }
                })
                .expect("the scheduled slot lies in one of the job's intervals");
            times[outside] = t;
            // Remaining replacements fill odd offsets in order.
            let mut free_offsets = (0..).map(|i| start + 2 * i as Time + 1);
            for &g in &reps {
                if g != outside {
                    times[g] = free_offsets.next().expect("k−1 odd offsets");
                }
            }
        }
        let lifted = MultiSchedule::new(times);
        debug_assert_eq!(lifted.verify(&self.multi), Ok(()));
        lifted
    }

    /// Project a gadget schedule back to the original instance. The
    /// schedule is first normalized (every block completely filled) by the
    /// paper's hole-filling moves, which never increase the gap count.
    pub fn project(&self, inst: &MultiInstance, sched: &MultiSchedule) -> MultiSchedule {
        let mut times = sched.times().to_vec();
        // Normalize each block.
        for (j, block) in self.blocks.iter().enumerate() {
            let Some((start, len)) = *block else { continue };
            let reps: Vec<usize> = (0..self.roles.len())
                .filter(|&g| matches!(self.roles[g], JobRole::Replacement { original, .. } if original == j))
                .collect();
            loop {
                let occupied: Vec<Time> = times
                    .iter()
                    .filter(|&&t| start <= t && t < start + len)
                    .copied()
                    .collect();
                let hole = (start..start + len).find(|t| !occupied.contains(t));
                let Some(hole) = hole else { break };
                // Move any outside replacement of j into the hole.
                let outside = reps
                    .iter()
                    .copied()
                    .find(|&g| times[g] < start || times[g] >= start + len)
                    .expect("a hole implies ≥ 2 replacements outside");
                times[outside] = hole;
            }
        }
        // Extract: the unique outside replacement per blocked job.
        let mut out = vec![None; inst.job_count()];
        for (g, role) in self.roles.iter().enumerate() {
            match *role {
                JobRole::Copy { original } => out[original] = Some(times[g]),
                JobRole::Replacement { original, .. } => {
                    let (start, len) = self.blocks[original].expect("blocked job");
                    let t = times[g];
                    if t < start || t >= start + len {
                        assert!(
                            out[original].is_none(),
                            "two replacements of job {original} outside its block"
                        );
                        out[original] = Some(t);
                    }
                }
                JobRole::Dummy => {}
            }
        }
        let projected = MultiSchedule::new(
            out.into_iter()
                .map(|t| t.expect("normalization leaves exactly one replacement outside"))
                .collect(),
        );
        debug_assert_eq!(projected.verify(inst), Ok(()));
        projected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::min_gaps_multi;

    /// A job with 3 unit intervals, plus companions.
    fn original() -> MultiInstance {
        MultiInstance::from_times([
            vec![0, 4, 8], // 3 intervals → gets a gadget
            vec![0, 1],    // 1 interval → copied
            vec![8, 9],    // copied
        ])
        .unwrap()
    }

    #[test]
    fn gadget_is_two_interval() {
        let g = build(&original());
        assert!(g.multi.max_intervals_per_job() <= 2);
        assert!(g.has_block);
    }

    #[test]
    fn optimum_shifts_by_exactly_one() {
        let inst = original();
        let g = build(&inst);
        let (opt, _) = min_gaps_multi(&inst).unwrap();
        let (opt_gadget, _) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(opt_gadget, g.expected_gaps(opt), "Theorem 7 correspondence");
    }

    #[test]
    fn lift_then_project_roundtrips() {
        let inst = original();
        let g = build(&inst);
        let (_, sched) = min_gaps_multi(&inst).unwrap();
        let lifted = g.lift(&inst, &sched);
        lifted.verify(&g.multi).unwrap();
        // Lifting adds exactly the block span.
        assert_eq!(lifted.gap_count(), sched.gap_count() + 1);
        let back = g.project(&inst, &lifted);
        back.verify(&inst).unwrap();
        assert_eq!(back.times(), sched.times());
    }

    #[test]
    fn project_normalizes_sloppy_schedules() {
        let inst = original();
        let g = build(&inst);
        // Solve the gadget directly; its witness need not have full blocks.
        let (_, sched) = min_gaps_multi(&g.multi).unwrap();
        let back = g.project(&inst, &sched);
        back.verify(&inst).unwrap();
    }

    #[test]
    fn no_blocks_for_small_interval_counts() {
        let inst = MultiInstance::from_times([vec![0, 5], vec![1]]).unwrap();
        let g = build(&inst);
        assert!(!g.has_block);
        assert_eq!(g.multi, inst);
        let (opt, _) = min_gaps_multi(&inst).unwrap();
        assert_eq!(min_gaps_multi(&g.multi).unwrap().0, g.expected_gaps(opt));
    }

    #[test]
    fn four_interval_job() {
        let inst = MultiInstance::from_times([vec![0, 3, 6, 9], vec![0]]).unwrap();
        let g = build(&inst);
        let (opt, _) = min_gaps_multi(&inst).unwrap();
        let (opt_gadget, _) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(opt_gadget, g.expected_gaps(opt));
    }
}

//! **Theorem 9**: 2-unit gap scheduling ⟺ disjoint-unit gap scheduling
//! (approximation-preserving, optima differ by at most one).
//!
//! Both directions share the *complement trick*: the new instance's
//! schedules occupy exactly the slots the old instance leaves **idle**
//! inside the hull, so span counts of corresponding solutions are the
//! span counts of complementary subsets — which differ by at most 1.
//!
//! * **2-unit → disjoint-unit**: the job×slot graph of a feasible 2-unit
//!   instance splits into connected components with either `|slots| =
//!   |jobs|` (no freedom: always fully busy) or `|slots| = |jobs| + 1`
//!   (exactly one idle slot, and *any* of the component's slots can be the
//!   idle one — the alternating-path argument). Each deficient component
//!   becomes one new job whose allowed set is the component's slot set;
//!   each dead slot of the hull (usable by no job) becomes a pinned job.
//!   The new allowed sets are pairwise disjoint.
//! * **disjoint-unit → 2-unit**: a job with allowed slots `t_1 < … < t_k`
//!   becomes `k − 1` chain jobs with allowed pairs `{t_m, t_{m+1}}`; dead
//!   slots again become pinned jobs. The chain can leave any single `t_x`
//!   idle, matching the original job's choice.

use gaps_core::feasibility::slot_graph;
use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::schedule::MultiSchedule;
use gaps_core::time::Time;

/// The 2-unit → disjoint-unit construction.
#[derive(Clone, Debug)]
pub struct ToDisjointGadget {
    /// The disjoint-unit instance.
    pub multi: MultiInstance,
    /// For each new job: either the slot set of a deficient component, or
    /// a pinned dead slot (singleton).
    pub component_slots: Vec<Vec<Time>>,
}

/// Error for instances outside the theorem's scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReductionError {
    /// A job has more than two allowed slots.
    NotTwoUnit { job: usize },
    /// The instance is infeasible (a component has more jobs than slots).
    Infeasible,
    /// The allowed sets are not pairwise disjoint.
    NotDisjoint,
}

/// Build the 2-unit → disjoint-unit gadget.
pub fn two_unit_to_disjoint(inst: &MultiInstance) -> Result<ToDisjointGadget, ReductionError> {
    for (j, job) in inst.jobs().iter().enumerate() {
        if job.times().len() > 2 {
            return Err(ReductionError::NotTwoUnit { job: j });
        }
    }
    let (graph, slots) = slot_graph(inst);
    // Union-find over slot indices via job edges.
    let mut parent: Vec<usize> = (0..slots.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for j in 0..inst.job_count() as u32 {
        let neigh = graph.neighbors(j);
        if neigh.len() == 2 {
            let (a, b) = (neigh[0] as usize, neigh[1] as usize);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
    }
    // Group slots and jobs per component.
    let mut comp_slots: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for s in 0..slots.len() {
        let r = find(&mut parent, s);
        comp_slots.entry(r).or_default().push(s);
    }
    let mut comp_jobs: std::collections::BTreeMap<usize, usize> = Default::default();
    for j in 0..inst.job_count() as u32 {
        let s0 = graph.neighbors(j)[0] as usize;
        let r = find(&mut parent, s0);
        *comp_jobs.entry(r).or_insert(0) += 1;
    }

    let mut jobs = Vec::new();
    let mut component_slots = Vec::new();
    for (&root, slot_ids) in &comp_slots {
        let jcount = comp_jobs.get(&root).copied().unwrap_or(0);
        let times: Vec<Time> = slot_ids.iter().map(|&s| slots[s]).collect();
        match slot_ids.len() as i64 - jcount as i64 {
            0 => {} // always fully busy: contributes nothing
            1 => {
                jobs.push(MultiJob::new(times.clone()));
                component_slots.push(times);
            }
            d if d < 0 => return Err(ReductionError::Infeasible),
            _ => {
                // More than one spare slot can only happen for job-free
                // slots grouped alone (components are built from job
                // edges, so multi-spare means isolated sets); treat each
                // as... impossible for connected components with ≤2-degree
                // jobs unless jcount == 0 and the slots are singletons.
                debug_assert_eq!(jcount, 0);
                for t in times {
                    jobs.push(MultiJob::new(vec![t]));
                    component_slots.push(vec![t]);
                }
            }
        }
    }
    // Dead slots of the hull (between min and max slot, usable by nobody)
    // become pinned jobs.
    if let (Some(&lo), Some(&hi)) = (slots.first(), slots.last()) {
        for t in lo..=hi {
            if slots.binary_search(&t).is_err() {
                jobs.push(MultiJob::new(vec![t]));
                component_slots.push(vec![t]);
            }
        }
    }
    let multi = MultiInstance::new(jobs).expect("all jobs have slots");
    if !multi.is_disjoint() {
        return Err(ReductionError::NotDisjoint);
    }
    Ok(ToDisjointGadget {
        multi,
        component_slots,
    })
}

/// Map an old (2-unit) schedule to the new (disjoint) instance: each
/// deficient component's new job takes the component's idle slot; pinned
/// jobs take their dead slot. The new busy set is the complement of the
/// old busy set within the hull.
pub fn complement_schedule(gadget: &ToDisjointGadget, old_busy: &[Time]) -> MultiSchedule {
    let times = gadget
        .component_slots
        .iter()
        .map(|slots| {
            slots
                .iter()
                .copied()
                .find(|t| old_busy.binary_search(t).is_err())
                .expect("each component has exactly one idle slot")
        })
        .collect();
    MultiSchedule::new(times)
}

/// The disjoint-unit → 2-unit construction.
#[derive(Clone, Debug)]
pub struct ToTwoUnitGadget {
    /// The 2-unit instance (chain jobs + pinned dead slots).
    pub multi: MultiInstance,
}

/// Build the disjoint-unit → 2-unit gadget.
pub fn disjoint_to_two_unit(inst: &MultiInstance) -> Result<ToTwoUnitGadget, ReductionError> {
    if !inst.is_disjoint() {
        return Err(ReductionError::NotDisjoint);
    }
    let slots = inst.slot_union();
    let mut jobs = Vec::new();
    for job in inst.jobs() {
        let ts = job.times();
        if ts.len() == 1 {
            // A forced job leaves no idle slot; in the complement world its
            // slot is always busy... it contributes no chain job (its slot
            // is never idle in the original, i.e. never busy in the new).
            continue;
        }
        for m in 0..ts.len() - 1 {
            jobs.push(MultiJob::new(vec![ts[m], ts[m + 1]]));
        }
    }
    if let (Some(&lo), Some(&hi)) = (slots.first(), slots.last()) {
        for t in lo..=hi {
            if slots.binary_search(&t).is_err() {
                jobs.push(MultiJob::new(vec![t]));
            }
        }
    }
    Ok(ToTwoUnitGadget {
        multi: MultiInstance::new(jobs).expect("all jobs have slots"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::min_spans_multi;

    /// Span count of the complement of `busy` within `[lo, hi]`.
    fn complement_spans(busy: &[Time], lo: Time, hi: Time) -> u64 {
        let free: Vec<Time> = (lo..=hi)
            .filter(|t| busy.binary_search(t).is_err())
            .collect();
        gaps_core::time::run_count(&free) as u64
    }

    #[test]
    fn two_unit_components_classified() {
        // Jobs {0,1},{1,2} share slots {0,1,2}: one deficient component.
        // Job {5} is forced: component {5} with 1 job, 1 slot.
        let inst = MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![5]]).unwrap();
        let g = two_unit_to_disjoint(&inst).unwrap();
        // New jobs: the deficient component {0,1,2} + dead slots {3,4}.
        assert_eq!(g.multi.job_count(), 3);
        // The gadget guarantees disjointness only; produced slots may be
        // adjacent, so `is_unit_interval` can be either way.
        assert!(g.multi.is_disjoint());
    }

    #[test]
    fn complement_schedule_is_valid_and_complementary() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![5]]).unwrap();
        let g = two_unit_to_disjoint(&inst).unwrap();
        // Old schedule: jobs at 0, 1, 5 → idle in hull: {2, 3, 4}.
        let new_sched = complement_schedule(&g, &[0, 1, 5]);
        new_sched.verify(&g.multi).unwrap();
        let mut occupied = new_sched.occupied();
        occupied.sort_unstable();
        assert_eq!(occupied, vec![2, 3, 4]);
    }

    #[test]
    fn optima_differ_by_at_most_one_forward() {
        for inst in [
            MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![5]]).unwrap(),
            MultiInstance::from_times([vec![0, 2], vec![2, 4], vec![4, 6]]).unwrap(),
            MultiInstance::from_times([vec![0, 1], vec![3, 4], vec![4, 5], vec![0, 5]]).unwrap(),
        ] {
            let g = match two_unit_to_disjoint(&inst) {
                Ok(g) => g,
                Err(ReductionError::Infeasible) => continue,
                Err(e) => panic!("{e:?}"),
            };
            let (old_opt, _) = min_spans_multi(&inst).unwrap();
            let (new_opt, _) = min_spans_multi(&g.multi).unwrap();
            assert!(
                old_opt.abs_diff(new_opt) <= 1,
                "spans {old_opt} vs complement {new_opt}"
            );
        }
    }

    #[test]
    fn optima_differ_by_at_most_one_backward() {
        for inst in [
            MultiInstance::from_times([vec![0, 2, 4], vec![7, 9]]).unwrap(),
            MultiInstance::from_times([vec![0, 3], vec![6], vec![9, 11]]).unwrap(),
        ] {
            assert!(inst.is_disjoint());
            let g = disjoint_to_two_unit(&inst).unwrap();
            if g.multi.job_count() == 0 {
                continue;
            }
            let (old_opt, _) = min_spans_multi(&inst).unwrap();
            let (new_opt, _) = min_spans_multi(&g.multi).unwrap();
            assert!(
                old_opt.abs_diff(new_opt) <= 1,
                "spans {old_opt} vs chain complement {new_opt}"
            );
        }
    }

    #[test]
    fn chain_jobs_leave_any_slot_idle() {
        // Job with slots {0, 2, 4} → chains {0,2},{2,4}: any single slot
        // can stay idle.
        let inst = MultiInstance::from_times([vec![0, 2, 4]]).unwrap();
        let g = disjoint_to_two_unit(&inst).unwrap();
        for idle in [0i64, 2, 4] {
            // Match chains into the other two slots.
            let (graph, slots) = slot_graph(&g.multi);
            let _ = (graph, slots); // feasibility via brute force instead:
            let reduced: Vec<Vec<Time>> = g
                .multi
                .jobs()
                .iter()
                .map(|j| j.times().iter().copied().filter(|&t| t != idle).collect())
                .collect();
            let reduced = MultiInstance::from_times(reduced).unwrap();
            assert!(
                gaps_core::feasibility::is_feasible(&reduced),
                "idle = {idle} should be realizable"
            );
        }
    }

    #[test]
    fn rejects_three_slot_jobs() {
        let inst = MultiInstance::from_times([vec![0, 1, 2]]).unwrap();
        assert!(matches!(
            two_unit_to_disjoint(&inst),
            Err(ReductionError::NotTwoUnit { job: 0 })
        ));
    }

    #[test]
    fn detects_infeasible_component() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap();
        assert!(matches!(
            two_unit_to_disjoint(&inst),
            Err(ReductionError::Infeasible)
        ));
    }

    #[test]
    fn any_slot_of_deficient_component_can_idle() {
        // The alternating-path claim: component {0,1,2} with jobs
        // {0,1},{1,2} can leave any of 0, 1, 2 idle.
        let inst = MultiInstance::from_times([vec![0, 1], vec![1, 2]]).unwrap();
        for idle in [0i64, 1, 2] {
            let reduced: Vec<Vec<Time>> = inst
                .jobs()
                .iter()
                .map(|j| j.times().iter().copied().filter(|&t| t != idle).collect())
                .collect();
            let reduced = MultiInstance::from_times(reduced).unwrap();
            assert!(gaps_core::feasibility::is_feasible(&reduced));
        }
    }

    #[test]
    fn complement_span_arithmetic() {
        // Sanity for the complement trick: |spans(S) − spans(hull ∖ S)| ≤ 1.
        let busy = vec![0, 1, 4, 7, 8];
        let s = gaps_core::time::run_count(&busy) as u64;
        let c = complement_spans(&busy, 0, 8);
        assert!(s.abs_diff(c) <= 1);
    }
}

//! **Theorem 10**: B-set cover → disjoint-unit gap scheduling, showing the
//! latter has no constant-factor approximation.
//!
//! For every set `c_i` and every non-empty subset `A ⊆ c_i`, the gadget
//! lays down an interval of `|A|` consecutive slots (intervals pairwise
//! separated). The job of element `e` may run, for each subset `A ∋ e`,
//! exactly at the slot of `A`'s interval indexed by `e`'s rank within `A`.
//! Distinct elements get distinct slots, so all allowed sets are pairwise
//! disjoint — and every allowed set consists of isolated (unit) slots.
//!
//! Choosing set `c_i` for the elements `A ⊆ c_i` fills the interval of `A`
//! contiguously (one span); conversely every touched interval witnesses a
//! chosen set. Hence
//!
//! ```text
//! minimum spans of the gadget  =  minimum B-set cover size,
//! ```
//!
//! which transfers B-set cover's no-constant-factor hardness. The number
//! of subsets per set is `2^B − 1` — constant for constant `B`, keeping
//! the reduction polynomial.

use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::schedule::MultiSchedule;
use gaps_core::time::Time;
use gaps_setcover::SetCoverInstance;

/// The Theorem 10 gadget.
#[derive(Clone, Debug)]
pub struct DisjointGadget {
    /// The disjoint-unit instance; job `e` is element `e`.
    pub multi: MultiInstance,
    /// `(set index, subset elements, interval start)` for every laid-out
    /// subset interval.
    pub intervals: Vec<(usize, Vec<u32>, Time)>,
}

/// Build the gadget.
///
/// # Panics
/// Panics if the cover instance is infeasible, or if `2^B` would explode
/// (`B > 16`).
pub fn build(cover: &SetCoverInstance) -> DisjointGadget {
    assert!(
        cover.is_feasible(),
        "infeasible set-cover instance: element {} is in no set",
        cover.first_uncoverable().unwrap()
    );
    let b = cover.max_set_size();
    assert!(
        b <= 16,
        "B = {b} too large: the gadget enumerates 2^B subsets"
    );

    let mut intervals = Vec::new();
    let mut job_times: Vec<Vec<Time>> = vec![Vec::new(); cover.universe_size() as usize];
    let mut cursor: Time = 0;
    for i in 0..cover.set_count() {
        let set = cover.set(i);
        // All non-empty subsets of set i.
        for mask in 1u32..(1 << set.len()) {
            let subset: Vec<u32> = set
                .iter()
                .enumerate()
                .filter(|&(pos, _)| mask & (1 << pos) != 0)
                .map(|(_, &e)| e)
                .collect();
            let start = cursor;
            cursor += subset.len() as Time + 2; // ≥ 2 separation
            for (rank, &e) in subset.iter().enumerate() {
                job_times[e as usize].push(start + rank as Time);
            }
            intervals.push((i, subset, start));
        }
    }
    let multi = MultiInstance::new(job_times.into_iter().map(MultiJob::new).collect())
        .expect("feasible cover ⇒ every element has a slot");
    debug_assert!(multi.is_disjoint());
    debug_assert!(multi.is_unit_interval());
    DisjointGadget { multi, intervals }
}

impl DisjointGadget {
    /// Map a cover (with an assignment of each element to a chosen set) to
    /// a gadget schedule: the elements assigned to chosen set `c_i` form a
    /// subset `A`, and each runs at its rank slot of `A`'s interval.
    pub fn cover_to_schedule(&self, cover: &SetCoverInstance, chosen: &[usize]) -> MultiSchedule {
        cover.verify_cover(chosen).expect("not a cover");
        let n = cover.universe_size();
        // Assign each element to the first chosen set containing it.
        let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); cover.set_count()];
        for e in 0..n {
            let s = chosen
                .iter()
                .copied()
                .find(|&s| cover.set(s).binary_search(&e).is_ok())
                .expect("cover");
            assigned[s].push(e);
        }
        let mut times = vec![0; n as usize];
        for (s, elems) in assigned.iter().enumerate() {
            if elems.is_empty() {
                continue;
            }
            // Find the interval of exactly this subset.
            let (_, _, start) = self
                .intervals
                .iter()
                .find(|(i, subset, _)| *i == s && subset == elems)
                .expect("every subset of every set has an interval");
            for (rank, &e) in elems.iter().enumerate() {
                times[e as usize] = start + rank as Time;
            }
        }
        let sched = MultiSchedule::new(times);
        debug_assert_eq!(sched.verify(&self.multi), Ok(()));
        sched
    }

    /// Map a schedule back to a cover: all sets whose subset-intervals
    /// execute at least one job.
    pub fn schedule_to_cover(&self, sched: &MultiSchedule) -> Vec<usize> {
        let mut used = Vec::new();
        for &t in sched.times() {
            let (s, _, _) = self
                .intervals
                .iter()
                .find(|(_, subset, start)| *start <= t && t < *start + subset.len() as Time)
                .expect("every slot lies in a subset interval");
            if !used.contains(s) {
                used.push(*s);
            }
        }
        used.sort_unstable();
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::min_spans_multi;
    use gaps_setcover::exact_min_cover;

    fn example() -> SetCoverInstance {
        // B = 2; OPT = 2.
        SetCoverInstance::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 2]]).unwrap()
    }

    #[test]
    fn gadget_is_disjoint_unit() {
        let g = build(&example());
        assert!(g.multi.is_disjoint());
        assert!(g.multi.is_unit_interval());
    }

    #[test]
    fn optimal_spans_equal_optimal_cover() {
        let cover = example();
        let g = build(&cover);
        let k_opt = exact_min_cover(&cover).unwrap().len() as u64;
        let (spans, sched) = min_spans_multi(&g.multi).unwrap();
        assert_eq!(spans, k_opt, "Theorem 10 correspondence");
        let mapped = g.schedule_to_cover(&sched);
        cover.verify_cover(&mapped).unwrap();
        assert_eq!(mapped.len() as u64, k_opt);
    }

    #[test]
    fn cover_to_schedule_achieves_cover_size() {
        let cover = example();
        let g = build(&cover);
        let chosen = vec![0, 1];
        let sched = g.cover_to_schedule(&cover, &chosen);
        sched.verify(&g.multi).unwrap();
        assert_eq!(sched.span_count(), 2);
    }

    #[test]
    fn partial_subset_use_is_contiguous() {
        // Cover {0,1} by set 0 and {2} by set 2 (as subset {2} of {1,2})
        // and {3} by set 1 (as subset {3}): 3 spans.
        let cover = example();
        let g = build(&cover);
        let sched = g.cover_to_schedule(&cover, &[0, 2, 1]);
        sched.verify(&g.multi).unwrap();
        assert_eq!(sched.span_count(), 3);
    }

    #[test]
    fn b3_instance() {
        let cover =
            SetCoverInstance::new(5, vec![vec![0, 1, 2], vec![2, 3, 4], vec![0, 4]]).unwrap();
        let g = build(&cover);
        let k_opt = exact_min_cover(&cover).unwrap().len() as u64;
        let (spans, _) = min_spans_multi(&g.multi).unwrap();
        assert_eq!(spans, k_opt);
    }

    #[test]
    #[should_panic(expected = "infeasible set-cover instance")]
    fn rejects_uncoverable() {
        let cover = SetCoverInstance::new(2, vec![vec![0]]).unwrap();
        build(&cover);
    }
}

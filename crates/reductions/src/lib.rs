//! # gaps-reductions
//!
//! Executable hardness gadgets from the SPAA 2007 paper, Theorems 4–10.
//! Each module builds the reduction *as code* — set-cover instances become
//! scheduling instances, solutions map back and forth — and the test suites
//! verify the paper's exact correspondences on small instances by solving
//! both sides exhaustively:
//!
//! | module | theorem | reduction | verified correspondence |
//! |--------|---------|-----------|------------------------|
//! | [`setcover_power`] | 4, 5 | set cover → multi-interval power min | cover k ⟺ power (n+1) + (k+1)·α |
//! | [`setcover_gap`] | 6 | set cover → multi-interval gap | cover k ⟺ k + 1 spans |
//! | [`two_interval`] | 7 | multi-interval gap → 2-interval gap | OPT′ = OPT + 1 |
//! | [`three_unit`] | 8 | multi-interval gap → 3-unit gap | OPT′ = OPT + 1 |
//! | [`two_unit_disjoint`] | 9 | 2-unit ⟺ disjoint-unit | optima differ ≤ 1 |
//! | [`bsetcover_disjoint`] | 10 | B-set cover → disjoint-unit gap | cover k ⟺ k spans |
//!
//! These gadgets transfer the Ω(lg n) / Ω(lg α) inapproximability of set
//! cover and the no-constant-factor bound for B-set cover to the
//! scheduling problems; experiments E7–E10 run them end to end.

pub mod bsetcover_disjoint;
pub mod setcover_gap;
pub mod setcover_power;
pub mod three_unit;
pub mod two_interval;
pub mod two_unit_disjoint;

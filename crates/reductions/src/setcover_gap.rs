//! **Theorem 6**: set cover → multi-interval *gap* scheduling.
//!
//! Identical layout to the Theorem 4 gadget ([`crate::setcover_power`]) —
//! the objective simply switches from power to gap count. Because the
//! intervals are far apart, no span can cross between them, so spans =
//! (used set intervals) + 1 (the dummy), i.e. a cover of size `k`
//! corresponds exactly to `k + 1` spans = `k` gaps (in the finite-gap
//! convention) of an optimal schedule.

use crate::setcover_power::{build, PowerGadget};
use gaps_setcover::SetCoverInstance;

/// The Theorem 6 gadget is the Theorem 4 gadget viewed through the gap
/// objective; α only influences the (irrelevant) separation width.
pub type GapGadget = PowerGadget;

/// Build the Theorem 6 gadget.
pub fn build_theorem6(cover: &SetCoverInstance) -> GapGadget {
    build(cover, cover.universe_size().max(1) as u64)
}

/// Expected optimal span count for a minimum cover of size `k`: the `k`
/// used intervals plus the dummy interval.
pub fn spans_of_cover_size(k: u64) -> u64 {
    k + 1
}

/// Expected optimal gap count (finite-gap convention): spans − 1 = `k`.
pub fn gaps_of_cover_size(k: u64) -> u64 {
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::{min_gaps_multi, min_spans_multi};
    use gaps_setcover::exact_min_cover;

    fn example() -> SetCoverInstance {
        SetCoverInstance::new(
            6,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 2, 4],
                vec![1, 3, 5],
                vec![5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn optimal_gaps_equal_optimal_cover() {
        let cover = example();
        let g = build_theorem6(&cover);
        let k_opt = exact_min_cover(&cover).unwrap().len() as u64;
        let (gaps, sched) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(gaps, gaps_of_cover_size(k_opt), "Theorem 6 correspondence");
        let (spans, _) = min_spans_multi(&g.multi).unwrap();
        assert_eq!(spans, spans_of_cover_size(k_opt));
        // Witness maps back to an optimal cover.
        let mapped = g.schedule_to_cover(&cover, &sched);
        cover.verify_cover(&mapped).unwrap();
        assert_eq!(mapped.len() as u64, k_opt);
    }

    #[test]
    fn greedy_cover_upper_bounds_schedule() {
        // End-to-end pipeline: greedy cover → schedule → gap count is an
        // upper bound on the optimum, and maps back to a cover no larger
        // than greedy's.
        let cover = example();
        let g = build_theorem6(&cover);
        let greedy = gaps_setcover::greedy_cover(&cover).unwrap();
        let sched = g.cover_to_schedule(&cover, &greedy);
        let (opt_gaps, _) = min_gaps_multi(&g.multi).unwrap();
        assert!(sched.gap_count() >= opt_gaps);
        assert!(sched.gap_count() <= greedy.len() as u64);
    }

    #[test]
    fn two_disjoint_sets() {
        let cover = SetCoverInstance::new(4, vec![vec![0, 1], vec![2, 3]]).unwrap();
        let g = build_theorem6(&cover);
        let (gaps, _) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(gaps, 2); // both sets needed
    }
}

//! **Theorem 8**: multi-interval gap scheduling → **3-unit** gap
//! scheduling (≤ 3 allowed slots per job, all unit intervals).
//!
//! A job with allowed slots `t_1 < … < t_k` (`k ≥ 4`) is replaced by:
//!
//! * an **extra interval** of `2k − 1` fresh slots with `k` dummies pinned
//!   at even offsets; the `k − 1` odd offsets are the *free slots*
//!   `F_1, …, F_{k−1}`;
//! * jobs `j_1, …, j_k`: for `i ≤ k − 1`, `j_i` may run at `t_i`, `F_i`,
//!   or `F_{i+1}` (wrapping `F_k ↦ F_1`); `j_k` may run at `t_k`, `F_1`,
//!   or `F_2`.
//!
//! The cyclic structure realizes the paper's claim that **any** `k − 1` of
//! the `k` jobs can completely fill the free slots (verified by matching
//! in the tests), so normalized optima leave exactly one `j_i` outside,
//! at `t_i` — the original job's slot. As in Theorem 7, the block adds one
//! span: `OPT′ = OPT + 1`.

use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::schedule::MultiSchedule;
use gaps_core::time::Time;
use gaps_matching::hopcroft_karp;

/// Role of a gadget job (same flavor as [`crate::two_interval::JobRole`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobRole {
    /// Verbatim copy of original job `j` (had ≤ 3 slots).
    Copy { original: usize },
    /// `j_i` of original job `j`: outside the block it sits at `t_i`.
    Slot { original: usize, index: usize },
    /// Dummy pinned inside an extra interval.
    Dummy,
}

/// The Theorem 8 gadget.
#[derive(Clone, Debug)]
pub struct ThreeUnitGadget {
    /// The 3-unit instance.
    pub multi: MultiInstance,
    /// Role of every gadget job.
    pub roles: Vec<JobRole>,
    /// Extra block of original job `j` as `(start, len)`, if any.
    pub blocks: Vec<Option<(Time, Time)>>,
    /// Whether any block exists.
    pub has_block: bool,
}

/// Build the gadget. Every job of the result has ≤ 3 allowed slots, all
/// pairwise non-adjacent or inside the block structure (unit intervals).
pub fn build(inst: &MultiInstance) -> ThreeUnitGadget {
    let last = inst.slot_union().last().copied().unwrap_or(0);
    let mut cursor = last + 2;
    let mut jobs: Vec<MultiJob> = Vec::new();
    let mut roles = Vec::new();
    let mut blocks = vec![None; inst.job_count()];

    for (j, job) in inst.jobs().iter().enumerate() {
        let ts = job.times();
        let k = ts.len();
        if k <= 3 {
            jobs.push(job.clone());
            roles.push(JobRole::Copy { original: j });
            continue;
        }
        let len = (2 * k - 1) as Time;
        let start = cursor;
        // Blocks of different jobs are laid out back to back — the paper:
        // "We put all extra-intervals consecutively, thus, no gap will be
        // formed between them" — so all blocks together form ONE span.
        cursor += len;
        blocks[j] = Some((start, len));
        // Dummies at even offsets 0, 2, …, 2k−2.
        for i in 0..k {
            jobs.push(MultiJob::new(vec![start + 2 * i as Time]));
            roles.push(JobRole::Dummy);
        }
        // Free slots F_1..F_{k−1} at odd offsets.
        let f = |i: usize| -> Time { start + 2 * i as Time - 1 }; // F_i, 1-based
        for i in 1..=k {
            let times = if i < k {
                let next = if i < k - 1 { i + 1 } else { 1 };
                vec![ts[i - 1], f(i), f(next)]
            } else {
                vec![ts[k - 1], f(1), f(2)]
            };
            jobs.push(MultiJob::new(times));
            roles.push(JobRole::Slot {
                original: j,
                index: i - 1,
            });
        }
    }

    let has_block = blocks.iter().any(Option::is_some);
    let gadget = ThreeUnitGadget {
        multi: MultiInstance::new(jobs).expect("all jobs have slots"),
        roles,
        blocks,
        has_block,
    };
    debug_assert!(gadget.multi.jobs().iter().all(|j| j.times().len() <= 3));
    gadget
}

impl ThreeUnitGadget {
    /// Expected gadget optimum (finite gap counts).
    pub fn expected_gaps(&self, original_gaps: u64) -> u64 {
        original_gaps + self.has_block as u64
    }

    /// Lift an original schedule into the gadget: for each blocked job the
    /// slot-job whose `t_i` was chosen stays outside; the rest fill the
    /// free slots via a matching (which the cyclic structure guarantees).
    pub fn lift(&self, inst: &MultiInstance, sched: &MultiSchedule) -> MultiSchedule {
        let mut times = vec![0; self.multi.job_count()];
        for (g, role) in self.roles.iter().enumerate() {
            match *role {
                JobRole::Copy { original } => times[g] = sched.times()[original],
                JobRole::Dummy => times[g] = self.multi.jobs()[g].times()[0],
                JobRole::Slot { .. } => {}
            }
        }
        for (j, block) in self.blocks.iter().enumerate() {
            if block.is_none() {
                continue;
            }
            let t = sched.times()[j];
            let idx = inst.jobs()[j]
                .times()
                .iter()
                .position(|&x| x == t)
                .expect("schedule uses an allowed slot");
            let members: Vec<usize> = (0..self.roles.len())
                .filter(
                    |&g| matches!(self.roles[g], JobRole::Slot { original, .. } if original == j),
                )
                .collect();
            let outside = members
                .iter()
                .copied()
                .find(|&g| matches!(self.roles[g], JobRole::Slot { index, .. } if index == idx))
                .expect("one slot-job per index");
            times[outside] = t;
            let insiders: Vec<usize> = members.into_iter().filter(|&g| g != outside).collect();
            let packing = self
                .pack_insiders(j, &insiders)
                .expect("any k−1 slot-jobs can fill the free slots");
            for (g, slot) in packing {
                times[g] = slot;
            }
        }
        let lifted = MultiSchedule::new(times);
        debug_assert_eq!(lifted.verify(&self.multi), Ok(()));
        lifted
    }

    /// Match the given slot-jobs of blocked job `j` onto its free slots
    /// (perfectly). Returns `(gadget job, slot)` pairs.
    fn pack_insiders(&self, j: usize, insiders: &[usize]) -> Option<Vec<(usize, Time)>> {
        let (start, len) = self.blocks[j].expect("blocked job");
        let free: Vec<Time> = (start..start + len)
            .filter(|t| (t - start) % 2 == 1)
            .collect();
        if insiders.len() != free.len() {
            return None;
        }
        let mut graph = gaps_matching::BipartiteGraph::new(insiders.len(), free.len());
        for (a, &g) in insiders.iter().enumerate() {
            for &t in self.multi.jobs()[g].times() {
                if let Ok(b) = free.binary_search(&t) {
                    graph.add_edge(a as u32, b as u32);
                }
            }
        }
        graph.dedup();
        let m = hopcroft_karp(&graph);
        if !m.is_left_perfect() {
            return None;
        }
        Some(
            m.pairs()
                .map(|(a, b)| (insiders[a as usize], free[b as usize]))
                .collect(),
        )
    }

    /// Project a gadget schedule back to the original instance,
    /// normalizing first: while some block has a hole, keep one outside
    /// slot-job out and rematch the others into the free slots (never
    /// increases the gap count — see the module docs of the Theorem 7
    /// twin; here rearrangement inside the block is free because only the
    /// *set* of holes matters).
    pub fn project(&self, inst: &MultiInstance, sched: &MultiSchedule) -> MultiSchedule {
        let mut times = sched.times().to_vec();
        for (j, block) in self.blocks.iter().enumerate() {
            let Some((start, len)) = *block else { continue };
            let members: Vec<usize> = (0..self.roles.len())
                .filter(
                    |&g| matches!(self.roles[g], JobRole::Slot { original, .. } if original == j),
                )
                .collect();
            let outside: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&g| times[g] < start || times[g] >= start + len)
                .collect();
            if outside.len() <= 1 {
                continue; // block already full
            }
            // Keep the first outside job out; pack the rest.
            let keep = outside[0];
            let insiders: Vec<usize> = members.into_iter().filter(|&g| g != keep).collect();
            let packing = self
                .pack_insiders(j, &insiders)
                .expect("any k−1 slot-jobs can fill the free slots");
            for (g, slot) in packing {
                times[g] = slot;
            }
        }
        let mut out = vec![None; inst.job_count()];
        for (g, role) in self.roles.iter().enumerate() {
            match *role {
                JobRole::Copy { original } => out[original] = Some(times[g]),
                JobRole::Slot { original, .. } => {
                    let (start, len) = self.blocks[original].expect("blocked job");
                    let t = times[g];
                    if t < start || t >= start + len {
                        assert!(out[original].is_none(), "two slot-jobs outside one block");
                        out[original] = Some(t);
                    }
                }
                JobRole::Dummy => {}
            }
        }
        let projected = MultiSchedule::new(
            out.into_iter()
                .map(|t| t.expect("normalization leaves exactly one slot-job outside"))
                .collect(),
        );
        debug_assert_eq!(projected.verify(inst), Ok(()));
        projected
    }
}

/// Sanity check used by tests and experiments: in the gadget of job `j`,
/// every leave-one-out subset of the slot-jobs can fill the free slots.
pub fn verify_fillability(gadget: &ThreeUnitGadget, j: usize) -> bool {
    let members: Vec<usize> = (0..gadget.roles.len())
        .filter(|&g| matches!(gadget.roles[g], JobRole::Slot { original, .. } if original == j))
        .collect();
    members.iter().all(|&leave_out| {
        let insiders: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&g| g != leave_out)
            .collect();
        gadget.pack_insiders(j, &insiders).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::min_gaps_multi;

    fn original() -> MultiInstance {
        MultiInstance::from_times([
            vec![0, 3, 6, 9], // 4 slots → gadget
            vec![0, 1],       // copied
            vec![9],          // copied
        ])
        .unwrap()
    }

    #[test]
    fn gadget_is_three_unit() {
        let g = build(&original());
        assert!(g.multi.jobs().iter().all(|j| j.times().len() <= 3));
        assert!(g.has_block);
    }

    #[test]
    fn every_leave_one_out_subset_fills_the_block() {
        let g = build(&original());
        assert!(verify_fillability(&g, 0), "paper's fillability claim");
        // Also for a 5-slot job.
        let inst5 = MultiInstance::from_times([vec![0, 2, 4, 6, 8]]).unwrap();
        let g5 = build(&inst5);
        assert!(verify_fillability(&g5, 0));
    }

    #[test]
    fn optimum_shifts_by_exactly_one() {
        let inst = original();
        let g = build(&inst);
        let (opt, _) = min_gaps_multi(&inst).unwrap();
        let (opt_gadget, _) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(opt_gadget, g.expected_gaps(opt), "Theorem 8 correspondence");
    }

    #[test]
    fn lift_then_project_roundtrips() {
        let inst = original();
        let g = build(&inst);
        let (_, sched) = min_gaps_multi(&inst).unwrap();
        let lifted = g.lift(&inst, &sched);
        lifted.verify(&g.multi).unwrap();
        assert_eq!(lifted.gap_count(), sched.gap_count() + 1);
        let back = g.project(&inst, &lifted);
        back.verify(&inst).unwrap();
        assert_eq!(back.times(), sched.times());
    }

    #[test]
    fn project_normalizes_arbitrary_witnesses() {
        let inst = original();
        let g = build(&inst);
        let (_, sched) = min_gaps_multi(&g.multi).unwrap();
        let back = g.project(&inst, &sched);
        back.verify(&inst).unwrap();
    }

    #[test]
    fn small_jobs_pass_through() {
        let inst = MultiInstance::from_times([vec![0, 2, 4], vec![1]]).unwrap();
        let g = build(&inst);
        assert!(!g.has_block);
        assert_eq!(g.multi, inst);
    }

    #[test]
    fn two_blocked_jobs_still_shift_by_one() {
        // Two jobs with 4 slots each: two blocks, laid out adjacently so
        // they form a single extra span.
        let inst = MultiInstance::from_times([vec![0, 3, 6, 9], vec![1, 4, 7, 10]]).unwrap();
        let g = build(&inst);
        let (opt, _) = min_gaps_multi(&inst).unwrap();
        let (opt_gadget, _) = min_gaps_multi(&g.multi).unwrap();
        assert_eq!(
            opt_gadget,
            g.expected_gaps(opt),
            "blocks must merge into one span"
        );
        // Adjacent blocks: end of block 0 + 1 == start of block 1.
        let (s0, l0) = g.blocks[0].unwrap();
        let (s1, _) = g.blocks[1].unwrap();
        assert_eq!(s0 + l0, s1);
    }
}

//! **Theorems 4 & 5**: set cover → multi-interval power minimization.
//!
//! For each set `c_i` the gadget lays down an interval of `|c_i|`
//! consecutive slots, all intervals separated by a distance so large that
//! staying awake between them can never pay off (the paper uses `> n³`;
//! any separation `> α` has the same effect on optimal schedules, and the
//! paper's choice also dwarfs the total cost budget). Each element `e`
//! becomes a job allowed exactly in the intervals of the sets containing
//! `e`. One extra length-1 interval with a pinned job forces at least one
//! additional span.
//!
//! With transition cost `α`:
//!
//! * a cover of size `k` schedules the elements inside the chosen
//!   intervals (consecutively, so each chosen interval is one span) for a
//!   total power `(n + 1) + (k + 1)·α` — `n+1` executions, `k+1` wake-ups;
//! * conversely any schedule of power `(n + 1) + (k + 1)·α` touches at
//!   most `k` set intervals, which form a cover.
//!
//! Theorem 4 sets `α = n` (so the correspondence scales by `n` and a
//! `o(lg n)` approximation would solve set cover too accurately);
//! Theorem 5 sets `α = B` for B-set cover, giving the Ω(lg α) bound.

use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::schedule::MultiSchedule;
use gaps_core::time::Time;
use gaps_setcover::SetCoverInstance;

/// The constructed gadget, with enough bookkeeping to map solutions both
/// ways.
#[derive(Clone, Debug)]
pub struct PowerGadget {
    /// The scheduling instance: jobs `0..n` are the elements, job `n` is
    /// the pinned dummy.
    pub multi: MultiInstance,
    /// Transition cost (α = n for Theorem 4, α = B for Theorem 5).
    pub alpha: u64,
    /// Start slot of each set's interval, by set index.
    pub interval_start: Vec<Time>,
    /// Start slot of the extra dummy interval.
    pub dummy_start: Time,
    /// Universe size `n`.
    pub n: u32,
}

/// Build the Theorem 4 gadget (`α = n`, the universe size).
///
/// # Panics
/// Panics if the instance is infeasible as a cover problem (an element in
/// no set) — the gadget would have a job with no allowed slots.
pub fn build_theorem4(cover: &SetCoverInstance) -> PowerGadget {
    build(cover, cover.universe_size().max(1) as u64)
}

/// Build the Theorem 5 gadget (`α = B`, the maximum set size).
pub fn build_theorem5(cover: &SetCoverInstance) -> PowerGadget {
    build(cover, cover.max_set_size().max(1) as u64)
}

/// Build the gadget with an explicit transition cost.
pub fn build(cover: &SetCoverInstance, alpha: u64) -> PowerGadget {
    assert!(
        cover.is_feasible(),
        "infeasible set-cover instance: element {} is in no set",
        cover.first_uncoverable().unwrap()
    );
    let n = cover.universe_size();
    // Paper separation: larger than n³ (and than α). Keep it comfortably
    // clear of both.
    let sep: Time = (n as Time).pow(3) + alpha as Time + 7;

    let mut interval_start = Vec::with_capacity(cover.set_count());
    let mut cursor: Time = 0;
    for i in 0..cover.set_count() {
        interval_start.push(cursor);
        cursor += cover.set(i).len().max(1) as Time + sep;
    }
    let dummy_start = cursor;

    let element_sets = cover.element_to_sets();
    let mut jobs: Vec<MultiJob> = (0..n)
        .map(|e| {
            let mut times = Vec::new();
            for &s in &element_sets[e as usize] {
                let start = interval_start[s];
                times.extend(start..start + cover.set(s).len() as Time);
            }
            MultiJob::new(times)
        })
        .collect();
    jobs.push(MultiJob::new(vec![dummy_start]));

    PowerGadget {
        multi: MultiInstance::new(jobs).expect("every element is coverable"),
        alpha,
        interval_start,
        dummy_start,
        n,
    }
}

impl PowerGadget {
    /// Map a cover to a schedule: each element runs in the first chosen set
    /// containing it, packed consecutively inside each chosen interval.
    ///
    /// The resulting power is `(n + 1) + (u + 1)·α` where `u ≤ |cover|` is
    /// the number of chosen sets actually used.
    pub fn cover_to_schedule(&self, cover: &SetCoverInstance, chosen: &[usize]) -> MultiSchedule {
        cover.verify_cover(chosen).expect("not a cover");
        // Assign each element to the first chosen set containing it.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); cover.set_count()];
        for e in 0..self.n {
            let set = chosen
                .iter()
                .copied()
                .find(|&s| cover.set(s).binary_search(&e).is_ok())
                .expect("chosen is a cover");
            members[set].push(e);
        }
        let mut times = vec![0; self.n as usize + 1];
        for (s, elems) in members.iter().enumerate() {
            for (rank, &e) in elems.iter().enumerate() {
                times[e as usize] = self.interval_start[s] + rank as Time;
            }
        }
        times[self.n as usize] = self.dummy_start;
        let sched = MultiSchedule::new(times);
        debug_assert_eq!(sched.verify(&self.multi), Ok(()));
        sched
    }

    /// Map a schedule back to a cover: every set whose interval executes at
    /// least one element job.
    pub fn schedule_to_cover(&self, cover: &SetCoverInstance, sched: &MultiSchedule) -> Vec<usize> {
        let mut used: Vec<usize> = Vec::new();
        for (job, &t) in sched.times().iter().enumerate() {
            if job == self.n as usize {
                continue; // dummy
            }
            let set = (0..cover.set_count())
                .find(|&s| {
                    let start = self.interval_start[s];
                    start <= t && t < start + cover.set(s).len() as Time
                })
                .expect("every element slot lies in some set interval");
            if !used.contains(&set) {
                used.push(set);
            }
        }
        used.sort_unstable();
        used
    }

    /// The power of a size-`k` cover under this gadget:
    /// `(n + 1) + (k + 1)·α`.
    pub fn power_of_cover_size(&self, k: u64) -> u64 {
        (self.n as u64 + 1) + (k + 1) * self.alpha
    }

    /// Invert [`PowerGadget::power_of_cover_size`]: the cover size implied
    /// by an optimal power value. Panics if the power is not of the
    /// expected form (which would falsify the reduction).
    pub fn cover_size_of_power(&self, power: u64) -> u64 {
        let base = self.n as u64 + 1;
        assert!(
            power >= base + self.alpha,
            "power {power} below any schedule's cost"
        );
        let extra = power - base;
        assert_eq!(
            extra % self.alpha,
            0,
            "power {power} is not (n+1) + (k+1)·α for α = {}",
            self.alpha
        );
        extra / self.alpha - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::brute_force::min_power_multi;
    use gaps_core::power::power_cost_single;
    use gaps_setcover::exact_min_cover;

    fn example() -> SetCoverInstance {
        // Universe {0..4}; OPT cover = 2 ({0,1,2} + {2,3,4}).
        SetCoverInstance::new(5, vec![vec![0, 1, 2], vec![2, 3, 4], vec![0, 3], vec![4]]).unwrap()
    }

    #[test]
    fn cover_maps_to_expected_power() {
        let cover = example();
        let g = build_theorem4(&cover);
        let chosen = vec![0, 1];
        let sched = g.cover_to_schedule(&cover, &chosen);
        sched.verify(&g.multi).unwrap();
        assert_eq!(power_cost_single(&sched, g.alpha), g.power_of_cover_size(2));
    }

    #[test]
    fn optimal_power_equals_optimal_cover() {
        let cover = example();
        let g = build_theorem4(&cover);
        let k_opt = exact_min_cover(&cover).unwrap().len() as u64;
        let (p_opt, sched) = min_power_multi(&g.multi, g.alpha).unwrap();
        assert_eq!(
            p_opt,
            g.power_of_cover_size(k_opt),
            "Theorem 4 correspondence"
        );
        assert_eq!(g.cover_size_of_power(p_opt), k_opt);
        // And the witness maps back to a cover of that size.
        let mapped = g.schedule_to_cover(&cover, &sched);
        cover.verify_cover(&mapped).unwrap();
        assert_eq!(mapped.len() as u64, k_opt);
    }

    #[test]
    fn theorem5_uses_alpha_b() {
        let cover = example();
        let g = build_theorem5(&cover);
        assert_eq!(g.alpha, 3); // B = max set size
        let k_opt = exact_min_cover(&cover).unwrap().len() as u64;
        let (p_opt, _) = min_power_multi(&g.multi, g.alpha).unwrap();
        assert_eq!(
            p_opt,
            g.power_of_cover_size(k_opt),
            "Theorem 5 correspondence"
        );
    }

    #[test]
    fn schedule_to_cover_is_always_a_cover() {
        let cover = example();
        let g = build_theorem4(&cover);
        // Any feasible schedule (not only optimal) maps to a valid cover.
        let sched = gaps_core::feasibility::feasible_schedule(&g.multi).unwrap();
        let mapped = g.schedule_to_cover(&cover, &sched);
        cover.verify_cover(&mapped).unwrap();
    }

    #[test]
    fn singleton_universe() {
        let cover = SetCoverInstance::new(1, vec![vec![0]]).unwrap();
        let g = build_theorem4(&cover);
        let (p_opt, _) = min_power_multi(&g.multi, g.alpha).unwrap();
        assert_eq!(p_opt, g.power_of_cover_size(1));
    }

    #[test]
    #[should_panic(expected = "infeasible set-cover instance")]
    fn rejects_uncoverable_element() {
        let cover = SetCoverInstance::new(2, vec![vec![0]]).unwrap();
        build_theorem4(&cover);
    }

    #[test]
    fn separation_exceeds_alpha() {
        let cover = example();
        let g = build_theorem4(&cover);
        // Consecutive interval starts are more than α apart, so bridging
        // between intervals is never optimal.
        for w in g.interval_start.windows(2) {
            assert!((w[1] - w[0]) as u64 > g.alpha);
        }
        assert!((g.dummy_start - g.interval_start.last().unwrap()) as u64 > g.alpha);
    }
}

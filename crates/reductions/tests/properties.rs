//! Property-based verification of the hardness gadgets: the paper's exact
//! correspondences must hold on *random* instances, with both sides solved
//! exhaustively.

use gaps_core::brute_force::{min_gaps_multi, min_power_multi, min_spans_multi};
use gaps_core::instance::MultiInstance;
use gaps_reductions::{
    bsetcover_disjoint, setcover_gap, setcover_power, three_unit, two_interval, two_unit_disjoint,
};
use gaps_setcover::{exact_min_cover, SetCoverInstance};
use proptest::prelude::*;

/// Random feasible set-cover instance (patched with singletons).
fn arb_cover(universe: u32, sets: usize, b: usize) -> impl Strategy<Value = SetCoverInstance> {
    proptest::collection::vec(proptest::collection::vec(0..universe, 1..=b), 1..=sets).prop_map(
        move |mut collection| {
            let mut covered = vec![false; universe as usize];
            for s in &collection {
                for &e in s {
                    covered[e as usize] = true;
                }
            }
            for (e, c) in covered.iter().enumerate() {
                if !c {
                    collection.push(vec![e as u32]);
                }
            }
            SetCoverInstance::new(universe, collection).unwrap()
        },
    )
}

/// Random multi-interval instance with unit slots.
fn arb_unit_multi(n: usize, t_max: i64, k: usize) -> impl Strategy<Value = MultiInstance> {
    proptest::collection::vec(proptest::collection::vec(0..=t_max, 1..=k), 1..=n)
        .prop_map(|jobs| MultiInstance::from_times(jobs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4: minimum power of the gadget is (n+1) + (k+1)·α exactly,
    /// and the witness maps back to a minimum cover.
    #[test]
    fn theorem4_correspondence(cover in arb_cover(5, 3, 3)) {
        let k = exact_min_cover(&cover).unwrap().len() as u64;
        let g = setcover_power::build_theorem4(&cover);
        let (power, sched) = min_power_multi(&g.multi, g.alpha).unwrap();
        prop_assert_eq!(power, g.power_of_cover_size(k));
        let mapped = g.schedule_to_cover(&cover, &sched);
        cover.verify_cover(&mapped).unwrap();
        prop_assert_eq!(mapped.len() as u64, k);
    }

    /// Theorem 6: minimum spans of the gap gadget is k + 1 exactly.
    #[test]
    fn theorem6_correspondence(cover in arb_cover(5, 3, 3)) {
        let k = exact_min_cover(&cover).unwrap().len() as u64;
        let g = setcover_gap::build_theorem6(&cover);
        let (spans, _) = min_spans_multi(&g.multi).unwrap();
        prop_assert_eq!(spans, setcover_gap::spans_of_cover_size(k));
    }

    /// Theorem 10: minimum spans of the disjoint-unit gadget equals the
    /// minimum B-set cover exactly.
    #[test]
    fn theorem10_correspondence(cover in arb_cover(4, 3, 3)) {
        let k = exact_min_cover(&cover).unwrap().len() as u64;
        let g = bsetcover_disjoint::build(&cover);
        let (spans, sched) = min_spans_multi(&g.multi).unwrap();
        prop_assert_eq!(spans, k);
        let mapped = g.schedule_to_cover(&sched);
        cover.verify_cover(&mapped).unwrap();
    }

    /// Theorem 7: the 2-interval gadget shifts a feasible instance's
    /// optimum by exactly the presence of a block, and projecting any
    /// gadget optimum yields a valid original schedule.
    #[test]
    fn theorem7_shift_and_project(inst in arb_unit_multi(4, 12, 4)) {
        if let Some((opt, wit)) = min_gaps_multi(&inst) {
            let g = two_interval::build(&inst);
            let (opt_g, wit_g) = min_gaps_multi(&g.multi).unwrap();
            prop_assert_eq!(opt_g, g.expected_gaps(opt));
            let lifted = g.lift(&inst, &wit);
            lifted.verify(&g.multi).unwrap();
            let projected = g.project(&inst, &wit_g);
            projected.verify(&inst).unwrap();
            prop_assert!(projected.gap_count() >= opt);
        }
    }

    /// Theorem 8: the 3-unit gadget likewise.
    #[test]
    fn theorem8_shift_and_fillability(inst in arb_unit_multi(3, 12, 5)) {
        if let Some((opt, _)) = min_gaps_multi(&inst) {
            let g = three_unit::build(&inst);
            let (opt_g, wit_g) = min_gaps_multi(&g.multi).unwrap();
            prop_assert_eq!(opt_g, g.expected_gaps(opt));
            for j in 0..inst.job_count() {
                if g.blocks[j].is_some() {
                    prop_assert!(three_unit::verify_fillability(&g, j));
                }
            }
            let projected = g.project(&inst, &wit_g);
            projected.verify(&inst).unwrap();
        }
    }

    /// Theorem 9 forward: the 2-unit → disjoint-unit complement keeps the
    /// span optima within 1.
    #[test]
    fn theorem9_forward_within_one(inst in arb_unit_multi(5, 8, 2)) {
        match two_unit_disjoint::two_unit_to_disjoint(&inst) {
            Ok(g) => {
                let old = min_spans_multi(&inst).unwrap().0;
                let new = if g.multi.job_count() == 0 {
                    0
                } else {
                    min_spans_multi(&g.multi).unwrap().0
                };
                prop_assert!(old.abs_diff(new) <= 1, "old {old} vs new {new}");
            }
            Err(two_unit_disjoint::ReductionError::Infeasible) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}

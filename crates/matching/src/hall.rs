//! Hall's-condition certificates of infeasibility.
//!
//! When a scheduling instance is infeasible, downstream code wants to report
//! *why*. By Hall's theorem, a perfect-on-the-left matching fails to exist
//! exactly when some set `S` of left vertices (jobs) has a joint
//! neighborhood (available time slots) smaller than `|S|`. This module
//! extracts such a set from a maximum matching.

use crate::{hopcroft_karp, BipartiteGraph, Matching};

/// A witness that no left-perfect matching exists: a set of jobs demanding
/// more slots than exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HallViolator {
    /// Left vertices (jobs) in the deficient set `S`, sorted.
    pub lefts: Vec<u32>,
    /// Their joint neighborhood `N(S)`, sorted; `|N(S)| < |S|` holds.
    pub rights: Vec<u32>,
}

impl HallViolator {
    /// Deficiency `|S| − |N(S)| ≥ 1`: at least this many of the jobs in `S`
    /// can never be scheduled simultaneously with the rest.
    pub fn deficiency(&self) -> usize {
        self.lefts.len() - self.rights.len()
    }

    /// Check the witness against a graph (used by tests).
    pub fn validate(&self, graph: &BipartiteGraph) -> Result<(), String> {
        if self.lefts.is_empty() {
            return Err("violator has no left vertices".into());
        }
        if self.rights.len() >= self.lefts.len() {
            return Err(format!(
                "not deficient: |S| = {}, |N(S)| = {}",
                self.lefts.len(),
                self.rights.len()
            ));
        }
        let hood = graph.neighborhood_of_set(&self.lefts);
        if hood != self.rights {
            return Err("rights is not exactly N(S)".into());
        }
        Ok(())
    }
}

/// Find a Hall violator, or `None` if a left-perfect matching exists.
///
/// Computes a maximum matching, then — if some left vertex is unmatched —
/// returns the set of left vertices reachable from it by alternating paths.
/// For that set, `|N(S)| = |S| − 1` ... all of `N(S)` is matched into `S`.
///
/// ```
/// use gaps_matching::{BipartiteGraph, hall_violator};
/// // Three unit jobs squeezed into two slots.
/// let g = BipartiteGraph::from_edges(3, 2,
///     vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
/// let w = hall_violator(&g).expect("infeasible");
/// assert_eq!(w.lefts.len(), 3);
/// assert_eq!(w.rights.len(), 2);
/// assert_eq!(w.deficiency(), 1);
/// ```
pub fn hall_violator(graph: &BipartiteGraph) -> Option<HallViolator> {
    let matching = hopcroft_karp(graph);
    hall_violator_from(graph, &matching)
}

/// As [`hall_violator`], but reuse an already-computed **maximum** matching.
///
/// The result is unspecified (may miss a violator) if `matching` is not
/// maximum.
pub fn hall_violator_from(graph: &BipartiteGraph, matching: &Matching) -> Option<HallViolator> {
    let root = *matching.unmatched_left().first()?;

    // Alternating BFS from the unmatched root: left -> (any edge) -> right
    // -> (matched edge) -> left. Every right vertex reached is matched
    // (otherwise the matching was not maximum).
    let mut left_seen = vec![false; graph.left_count()];
    let mut right_seen = vec![false; graph.right_count()];
    let mut queue = vec![root];
    left_seen[root as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in graph.neighbors(u) {
            if right_seen[v as usize] {
                continue;
            }
            right_seen[v as usize] = true;
            match matching.partner_of_right(v) {
                Some(w) => {
                    if !left_seen[w as usize] {
                        left_seen[w as usize] = true;
                        queue.push(w);
                    }
                }
                None => {
                    debug_assert!(false, "augmenting path exists: matching was not maximum");
                }
            }
        }
    }

    let lefts: Vec<u32> = (0..graph.left_count() as u32)
        .filter(|&u| left_seen[u as usize])
        .collect();
    let rights: Vec<u32> = (0..graph.right_count() as u32)
        .filter(|&v| right_seen[v as usize])
        .collect();
    debug_assert_eq!(rights.len() + 1, lefts.len());
    Some(HallViolator { lefts, rights })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_graph_has_no_violator() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]);
        assert_eq!(hall_violator(&g), None);
    }

    #[test]
    fn isolated_left_vertex_is_a_violator() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0)]);
        let w = hall_violator(&g).unwrap();
        assert_eq!(w.lefts, vec![1]);
        assert_eq!(w.rights, Vec::<u32>::new());
        assert_eq!(w.deficiency(), 1);
        w.validate(&g).unwrap();
    }

    #[test]
    fn violator_is_minimal_reachable_set() {
        // Jobs 0,1 share slot 0; job 2 has its own slot 1. The violator
        // should not include job 2.
        let g = BipartiteGraph::from_edges(3, 2, vec![(0, 0), (1, 0), (2, 1)]);
        let w = hall_violator(&g).unwrap();
        assert_eq!(w.lefts, vec![0, 1]);
        assert_eq!(w.rights, vec![0]);
        w.validate(&g).unwrap();
    }

    #[test]
    fn deficiency_greater_than_one() {
        // Four jobs, all into one slot.
        let g = BipartiteGraph::from_edges(4, 1, (0..4).map(|u| (u, 0)).collect::<Vec<_>>());
        let w = hall_violator(&g).unwrap();
        // BFS from the first unmatched job reaches all jobs adjacent to
        // slot 0 (matched into the set), so S = {0,1,2,3}? No: alternating
        // reachability from one unmatched root reaches slot 0 and its
        // matched partner only, giving S of size 2 with N(S) of size 1.
        w.validate(&g).unwrap();
        assert!(w.deficiency() >= 1);
    }

    #[test]
    fn validate_rejects_non_deficient_witness() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]);
        let w = HallViolator {
            lefts: vec![0, 1],
            rights: vec![0, 1],
        };
        assert!(w.validate(&g).is_err());
    }
}

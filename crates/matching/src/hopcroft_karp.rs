//! Hopcroft–Karp maximum bipartite matching, O(E·√V).

use crate::{BipartiteGraph, Matching};

const INF: u32 = u32::MAX;

/// Compute a maximum matching of `graph` with the Hopcroft–Karp algorithm.
///
/// Runs in O(E·√V). This is the workhorse used for one-shot feasibility
/// checks; for repeated augmentation after small changes use
/// [`crate::IncrementalMatching`], whose `maximize` runs these same
/// phases against its disabled-slot mask.
///
/// ```
/// use gaps_matching::{BipartiteGraph, hopcroft_karp};
/// // Two jobs, both only executable in slot 0: only one can be scheduled.
/// let g = BipartiteGraph::from_edges(2, 1, vec![(0, 0), (1, 0)]);
/// assert_eq!(hopcroft_karp(&g).size(), 1);
/// ```
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count();
    let mut matching = Matching::empty(n, graph.right_count());

    // Greedy initialization: match every left vertex to its first free
    // neighbor. This typically covers most of the matching and saves phases.
    for u in 0..n as u32 {
        for &v in graph.neighbors(u) {
            if matching.partner_of_right(v).is_none() {
                matching.link(u, v);
                break;
            }
        }
    }

    let mut state = PhaseState {
        dist: vec![INF; n],
        cursor: vec![0; n],
        held: vec![false; graph.right_count()],
    };
    let mut queue = Vec::with_capacity(n);

    loop {
        // BFS phase: layer free left vertices at distance 0 and compute the
        // shortest alternating-path distance to every left vertex.
        queue.clear();
        for u in 0..n {
            if matching.pair_left[u].is_none() {
                state.dist[u] = 0;
                queue.push(u as u32);
            } else {
                state.dist[u] = INF;
            }
        }
        let mut found_free_right = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in graph.neighbors(u) {
                match matching.partner_of_right(v) {
                    None => found_free_right = true,
                    Some(w) => {
                        if state.dist[w as usize] == INF {
                            state.dist[w as usize] = state.dist[u as usize] + 1;
                            queue.push(w);
                        }
                    }
                }
            }
        }
        if !found_free_right {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths and flip them.
        state.cursor.iter_mut().for_each(|c| *c = 0);
        let mut augmented = false;
        for u in 0..n as u32 {
            if matching.pair_left[u as usize].is_none() && dfs(graph, &mut matching, &mut state, u)
            {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }

    debug_assert!(matching.validate(graph).is_ok());
    matching
}

struct PhaseState {
    /// Alternating-path BFS layer of each left vertex.
    dist: Vec<u32>,
    /// Per-phase persistent adjacency cursor of each left vertex.
    cursor: Vec<usize>,
    /// Right vertices tentatively unlinked by a frame currently on the DFS
    /// stack. Deeper frames must not reclaim them; the flag is always
    /// cleared on unwind, so no cross-path blocking occurs.
    held: Vec<bool>,
}

/// Try to extend one shortest augmenting path from left vertex `u`.
/// On success the path is flipped into `matching` and `true` is returned.
fn dfs(graph: &BipartiteGraph, matching: &mut Matching, state: &mut PhaseState, u: u32) -> bool {
    let neighbors = graph.neighbors(u);
    while state.cursor[u as usize] < neighbors.len() {
        let v = neighbors[state.cursor[u as usize]];
        state.cursor[u as usize] += 1;
        if state.held[v as usize] {
            continue;
        }
        match matching.partner_of_right(v) {
            None => {
                matching.link(u, v);
                return true;
            }
            Some(w) => {
                if state.dist[w as usize] == state.dist[u as usize] + 1 {
                    // Tentatively free v, then try to re-home its partner w
                    // one BFS layer deeper. v is held while the probe runs,
                    // so no deeper frame can reclaim it.
                    matching.unlink_right(v);
                    state.held[v as usize] = true;
                    let rehomed = dfs(graph, matching, state, w);
                    state.held[v as usize] = false;
                    if rehomed {
                        matching.link(u, v);
                        return true;
                    }
                    matching.link(w, v);
                }
            }
        }
    }
    // Dead end: exclude `u` from further DFS in this phase.
    state.dist[u as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, m: usize) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..m as u32 {
                edges.push((u, v));
            }
        }
        BipartiteGraph::from_edges(n, m, edges)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn no_edges() {
        let g = BipartiteGraph::new(4, 4);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn complete_graph_matches_min_side() {
        assert_eq!(hopcroft_karp(&complete(3, 5)).size(), 3);
        assert_eq!(hopcroft_karp(&complete(5, 3)).size(), 3);
        assert_eq!(hopcroft_karp(&complete(4, 4)).size(), 4);
    }

    #[test]
    fn path_graph_needs_augmentation() {
        // Left {0,1}, right {0,1}; edges 0-0, 1-0, 1-1. Greedy could match
        // 0-0 then 1-1 directly, but the order 1-0 first forces augmenting.
        let g = BipartiteGraph::from_edges(2, 2, vec![(1, 0), (0, 0), (1, 1)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 2);
        m.validate(&g).unwrap();
    }

    #[test]
    fn long_alternating_chain() {
        // Chain forcing a length-2k+1 augmenting path:
        // left i connects to right i and right i+1 except the last.
        let n = 16;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, i));
            if i + 1 < n as u32 {
                edges.push((i, i + 1));
            }
        }
        let g = BipartiteGraph::from_edges(n, n, edges);
        assert_eq!(hopcroft_karp(&g).size(), n);
    }

    #[test]
    fn deficient_side_is_detected() {
        // Three jobs all confined to two slots: max matching is 2.
        let g =
            BipartiteGraph::from_edges(3, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 2);
        assert_eq!(m.unmatched_left().len(), 1);
    }

    #[test]
    fn agrees_with_kuhn_on_fixed_cases() {
        let cases = vec![
            BipartiteGraph::from_edges(4, 4, vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]),
            BipartiteGraph::from_edges(5, 3, vec![(0, 0), (1, 1), (2, 2), (3, 0), (4, 1)]),
            complete(6, 6),
        ];
        for g in cases {
            assert_eq!(hopcroft_karp(&g).size(), crate::kuhn(&g).size());
        }
    }

    #[test]
    fn anti_greedy_two_phase_instance() {
        // Designed so the greedy init leaves several augmenting paths of
        // different lengths, exercising multiple BFS/DFS phases.
        let g = BipartiteGraph::from_edges(
            6,
            6,
            vec![
                (0, 0),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
                (4, 3),
                (4, 4),
                (5, 4),
                (5, 5),
                (0, 5),
            ],
        );
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 6);
        m.validate(&g).unwrap();
    }
}

//! Dinic's maximum flow on the unit-capacity bipartite network, plus
//! König's theorem: a minimum vertex cover from a maximum matching.
//!
//! These serve two purposes:
//!
//! * an **independent oracle**: Dinic's algorithm shares no code with
//!   Hopcroft–Karp or Kuhn, so agreement across all three is strong
//!   evidence each is right (property-tested);
//! * **certificates**: by König's theorem the minimum vertex cover has the
//!   same size as the maximum matching; the cover is the succinct witness
//!   that no larger matching exists (the dual of the Hall violator).

use crate::{BipartiteGraph, Matching};

/// Maximum matching via Dinic's max-flow on the unit network
/// source → left (cap 1) → right (cap 1 per edge) → sink (cap 1).
///
/// O(E·√V) on unit networks, like Hopcroft–Karp, but structured as a
/// general flow algorithm.
pub fn dinic_matching(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count();
    let m = graph.right_count();
    // Node ids: 0 = source, 1..=n lefts, n+1..=n+m rights, n+m+1 sink.
    let source = 0usize;
    let sink = n + m + 1;
    let mut net = FlowNetwork::new(n + m + 2);
    for u in 0..n {
        net.add_edge(source, 1 + u, 1);
    }
    for u in 0..n as u32 {
        for &v in graph.neighbors(u) {
            net.add_edge(1 + u as usize, 1 + n + v as usize, 1);
        }
    }
    for v in 0..m {
        net.add_edge(1 + n + v, sink, 1);
    }
    net.max_flow(source, sink);

    // Saturated left→right edges are the matching.
    let mut matching = Matching::empty(n, m);
    for u in 0..n {
        for &eid in &net.adj[1 + u] {
            let e = &net.edges[eid];
            if e.to > n && e.to <= n + m && e.cap == 0 {
                matching.link(u as u32, (e.to - 1 - n) as u32);
                break;
            }
        }
    }
    debug_assert!(matching.validate(graph).is_ok());
    matching
}

/// A minimum vertex cover `(left vertices, right vertices)` via König's
/// theorem: compute a maximum matching, run alternating BFS from the
/// unmatched left vertices; the cover is (unreached lefts) ∪ (reached
/// rights). `|cover| = |maximum matching|` always.
pub fn koenig_vertex_cover(graph: &BipartiteGraph) -> (Vec<u32>, Vec<u32>) {
    let matching = crate::hopcroft_karp(graph);
    let n = graph.left_count();
    let m = graph.right_count();
    let mut left_seen = vec![false; n];
    let mut right_seen = vec![false; m];
    let mut queue: Vec<u32> = matching.unmatched_left();
    for &u in &queue {
        left_seen[u as usize] = true;
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in graph.neighbors(u) {
            if right_seen[v as usize] {
                continue;
            }
            // Traverse non-matching edges left→right, matching edges back.
            if matching.partner_of_left(u) == Some(v) {
                continue;
            }
            right_seen[v as usize] = true;
            if let Some(w) = matching.partner_of_right(v) {
                if !left_seen[w as usize] {
                    left_seen[w as usize] = true;
                    queue.push(w);
                }
            }
        }
    }
    let lefts: Vec<u32> = (0..n as u32).filter(|&u| !left_seen[u as usize]).collect();
    let rights: Vec<u32> = (0..m as u32).filter(|&v| right_seen[v as usize]).collect();
    debug_assert_eq!(lefts.len() + rights.len(), matching.size());
    (lefts, rights)
}

/// Check that `(lefts, rights)` covers every edge of `graph`.
pub fn is_vertex_cover(graph: &BipartiteGraph, lefts: &[u32], rights: &[u32]) -> bool {
    (0..graph.left_count() as u32)
        .all(|u| lefts.contains(&u) || graph.neighbors(u).iter().all(|v| rights.contains(v)))
}

struct FlowEdge {
    to: usize,
    cap: u32,
    rev: usize,
}

struct FlowNetwork {
    adj: Vec<Vec<usize>>,
    edges: Vec<FlowEdge>,
}

impl FlowNetwork {
    fn new(nodes: usize) -> FlowNetwork {
        FlowNetwork {
            adj: vec![Vec::new(); nodes],
            edges: Vec::new(),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: u32) {
        let fwd = self.edges.len();
        self.edges.push(FlowEdge {
            to,
            cap,
            rev: fwd + 1,
        });
        self.adj[from].push(fwd);
        let back = self.edges.len();
        self.edges.push(FlowEdge {
            to: from,
            cap: 0,
            rev: fwd,
        });
        self.adj[to].push(back);
    }

    fn max_flow(&mut self, source: usize, sink: usize) -> u64 {
        let mut flow = 0u64;
        loop {
            // BFS level graph.
            let mut level = vec![u32::MAX; self.adj.len()];
            level[source] = 0;
            let mut queue = vec![source];
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if e.cap > 0 && level[e.to] == u32::MAX {
                        level[e.to] = level[u] + 1;
                        queue.push(e.to);
                    }
                }
            }
            if level[sink] == u32::MAX {
                return flow;
            }
            // Blocking flow with iteration pointers.
            let mut it = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs(source, sink, u32::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed as u64;
            }
        }
    }

    fn dfs(&mut self, u: usize, sink: usize, limit: u32, level: &[u32], it: &mut [usize]) -> u32 {
        if u == sink {
            return limit;
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let (to, cap) = (self.edges[eid].to, self.edges[eid].cap);
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap), level, it);
                if pushed > 0 {
                    self.edges[eid].cap -= pushed;
                    let rev = self.edges[eid].rev;
                    self.edges[rev].cap += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    #[test]
    fn dinic_agrees_with_hk_on_fixed_graphs() {
        let cases = vec![
            BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 2)]),
            BipartiteGraph::from_edges(4, 2, vec![(0, 0), (1, 0), (2, 1), (3, 1)]),
            BipartiteGraph::new(3, 3),
            BipartiteGraph::from_edges(1, 1, vec![(0, 0)]),
        ];
        for g in cases {
            assert_eq!(dinic_matching(&g).size(), hopcroft_karp(&g).size());
        }
    }

    #[test]
    fn dinic_matching_is_valid() {
        let g = BipartiteGraph::from_edges(
            5,
            5,
            vec![(0, 0), (0, 1), (1, 0), (2, 3), (3, 3), (3, 4), (4, 4)],
        );
        let m = dinic_matching(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.size(), hopcroft_karp(&g).size());
    }

    #[test]
    fn koenig_cover_size_equals_matching() {
        let g =
            BipartiteGraph::from_edges(4, 4, vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]);
        let (lefts, rights) = koenig_vertex_cover(&g);
        assert_eq!(lefts.len() + rights.len(), hopcroft_karp(&g).size());
        assert!(is_vertex_cover(&g, &lefts, &rights));
    }

    #[test]
    fn koenig_on_star() {
        // 5 lefts all pointing at one right: cover = that right.
        let g = BipartiteGraph::from_edges(5, 1, (0..5).map(|u| (u, 0)).collect::<Vec<_>>());
        let (lefts, rights) = koenig_vertex_cover(&g);
        assert_eq!((lefts.len(), rights.len()), (0, 1));
        assert!(is_vertex_cover(&g, &lefts, &rights));
    }

    #[test]
    fn koenig_on_perfect_matching() {
        let g = BipartiteGraph::from_edges(3, 3, vec![(0, 0), (1, 1), (2, 2)]);
        let (lefts, rights) = koenig_vertex_cover(&g);
        assert_eq!(lefts.len() + rights.len(), 3);
        assert!(is_vertex_cover(&g, &lefts, &rights));
    }

    #[test]
    fn empty_graph_cover_is_empty() {
        let g = BipartiteGraph::new(4, 4);
        let (lefts, rights) = koenig_vertex_cover(&g);
        assert!(lefts.is_empty() && rights.is_empty());
    }
}

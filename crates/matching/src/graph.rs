//! Compact bipartite graph representation.

/// A bipartite graph with `left_count` left vertices and `right_count` right
/// vertices, stored as per-left-vertex adjacency lists.
///
/// In the scheduling use case, left vertices are jobs and right vertices are
/// time slots; an edge `(j, t)` means "job `j` may execute in slot `t`".
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraph {
    left_count: usize,
    right_count: usize,
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl BipartiteGraph {
    /// An edgeless graph with the given part sizes.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph {
            left_count,
            right_count,
            adj: vec![Vec::new(); left_count],
            edge_count: 0,
        }
    }

    /// Build a graph from an edge list. Duplicate edges are collapsed.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(
        left_count: usize,
        right_count: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut g = BipartiteGraph::new(left_count, right_count);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g.dedup();
        g
    }

    /// Add the edge `(u, v)`. Duplicates are tolerated (collapse them with
    /// [`BipartiteGraph::dedup`] or build via [`BipartiteGraph::from_edges`]).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.left_count,
            "left vertex {u} out of range (left_count = {})",
            self.left_count
        );
        assert!(
            (v as usize) < self.right_count,
            "right vertex {v} out of range (right_count = {})",
            self.right_count
        );
        self.adj[u as usize].push(v);
        self.edge_count += 1;
    }

    /// Sort every adjacency list and drop duplicate edges.
    pub fn dedup(&mut self) {
        self.edge_count = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            self.edge_count += list.len();
        }
    }

    /// Number of left vertices.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right vertices.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Number of stored edges (after any `dedup`, distinct edges).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbors (right vertices) of left vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of left vertex `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// The union of neighborhoods of the given left vertices, sorted and
    /// deduplicated. This is `N(S)` in Hall's condition.
    pub fn neighborhood_of_set(&self, lefts: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = lefts
            .iter()
            .flat_map(|&u| self.neighbors(u).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups() {
        let g = BipartiteGraph::from_edges(2, 3, vec![(0, 1), (0, 1), (1, 2), (0, 0)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "left vertex 5 out of range")]
    fn add_edge_rejects_bad_left() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(5, 0);
    }

    #[test]
    #[should_panic(expected = "right vertex 9 out of range")]
    fn add_edge_rejects_bad_right() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 9);
    }

    #[test]
    fn neighborhood_of_set_unions() {
        let g = BipartiteGraph::from_edges(3, 5, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]);
        assert_eq!(g.neighborhood_of_set(&[0, 1]), vec![1, 2, 3]);
        assert_eq!(g.neighborhood_of_set(&[]), Vec::<u32>::new());
        assert_eq!(g.neighborhood_of_set(&[2]), vec![4]);
    }

    #[test]
    fn empty_graph_counts() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(g.left_count(), 0);
        assert_eq!(g.right_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}

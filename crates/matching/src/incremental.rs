//! A matching that evolves: grow it one left vertex at a time, or take right
//! vertices (time slots) out of service with automatic rematch-or-rollback.
//!
//! This is the engine behind three pieces of the paper:
//!
//! * **Lemma 3**: given a feasible partial schedule, each unscheduled job is
//!   added by one augmenting path, increasing the number of gaps by at most
//!   one — [`IncrementalMatching::augment`].
//! * **Greedy 3-approximation** [FHKN06]: "would declaring this time window a
//!   gap keep the instance feasible?" — [`IncrementalMatching::try_disable_many`].
//! * **Theorem 11 greedy**: repeated feasibility probes over candidate
//!   working intervals against the pool of unscheduled jobs.

use crate::{BipartiteGraph, Matching};

/// A mutable matching over a fixed bipartite graph, with support for
/// disabling right vertices.
///
/// Disabled right vertices are invisible to augmentation; disabling a
/// *matched* right vertex triggers a rematch attempt for its left partner
/// and fails (with full rollback) if no alternative exists.
#[derive(Clone, Debug)]
pub struct IncrementalMatching<'g> {
    graph: &'g BipartiteGraph,
    matching: Matching,
    disabled: Vec<bool>,
    visited: Vec<u32>,
    epoch: u32,
}

impl<'g> IncrementalMatching<'g> {
    /// Start from the empty matching with every right vertex enabled.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        IncrementalMatching {
            graph,
            matching: Matching::empty(graph.left_count(), graph.right_count()),
            disabled: vec![false; graph.right_count()],
            visited: vec![0; graph.right_count()],
            epoch: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// Read access to the current matching.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// Consume, returning the current matching.
    pub fn into_matching(self) -> Matching {
        self.matching
    }

    /// Current matching size.
    pub fn size(&self) -> usize {
        self.matching.size()
    }

    /// Is right vertex `v` currently disabled?
    pub fn is_disabled(&self, v: u32) -> bool {
        self.disabled[v as usize]
    }

    /// Try to match the unmatched left vertex `u` via an augmenting path that
    /// avoids disabled right vertices. Returns `true` on success.
    ///
    /// # Panics
    /// Panics if `u` is already matched (callers always know).
    pub fn augment(&mut self, u: u32) -> bool {
        assert!(
            self.matching.partner_of_left(u).is_none(),
            "augment called on already-matched left vertex {u}"
        );
        self.bump_epoch();
        self.dfs(u)
    }

    /// Augment from every unmatched left vertex once; returns the resulting
    /// matching size. After this call the matching is maximum with respect
    /// to the enabled right vertices.
    pub fn maximize(&mut self) -> usize {
        for u in 0..self.graph.left_count() as u32 {
            if self.matching.partner_of_left(u).is_none() {
                self.bump_epoch();
                self.dfs(u);
            }
        }
        self.matching.size()
    }

    /// Disable right vertex `v`. If `v` was matched, its left partner is
    /// rematched through an augmenting path; if that is impossible the call
    /// returns `false` and the state is unchanged.
    pub fn try_disable(&mut self, v: u32) -> bool {
        if self.disabled[v as usize] {
            return true;
        }
        self.disabled[v as usize] = true;
        let Some(u) = self.matching.unlink_right(v) else {
            return true;
        };
        self.bump_epoch();
        if self.dfs(u) {
            true
        } else {
            // Roll back: v was matched to u and nothing else changed
            // (a failed DFS flips no edges).
            self.disabled[v as usize] = false;
            self.matching.link(u, v);
            false
        }
    }

    /// Disable a batch of right vertices, all or nothing.
    ///
    /// On failure every vertex in the batch is re-enabled and every rematch
    /// performed for earlier batch members is undone; the matching is
    /// restored exactly.
    pub fn try_disable_many(&mut self, vs: &[u32]) -> bool {
        let snapshot = self.matching.clone();
        let mut done = Vec::with_capacity(vs.len());
        for &v in vs {
            if self.try_disable(v) {
                if !done.contains(&v) {
                    done.push(v);
                }
            } else {
                for &w in &done {
                    self.disabled[w as usize] = false;
                }
                self.matching = snapshot;
                return false;
            }
        }
        true
    }

    /// Re-enable right vertex `v` (a no-op if it is enabled). The matching
    /// is left as is; call [`IncrementalMatching::maximize`] or
    /// [`IncrementalMatching::augment`] to exploit the freed capacity.
    pub fn enable(&mut self, v: u32) {
        self.disabled[v as usize] = false;
    }

    /// Seed the matching with the pair `(u, v)` directly, without searching.
    ///
    /// Used to start from a known partial solution (the paper's Lemma 3
    /// extends a given partial schedule by augmenting paths; the partial
    /// schedule itself is installed with this method).
    ///
    /// # Panics
    /// Panics if the edge is absent, either endpoint is already matched, or
    /// `v` is disabled.
    pub fn force_link(&mut self, u: u32, v: u32) {
        assert!(
            self.graph.neighbors(u).contains(&v),
            "force_link: edge ({u}, {v}) not in graph"
        );
        assert!(!self.disabled[v as usize], "force_link: {v} is disabled");
        assert!(
            self.matching.partner_of_left(u).is_none(),
            "force_link: left {u} already matched"
        );
        assert!(
            self.matching.partner_of_right(v).is_none(),
            "force_link: right {v} already matched"
        );
        self.matching.link(u, v);
    }

    /// Drop the matched edge of left vertex `u`, freeing its right partner.
    /// Returns the freed right vertex, if `u` was matched.
    pub fn unmatch_left(&mut self, u: u32) -> Option<u32> {
        let v = self.matching.pair_left[u as usize].take()?;
        self.matching.pair_right[v as usize] = None;
        self.matching.size -= 1;
        Some(v)
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: clear stamps and restart epochs.
            self.visited.iter_mut().for_each(|x| *x = 0);
            self.epoch = 1;
        }
    }

    fn dfs(&mut self, u: u32) -> bool {
        for i in 0..self.graph.neighbors(u).len() {
            let v = self.graph.neighbors(u)[i];
            if self.disabled[v as usize] || self.visited[v as usize] == self.epoch {
                continue;
            }
            self.visited[v as usize] = self.epoch;
            match self.matching.partner_of_right(v) {
                None => {
                    self.matching.link(u, v);
                    return true;
                }
                Some(w) => {
                    // Tentatively free v, then try to re-home its partner w.
                    // v is marked visited, so no deeper frame can grab it.
                    self.matching.unlink_right(v);
                    if self.dfs(w) {
                        self.matching.link(u, v);
                        return true;
                    }
                    self.matching.link(w, v);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    fn grid() -> BipartiteGraph {
        // 4 jobs, 4 slots, each job can use its own slot and the next one.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push((i, i));
            if i + 1 < 4 {
                edges.push((i, i + 1));
            }
        }
        BipartiteGraph::from_edges(4, 4, edges)
    }

    #[test]
    fn maximize_matches_hopcroft_karp() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert_eq!(inc.maximize(), hopcroft_karp(&g).size());
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn augment_one_at_a_time() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        for u in 0..4 {
            assert!(inc.augment(u), "job {u} should be addable");
            assert_eq!(inc.size(), u as usize + 1);
        }
    }

    #[test]
    #[should_panic(expected = "already-matched")]
    fn augment_rejects_matched_vertex() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.augment(0));
        inc.augment(0);
    }

    #[test]
    fn disable_unmatched_slot_succeeds() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.try_disable(3));
        assert!(inc.is_disabled(3));
        // Job 3 can only use slot 3 now disabled.
        assert!(!inc.augment(3));
    }

    #[test]
    fn disable_matched_slot_rematches() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        // Disabling slot 0 forces job 0 to slot 1, cascading down the chain
        // until job 3 ... which has nowhere to go: slots 0..3 shrink to 3
        // slots for 4 jobs. Must fail and roll back.
        let before = inc.matching().clone();
        assert!(!inc.try_disable(0));
        assert_eq!(inc.matching(), &before);
        assert!(!inc.is_disabled(0));
    }

    #[test]
    fn disable_with_slack_succeeds_and_rematches() {
        // 2 jobs, 3 slots; both jobs can use slots 0..=2. One slot is spare,
        // so one disable succeeds (rematching its job to the spare slot) but
        // a second disable would leave 1 slot for 2 jobs and must fail.
        let g =
            BipartiteGraph::from_edges(2, 3, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        assert!(inc.try_disable(0));
        assert_eq!(inc.size(), 2, "rematch must keep both jobs scheduled");
        assert!(!inc.try_disable(1), "only one enabled slot would remain");
        assert_eq!(inc.size(), 2);
        assert!(!inc.is_disabled(1), "failed disable must roll back");
        let matched: Vec<_> = inc.matching().pairs().collect();
        assert!(matched.iter().all(|&(_, v)| !inc.is_disabled(v)));
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn try_disable_many_rolls_back_atomically() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        let before = inc.matching().clone();
        // Slots {1, 2} cannot both disappear: jobs 1 and 2 need them
        // (job 1 -> {1,2}, job 2 -> {2,3}; with 1 and 2 gone, jobs 0..3
        // have only slots {0, 3}).
        assert!(!inc.try_disable_many(&[1, 2]));
        assert_eq!(inc.matching(), &before);
        assert!(!inc.is_disabled(1));
        assert!(!inc.is_disabled(2));
    }

    #[test]
    fn try_disable_many_with_duplicates() {
        let g = BipartiteGraph::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        assert!(inc.try_disable_many(&[0, 0, 1, 1]));
        assert_eq!(inc.size(), 1);
        assert_eq!(inc.matching().partner_of_left(0), Some(2));
    }

    #[test]
    fn enable_then_augment_recovers() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.try_disable(3));
        assert!(!inc.augment(3));
        inc.enable(3);
        assert!(inc.augment(3));
        assert_eq!(inc.matching().partner_of_left(3), Some(3));
    }

    #[test]
    fn force_link_seeds_partial_solution() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.force_link(1, 2);
        assert_eq!(inc.size(), 1);
        // Augmenting around the seeded pair still reaches a perfect matching.
        assert_eq!(inc.maximize(), 4);
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "edge (0, 3) not in graph")]
    fn force_link_rejects_missing_edge() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.force_link(0, 3);
    }

    #[test]
    fn unmatch_left_frees_slot() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        let freed = inc.unmatch_left(0).unwrap();
        assert_eq!(inc.size(), 3);
        assert_eq!(inc.matching().partner_of_right(freed), None);
        assert!(inc.augment(0));
        assert_eq!(inc.size(), 4);
    }
}

//! A matching that evolves: grow it one left vertex at a time, or take right
//! vertices (time slots) out of service with automatic rematch-or-rollback.
//!
//! This is the engine behind three pieces of the paper:
//!
//! * **Lemma 3**: given a feasible partial schedule, each unscheduled job is
//!   added by one augmenting path, increasing the number of gaps by at most
//!   one — [`IncrementalMatching::augment`].
//! * **Greedy 3-approximation** [FHKN06]: "would declaring this time window a
//!   gap keep the instance feasible?" — [`IncrementalMatching::try_disable_many`].
//! * **Theorem 11 greedy**: repeated feasibility probes over candidate
//!   working intervals against the pool of unscheduled jobs.
//!
//! Two hot paths are tuned for the probe-heavy callers:
//!
//! * [`IncrementalMatching::maximize`] runs Hopcroft–Karp phases (the same
//!   BFS-layer / layered-DFS strategy as [`crate::hopcroft_karp`], made
//!   aware of disabled right vertices) instead of one Kuhn augmenting-path
//!   scan per left vertex — O(E·√V) instead of O(V·E);
//! * [`IncrementalMatching::try_disable_many`] rolls back failed batches
//!   through an **undo journal** of the edge flips actually performed,
//!   instead of snapshotting the whole matching per probe — rollback cost
//!   is proportional to the work of the failed probe, not to `V`.

use crate::{BipartiteGraph, Matching};

const INF: u32 = u32::MAX;

/// One recorded matching mutation, for journal rollback.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `(u, v)` became matched.
    Link(u32, u32),
    /// `(u, v)` became unmatched.
    Unlink(u32, u32),
}

/// A mutable matching over a fixed bipartite graph, with support for
/// disabling right vertices.
///
/// Disabled right vertices are invisible to augmentation; disabling a
/// *matched* right vertex triggers a rematch attempt for its left partner
/// and fails (with full rollback) if no alternative exists.
#[derive(Clone, Debug)]
pub struct IncrementalMatching<'g> {
    graph: &'g BipartiteGraph,
    matching: Matching,
    disabled: Vec<bool>,
    visited: Vec<u32>,
    epoch: u32,
    /// Edge flips recorded while `journaling` (inside a disable batch).
    journal: Vec<Op>,
    journaling: bool,
}

impl<'g> IncrementalMatching<'g> {
    /// Start from the empty matching with every right vertex enabled.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        IncrementalMatching {
            graph,
            matching: Matching::empty(graph.left_count(), graph.right_count()),
            disabled: vec![false; graph.right_count()],
            visited: vec![0; graph.right_count()],
            epoch: 0,
            journal: Vec::new(),
            journaling: false,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// Read access to the current matching.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// Consume, returning the current matching.
    pub fn into_matching(self) -> Matching {
        self.matching
    }

    /// Current matching size.
    pub fn size(&self) -> usize {
        self.matching.size()
    }

    /// Is right vertex `v` currently disabled?
    pub fn is_disabled(&self, v: u32) -> bool {
        self.disabled[v as usize]
    }

    /// Record the pair `(u, v)`, journaling when inside a disable batch.
    fn link(&mut self, u: u32, v: u32) {
        self.matching.link(u, v);
        if self.journaling {
            self.journal.push(Op::Link(u, v));
        }
    }

    /// Remove the pair of right vertex `v`, journaling when inside a
    /// disable batch; returns the freed left endpoint.
    fn unlink_right(&mut self, v: u32) -> Option<u32> {
        let u = self.matching.unlink_right(v)?;
        if self.journaling {
            self.journal.push(Op::Unlink(u, v));
        }
        Some(u)
    }

    /// Undo every journaled flip past `mark`, restoring the matching to
    /// its state when the mark was taken.
    fn rollback_to(&mut self, mark: usize) {
        while self.journal.len() > mark {
            match self.journal.pop().expect("len > mark") {
                Op::Link(u, v) => {
                    debug_assert_eq!(self.matching.pair_left[u as usize], Some(v));
                    self.matching.pair_left[u as usize] = None;
                    self.matching.pair_right[v as usize] = None;
                    self.matching.size -= 1;
                }
                Op::Unlink(u, v) => {
                    debug_assert!(self.matching.pair_left[u as usize].is_none());
                    debug_assert!(self.matching.pair_right[v as usize].is_none());
                    self.matching.pair_left[u as usize] = Some(v);
                    self.matching.pair_right[v as usize] = Some(u);
                    self.matching.size += 1;
                }
            }
        }
    }

    /// Try to match the unmatched left vertex `u` via an augmenting path that
    /// avoids disabled right vertices. Returns `true` on success.
    ///
    /// # Panics
    /// Panics if `u` is already matched (callers always know).
    pub fn augment(&mut self, u: u32) -> bool {
        assert!(
            self.matching.partner_of_left(u).is_none(),
            "augment called on already-matched left vertex {u}"
        );
        self.bump_epoch();
        self.dfs(u)
    }

    /// Make the matching maximum with respect to the enabled right
    /// vertices, and return its size.
    ///
    /// Runs Hopcroft–Karp phases from the current (possibly seeded)
    /// matching: each phase BFS-layers the alternating-path graph from the
    /// unmatched left vertices, then flips a maximal set of vertex-disjoint
    /// shortest augmenting paths — O(E·√V) total, against O(V·E) for the
    /// one-scan-per-vertex strategy this replaces.
    pub fn maximize(&mut self) -> usize {
        let n = self.graph.left_count();
        // Greedy pass: match unmatched lefts to their first free enabled
        // neighbor; typically covers most of the matching and saves phases.
        for u in 0..n as u32 {
            if self.matching.partner_of_left(u).is_none() {
                for i in 0..self.graph.neighbors(u).len() {
                    let v = self.graph.neighbors(u)[i];
                    if !self.disabled[v as usize] && self.matching.partner_of_right(v).is_none() {
                        self.link(u, v);
                        break;
                    }
                }
            }
        }

        let mut dist = vec![INF; n];
        let mut cursor = vec![0usize; n];
        let mut held = vec![false; self.graph.right_count()];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        loop {
            // BFS phase over enabled rights only.
            queue.clear();
            for (u, d) in dist.iter_mut().enumerate() {
                if self.matching.pair_left[u].is_none() {
                    *d = 0;
                    queue.push(u as u32);
                } else {
                    *d = INF;
                }
            }
            let mut found_free_right = false;
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &v in self.graph.neighbors(u) {
                    if self.disabled[v as usize] {
                        continue;
                    }
                    match self.matching.partner_of_right(v) {
                        None => found_free_right = true,
                        Some(w) => {
                            if dist[w as usize] == INF {
                                dist[w as usize] = dist[u as usize] + 1;
                                queue.push(w);
                            }
                        }
                    }
                }
            }
            if !found_free_right {
                break;
            }

            cursor.iter_mut().for_each(|c| *c = 0);
            let mut augmented = false;
            for u in 0..n as u32 {
                if self.matching.pair_left[u as usize].is_none()
                    && self.phase_dfs(u, &mut dist, &mut cursor, &mut held)
                {
                    augmented = true;
                }
            }
            if !augmented {
                break;
            }
        }
        self.matching.size()
    }

    /// One layered-DFS attempt of a Hopcroft–Karp phase (the incremental
    /// twin of the DFS in `hopcroft_karp.rs`, plus the disabled mask).
    fn phase_dfs(
        &mut self,
        u: u32,
        dist: &mut [u32],
        cursor: &mut [usize],
        held: &mut [bool],
    ) -> bool {
        while cursor[u as usize] < self.graph.neighbors(u).len() {
            let v = self.graph.neighbors(u)[cursor[u as usize]];
            cursor[u as usize] += 1;
            if self.disabled[v as usize] || held[v as usize] {
                continue;
            }
            match self.matching.partner_of_right(v) {
                None => {
                    self.link(u, v);
                    return true;
                }
                Some(w) => {
                    if dist[w as usize] == dist[u as usize] + 1 {
                        // Tentatively free v, then re-home its partner one
                        // BFS layer deeper; v is held while the probe runs.
                        self.unlink_right(v);
                        held[v as usize] = true;
                        let rehomed = self.phase_dfs(w, dist, cursor, held);
                        held[v as usize] = false;
                        if rehomed {
                            self.link(u, v);
                            return true;
                        }
                        self.link(w, v);
                    }
                }
            }
        }
        dist[u as usize] = INF;
        false
    }

    /// Disable right vertex `v`. If `v` was matched, its left partner is
    /// rematched through an augmenting path; if that is impossible the call
    /// returns `false` and the state is unchanged.
    pub fn try_disable(&mut self, v: u32) -> bool {
        if self.disabled[v as usize] {
            return true;
        }
        self.disabled[v as usize] = true;
        let Some(u) = self.unlink_right(v) else {
            return true;
        };
        self.bump_epoch();
        if self.dfs(u) {
            true
        } else {
            // Roll back: v was matched to u and nothing else changed
            // (a failed DFS flips no edges).
            self.disabled[v as usize] = false;
            self.link(u, v);
            false
        }
    }

    /// Disable a batch of right vertices, all or nothing.
    ///
    /// On failure every vertex in the batch is re-enabled and every rematch
    /// performed for earlier batch members is undone; the matching is
    /// restored exactly. Rollback replays the undo journal of the flips the
    /// batch actually made, so a failed probe costs only its own search
    /// work — there is no per-probe snapshot of the matching.
    pub fn try_disable_many(&mut self, vs: &[u32]) -> bool {
        debug_assert!(!self.journaling, "disable batches do not nest");
        let mark = self.journal.len();
        self.journaling = true;
        let mut done = Vec::with_capacity(vs.len());
        for &v in vs {
            // Only vertices this batch actually flips from enabled to
            // disabled go into the rollback list — a vertex disabled
            // before the batch (or earlier in it) must stay disabled if
            // the batch fails.
            let newly_disabled = !self.disabled[v as usize];
            if self.try_disable(v) {
                if newly_disabled {
                    done.push(v);
                }
            } else {
                self.rollback_to(mark);
                for &w in &done {
                    self.disabled[w as usize] = false;
                }
                self.journaling = false;
                return false;
            }
        }
        self.journaling = false;
        self.journal.truncate(mark);
        true
    }

    /// Re-enable right vertex `v` (a no-op if it is enabled). The matching
    /// is left as is; call [`IncrementalMatching::maximize`] or
    /// [`IncrementalMatching::augment`] to exploit the freed capacity.
    pub fn enable(&mut self, v: u32) {
        self.disabled[v as usize] = false;
    }

    /// Seed the matching with the pair `(u, v)` directly, without searching.
    ///
    /// Used to start from a known partial solution (the paper's Lemma 3
    /// extends a given partial schedule by augmenting paths; the partial
    /// schedule itself is installed with this method).
    ///
    /// # Panics
    /// Panics if the edge is absent, either endpoint is already matched, or
    /// `v` is disabled.
    pub fn force_link(&mut self, u: u32, v: u32) {
        assert!(
            self.graph.neighbors(u).contains(&v),
            "force_link: edge ({u}, {v}) not in graph"
        );
        assert!(!self.disabled[v as usize], "force_link: {v} is disabled");
        assert!(
            self.matching.partner_of_left(u).is_none(),
            "force_link: left {u} already matched"
        );
        assert!(
            self.matching.partner_of_right(v).is_none(),
            "force_link: right {v} already matched"
        );
        self.link(u, v);
    }

    /// Drop the matched edge of left vertex `u`, freeing its right partner.
    /// Returns the freed right vertex, if `u` was matched.
    pub fn unmatch_left(&mut self, u: u32) -> Option<u32> {
        let v = self.matching.pair_left[u as usize]?;
        self.unlink_right(v);
        Some(v)
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: clear stamps and restart epochs.
            self.visited.iter_mut().for_each(|x| *x = 0);
            self.epoch = 1;
        }
    }

    fn dfs(&mut self, u: u32) -> bool {
        for i in 0..self.graph.neighbors(u).len() {
            let v = self.graph.neighbors(u)[i];
            if self.disabled[v as usize] || self.visited[v as usize] == self.epoch {
                continue;
            }
            self.visited[v as usize] = self.epoch;
            match self.matching.partner_of_right(v) {
                None => {
                    self.link(u, v);
                    return true;
                }
                Some(w) => {
                    // Tentatively free v, then try to re-home its partner w.
                    // v is marked visited, so no deeper frame can grab it.
                    self.unlink_right(v);
                    if self.dfs(w) {
                        self.link(u, v);
                        return true;
                    }
                    self.link(w, v);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    fn grid() -> BipartiteGraph {
        // 4 jobs, 4 slots, each job can use its own slot and the next one.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            edges.push((i, i));
            if i + 1 < 4 {
                edges.push((i, i + 1));
            }
        }
        BipartiteGraph::from_edges(4, 4, edges)
    }

    #[test]
    fn maximize_matches_hopcroft_karp() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert_eq!(inc.maximize(), hopcroft_karp(&g).size());
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn maximize_respects_disabled_rights() {
        // Disable two of four slots before maximizing: only two jobs fit,
        // and no matched edge may touch a disabled slot.
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.try_disable(1));
        assert!(inc.try_disable(3));
        assert_eq!(inc.maximize(), 2);
        for (_, v) in inc.matching().pairs() {
            assert!(!inc.is_disabled(v), "matched edge uses disabled slot {v}");
        }
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn maximize_from_seeded_partial_matching() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.force_link(0, 1); // awkward seed: job 0 on slot 1 blocks job 1
        assert_eq!(inc.maximize(), 4, "phases must re-route around the seed");
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn augment_one_at_a_time() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        for u in 0..4 {
            assert!(inc.augment(u), "job {u} should be addable");
            assert_eq!(inc.size(), u as usize + 1);
        }
    }

    #[test]
    #[should_panic(expected = "already-matched")]
    fn augment_rejects_matched_vertex() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.augment(0));
        inc.augment(0);
    }

    #[test]
    fn disable_unmatched_slot_succeeds() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.try_disable(3));
        assert!(inc.is_disabled(3));
        // Job 3 can only use slot 3 now disabled.
        assert!(!inc.augment(3));
    }

    #[test]
    fn disable_matched_slot_rematches() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        // Disabling slot 0 forces job 0 to slot 1, cascading down the chain
        // until job 3 ... which has nowhere to go: slots 0..3 shrink to 3
        // slots for 4 jobs. Must fail and roll back.
        let before = inc.matching().clone();
        assert!(!inc.try_disable(0));
        assert_eq!(inc.matching(), &before);
        assert!(!inc.is_disabled(0));
    }

    #[test]
    fn disable_with_slack_succeeds_and_rematches() {
        // 2 jobs, 3 slots; both jobs can use slots 0..=2. One slot is spare,
        // so one disable succeeds (rematching its job to the spare slot) but
        // a second disable would leave 1 slot for 2 jobs and must fail.
        let g =
            BipartiteGraph::from_edges(2, 3, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        assert!(inc.try_disable(0));
        assert_eq!(inc.size(), 2, "rematch must keep both jobs scheduled");
        assert!(!inc.try_disable(1), "only one enabled slot would remain");
        assert_eq!(inc.size(), 2);
        assert!(!inc.is_disabled(1), "failed disable must roll back");
        let matched: Vec<_> = inc.matching().pairs().collect();
        assert!(matched.iter().all(|&(_, v)| !inc.is_disabled(v)));
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    fn try_disable_many_rolls_back_atomically() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        let before = inc.matching().clone();
        // Slots {1, 2} cannot both disappear: jobs 1 and 2 need them
        // (job 1 -> {1,2}, job 2 -> {2,3}; with 1 and 2 gone, jobs 0..3
        // have only slots {0, 3}).
        assert!(!inc.try_disable_many(&[1, 2]));
        assert_eq!(inc.matching(), &before);
        assert!(!inc.is_disabled(1));
        assert!(!inc.is_disabled(2));
    }

    #[test]
    fn try_disable_many_with_duplicates() {
        let g = BipartiteGraph::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        assert!(inc.try_disable_many(&[0, 0, 1, 1]));
        assert_eq!(inc.size(), 1);
        assert_eq!(inc.matching().partner_of_left(0), Some(2));
    }

    #[test]
    fn journal_rollback_is_exact_across_probe_sequences() {
        // Interleave succeeding and failing batches — later windows
        // overlap slots committed by earlier successful batches. Every
        // failure must restore the pre-batch matching AND disabled set
        // bit-for-bit (the journal replaces a full snapshot, so this is
        // the load-bearing property).
        let g = probe_chain(12);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        let (mut successes, mut failures) = (0, 0);
        for start in 0..12u32 {
            // Two-slot windows with a one-slot stride: each overlaps its
            // predecessor, so failed batches routinely contain slots an
            // earlier successful batch already disabled.
            let window = [start, start + 1];
            let before = inc.matching().clone();
            let disabled_before: Vec<bool> = (0..g.right_count() as u32)
                .map(|v| inc.is_disabled(v))
                .collect();
            if inc.try_disable_many(&window) {
                successes += 1;
                for &v in &window {
                    assert!(inc.is_disabled(v));
                }
            } else {
                failures += 1;
                assert_eq!(inc.matching(), &before, "window {window:?}");
                for v in 0..g.right_count() as u32 {
                    assert_eq!(
                        inc.is_disabled(v),
                        disabled_before[v as usize],
                        "slot {v} after failed window {window:?}"
                    );
                }
            }
            inc.matching().validate(&g).unwrap();
        }
        assert!(successes > 0, "some windows must commit");
        assert!(failures > 0, "the chain must reject some windows");
    }

    #[test]
    fn failed_batch_keeps_previously_disabled_slots_disabled() {
        // Regression: a batch containing an *already-disabled* slot must
        // not re-enable it when the batch fails.
        let g = BipartiteGraph::from_edges(2, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2)]);
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        assert!(inc.try_disable(0), "slot 0 disables (job 0 moves to 1)");
        // {0, 1}: slot 0 is already disabled; disabling 1 too would leave
        // job 0 with nothing, so the batch fails...
        assert!(!inc.try_disable_many(&[0, 1]));
        // ...and slot 0 must stay disabled (it was not this batch's doing).
        assert!(inc.is_disabled(0), "pre-batch disable must survive");
        assert!(!inc.is_disabled(1));
        inc.matching().validate(&g).unwrap();
    }

    /// n jobs over n+2 slots; job i can use slots i..=i+2 (two spare slots
    /// of slack overall).
    fn probe_chain(n: u32) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for d in 0..3 {
                edges.push((u, u + d));
            }
        }
        BipartiteGraph::from_edges(n as usize, n as usize + 2, edges)
    }

    #[test]
    fn enable_then_augment_recovers() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        assert!(inc.try_disable(3));
        assert!(!inc.augment(3));
        inc.enable(3);
        assert!(inc.augment(3));
        assert_eq!(inc.matching().partner_of_left(3), Some(3));
    }

    #[test]
    fn force_link_seeds_partial_solution() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.force_link(1, 2);
        assert_eq!(inc.size(), 1);
        // Augmenting around the seeded pair still reaches a perfect matching.
        assert_eq!(inc.maximize(), 4);
        inc.matching().validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "edge (0, 3) not in graph")]
    fn force_link_rejects_missing_edge() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.force_link(0, 3);
    }

    #[test]
    fn unmatch_left_frees_slot() {
        let g = grid();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        let freed = inc.unmatch_left(0).unwrap();
        assert_eq!(inc.size(), 3);
        assert_eq!(inc.matching().partner_of_right(freed), None);
        assert!(inc.augment(0));
        assert_eq!(inc.size(), 4);
    }
}

//! # gaps-matching
//!
//! Bipartite-matching substrate for the `gap-scheduling` workspace.
//!
//! Everything in the SPAA 2007 paper that touches *feasibility* reduces to
//! maximum bipartite matching between unit jobs (left vertices) and time
//! slots (right vertices):
//!
//! * deciding whether a (multi-interval) instance admits a feasible schedule,
//! * Lemma 3's "extend a partial schedule one augmenting path at a time",
//! * the greedy 3-approximation's probe "is the instance still feasible if
//!   this stretch of time becomes a gap?",
//! * Theorem 11's probe "can interval `[a, b]` be packed with `b − a + 1`
//!   distinct unscheduled jobs?".
//!
//! The crate provides:
//!
//! * [`BipartiteGraph`] — a compact adjacency representation,
//! * [`hopcroft_karp`] — O(E·√V) maximum matching,
//! * [`kuhn`] — the simple O(V·E) augmenting-path algorithm, kept as an
//!   independent reference oracle for the property tests,
//! * [`IncrementalMatching`] — a matching that can grow one left vertex at a
//!   time and absorb right-vertex deletions, with journaled rollback; its
//!   bulk [`IncrementalMatching::maximize`] runs Hopcroft–Karp phases, so
//!   feasibility queries never pay the Kuhn one-scan-per-vertex cost,
//! * [`hall_violator`] — a deficiency certificate (a set `S` of left vertices
//!   with `|N(S)| < |S|`) whenever a perfect-on-the-left matching does not
//!   exist.
//!
//! The crate is dependency-free and knows nothing about scheduling; vertices
//! are plain `u32` indices.

mod flow;
mod graph;
mod hall;
mod hopcroft_karp;
mod incremental;
mod kuhn;

pub use flow::{dinic_matching, is_vertex_cover, koenig_vertex_cover};
pub use graph::BipartiteGraph;
pub use hall::{hall_violator, hall_violator_from, HallViolator};
pub use hopcroft_karp::hopcroft_karp;
pub use incremental::IncrementalMatching;
pub use kuhn::kuhn;

/// A matching in a bipartite graph, stored from both sides.
///
/// `pair_left[u] == Some(v)` iff left vertex `u` is matched to right vertex
/// `v`, and then `pair_right[v] == Some(u)` as well. The two arrays are kept
/// mutually consistent by every algorithm in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    pair_left: Vec<Option<u32>>,
    pair_right: Vec<Option<u32>>,
    size: usize,
}

impl Matching {
    /// An empty matching for a graph with the given part sizes.
    pub fn empty(left_count: usize, right_count: usize) -> Self {
        Matching {
            pair_left: vec![None; left_count],
            pair_right: vec![None; right_count],
            size: 0,
        }
    }

    /// Number of matched pairs.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The right partner of left vertex `u`, if any.
    #[inline]
    pub fn partner_of_left(&self, u: u32) -> Option<u32> {
        self.pair_left[u as usize]
    }

    /// The left partner of right vertex `v`, if any.
    #[inline]
    pub fn partner_of_right(&self, v: u32) -> Option<u32> {
        self.pair_right[v as usize]
    }

    /// Iterator over matched `(left, right)` pairs in left-vertex order.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(u, v)| v.map(|v| (u as u32, v)))
    }

    /// True if every left vertex is matched.
    pub fn is_left_perfect(&self) -> bool {
        self.size == self.pair_left.len()
    }

    /// Left vertices that are not matched.
    pub fn unmatched_left(&self) -> Vec<u32> {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(u, v)| if v.is_none() { Some(u as u32) } else { None })
            .collect()
    }

    /// Record the pair `(u, v)`, keeping both arrays consistent.
    ///
    /// Panics (in debug builds) if either endpoint is already matched.
    fn link(&mut self, u: u32, v: u32) {
        debug_assert!(self.pair_left[u as usize].is_none());
        debug_assert!(self.pair_right[v as usize].is_none());
        self.pair_left[u as usize] = Some(v);
        self.pair_right[v as usize] = Some(u);
        self.size += 1;
    }

    /// Remove the pair containing right vertex `v`, if any; returns the left
    /// endpoint that became unmatched.
    fn unlink_right(&mut self, v: u32) -> Option<u32> {
        let u = self.pair_right[v as usize].take()?;
        self.pair_left[u as usize] = None;
        self.size -= 1;
        Some(u)
    }

    /// Validate internal consistency and that every matched edge exists in
    /// `graph`. Used by tests and debug assertions.
    pub fn validate(&self, graph: &BipartiteGraph) -> Result<(), String> {
        if self.pair_left.len() != graph.left_count() {
            return Err(format!(
                "pair_left has {} entries, graph has {} left vertices",
                self.pair_left.len(),
                graph.left_count()
            ));
        }
        if self.pair_right.len() != graph.right_count() {
            return Err(format!(
                "pair_right has {} entries, graph has {} right vertices",
                self.pair_right.len(),
                graph.right_count()
            ));
        }
        let mut count = 0usize;
        for (u, v) in self.pairs() {
            count += 1;
            if self.pair_right[v as usize] != Some(u) {
                return Err(format!("asymmetric pair ({u}, {v})"));
            }
            if !graph.neighbors(u).contains(&v) {
                return Err(format!("matched edge ({u}, {v}) not in graph"));
            }
        }
        let right_count = self.pair_right.iter().filter(|p| p.is_some()).count();
        if count != self.size || right_count != self.size {
            return Err(format!(
                "size mismatch: size={} left-pairs={} right-pairs={}",
                self.size, count, right_count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching_is_consistent() {
        let m = Matching::empty(3, 4);
        assert_eq!(m.size(), 0);
        assert_eq!(m.unmatched_left(), vec![0, 1, 2]);
        assert!(!m.is_left_perfect());
        let g = BipartiteGraph::new(3, 4);
        m.validate(&g).unwrap();
    }

    #[test]
    fn link_and_unlink_roundtrip() {
        let mut m = Matching::empty(2, 2);
        m.link(0, 1);
        assert_eq!(m.partner_of_left(0), Some(1));
        assert_eq!(m.partner_of_right(1), Some(0));
        assert_eq!(m.size(), 1);
        assert_eq!(m.unlink_right(1), Some(0));
        assert_eq!(m.size(), 0);
        assert_eq!(m.partner_of_left(0), None);
        assert_eq!(m.unlink_right(1), None);
    }

    #[test]
    fn pairs_iterates_in_left_order() {
        let mut m = Matching::empty(3, 3);
        m.link(2, 0);
        m.link(0, 2);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(0, 2), (2, 0)]);
    }
}

//! Kuhn's augmenting-path maximum matching, O(V·E).
//!
//! Slower than Hopcroft–Karp but so simple that it is easy to trust; the
//! property tests use it as an independent oracle for
//! [`crate::hopcroft_karp`].

use crate::{BipartiteGraph, Matching};

/// Compute a maximum matching by repeatedly searching an augmenting path
/// from each unmatched left vertex.
pub fn kuhn(graph: &BipartiteGraph) -> Matching {
    let mut matching = Matching::empty(graph.left_count(), graph.right_count());
    let mut visited = vec![u32::MAX; graph.right_count()];
    for u in 0..graph.left_count() as u32 {
        // `visited` is epoch-stamped with the source vertex to avoid
        // clearing it on every call; each source is used exactly once.
        augment_dfs(graph, &mut matching, &mut visited, u, u);
    }
    debug_assert!(matching.validate(graph).is_ok());
    matching
}

fn augment_dfs(
    graph: &BipartiteGraph,
    matching: &mut Matching,
    visited: &mut [u32],
    u: u32,
    epoch: u32,
) -> bool {
    for &v in graph.neighbors(u) {
        if visited[v as usize] == epoch {
            continue;
        }
        visited[v as usize] = epoch;
        match matching.partner_of_right(v) {
            None => {
                matching.link(u, v);
                return true;
            }
            Some(w) => {
                // Tentatively free v, then try to re-home its partner w.
                // v is marked visited, so no deeper frame can grab it.
                matching.unlink_right(v);
                if augment_dfs(graph, matching, visited, w, epoch) {
                    matching.link(u, v);
                    return true;
                }
                matching.link(w, v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kuhn_finds_perfect_matching_on_cycle() {
        // 4-cycle: left {0,1}, right {0,1}, edges 0-0, 0-1, 1-0, 1-1.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(kuhn(&g).size(), 2);
    }

    #[test]
    fn kuhn_handles_isolated_vertices() {
        let g = BipartiteGraph::from_edges(3, 3, vec![(1, 1)]);
        let m = kuhn(&g);
        assert_eq!(m.size(), 1);
        assert_eq!(m.partner_of_left(1), Some(1));
        assert_eq!(m.unmatched_left(), vec![0, 2]);
    }

    #[test]
    fn kuhn_max_on_star() {
        // One right slot demanded by 5 left vertices.
        let g = BipartiteGraph::from_edges(5, 1, (0..5).map(|u| (u, 0)).collect::<Vec<_>>());
        assert_eq!(kuhn(&g).size(), 1);
    }

    #[test]
    fn kuhn_needs_reaugmentation() {
        // Vertex 0 grabs slot 0 greedily; vertex 1 can only use slot 0, so
        // the augmenting path must push 0 over to slot 1.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = kuhn(&g);
        assert_eq!(m.size(), 2);
        assert_eq!(m.partner_of_left(1), Some(0));
        assert_eq!(m.partner_of_left(0), Some(1));
    }
}

//! Property-based tests for the matching substrate.

use gaps_matching::{hall_violator, hopcroft_karp, kuhn, BipartiteGraph, IncrementalMatching};
use proptest::prelude::*;

/// Strategy: a random bipartite graph with up to `n` left, `m` right
/// vertices and arbitrary edges.
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=n, 1..=m).prop_flat_map(|(lc, rc)| {
        proptest::collection::vec((0..lc as u32, 0..rc as u32), 0..=lc * rc)
            .prop_map(move |edges| BipartiteGraph::from_edges(lc, rc, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hopcroft–Karp and Kuhn agree on matching size.
    #[test]
    fn hk_equals_kuhn(g in arb_graph(12, 12)) {
        prop_assert_eq!(hopcroft_karp(&g).size(), kuhn(&g).size());
    }

    /// Dinic's flow — a third, structurally different algorithm — agrees
    /// too, and König's cover certifies optimality.
    #[test]
    fn dinic_and_koenig_agree(g in arb_graph(10, 10)) {
        let hk = hopcroft_karp(&g).size();
        let dinic = gaps_matching::dinic_matching(&g);
        dinic.validate(&g).unwrap();
        prop_assert_eq!(dinic.size(), hk);
        let (lefts, rights) = gaps_matching::koenig_vertex_cover(&g);
        prop_assert_eq!(lefts.len() + rights.len(), hk);
        prop_assert!(gaps_matching::is_vertex_cover(&g, &lefts, &rights));
    }

    /// Both algorithms return valid matchings.
    #[test]
    fn matchings_are_valid(g in arb_graph(10, 14)) {
        hopcroft_karp(&g).validate(&g).unwrap();
        kuhn(&g).validate(&g).unwrap();
    }

    /// Incremental maximize from scratch reaches the maximum size.
    #[test]
    fn incremental_maximize_is_maximum(g in arb_graph(12, 12)) {
        let mut inc = IncrementalMatching::new(&g);
        prop_assert_eq!(inc.maximize(), hopcroft_karp(&g).size());
        inc.matching().validate(&g).unwrap();
    }

    /// A Hall violator exists iff the maximum matching is not left-perfect,
    /// and any returned violator checks out.
    #[test]
    fn hall_violator_iff_deficient(g in arb_graph(10, 10)) {
        let max = hopcroft_karp(&g).size();
        match hall_violator(&g) {
            Some(w) => {
                prop_assert!(max < g.left_count());
                w.validate(&g).unwrap();
            }
            None => prop_assert_eq!(max, g.left_count()),
        }
    }

    /// Disabling a batch of right vertices either keeps the matching size
    /// (all previously matched lefts still matched) or rolls back exactly.
    #[test]
    fn disable_many_is_atomic(
        g in arb_graph(10, 10),
        batch in proptest::collection::vec(0u32..10, 1..6),
    ) {
        let batch: Vec<u32> = batch
            .into_iter()
            .filter(|&v| (v as usize) < g.right_count())
            .collect();
        let mut inc = IncrementalMatching::new(&g);
        let before_size = inc.maximize();
        let before = inc.matching().clone();
        if inc.try_disable_many(&batch) {
            prop_assert_eq!(inc.size(), before_size);
            // No matched edge uses a disabled vertex.
            for (_, v) in inc.matching().pairs() {
                prop_assert!(!inc.is_disabled(v));
            }
            inc.matching().validate(&g).unwrap();
        } else {
            prop_assert_eq!(inc.matching(), &before);
            for &v in &batch {
                prop_assert!(!inc.is_disabled(v));
            }
        }
    }

    /// After disabling succeeds, re-running a fresh maximum matching on the
    /// reduced graph gives the same size as the incremental one.
    #[test]
    fn disable_then_fresh_recompute_agrees(
        g in arb_graph(9, 9),
        batch in proptest::collection::vec(0u32..9, 1..5),
    ) {
        let batch: Vec<u32> = batch
            .into_iter()
            .filter(|&v| (v as usize) < g.right_count())
            .collect();
        let mut inc = IncrementalMatching::new(&g);
        inc.maximize();
        if inc.try_disable_many(&batch) {
            // Build the reduced graph without the disabled vertices.
            let reduced = BipartiteGraph::from_edges(
                g.left_count(),
                g.right_count(),
                (0..g.left_count() as u32).flat_map(|u| {
                    g.neighbors(u)
                        .iter()
                        .copied()
                        .filter(|&v| !batch.contains(&v))
                        .map(move |v| (u, v))
                        .collect::<Vec<_>>()
                }),
            );
            // The incremental matching is maximum on the reduced graph
            // because disabling never lost a matched left vertex.
            prop_assert_eq!(inc.size(), hopcroft_karp(&reduced).size());
        }
    }
}

//! Exercise the debug-build invariant checks (`debug_assert!`) in the
//! exact solvers: the memo audits in `multi_exact` and `baptiste`, and
//! the schedule re-validation in the delegating witness functions.
//!
//! These tests are meaningful only with `debug_assertions` on (the
//! default test profile — CI runs them in a dedicated debug job); in a
//! release-profile test run they still pass, they just stop exercising
//! the audits.

use gaps_core::baptiste;
use gaps_core::instance::{Instance, MultiInstance};
use gaps_core::multi_exact;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
#[cfg(debug_assertions)]
fn debug_assertions_are_on_in_the_test_profile() {
    // If this starts failing, the invariant tests below are being
    // compiled without the checks they exist to exercise — fix the
    // profile rather than deleting the assertion. Probed at runtime
    // (not via cfg!) so the assert is on the actual mechanism the
    // audits use.
    let mut audits_active = false;
    debug_assert!({
        audits_active = true;
        true
    });
    assert!(
        audits_active,
        "tier-1 test profile must keep debug_assertions enabled"
    );
}

/// Random multi-interval instances hammer the multi_exact memo: every
/// memo hit re-derives the state and asserts the cached value matches.
#[test]
fn multi_exact_memo_audit_passes_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for round in 0..40 {
        let n = 2 + (round % 5);
        let jobs: Vec<Vec<i64>> = (0..n)
            .map(|_| {
                let mut times: Vec<i64> = (0..3).map(|_| rng.gen_range(0..12)).collect();
                times.sort_unstable();
                times.dedup();
                times
            })
            .collect();
        let Ok(inst) = MultiInstance::from_times(jobs) else {
            continue;
        };
        if let Some((gaps, sched)) = multi_exact::min_gaps_multi(&inst) {
            assert_eq!(sched.verify(&inst), Ok(()));
            // Solving twice must be deterministic (and re-runs the
            // audit over a fresh memo).
            assert_eq!(
                multi_exact::min_gaps_multi(&inst).map(|(g, _)| g),
                Some(gaps)
            );
        }
        if let Some((spans, _)) = multi_exact::min_spans_multi(&inst) {
            assert!(spans >= 1);
        }
        if let Some((power, _)) = multi_exact::min_power_multi(&inst, 3) {
            assert!(power >= n as u64);
        }
    }
}

/// One-interval instances drive the baptiste window DP through both
/// objectives; the memo audit re-derives every hit state.
#[test]
fn baptiste_memo_audit_passes_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for round in 0..40 {
        let n = 2 + (round % 6);
        let windows: Vec<(i64, i64)> = (0..n)
            .map(|_| {
                let r: i64 = rng.gen_range(0..15);
                (r, r + rng.gen_range(0..6i64))
            })
            .collect();
        let inst = Instance::from_windows(windows, 1).expect("windows are valid");
        let spans = baptiste::min_spans_value(&inst);
        let gaps = baptiste::min_gaps_value(&inst);
        let power = baptiste::min_power_value(&inst, 2);
        match (spans, gaps, power) {
            (Some(s), Some(g), Some(p)) => {
                assert_eq!(g, s.saturating_sub(1));
                // Power with α = 2 pays n busy slots + α per wake-up at
                // most: p ≤ n + 2·s, and at least the busy slots + one
                // wake-up.
                assert!(p >= n as u64 + 2);
                assert!(p <= n as u64 + 2 * s);
            }
            (None, None, None) => {}
            other => panic!("objectives disagree on feasibility: {other:?}"),
        }
    }
}

/// The delegating witness functions re-validate the emitted schedule
/// against the windows and cross-check the value against the window DP.
#[test]
fn baptiste_witnesses_are_revalidated() {
    let inst = Instance::from_windows([(0, 0), (2, 5), (5, 5), (3, 4)], 1).expect("valid");
    let (gaps, sched) = baptiste::min_gaps_schedule(&inst).expect("feasible");
    assert_eq!(sched.verify(&inst), Ok(()));
    assert_eq!(Some(gaps), baptiste::min_gaps_value(&inst));
    let (power, psched) = baptiste::min_power_schedule(&inst, 3).expect("feasible");
    assert_eq!(psched.verify(&inst), Ok(()));
    assert_eq!(Some(power), baptiste::min_power_value(&inst, 3));
}

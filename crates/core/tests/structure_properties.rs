//! Property-based tests for the structural modules: lower bounds, run
//! spreading, compression of one-interval instances, Lemma 4, analysis,
//! and rendering (which must never panic on any valid schedule).

use gaps_core::instance::{Instance, MultiInstance};
use gaps_core::multi_interval::{lemma4_best_residue, lemma4_guarantee};
use gaps_core::{analysis, baptiste, brute_force, compress, edf, lower_bounds, render};
use proptest::prelude::*;

fn arb_instance(n_max: usize, t_max: i64, p_max: u32) -> impl Strategy<Value = Instance> {
    (1..=p_max).prop_flat_map(move |p| {
        proptest::collection::vec((0..=t_max, 0..=t_max), 1..=n_max).prop_map(move |ws| {
            let jobs = ws
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect::<Vec<_>>();
            Instance::from_windows(jobs, p).unwrap()
        })
    })
}

fn arb_multi(n_max: usize, t_max: i64, k_max: usize) -> impl Strategy<Value = MultiInstance> {
    proptest::collection::vec(proptest::collection::vec(0..=t_max, 1..=k_max), 1..=n_max)
        .prop_map(|jobs| MultiInstance::from_times(jobs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All lower bounds are sound against exhaustive optima.
    #[test]
    fn lower_bounds_sound(inst in arb_multi(6, 14, 3), alpha in 0u64..5) {
        if let Some((opt_spans, _)) = brute_force::min_spans_multi(&inst) {
            prop_assert!(lower_bounds::min_spans_lower_bound(&inst) <= opt_spans);
            let (opt_gaps, _) = brute_force::min_gaps_multi(&inst).unwrap();
            prop_assert!(lower_bounds::min_gaps_lower_bound(&inst) <= opt_gaps);
            let (opt_power, _) = brute_force::min_power_multi(&inst, alpha).unwrap();
            prop_assert!(lower_bounds::min_power_lower_bound(&inst, alpha) <= opt_power);
        }
    }

    /// Run spreading: keeps times, keeps verification, attains
    /// max(0, spans − p) gaps, never changes the span count.
    #[test]
    fn spreading_attains_the_run_bound(inst in arb_instance(7, 9, 3)) {
        if let Ok(sched) = edf::edf(&inst) {
            let p = inst.processors();
            let spans = sched.span_count(p);
            let spread = sched.spread_for_min_gaps(p);
            spread.verify(&inst).unwrap();
            prop_assert_eq!(spread.span_count(p), spans);
            prop_assert_eq!(spread.gap_count(p), spans.saturating_sub(p as u64));
            for (a, b) in sched.assignments().iter().zip(spread.assignments()) {
                prop_assert_eq!(a.time, b.time);
            }
        }
    }

    /// One-interval compression preserves optima (gap and power) — the
    /// multi-interval variant is covered in `properties.rs`.
    #[test]
    fn instance_compression_preserves_optima(
        inst in arb_instance(6, 30, 1),
        alpha in 0u64..4,
    ) {
        if edf::is_feasible(&inst) {
            let (cg, _) = compress::compress_instance_gap(&inst);
            prop_assert_eq!(
                baptiste::min_gaps_value(&inst),
                baptiste::min_gaps_value(&cg)
            );
            let (cp, _) = compress::compress_instance_power(&inst, alpha);
            prop_assert_eq!(
                baptiste::min_power_value(&inst, alpha),
                baptiste::min_power_value(&cp, alpha)
            );
        }
    }

    /// Lemma 4's floor holds for every feasible schedule and k ∈ {2, 3, 4}.
    #[test]
    fn lemma4_floor(inst in arb_multi(7, 12, 3), k in 2usize..=4) {
        if let Ok(sched) = gaps_core::feasibility::feasible_schedule(&inst) {
            let (_, count) = lemma4_best_residue(&sched, k);
            let floor = lemma4_guarantee(inst.job_count(), sched.span_count(), k);
            prop_assert!(count >= floor, "count {count} < floor {floor} (k={k})");
        }
    }

    /// Rendering never panics and has one row per processor.
    #[test]
    fn rendering_is_total(inst in arb_instance(6, 12, 3), width in 1usize..40) {
        if let Ok(sched) = edf::edf(&inst) {
            let s = render::render_timeline(&inst, &sched, width);
            prop_assert_eq!(s.lines().count(), 2 + inst.processors() as usize);
            let active =
                gaps_core::power::optimal_active_profile(&sched, inst.processors(), 3);
            let s2 = render::render_timeline_with_active(&inst, &sched, &active, width);
            prop_assert_eq!(s2.lines().count(), 2 + inst.processors() as usize);
        }
    }

    /// Analysis invariants: load and slack predict trivial infeasibility.
    #[test]
    fn analysis_consistency(inst in arb_instance(8, 10, 2)) {
        let stats = analysis::analyze_instance(&inst);
        prop_assert_eq!(stats.jobs, inst.job_count());
        prop_assert!(stats.window_min <= stats.window_max);
        prop_assert!(stats.window_mean <= stats.window_max as f64 + 1e-9);
        prop_assert!(stats.window_mean + 1e-9 >= stats.window_min as f64);
        if stats.load > 1.0 {
            prop_assert!(!edf::is_feasible(&inst), "load > 1 must be infeasible");
        }
    }

    /// Multi analysis: slack < 1 ⇒ infeasible.
    #[test]
    fn multi_analysis_consistency(inst in arb_multi(8, 10, 3)) {
        let stats = analysis::analyze_multi(&inst);
        prop_assert_eq!(stats.jobs, inst.job_count());
        if stats.slack < 1.0 {
            prop_assert!(!gaps_core::feasibility::is_feasible(&inst));
        }
        prop_assert!(stats.slot_runs <= stats.slots.max(1));
    }
}

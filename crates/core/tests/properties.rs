//! Property-based validation: every polynomial-time algorithm in the crate
//! is checked against exhaustive search on random small instances.

use gaps_core::instance::{Instance, MultiInstance};
use gaps_core::schedule::MultiSchedule;
use gaps_core::{baptiste, brute_force, compress, edf, feasibility, greedy_gap};
use gaps_core::{min_restart, multi_interval, multiproc_dp, power_dp};
use proptest::prelude::*;

/// Random one-interval instance: n jobs with windows inside [0, t_max].
fn arb_instance(n_max: usize, t_max: i64, p_max: u32) -> impl Strategy<Value = Instance> {
    (1..=p_max).prop_flat_map(move |p| {
        proptest::collection::vec((0..=t_max, 0..=t_max), 1..=n_max).prop_map(move |ws| {
            let jobs = ws
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect::<Vec<_>>();
            Instance::from_windows(jobs, p).unwrap()
        })
    })
}

/// Random multi-interval instance: n jobs, each with 1..=k allowed slots
/// in [0, t_max].
fn arb_multi(n_max: usize, t_max: i64, k_max: usize) -> impl Strategy<Value = MultiInstance> {
    proptest::collection::vec(proptest::collection::vec(0..=t_max, 1..=k_max), 1..=n_max)
        .prop_map(|jobs| MultiInstance::from_times(jobs).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1 DP ≡ exhaustive search, both objectives, with valid
    /// witnesses.
    #[test]
    fn multiproc_dp_is_exact(inst in arb_instance(6, 8, 3)) {
        let p = inst.processors();
        let dp_span = multiproc_dp::min_span_schedule(&inst);
        let bf_span = brute_force::min_spans_multiproc(&inst);
        prop_assert_eq!(dp_span.is_some(), bf_span.is_some());
        if let (Some(dp), Some((bf, _))) = (dp_span, bf_span) {
            prop_assert_eq!(dp.spans, bf);
            dp.schedule.verify(&inst).unwrap();
            prop_assert_eq!(dp.schedule.span_count(p), dp.spans);
        }
        let dp_gap = multiproc_dp::min_gap_schedule(&inst);
        let bf_gap = brute_force::min_gaps_multiproc(&inst);
        prop_assert_eq!(dp_gap.is_some(), bf_gap.is_some());
        if let (Some(dp), Some((bf, _))) = (dp_gap, bf_gap) {
            prop_assert_eq!(dp.gaps, bf);
            dp.schedule.verify(&inst).unwrap();
            prop_assert_eq!(dp.schedule.gap_count(p), dp.gaps);
        }
    }

    /// Theorem 2 power DP ≡ exhaustive search across α.
    #[test]
    fn power_dp_is_exact(inst in arb_instance(5, 7, 3), alpha in 0u64..6) {
        let dp = power_dp::min_power_schedule(&inst, alpha);
        let bf = brute_force::min_power_multiproc(&inst, alpha);
        prop_assert_eq!(dp.is_some(), bf.is_some());
        if let (Some(dp), Some((bf, _))) = (dp, bf) {
            prop_assert_eq!(dp.power, bf);
            dp.schedule.verify(&inst).unwrap();
        }
    }

    /// Baptiste's single-processor values agree with the general DP and
    /// with exhaustive search.
    #[test]
    fn baptiste_agrees_everywhere(inst in arb_instance(6, 9, 1), alpha in 0u64..5) {
        let b = baptiste::min_spans_value(&inst);
        prop_assert_eq!(b, multiproc_dp::min_span_value(&inst));
        let bp = baptiste::min_power_value(&inst, alpha);
        prop_assert_eq!(bp, power_dp::min_power_value(&inst, alpha));
    }

    /// EDF feasibility ≡ matching feasibility on expanded instances.
    #[test]
    fn edf_feasibility_matches_matching(inst in arb_instance(6, 8, 2)) {
        let by_edf = edf::is_feasible(&inst);
        // Expand to the multi-interval model with slot capacity p by
        // replicating each time slot per processor via the arithmetic view.
        let by_matching = if inst.processors() == 1 {
            feasibility::is_feasible(&inst.to_multi_interval(100))
        } else {
            feasibility::is_feasible(&inst.to_multi_interval_arithmetic(50))
        };
        prop_assert_eq!(by_edf, by_matching);
    }

    /// Gap compression is optimum-preserving (multi-interval, gap
    /// objective), power compression likewise for each α.
    #[test]
    fn compression_preserves_optima(inst in arb_multi(5, 12, 3), alpha in 0u64..5) {
        if let Some((g, _)) = brute_force::min_gaps_multi(&inst) {
            let (c, _) = compress::compress_multi_gap(&inst);
            prop_assert_eq!(brute_force::min_gaps_multi(&c).unwrap().0, g);
        }
        if let Some((pw, _)) = brute_force::min_power_multi(&inst, alpha) {
            let (c, _) = compress::compress_multi_power(&inst, alpha);
            prop_assert_eq!(brute_force::min_power_multi(&c, alpha).unwrap().0, pw);
        }
    }

    /// Lemma 3: completing a partial schedule adds at most one gap per
    /// added job.
    #[test]
    fn lemma3_gap_growth(inst in arb_multi(6, 10, 3), pin_mask in 0u32..64) {
        // Pin a random subset of jobs to their first allowed slot, if the
        // pins are collision-free; skip degenerate draws.
        let mut partial = vec![None; inst.job_count()];
        let mut used = Vec::new();
        for (j, (slot, job)) in partial.iter_mut().zip(inst.jobs()).enumerate() {
            if pin_mask & (1 << j) != 0 {
                let t = job.times()[0];
                if !used.contains(&t) {
                    *slot = Some(t);
                    used.push(t);
                }
            }
        }
        let pinned_times: Vec<i64> = partial.iter().flatten().copied().collect();
        let pinned_count = pinned_times.len();
        let partial_gaps = MultiSchedule::new(pinned_times).gap_count();
        if let Some(full) = multi_interval::complete_schedule(&inst, &partial) {
            full.verify(&inst).unwrap();
            let added = (inst.job_count() - pinned_count) as u64;
            prop_assert!(full.gap_count() <= partial_gaps + added,
                "gaps {} > {} + {}", full.gap_count(), partial_gaps, added);
        }
    }

    /// Theorem 3 approximation: valid schedule, never worse than the
    /// trivial (1+α) bound relative to the exact optimum.
    #[test]
    fn approx_power_within_trivial_bound(inst in arb_multi(5, 10, 3), alpha in 0u64..5) {
        let exact = brute_force::min_power_multi(&inst, alpha);
        let approx = multi_interval::approx_min_power(&inst, alpha as f64, 16);
        prop_assert_eq!(exact.is_some(), approx.is_some());
        if let (Some((opt, _)), Some(res)) = (exact, approx) {
            res.schedule.verify(&inst).unwrap();
            prop_assert!(res.power + 1e-9 >= opt as f64, "approx below optimum?!");
            prop_assert!(
                res.power <= (1.0 + alpha as f64) * opt as f64 + 1e-9,
                "approx {} vs opt {opt}, alpha {alpha}", res.power
            );
        }
    }

    /// Greedy 3-approximation for one-interval gap scheduling.
    #[test]
    fn greedy_gap_within_factor_three(inst in arb_instance(6, 9, 1)) {
        let opt = baptiste::min_gaps_value(&inst);
        let greedy = greedy_gap::greedy_gap_schedule(&inst);
        prop_assert_eq!(opt.is_some(), greedy.is_some());
        if let (Some(opt), Some(res)) = (opt, greedy) {
            res.schedule.verify(&inst).unwrap();
            // The 3-approximation is on the span objective in the tight
            // analyses; for gaps assert the safe form 3·OPT + small slack.
            prop_assert!(
                res.gaps <= 3 * opt + 2,
                "greedy {} vs opt {opt}", res.gaps
            );
        }
    }

    /// Theorem 11 greedy: valid, never beats the exact optimum, and within
    /// the 2√n envelope.
    #[test]
    fn min_restart_greedy_sound(inst in arb_multi(6, 10, 3), k in 0u64..4) {
        let res = min_restart::greedy_min_restart(&inst, k);
        res.verify(&inst).unwrap();
        prop_assert!(res.intervals.len() as u64 <= k);
        let (opt, _) = brute_force::max_throughput_spans(&inst, k);
        prop_assert!(res.scheduled <= opt);
        if opt > 0 {
            let bound = min_restart::sqrt_bound(inst.job_count());
            prop_assert!(opt as f64 <= bound * res.scheduled.max(1) as f64);
        }
    }

    /// The exact throughput solver is monotone in k and capped by n.
    #[test]
    fn throughput_monotone_in_budget(inst in arb_multi(5, 10, 3)) {
        let mut prev = 0;
        for k in 0..4u64 {
            let (v, witness) = brute_force::max_throughput_spans(&inst, k);
            prop_assert!(v >= prev);
            prop_assert!(v <= inst.job_count());
            prop_assert_eq!(witness.iter().flatten().count(), v);
            prev = v;
        }
    }
}

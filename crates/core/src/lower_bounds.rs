//! Combinatorial lower bounds on the gap/span/power optima.
//!
//! The exhaustive solvers in [`crate::brute_force`] certify optimality
//! only at toy sizes. For larger multi-interval instances (where the
//! problems are NP-hard and only the Theorem 3 approximation runs), these
//! bounds sandwich the optimum from below, which the experiment harness
//! uses to report honest optimality *gaps* instead of unverifiable ratios.
//!
//! All bounds exploit the **run structure** of the slot union: the allowed
//! slots of an instance split into maximal runs `R_1, …, R_m` separated by
//! dead zones, and no span of any schedule can cross a dead zone.

use crate::feasibility::slot_graph;
use crate::instance::MultiInstance;
use crate::time::{runs_of, TimeInterval};
use gaps_matching::{hopcroft_karp, BipartiteGraph};
use gaps_setcover::{greedy_cover, SetCoverInstance};

/// Lower bound on the minimum number of **spans** of any complete
/// schedule: the best of
///
/// 1. `⌈n / max run length⌉` (a span fits inside one run), and
/// 2. the minimum number of runs that can host all jobs (each occupied
///    run hosts ≥ 1 span), found by branch and bound over run subsets
///    with matching feasibility — exact when the run count is ≤ 20,
///    else falls back to a greedy relaxation which remains a valid bound
///    only through part 1 (the function then returns part 1 alone).
pub fn min_spans_lower_bound(inst: &MultiInstance) -> u64 {
    let n = inst.job_count() as u64;
    if n == 0 {
        return 0;
    }
    let slots = inst.slot_union();
    let runs = runs_of(&slots);
    let longest = runs.iter().map(|r| r.len()).max().unwrap_or(1);
    let by_capacity = n.div_ceil(longest);

    let by_skeleton = skeleton_spans_lower_bound(inst);
    if runs.len() > 20 {
        return by_capacity.max(by_skeleton);
    }
    match min_hosting_runs(inst, &runs) {
        Some(k) => by_capacity.max(k).max(by_skeleton),
        None => by_capacity, // infeasible instance: any bound is vacuous
    }
}

/// Skeleton lower bound on the minimum number of **spans**, after
/// Antoniadis–Kumar–Kumar's *skeleton* structure: jobs with a single
/// allowed slot are **mandatory** — every schedule occupies their slot —
/// so the sorted mandatory times form a fixed backbone. Two consecutive
/// mandatory times `t < t'` with `d = t' − t − 1 > 0` intermediate slots
/// can share a span only if the span covers all of `(t, t')`, which
/// requires every intermediate time to be an allowed slot of the union
/// *and* at least `d` distinct other jobs with an allowed slot strictly
/// inside `(t, t')` (each busy slot of a valid schedule hosts a job).
/// When either fails, a span break between `t` and `t'` is forced; the
/// bound is `forced breaks + 1`. Returns 0 when no job is mandatory (the
/// skeleton is empty and says nothing).
///
/// This is incomparable to the hosting-runs bound: it sees breaks
/// *inside* one run (too few jobs to pave the backbone) that run
/// structure alone cannot, which is exactly the regime the
/// [`crate::multi_exact`] branch-and-bound hits after decomposition.
pub fn skeleton_spans_lower_bound(inst: &MultiInstance) -> u64 {
    let mut mandatory: Vec<i64> = inst
        .jobs()
        .iter()
        .filter(|j| j.times().len() == 1)
        .map(|j| j.times()[0])
        .collect();
    if mandatory.is_empty() {
        return 0;
    }
    mandatory.sort_unstable();
    mandatory.dedup();
    let slots = inst.slot_union();
    let mut breaks = 0u64;
    for w in mandatory.windows(2) {
        let (t, next) = (w[0], w[1]);
        let d = (next - t - 1) as u64;
        if d == 0 {
            continue;
        }
        // Same span ⇒ all of (t, t') is busy ⇒ every intermediate time is
        // an allowed slot…
        let all_allowed = (t + 1..next).all(|u| slots.binary_search(&u).is_ok());
        // …and d distinct jobs fill them (mandatory jobs at t/t' cannot:
        // their only slot is outside the open interval).
        let fillers = inst
            .jobs()
            .iter()
            .filter(|j| j.times().iter().any(|&u| u > t && u < next))
            .count() as u64;
        if !all_allowed || fillers < d {
            breaks += 1;
        }
    }
    breaks + 1
}

/// Lower bound on the minimum number of **gaps** (spans − 1 convention).
pub fn min_gaps_lower_bound(inst: &MultiInstance) -> u64 {
    min_spans_lower_bound(inst).saturating_sub(1)
}

/// Set-cover relaxation lower bound on the minimum number of **spans**,
/// via the greedy cover's approximation guarantee (the paper's Section 4
/// connection run *backwards*):
///
/// any schedule with `S` spans covers every job with at most `S` occupied
/// runs, so the cover instance *(universe = jobs, one set per run `R` =
/// jobs with an allowed slot in `R`)* has `OPT_cover ≤ S`. The greedy
/// cover of size `g` satisfies `g ≤ H(d) · OPT_cover` (`d` = largest set),
/// hence `S ≥ ⌈g / H(d)⌉` — admissible, and computable in polynomial time
/// where [`min_spans_lower_bound`]'s hosting-runs search is exponential in
/// the run count. [`crate::multi_exact`] uses the max of both for its
/// early cutoff. Returns 0 for empty or cover-infeasible instances (the
/// bound is vacuous there).
pub fn setcover_spans_relaxation(inst: &MultiInstance) -> u64 {
    let n = inst.job_count();
    if n == 0 {
        return 0;
    }
    let runs = runs_of(&inst.slot_union());
    let sets: Vec<Vec<u32>> = runs
        .iter()
        .map(|r| {
            (0..n as u32)
                .filter(|&j| {
                    inst.jobs()[j as usize]
                        .times()
                        .iter()
                        .any(|&t| r.contains(t))
                })
                .collect()
        })
        .collect();
    let d = sets.iter().map(Vec::len).max().unwrap_or(0);
    let Ok(cover) = SetCoverInstance::new(n as u32, sets) else {
        return 0; // malformed cover instance: keep the bound vacuous
    };
    let Some(chosen) = greedy_cover(&cover) else {
        return 0; // unreachable for well-formed instances; stay vacuous
    };
    let harmonic: f64 = (1..=d.max(1)).map(|i| 1.0 / i as f64).sum();
    // Round conservatively (the 1e-6 slack dwarfs f64 error at these
    // magnitudes and can only *weaken* the bound, never unsound it).
    (chosen.len() as f64 / harmonic - 1e-6).ceil().max(0.0) as u64
}

/// Lower bound on the minimum **power** with transition cost `alpha`:
///
/// `n + α + (k* − 1) · min(α, w_min)` where `k*` is the hosting-runs bound
/// and `w_min` the narrowest dead zone — any schedule occupying `k* ≥ 2`
/// runs crosses `k* − 1` dead zones, paying at least `min(α, zone width)`
/// for each (idle-active bridge or sleep/wake).
pub fn min_power_lower_bound(inst: &MultiInstance, alpha: u64) -> u64 {
    let n = inst.job_count() as u64;
    if n == 0 {
        return 0;
    }
    let slots = inst.slot_union();
    let runs = runs_of(&slots);
    let k = min_spans_lower_bound(inst);
    let w_min = runs
        .windows(2)
        .map(|w| (w[1].start - w[0].end - 1) as u64)
        .min()
        .unwrap_or(0);
    n + alpha + k.saturating_sub(1) * alpha.min(w_min)
}

/// Exact minimum number of runs that can host a complete schedule
/// (`None` if the instance is infeasible). Branch and bound over run
/// subsets in decreasing-capacity order, feasibility via matching
/// restricted to the chosen runs.
fn min_hosting_runs(inst: &MultiInstance, runs: &[TimeInterval]) -> Option<u64> {
    let (graph, slots) = slot_graph(inst);
    // Map each slot index to its run index.
    let run_of_slot: Vec<usize> = slots
        .iter()
        .map(|&t| {
            runs.iter()
                .position(|r| r.contains(t))
                // analyzer: allow(panic-free): runs_of partitions the slot union, so every slot lies in some run
                .expect("slot in a run")
        })
        .collect();
    let n = inst.job_count();

    let feasible_with = |chosen: &[bool]| -> bool {
        let mut g = BipartiteGraph::new(n, slots.len());
        for u in 0..n as u32 {
            for &v in graph.neighbors(u) {
                if chosen[run_of_slot[v as usize]] {
                    g.add_edge(u, v);
                }
            }
        }
        g.dedup();
        hopcroft_karp(&g).size() == n
    };

    if !feasible_with(&vec![true; runs.len()]) {
        return None;
    }

    // Order runs by decreasing capacity so good solutions appear early.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(runs[i].len()));

    let mut best = runs.len() as u64;
    // Iterative deepening on the subset size: for small run counts this
    // is fast and exact.
    'sizes: for size in 1..=runs.len() {
        if size as u64 >= best {
            break;
        }
        // Capacity prune: the `size` biggest runs must fit n slots.
        let cap: u64 = order.iter().take(size).map(|&i| runs[i].len()).sum();
        if cap < n as u64 {
            continue;
        }
        let mut chosen = vec![false; runs.len()];
        if search_subsets(&order, 0, size, &mut chosen, &feasible_with) {
            best = size as u64;
            break 'sizes;
        }
    }
    Some(best)
}

fn search_subsets(
    order: &[usize],
    from: usize,
    remaining: usize,
    chosen: &mut Vec<bool>,
    feasible: &impl Fn(&[bool]) -> bool,
) -> bool {
    if remaining == 0 {
        return feasible(chosen);
    }
    if order.len() - from < remaining {
        return false;
    }
    for i in from..order.len() {
        chosen[order[i]] = true;
        if search_subsets(order, i + 1, remaining - 1, chosen, feasible) {
            chosen[order[i]] = false;
            return true;
        }
        chosen[order[i]] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::{min_power_multi, min_spans_multi};

    #[test]
    fn bounds_are_tight_on_forced_instances() {
        // Three far-apart pinned jobs: 3 runs, all mandatory.
        let inst = MultiInstance::from_times([vec![0], vec![10], vec![20]]).unwrap();
        assert_eq!(min_spans_lower_bound(&inst), 3);
        assert_eq!(min_gaps_lower_bound(&inst), 2);
        let (opt, _) = min_spans_multi(&inst).unwrap();
        assert_eq!(opt, 3);
    }

    #[test]
    fn hosting_bound_beats_capacity_bound() {
        // Two runs of length 3 each, 3 jobs; capacity bound says 1 but
        // jobs 0 and 2 live in different runs: hosting bound = 2.
        let inst =
            MultiInstance::from_times([vec![0, 1, 2], vec![0, 1, 2], vec![10, 11, 12]]).unwrap();
        assert_eq!(min_spans_lower_bound(&inst), 2);
    }

    #[test]
    fn capacity_bound_beats_hosting_bound() {
        // One run of length 2 can't host 2 jobs in one span... it can.
        // Use: run lengths 1 and 1 and 1 but all jobs flexible — hosting
        // bound may be n/1: 3 unit runs, 3 jobs each allowed anywhere:
        // hosting = 3, capacity = ceil(3/1) = 3; tie. Make capacity win:
        // single long run, many jobs: capacity = 1, hosting = 1. Tie too.
        // Capacity strictly wins when one run must hold several spans...
        // impossible: spans merge inside a run. So capacity bound's role
        // is runs > 20 fallback; just check consistency here.
        let inst =
            MultiInstance::from_times([vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![2, 3]]).unwrap();
        let lb = min_spans_lower_bound(&inst);
        let (opt, _) = min_spans_multi(&inst).unwrap();
        assert!(lb <= opt);
        assert_eq!(lb, 1);
        assert_eq!(opt, 1);
    }

    #[test]
    fn bounds_never_exceed_optimum_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=6))
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| rng.gen_range(0..14))
                        .collect()
                })
                .collect();
            let inst = MultiInstance::from_times(jobs).unwrap();
            let Some((opt_spans, _)) = min_spans_multi(&inst) else {
                continue;
            };
            assert!(
                min_spans_lower_bound(&inst) <= opt_spans,
                "seed {seed}: spans LB unsound"
            );
            for alpha in [0u64, 1, 3] {
                let (opt_power, _) = min_power_multi(&inst, alpha).unwrap();
                assert!(
                    min_power_lower_bound(&inst, alpha) <= opt_power,
                    "seed {seed}, alpha {alpha}: power LB unsound"
                );
            }
        }
    }

    #[test]
    fn setcover_relaxation_is_sound_and_sometimes_tight() {
        // Three far-apart pinned jobs: 3 singleton run-sets, greedy cover
        // = 3, H(1) = 1 → bound 3, tight.
        let inst = MultiInstance::from_times([vec![0], vec![10], vec![20]]).unwrap();
        assert_eq!(setcover_spans_relaxation(&inst), 3);

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5C);
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=6))
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| rng.gen_range(0..16))
                        .collect()
                })
                .collect();
            let inst = MultiInstance::from_times(jobs).unwrap();
            let Some((opt_spans, _)) = min_spans_multi(&inst) else {
                continue;
            };
            assert!(
                setcover_spans_relaxation(&inst) <= opt_spans,
                "seed {seed}: set-cover relaxation unsound"
            );
        }
    }

    #[test]
    fn skeleton_bound_sees_breaks_inside_a_single_run() {
        // One contiguous run 0..=4; mandatory jobs at 0 and 4 with only
        // one flexible job between them: the 3 intermediate slots cannot
        // all be busy, so the backbone must break. Hosting-runs says 1.
        let inst = MultiInstance::from_times([vec![0], vec![4], vec![1, 2, 3]]).unwrap();
        assert_eq!(skeleton_spans_lower_bound(&inst), 2);
        assert_eq!(min_spans_lower_bound(&inst), 2);
        let (opt, _) = min_spans_multi(&inst).unwrap();
        assert_eq!(opt, 2);
    }

    #[test]
    fn skeleton_bound_accepts_paveable_backbones() {
        // Mandatory at 0 and 3 with two flexible fillers covering 1, 2:
        // one span is genuinely possible; the skeleton must not break.
        let inst = MultiInstance::from_times([vec![0], vec![3], vec![1, 2], vec![1, 2]]).unwrap();
        assert_eq!(skeleton_spans_lower_bound(&inst), 1);
        let (opt, _) = min_spans_multi(&inst).unwrap();
        assert_eq!(opt, 1);
    }

    #[test]
    fn skeleton_bound_is_sound_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
            // Bias toward singleton jobs so the skeleton is non-trivial.
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=6))
                .map(|_| {
                    (0..rng.gen_range(1..=2))
                        .map(|_| rng.gen_range(0..12))
                        .collect()
                })
                .collect();
            let inst = MultiInstance::from_times(jobs).unwrap();
            let Some((opt_spans, _)) = min_spans_multi(&inst) else {
                continue;
            };
            assert!(
                skeleton_spans_lower_bound(&inst) <= opt_spans,
                "seed {seed}: skeleton bound unsound"
            );
        }
    }

    #[test]
    fn power_bound_counts_dead_zone_crossings() {
        // Two mandatory runs separated by a width-2 dead zone, α = 5:
        // power ≥ 2 + 5 + min(5, 2) = 9; optimum = 2 + 5 + 2 = 9 (bridge).
        let inst = MultiInstance::from_times([vec![0], vec![3]]).unwrap();
        assert_eq!(min_power_lower_bound(&inst, 5), 9);
        let (opt, _) = min_power_multi(&inst, 5).unwrap();
        assert_eq!(opt, 9);
    }

    #[test]
    fn empty_instance_bounds_are_zero() {
        let inst = MultiInstance::new(vec![]).unwrap();
        assert_eq!(min_spans_lower_bound(&inst), 0);
        assert_eq!(min_power_lower_bound(&inst, 9), 0);
    }

    #[test]
    fn infeasible_instance_degrades_gracefully() {
        let inst = MultiInstance::from_times([vec![0], vec![0]]).unwrap();
        // The bound is vacuous but must not panic.
        let _ = min_spans_lower_bound(&inst);
    }
}

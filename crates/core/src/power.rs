//! The power-consumption model and cost evaluation.
//!
//! A processor is either **active** (consuming 1 unit of energy per slot) or
//! **asleep** (consuming nothing); each transition sleep → active costs `α`.
//! A processor's total power is therefore
//!
//! ```text
//! power = (#active slots) + α · (#wake-ups)
//!       = (#active slots) + α · (#maximal active runs)
//! ```
//!
//! including the very first wake-up — this matches the paper's accounting
//! ("each job incurs power consumption of either 1 … or 1 + α", Section 3,
//! and "the optimal solution has a power consumption of n + M·α" for M
//! spans).
//!
//! Given a *schedule* (busy slots only), the optimal active profile is
//! forced per idle period: stay awake across a gap of length `g` iff
//! `g ≤ α`, making the gap cost `min(g, α)`. The functions here compute
//! both the forced-optimal cost of a schedule and the exact cost of an
//! explicit active profile (used to cross-check the simulator in E15).

use crate::schedule::{MultiSchedule, Schedule};
use crate::time::{runs_of, Time};

/// Power cost of one processor's sorted busy slots under transition cost
/// `alpha`, with optimal stay-awake decisions per gap:
/// `busy + α + Σ_gaps min(gap_len, α)` (0 if never busy).
pub fn processor_power(busy: &[Time], alpha: u64) -> u64 {
    if busy.is_empty() {
        return 0;
    }
    let runs = runs_of(busy);
    let mut cost = busy.len() as u64 + alpha; // execution + first wake-up
    for w in runs.windows(2) {
        let gap = (w[1].start - w[0].end - 1) as u64;
        cost += gap.min(alpha);
    }
    cost
}

/// Power cost of a multiprocessor schedule (sum over processors), with
/// optimal sleep decisions. This is the objective of the paper's Theorem 2
/// evaluated on a concrete schedule.
pub fn power_cost_multiproc(sched: &Schedule, processors: u32, alpha: u64) -> u64 {
    sched
        .busy_times(processors)
        .iter()
        .map(|busy| processor_power(busy, alpha))
        .sum()
}

/// Power cost of a single-processor multi-interval schedule, with optimal
/// sleep decisions — the objective of Theorem 3.
pub fn power_cost_single(sched: &MultiSchedule, alpha: u64) -> u64 {
    processor_power(&sched.occupied(), alpha)
}

/// Real-valued variant for the approximation pipeline, which accepts
/// non-integer `alpha`.
pub fn power_cost_single_f(sched: &MultiSchedule, alpha: f64) -> f64 {
    assert!(
        alpha >= 0.0 && alpha.is_finite(),
        "alpha must be finite and >= 0"
    );
    let occupied = sched.occupied();
    if occupied.is_empty() {
        return 0.0;
    }
    let runs = runs_of(&occupied);
    let mut cost = occupied.len() as f64 + alpha;
    for w in runs.windows(2) {
        let gap = (w[1].start - w[0].end - 1) as f64;
        cost += gap.min(alpha);
    }
    cost
}

/// Exact power cost of an explicit active profile: per processor, the
/// active slots must be sorted and deduplicated.
/// `Σ_q (|active_q| + α · runs(active_q))`.
///
/// # Panics
/// Debug-asserts that each profile is strictly increasing.
pub fn power_cost_of_active_profile(active: &[Vec<Time>], alpha: u64) -> u64 {
    active
        .iter()
        .map(|a| a.len() as u64 + alpha * crate::time::run_count(a) as u64)
        .sum()
}

/// The optimal active profile for a schedule: each processor is active in
/// its busy slots plus every gap of length ≤ `alpha` (bridging is exactly
/// break-even at `gap == alpha`; we bridge, which keeps costs equal and
/// wake-ups fewer).
pub fn optimal_active_profile(sched: &Schedule, processors: u32, alpha: u64) -> Vec<Vec<Time>> {
    sched
        .busy_times(processors)
        .iter()
        .map(|busy| {
            let mut active = Vec::with_capacity(busy.len());
            let runs = runs_of(busy);
            for (i, run) in runs.iter().enumerate() {
                active.extend(run.iter());
                if i + 1 < runs.len() {
                    let gap_len = (runs[i + 1].start - run.end - 1) as u64;
                    if gap_len <= alpha {
                        active.extend(run.end + 1..runs[i + 1].start);
                    }
                }
            }
            active
        })
        .collect()
}

/// A trivial lower bound on the optimal power of any feasible instance with
/// `n ≥ 1` jobs: all jobs execute (cost `n`) and at least one wake-up
/// happens (cost `α`).
pub fn power_lower_bound(n: usize, alpha: u64) -> u64 {
    if n == 0 {
        0
    } else {
        n as u64 + alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn processor_power_basics() {
        assert_eq!(processor_power(&[], 5), 0);
        // Single span of 3: 3 + α.
        assert_eq!(processor_power(&[1, 2, 3], 5), 8);
        // Two spans with a gap of 2 and α = 5: bridge (cost 2).
        assert_eq!(processor_power(&[1, 2, 5], 5), 3 + 5 + 2);
        // Same with α = 1: sleep (cost 1 more wake-up).
        assert_eq!(processor_power(&[1, 2, 5], 1), 3 + 1 + 1);
        // Gap exactly α: both choices cost the same.
        assert_eq!(processor_power(&[0, 3], 2), 2 + 2 + 2);
    }

    #[test]
    fn multiproc_power_sums_processors() {
        let s = Schedule::from_pairs([(0, 0), (4, 0), (0, 1)]);
        // P0: busy {0,4}, gap 3; P1: busy {0}.
        assert_eq!(power_cost_multiproc(&s, 2, 2), (2 + 2 + 2) + (1 + 2));
        assert_eq!(power_cost_multiproc(&s, 2, 10), (2 + 10 + 3) + (1 + 10));
    }

    #[test]
    fn active_profile_is_consistent_with_forced_cost() {
        let s = Schedule::from_pairs([(0, 0), (4, 0), (0, 1)]);
        for alpha in 0..6 {
            let profile = optimal_active_profile(&s, 2, alpha);
            assert_eq!(
                power_cost_of_active_profile(&profile, alpha),
                power_cost_multiproc(&s, 2, alpha),
                "alpha = {alpha}"
            );
        }
    }

    #[test]
    fn single_and_f64_agree_on_integers() {
        let m = MultiSchedule::new(vec![0, 2, 3, 9]);
        for alpha in 0u64..8 {
            assert_eq!(
                power_cost_single(&m, alpha) as f64,
                power_cost_single_f(&m, alpha as f64)
            );
        }
    }

    #[test]
    fn alpha_zero_counts_only_execution() {
        let m = MultiSchedule::new(vec![0, 5, 10]);
        assert_eq!(power_cost_single(&m, 0), 3);
    }

    #[test]
    fn lower_bound_sane() {
        assert_eq!(power_lower_bound(0, 9), 0);
        assert_eq!(power_lower_bound(4, 9), 13);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn f64_rejects_nan() {
        power_cost_single_f(&MultiSchedule::new(vec![0]), f64::NAN);
    }
}

//! Optimized exact solver for multi-interval instances — the engine's
//! replacement for routing multi-interval traffic to the deliberately
//! unoptimized [`crate::brute_force`] reference.
//!
//! All three objectives (gaps, spans, power) are supported and return
//! bit-identical optima to `brute_force`, which stays around as the
//! differential oracle (`tests/solver_differential.rs` re-proves the
//! equality on every run).
//!
//! # Why it is fast
//!
//! * **Time compression to critical times.** The solver never sweeps the
//!   timeline: it works on the sorted slot union (the instance's critical
//!   times) and the distances between consecutive occupied slots. A dead
//!   zone of any width contributes only its capped cost `min(width, α)`
//!   through the distance — the same argument `crate::compress` proves
//!   for the compression bijections, applied implicitly.
//! * **Left-to-right branch and bound.** Occupied slots are chosen in
//!   increasing time order, branching on *(next occupied slot, job placed
//!   there)*. Objective costs accrue incrementally per consecutive pair
//!   (`+1` span when a hole opens; `min(hole, α)` for power), so there is
//!   no per-leaf cost evaluation, and distinct slots are guaranteed by
//!   construction — no occupancy bitmask over slots.
//! * **Memoization keyed by [`crate::fasthash`].** The suffix value
//!   depends only on *(last occupied slot, set of placed jobs)*, packed
//!   into one `u64` key. That flips `brute_force`'s
//!   `jobs × 2^slots` state space to `slots × 2^jobs` — exponential in
//!   the (small, router-capped) job count instead of the slot count.
//! * **Dominance pruning between interchangeable jobs.** Jobs with
//!   identical allowed-interval sets are interchangeable; branching
//!   places them in canonical index order, collapsing the `c!`
//!   permutations of each duplicate class to one.
//! * **Admissible lower bounds for early cutoff.** Feasibility is decided
//!   up front by matching (no tree exhaustion on infeasible instances);
//!   a Lemma 3 completion supplies an upper bound, and when the best of
//!   [`crate::lower_bounds`] and the set-cover greedy relaxation
//!   ([`crate::lower_bounds::setcover_spans_relaxation`]) meets it, the
//!   search is skipped entirely. Inside the search, branches iterate in
//!   non-decreasing pair-cost order and cut off against the incumbent of
//!   their own state plus an admissible suffix bound (remaining busy
//!   cost) — exact, because a skipped branch provably cannot improve the
//!   state's minimum.

use crate::fasthash::FastMap;
use crate::instance::MultiInstance;
use crate::lower_bounds;
use crate::multi_interval::complete_schedule;
use crate::power::power_cost_single;
use crate::schedule::MultiSchedule;
use crate::time::Time;

const INF: u64 = u64::MAX;

/// Hard cap on jobs (placed-job sets are packed into a `u32` mask).
const MAX_JOBS: usize = 32;
/// Hard cap on distinct slots (slot indices are packed into `u16`).
const MAX_SLOTS: usize = 4096;

/// Minimum-gap schedule of a multi-interval instance, or `None` if
/// infeasible. Gaps are counted as spans − 1 (Theorem 6's convention),
/// so the span minimizer is the gap minimizer.
pub fn min_gaps_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    let (spans, sched) = min_spans_multi(inst)?;
    Some((spans.saturating_sub(1), sched))
}

/// Minimum number of spans (Section 5 convention: "gaps" = spans), or
/// `None` if infeasible.
pub fn min_spans_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    solve(inst, Cost::Spans)
}

/// Minimum-power schedule under transition cost `alpha` (Theorem 3's
/// problem, solved exactly), or `None` if infeasible.
pub fn min_power_multi(inst: &MultiInstance, alpha: u64) -> Option<(u64, MultiSchedule)> {
    solve(inst, Cost::Power { alpha })
}

/// The objective being minimized. Gaps reuse the span minimizer.
#[derive(Clone, Copy)]
enum Cost {
    Spans,
    Power { alpha: u64 },
}

impl Cost {
    /// Cost of occupying `slot` right after `prev` (`None` = first
    /// placement): busy cost, wake-ups, and the capped hole in between.
    #[inline]
    fn pair(self, prev: Option<Time>, slot: Time) -> u64 {
        match self {
            Cost::Spans => match prev {
                None => 1,
                Some(p) => u64::from(slot != p + 1),
            },
            Cost::Power { alpha } => match prev {
                None => 1 + alpha,
                Some(p) => 1 + ((slot - p - 1) as u64).min(alpha),
            },
        }
    }

    /// Admissible bound on the suffix cost of `r` still-unplaced jobs:
    /// each costs at least its busy slot under power, nothing provable
    /// under spans.
    #[inline]
    fn suffix_floor(self, r: usize) -> u64 {
        match self {
            Cost::Spans => 0,
            Cost::Power { .. } => r as u64,
        }
    }

    fn of_schedule(self, sched: &MultiSchedule) -> u64 {
        match self {
            Cost::Spans => sched.span_count(),
            Cost::Power { alpha } => power_cost_single(sched, alpha),
        }
    }

    fn instance_bound(self, inst: &MultiInstance) -> u64 {
        match self {
            Cost::Spans => lower_bounds::min_spans_lower_bound(inst)
                .max(lower_bounds::setcover_spans_relaxation(inst)),
            Cost::Power { alpha } => lower_bounds::min_power_lower_bound(inst, alpha),
        }
    }
}

fn solve(inst: &MultiInstance, cost: Cost) -> Option<(u64, MultiSchedule)> {
    let n = inst.job_count();
    if n == 0 {
        return Some((0, MultiSchedule::new(vec![])));
    }
    assert!(
        n <= MAX_JOBS,
        "multi_exact supports at most {MAX_JOBS} jobs, got {n}"
    );
    let slots = inst.slot_union();
    assert!(
        slots.len() <= MAX_SLOTS,
        "multi_exact supports at most {MAX_SLOTS} distinct slots, got {}",
        slots.len()
    );

    // Exact feasibility + upper bound in one matching pass (Lemma 3).
    let greedy = complete_schedule(inst, &vec![None; n])?;
    let upper = cost.of_schedule(&greedy);
    if cost.instance_bound(inst) >= upper {
        // The admissible bound meets the greedy witness: certified
        // optimal without opening the search at all.
        return Some((upper, greedy));
    }

    let mut solver = Solver::new(inst, &slots, cost);
    let best = solver.suffix(None, 0);
    assert_ne!(best, INF, "matching said feasible, search must agree");
    let times = solver.reconstruct(best);
    let sched = MultiSchedule::new(times);
    debug_assert_eq!(sched.verify(inst), Ok(()));
    debug_assert_eq!(cost.of_schedule(&sched), best);
    Some((best, sched))
}

struct Solver {
    n: usize,
    cost: Cost,
    /// Sorted slot-union times (the critical times).
    times: Vec<Time>,
    /// Jobs allowed at each slot, ascending job index.
    jobs_at: Vec<Vec<u8>>,
    /// Last allowed slot index of each job.
    max_slot: Vec<u16>,
    /// For each job, the previous job with the identical allowed set
    /// (duplicate-class chain used by the dominance pruning).
    twin_before: Vec<Option<u8>>,
    /// Suffix-value memo: `(last slot + 1) << 32 | placed mask` → value.
    memo: FastMap<u64, u64>,
    /// Re-entrancy guard for the debug-build memo audit: while a hit is
    /// being re-derived, nested hits must return without re-verifying or
    /// the recomputation becomes exponential again.
    #[cfg(debug_assertions)]
    verifying: bool,
}

impl Solver {
    fn new(inst: &MultiInstance, slots: &[Time], cost: Cost) -> Solver {
        let n = inst.job_count();
        let mut jobs_at = vec![Vec::new(); slots.len()];
        let mut max_slot = vec![0u16; n];
        for (j, job) in inst.jobs().iter().enumerate() {
            for t in job.times() {
                // analyzer: allow(panic-free): slot_union() is the sorted set of exactly these job times
                let s = slots.binary_search(t).expect("slot in union");
                jobs_at[s].push(j as u8);
                max_slot[j] = max_slot[j].max(s as u16);
            }
        }
        // Duplicate classes: jobs share a class iff their allowed sets
        // (hence interval structures) are identical.
        let mut twin_before: Vec<Option<u8>> = vec![None; n];
        for (j, twin) in twin_before.iter_mut().enumerate().skip(1) {
            *twin = (0..j)
                .rev()
                .find(|&i| inst.jobs()[i].times() == inst.jobs()[j].times())
                .map(|i| i as u8);
        }
        Solver {
            n,
            cost,
            times: slots.to_vec(),
            jobs_at,
            max_slot,
            twin_before,
            memo: FastMap::with_capacity_and_hasher(1 << 10, Default::default()),
            #[cfg(debug_assertions)]
            verifying: false,
        }
    }

    /// Debug-build memo audit: re-derive a hit state once (children are
    /// served from the memo) and check the cached value is still the
    /// exact recomputed one — a stale or clobbered entry would silently
    /// corrupt the optimum and every reconstruction step that follows it.
    #[cfg(debug_assertions)]
    fn audit_memo_hit(&mut self, last: Option<u16>, mask: u32, cached: u64) {
        if self.verifying {
            return;
        }
        self.verifying = true;
        let fresh = self.suffix_compute(last, mask);
        debug_assert_eq!(
            cached, fresh,
            "multi_exact memo entry diverged from recomputation"
        );
        self.verifying = false;
    }

    #[inline]
    fn full(&self) -> u32 {
        if self.n == 32 {
            u32::MAX
        } else {
            (1u32 << self.n) - 1
        }
    }

    /// A job may be branched on only if every unplaced twin with a
    /// smaller index is gone — interchangeable jobs go in index order.
    #[inline]
    fn canonical(&self, job: u8, mask: u32) -> bool {
        match self.twin_before[job as usize] {
            None => true,
            Some(prev) => mask & (1 << prev) != 0,
        }
    }

    /// Exact minimum cost of placing every job not in `mask` at slots
    /// strictly after `last`, including the pair cost back to `last`.
    /// `INF` iff no completion exists.
    fn suffix(&mut self, last: Option<u16>, mask: u32) -> u64 {
        if mask == self.full() {
            return 0;
        }
        let key = (last.map_or(0, |i| i as u64 + 1)) << 32 | mask as u64;
        if let Some(&v) = self.memo.get(&key) {
            #[cfg(debug_assertions)]
            self.audit_memo_hit(last, mask, v);
            return v;
        }
        let best = self.suffix_compute(last, mask);
        self.memo.insert(key, best);
        best
    }

    /// The uncached body of [`Solver::suffix`]: branch over the next
    /// occupied slot and the canonical job placed there.
    fn suffix_compute(&mut self, last: Option<u16>, mask: u32) -> u64 {
        let r = self.n - mask.count_ones() as usize;
        // Every unplaced job lands at or after the *next* occupied slot,
        // so that slot is bounded by the tightest remaining deadline —
        // and must leave r − 1 free slots behind it.
        let mut hi = (self.times.len() - r) as u16;
        for j in 0..self.n {
            if mask & (1 << j) == 0 {
                hi = hi.min(self.max_slot[j]);
            }
        }
        let lo = last.map_or(0, |i| i + 1);
        let prev_time = last.map(|i| self.times[i as usize]);
        let floor = self.cost.suffix_floor(r - 1);
        let mut best = INF;
        for s in lo..=hi {
            let pair = self.cost.pair(prev_time, self.times[s as usize]);
            // Pair costs are non-decreasing in the slot (holes only grow),
            // so once even the admissible floor cannot beat the incumbent
            // the remaining branches are dominated — cut the whole loop.
            if best != INF && pair.saturating_add(floor) >= best {
                break;
            }
            for k in 0..self.jobs_at[s as usize].len() {
                let job = self.jobs_at[s as usize][k];
                if mask & (1 << job) != 0 || !self.canonical(job, mask) {
                    continue;
                }
                let v = self.suffix(Some(s), mask | 1 << job);
                if v != INF {
                    best = best.min(pair + v);
                }
            }
        }
        best
    }

    /// Re-walk the memoized search along an optimal branch, returning the
    /// per-job times (original job order).
    fn reconstruct(&mut self, total: u64) -> Vec<Time> {
        let mut times = vec![0; self.n];
        let mut mask = 0u32;
        let mut last: Option<u16> = None;
        let mut target = total;
        while mask != self.full() {
            let prev_time = last.map(|i| self.times[i as usize]);
            let lo = last.map_or(0, |i| i + 1);
            let mut stepped = false;
            'slots: for s in lo..self.times.len() as u16 {
                let pair = self.cost.pair(prev_time, self.times[s as usize]);
                if pair > target {
                    break;
                }
                for k in 0..self.jobs_at[s as usize].len() {
                    let job = self.jobs_at[s as usize][k];
                    if mask & (1 << job) != 0 || !self.canonical(job, mask) {
                        continue;
                    }
                    let v = self.suffix(Some(s), mask | 1 << job);
                    if v != INF && pair + v == target {
                        times[job as usize] = self.times[s as usize];
                        mask |= 1 << job;
                        last = Some(s);
                        target -= pair;
                        stepped = true;
                        break 'slots;
                    }
                }
            }
            assert!(stepped, "reconstruction must follow an optimal branch");
        }
        // Duplicate-class members are interchangeable: the canonical
        // ordering may have assigned a twin's slot; any bijection within
        // a class is valid, and index order is what the walk produced.
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;

    fn inst(times: &[Vec<i64>]) -> MultiInstance {
        MultiInstance::from_times(times.to_vec()).unwrap()
    }

    #[test]
    fn matches_brute_force_on_worked_examples() {
        let cases = [
            vec![vec![0, 4], vec![5]],
            vec![vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11]],
            vec![vec![0, 10], vec![1, 11], vec![5]],
            vec![vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]],
            vec![vec![0], vec![1, 5], vec![2, 6], vec![7]],
            vec![vec![3], vec![3, 4], vec![4, 5]],
        ];
        for times in cases {
            let i = inst(&times);
            assert_eq!(
                min_gaps_multi(&i).map(|(v, _)| v),
                brute_force::min_gaps_multi(&i).map(|(v, _)| v),
                "gaps diverged on {times:?}"
            );
            assert_eq!(
                min_spans_multi(&i).map(|(v, _)| v),
                brute_force::min_spans_multi(&i).map(|(v, _)| v),
                "spans diverged on {times:?}"
            );
            for alpha in [0u64, 1, 2, 5, 9] {
                assert_eq!(
                    min_power_multi(&i, alpha).map(|(v, _)| v),
                    brute_force::min_power_multi(&i, alpha).map(|(v, _)| v),
                    "power diverged on {times:?} α={alpha}"
                );
            }
        }
    }

    #[test]
    fn witnesses_verify_and_attain_their_values() {
        let i = inst(&[vec![0, 7], vec![3], vec![8, 9], vec![4, 5], vec![12]]);
        let (gaps, sched) = min_gaps_multi(&i).unwrap();
        sched.verify(&i).unwrap();
        assert_eq!(sched.gap_count(), gaps);
        let (power, psched) = min_power_multi(&i, 3).unwrap();
        psched.verify(&i).unwrap();
        assert_eq!(power_cost_single(&psched, 3), power);
    }

    #[test]
    fn infeasible_detected_without_search() {
        let i = inst(&[vec![3], vec![3]]);
        assert_eq!(min_gaps_multi(&i), None);
        assert_eq!(min_spans_multi(&i), None);
        assert_eq!(min_power_multi(&i, 4), None);
    }

    #[test]
    fn empty_instance() {
        let i = MultiInstance::new(vec![]).unwrap();
        assert_eq!(min_gaps_multi(&i).unwrap().0, 0);
        assert_eq!(min_power_multi(&i, 7).unwrap().0, 0);
    }

    #[test]
    fn duplicate_jobs_exercise_the_dominance_pruning() {
        // Eight interchangeable jobs over one window: one span, and the
        // canonical ordering must still produce a valid bijection.
        let times: Vec<Vec<i64>> = (0..8).map(|_| (0..10).collect()).collect();
        let i = inst(&times);
        let (spans, sched) = min_spans_multi(&i).unwrap();
        assert_eq!(spans, 1);
        sched.verify(&i).unwrap();
    }

    #[test]
    fn early_cutoff_agrees_with_search_on_forced_instances() {
        // Three far-apart pinned jobs: LB = UB = 3 spans; the shortcut
        // path must return the same value the search would.
        let i = inst(&[vec![0], vec![10], vec![20]]);
        assert_eq!(min_spans_multi(&i).unwrap().0, 3);
        assert_eq!(
            min_spans_multi(&i).unwrap().0,
            brute_force::min_spans_multi(&i).unwrap().0
        );
    }

    #[test]
    fn randomized_bit_match_against_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37));
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=7))
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| rng.gen_range(0..18))
                        .collect()
                })
                .collect();
            let i = inst(&jobs);
            assert_eq!(
                min_gaps_multi(&i).map(|(v, _)| v),
                brute_force::min_gaps_multi(&i).map(|(v, _)| v),
                "seed {seed}: gaps diverged on {jobs:?}"
            );
            for alpha in [0u64, 1, 3, 6] {
                assert_eq!(
                    min_power_multi(&i, alpha).map(|(v, _)| v),
                    brute_force::min_power_multi(&i, alpha).map(|(v, _)| v),
                    "seed {seed}: power diverged on {jobs:?} α={alpha}"
                );
            }
        }
    }
}

//! Optimized exact solver for multi-interval instances — the engine's
//! replacement for routing multi-interval traffic to the deliberately
//! unoptimized [`crate::brute_force`] reference.
//!
//! All three objectives (gaps, spans, power) are supported and return
//! bit-identical optima to `brute_force`, which stays around as the
//! differential oracle (`tests/solver_differential.rs` re-proves the
//! equality on every run).
//!
//! # Why it is fast
//!
//! * **Time compression to critical times.** The solver never sweeps the
//!   timeline: it works on the sorted slot union (the instance's critical
//!   times) and the distances between consecutive occupied slots. A dead
//!   zone of any width contributes only its capped cost `min(width, α)`
//!   through the distance — the same argument `crate::compress` proves
//!   for the compression bijections, applied implicitly.
//! * **Connected-component decomposition.** Before any search opens, the
//!   timeline is cut at dead zones that no job's allowed window crosses
//!   (and, under power, that are at least `α` wide — see
//!   [`Cost::min_zone`]). No span of any schedule crosses such a zone and
//!   the crossing pair cost equals the split-off side's own
//!   first-placement cost, so the components solve independently and
//!   their optima **add** exactly. Exponential cost is paid only by the
//!   coupled core, never by the instance's full job count.
//! * **Left-to-right branch and bound.** Within a component, occupied
//!   slots are chosen in increasing time order, branching on *(next
//!   occupied slot, job placed there)*. Objective costs accrue
//!   incrementally per consecutive pair (`+1` span when a hole opens;
//!   `min(hole, α)` for power), so there is no per-leaf cost evaluation,
//!   and distinct slots are guaranteed by construction — no occupancy
//!   bitmask over slots.
//! * **Memoization keyed by [`crate::fasthash`].** The suffix value
//!   depends only on *(last occupied slot, set of placed jobs)*, packed
//!   into one `u128` key (16-bit slot, 64-bit job mask). That flips
//!   `brute_force`'s `jobs × 2^slots` state space to `slots × 2^jobs` —
//!   exponential in the (component-local, router-capped) job count
//!   instead of the slot count.
//! * **Dominance pruning between interchangeable jobs.** Jobs with
//!   identical allowed-interval sets are interchangeable; branching
//!   places them in canonical index order, collapsing the `c!`
//!   permutations of each duplicate class to one.
//! * **Admissible lower bounds for early cutoff.** Feasibility is decided
//!   up front by matching (no tree exhaustion on infeasible instances);
//!   a Lemma 3 completion supplies an upper bound, and when the best of
//!   [`crate::lower_bounds`] (including the skeleton bound
//!   [`crate::lower_bounds::skeleton_spans_lower_bound`]) and the
//!   set-cover greedy relaxation
//!   ([`crate::lower_bounds::setcover_spans_relaxation`]) meets it, the
//!   search is skipped entirely. Inside the search, branches iterate in
//!   non-decreasing pair-cost order and cut off against the incumbent of
//!   their own state plus an admissible suffix bound (remaining busy
//!   cost) — exact, because a skipped branch provably cannot improve the
//!   state's minimum.
//!
//! # Parallelism
//!
//! The module spawns no threads (the analyzer pins thread creation to
//! the engine's worker pool). Instead [`ParallelPlan`] exposes the
//! search as data: the decomposition, each component's **root frontier**
//! (the canonical first-placement branches), and a shared [`AtomicU64`]
//! incumbent per component. An external driver — `gaps_engine`'s
//! work-stealing pool — runs [`ParallelPlan::run_task`] on each
//! [`SubtreeTask`] in any order on any thread and folds the outcomes
//! with [`ParallelPlan::finish`]. The result is bit-identical to the
//! sequential solver for every thread count: each non-skipped subtree
//! reports its *exact* optimum, root-level skipping is strict
//! (`bound > incumbent`), so every subtree attaining the component
//! optimum always reports it, and the winner is the first such root in
//! canonical order — precisely the branch sequential reconstruction
//! takes.

use crate::fasthash::FastMap;
use crate::instance::MultiInstance;
use crate::lower_bounds;
use crate::multi_interval::complete_schedule;
use crate::power::power_cost_single;
use crate::schedule::MultiSchedule;
use crate::time::Time;
use std::sync::atomic::{AtomicU64, Ordering};

const INF: u64 = u64::MAX;

/// Hard cap on jobs: placed-job sets are packed into a `u64` mask, and
/// the router caps multi-exact routing at exactly this job count.
const MAX_JOBS: usize = 64;
/// Hard cap on distinct slots (slot indices are packed into `u16`).
const MAX_SLOTS: usize = 4096;

// The branching masks and the memo key layout both encode "one bit per
// job in a u64"; widening MAX_JOBS past the mask width would silently
// truncate placed-job sets.
const _: () = assert!(
    MAX_JOBS <= u64::BITS as usize,
    "MAX_JOBS must fit the u64 placed-job mask"
);

/// The objective a multi-interval solve minimizes — the public selector
/// for the decomposed/parallel entry points ([`solve_multi_stats`],
/// [`ParallelPlan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiObjective {
    /// Idle periods (spans − 1, Theorem 6's convention).
    Gaps,
    /// Wake-ups (Section 5's "gaps" = spans convention).
    Spans,
    /// Busy slots + `alpha` per wake-up, holes capped at `alpha`.
    Power {
        /// Transition (wake-up) cost.
        alpha: u64,
    },
}

impl MultiObjective {
    fn cost(self) -> Cost {
        match self {
            // Gaps reuse the span minimizer: gaps = spans − 1.
            MultiObjective::Gaps | MultiObjective::Spans => Cost::Spans,
            MultiObjective::Power { alpha } => Cost::Power { alpha },
        }
    }

    fn finalize(self, spans_or_power: u64) -> u64 {
        match self {
            MultiObjective::Gaps => spans_or_power.saturating_sub(1),
            _ => spans_or_power,
        }
    }
}

/// Counters describing one solve's search effort — the observability
/// feed for `STATS v3` (`search.*` rows) and `EngineReport`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Branch-and-bound states expanded (memo misses).
    pub nodes_expanded: u64,
    /// Job count of each decomposed component, left to right.
    pub component_jobs: Vec<usize>,
    /// Root-frontier subtree tasks enumerated (0 on the sequential path).
    pub subtree_tasks: u64,
    /// Subtree tasks executed by a worker other than the first — filled
    /// in by the engine driver; always 0 from the core solver.
    pub subtree_steals: u64,
    /// Times a shared incumbent bound was tightened (parallel path).
    pub incumbent_updates: u64,
}

impl SearchStats {
    fn note_components(&mut self, comps: &[Vec<usize>]) {
        self.component_jobs = comps.iter().map(Vec::len).collect();
    }
}

/// Minimum-gap schedule of a multi-interval instance, or `None` if
/// infeasible. Gaps are counted as spans − 1 (Theorem 6's convention),
/// so the span minimizer is the gap minimizer.
pub fn min_gaps_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    solve_multi_stats(inst, MultiObjective::Gaps).0
}

/// Minimum number of spans (Section 5 convention: "gaps" = spans), or
/// `None` if infeasible.
pub fn min_spans_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    solve_multi_stats(inst, MultiObjective::Spans).0
}

/// Minimum-power schedule under transition cost `alpha` (Theorem 3's
/// problem, solved exactly), or `None` if infeasible.
pub fn min_power_multi(inst: &MultiInstance, alpha: u64) -> Option<(u64, MultiSchedule)> {
    solve_multi_stats(inst, MultiObjective::Power { alpha }).0
}

/// Decomposed sequential solve with search statistics: cut the timeline
/// into independent components, solve each with the branch-and-bound,
/// and add the optima (spans and power both add across qualifying dead
/// zones; gaps are finalized as spans − 1).
pub fn solve_multi_stats(
    inst: &MultiInstance,
    objective: MultiObjective,
) -> (Option<(u64, MultiSchedule)>, SearchStats) {
    let mut stats = SearchStats::default();
    let cost = objective.cost();
    let n = inst.job_count();
    if n == 0 {
        return (
            Some((objective.finalize(0), MultiSchedule::new(vec![]))),
            stats,
        );
    }
    check_caps(inst);
    let comps = decompose_jobs(inst, cost.min_zone());
    stats.note_components(&comps);
    if comps.len() == 1 {
        let solved = solve_component(inst, cost, &mut stats)
            .map(|(v, sched)| (objective.finalize(v), sched));
        return (solved, stats);
    }
    let mut times = vec![0; n];
    let mut total = 0u64;
    for jobs in &comps {
        let sub = sub_instance(inst, jobs);
        let Some((value, sched)) = solve_component(&sub, cost, &mut stats) else {
            // One infeasible component makes the whole instance
            // infeasible (the matching decomposes along the same cuts).
            return (None, stats);
        };
        total += value;
        for (local, &j) in jobs.iter().enumerate() {
            times[j] = sched.times()[local];
        }
    }
    (
        Some((objective.finalize(total), MultiSchedule::new(times))),
        stats,
    )
}

/// The pre-decomposition solver: one branch-and-bound over the whole
/// instance. Kept public as the **differential reference** that pins the
/// decomposition's exactness (`tests/solver_differential.rs` asserts
/// equal optima against [`solve_multi_stats`] and `brute_force`).
pub fn solve_multi_undecomposed(
    inst: &MultiInstance,
    objective: MultiObjective,
) -> Option<(u64, MultiSchedule)> {
    let cost = objective.cost();
    if inst.job_count() == 0 {
        return Some((objective.finalize(0), MultiSchedule::new(vec![])));
    }
    check_caps(inst);
    let mut stats = SearchStats::default();
    solve_component(inst, cost, &mut stats).map(|(v, sched)| (objective.finalize(v), sched))
}

fn check_caps(inst: &MultiInstance) {
    let n = inst.job_count();
    assert!(
        n <= MAX_JOBS,
        "multi_exact supports at most {MAX_JOBS} jobs, got {n}"
    );
    let slots = inst.slot_union().len();
    assert!(
        slots <= MAX_SLOTS,
        "multi_exact supports at most {MAX_SLOTS} distinct slots, got {slots}"
    );
}

/// The objective being minimized. Gaps reuse the span minimizer.
#[derive(Clone, Copy)]
enum Cost {
    Spans,
    Power { alpha: u64 },
}

impl Cost {
    /// Cost of occupying `slot` right after `prev` (`None` = first
    /// placement): busy cost, wake-ups, and the capped hole in between.
    #[inline]
    fn pair(self, prev: Option<Time>, slot: Time) -> u64 {
        match self {
            Cost::Spans => match prev {
                None => 1,
                Some(p) => u64::from(slot != p + 1),
            },
            Cost::Power { alpha } => match prev {
                None => 1 + alpha,
                Some(p) => 1 + ((slot - p - 1) as u64).min(alpha),
            },
        }
    }

    /// Admissible bound on the suffix cost of `r` still-unplaced jobs:
    /// each costs at least its busy slot under power, nothing provable
    /// under spans.
    #[inline]
    fn suffix_floor(self, r: usize) -> u64 {
        match self {
            Cost::Spans => 0,
            Cost::Power { .. } => r as u64,
        }
    }

    /// Minimum dead-zone width at which the timeline may be cut exactly.
    ///
    /// Spans: any dead zone (width ≥ 1) — no span crosses it, and the
    /// crossing pair cost (1) equals the right side's first-placement
    /// cost. Power: the crossing pair costs `1 + min(hole, α)`; with
    /// `hole ≥ width ≥ α` that is `1 + α`, exactly the split-off side's
    /// own wake-up, so cuts are exact only at zones of width ≥ `α`.
    #[inline]
    fn min_zone(self) -> u64 {
        match self {
            Cost::Spans => 1,
            Cost::Power { alpha } => alpha.max(1),
        }
    }

    fn of_schedule(self, sched: &MultiSchedule) -> u64 {
        match self {
            Cost::Spans => sched.span_count(),
            Cost::Power { alpha } => power_cost_single(sched, alpha),
        }
    }

    fn instance_bound(self, inst: &MultiInstance) -> u64 {
        match self {
            Cost::Spans => lower_bounds::min_spans_lower_bound(inst)
                .max(lower_bounds::setcover_spans_relaxation(inst)),
            Cost::Power { alpha } => lower_bounds::min_power_lower_bound(inst, alpha),
        }
    }
}

/// Cut the instance at dead zones of width ≥ `min_zone` that no job's
/// allowed window crosses; returns original job indices grouped per
/// component, left to right (each job's relative order preserved).
fn decompose_jobs(inst: &MultiInstance, min_zone: u64) -> Vec<Vec<usize>> {
    let slots = inst.slot_union();
    let n = inst.job_count();
    if slots.is_empty() {
        return Vec::new();
    }
    // Job windows [first, last allowed time]; every valid job has ≥ 1
    // slot, so first/last exist.
    let mut firsts: Vec<(Time, usize)> = (0..n).map(|j| (inst.jobs()[j].times()[0], j)).collect();
    firsts.sort_unstable();
    // Sweep the union left to right. A cut between consecutive union
    // slots is valid iff the zone is wide enough AND no started job's
    // window reaches past it.
    let mut cuts: Vec<Time> = Vec::new(); // cut = last slot time before the zone
    let mut started = 0usize;
    let mut reach = Time::MIN; // max last-allowed-time over started jobs
    for w in slots.windows(2) {
        let (here, next) = (w[0], w[1]);
        while started < n && firsts[started].0 <= here {
            let job = firsts[started].1;
            // analyzer: allow(panic-free): every valid MultiJob has ≥ 1 slot
            let last = *inst.jobs()[job].times().last().expect("job has slots");
            reach = reach.max(last);
            started += 1;
        }
        let width = (next - here - 1) as u64;
        if width >= min_zone && reach <= here {
            cuts.push(here);
        }
    }
    let mut comps: Vec<Vec<usize>> = vec![Vec::new(); cuts.len() + 1];
    for j in 0..n {
        let first = inst.jobs()[j].times()[0];
        // Segment = number of cuts strictly left of the job's window.
        let seg = cuts.partition_point(|&c| c < first);
        comps[seg].push(j);
    }
    // Every segment holds ≥ 1 job (each union slot belongs to some job
    // that lies entirely within its segment), but keep this robust.
    comps.retain(|c| !c.is_empty());
    comps
}

/// Sub-instance over the given original job indices.
fn sub_instance(inst: &MultiInstance, jobs: &[usize]) -> MultiInstance {
    let times = jobs.iter().map(|&j| inst.jobs()[j].times().to_vec());
    // analyzer: allow(panic-free): sub-jobs of a valid instance each keep ≥ 1 slot
    MultiInstance::from_times(times).expect("component jobs are valid")
}

/// Solve one (already connected) component: matching feasibility, early
/// lower-bound cutoff, then the memoized branch-and-bound.
fn solve_component(
    inst: &MultiInstance,
    cost: Cost,
    stats: &mut SearchStats,
) -> Option<(u64, MultiSchedule)> {
    let n = inst.job_count();
    // Exact feasibility + upper bound in one matching pass (Lemma 3).
    let greedy = complete_schedule(inst, &vec![None; n])?;
    let upper = cost.of_schedule(&greedy);
    if cost.instance_bound(inst) >= upper {
        // The admissible bound meets the greedy witness: certified
        // optimal without opening the search at all.
        return Some((upper, greedy));
    }

    let slots = inst.slot_union();
    let mut solver = Solver::new(inst, &slots, cost);
    let best = solver.suffix(None, 0);
    assert_ne!(best, INF, "matching said feasible, search must agree");
    let times = solver.reconstruct(best);
    stats.nodes_expanded += solver.nodes;
    let sched = MultiSchedule::new(times);
    debug_assert_eq!(sched.verify(inst), Ok(()));
    debug_assert_eq!(cost.of_schedule(&sched), best);
    Some((best, sched))
}

struct Solver {
    n: usize,
    cost: Cost,
    /// Sorted slot-union times (the critical times).
    times: Vec<Time>,
    /// Jobs allowed at each slot, ascending job index.
    jobs_at: Vec<Vec<u8>>,
    /// Last allowed slot index of each job.
    max_slot: Vec<u16>,
    /// For each job, the previous job with the identical allowed set
    /// (duplicate-class chain used by the dominance pruning).
    twin_before: Vec<Option<u8>>,
    /// Suffix-value memo: `(last slot + 1) << 64 | placed mask` → value.
    memo: FastMap<u128, u64>,
    /// Branch-and-bound states expanded (memo misses).
    nodes: u64,
    /// Re-entrancy guard for the debug-build memo audit: while a hit is
    /// being re-derived, nested hits must return without re-verifying or
    /// the recomputation becomes exponential again.
    #[cfg(debug_assertions)]
    verifying: bool,
}

impl Solver {
    fn new(inst: &MultiInstance, slots: &[Time], cost: Cost) -> Solver {
        let n = inst.job_count();
        let mut jobs_at = vec![Vec::new(); slots.len()];
        let mut max_slot = vec![0u16; n];
        for (j, job) in inst.jobs().iter().enumerate() {
            for t in job.times() {
                // analyzer: allow(panic-free): slot_union() is the sorted set of exactly these job times
                let s = slots.binary_search(t).expect("slot in union");
                jobs_at[s].push(j as u8);
                max_slot[j] = max_slot[j].max(s as u16);
            }
        }
        // Duplicate classes: jobs share a class iff their allowed sets
        // (hence interval structures) are identical.
        let mut twin_before: Vec<Option<u8>> = vec![None; n];
        for (j, twin) in twin_before.iter_mut().enumerate().skip(1) {
            *twin = (0..j)
                .rev()
                .find(|&i| inst.jobs()[i].times() == inst.jobs()[j].times())
                .map(|i| i as u8);
        }
        Solver {
            n,
            cost,
            times: slots.to_vec(),
            jobs_at,
            max_slot,
            twin_before,
            memo: FastMap::with_capacity_and_hasher(1 << 10, Default::default()),
            nodes: 0,
            #[cfg(debug_assertions)]
            verifying: false,
        }
    }

    /// Debug-build memo audit: re-derive a hit state once (children are
    /// served from the memo) and check the cached value is still the
    /// exact recomputed one — a stale or clobbered entry would silently
    /// corrupt the optimum and every reconstruction step that follows it.
    #[cfg(debug_assertions)]
    fn audit_memo_hit(&mut self, last: Option<u16>, mask: u64, cached: u64) {
        if self.verifying {
            return;
        }
        self.verifying = true;
        let fresh = self.suffix_compute(last, mask);
        debug_assert_eq!(
            cached, fresh,
            "multi_exact memo entry diverged from recomputation"
        );
        self.verifying = false;
    }

    #[inline]
    fn full(&self) -> u64 {
        if self.n == MAX_JOBS {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    /// A job may be branched on only if every unplaced twin with a
    /// smaller index is gone — interchangeable jobs go in index order.
    #[inline]
    fn canonical(&self, job: u8, mask: u64) -> bool {
        match self.twin_before[job as usize] {
            None => true,
            Some(prev) => mask & (1u64 << prev) != 0,
        }
    }

    /// Exact minimum cost of placing every job not in `mask` at slots
    /// strictly after `last`, including the pair cost back to `last`.
    /// `INF` iff no completion exists.
    fn suffix(&mut self, last: Option<u16>, mask: u64) -> u64 {
        if mask == self.full() {
            return 0;
        }
        let key = (last.map_or(0, |i| i as u128 + 1)) << 64 | mask as u128;
        if let Some(&v) = self.memo.get(&key) {
            #[cfg(debug_assertions)]
            self.audit_memo_hit(last, mask, v);
            return v;
        }
        let best = self.suffix_compute(last, mask);
        self.memo.insert(key, best);
        best
    }

    /// The uncached body of [`Solver::suffix`]: branch over the next
    /// occupied slot and the canonical job placed there.
    fn suffix_compute(&mut self, last: Option<u16>, mask: u64) -> u64 {
        self.nodes += 1;
        let r = self.n - mask.count_ones() as usize;
        // Every unplaced job lands at or after the *next* occupied slot,
        // so that slot is bounded by the tightest remaining deadline —
        // and must leave r − 1 free slots behind it.
        let mut hi = (self.times.len() - r) as u16;
        for j in 0..self.n {
            if mask & (1u64 << j) == 0 {
                hi = hi.min(self.max_slot[j]);
            }
        }
        let lo = last.map_or(0, |i| i + 1);
        let prev_time = last.map(|i| self.times[i as usize]);
        let floor = self.cost.suffix_floor(r - 1);
        let mut best = INF;
        for s in lo..=hi {
            let pair = self.cost.pair(prev_time, self.times[s as usize]);
            // Pair costs are non-decreasing in the slot (holes only grow),
            // so once even the admissible floor cannot beat the incumbent
            // the remaining branches are dominated — cut the whole loop.
            if best != INF && pair.saturating_add(floor) >= best {
                break;
            }
            for k in 0..self.jobs_at[s as usize].len() {
                let job = self.jobs_at[s as usize][k];
                if mask & (1u64 << job) != 0 || !self.canonical(job, mask) {
                    continue;
                }
                let v = self.suffix(Some(s), mask | 1u64 << job);
                if v != INF {
                    best = best.min(pair + v);
                }
            }
        }
        best
    }

    /// Re-walk the memoized search along an optimal branch, returning the
    /// per-job times (original job order).
    fn reconstruct(&mut self, total: u64) -> Vec<Time> {
        self.reconstruct_from(None, 0, vec![0; self.n], total)
    }

    /// [`Solver::reconstruct`] continued from a mid-search state: `last`
    /// slot placed, `mask` of placed jobs, their `times` filled in, and
    /// the remaining `target` cost. The walk always takes the *first*
    /// `(slot, job)` branch in canonical scan order that attains the
    /// target, which is what makes reconstruction deterministic — and
    /// identical between the sequential solver and a parallel subtree.
    fn reconstruct_from(
        &mut self,
        mut last: Option<u16>,
        mut mask: u64,
        mut times: Vec<Time>,
        mut target: u64,
    ) -> Vec<Time> {
        while mask != self.full() {
            let prev_time = last.map(|i| self.times[i as usize]);
            let lo = last.map_or(0, |i| i + 1);
            let mut stepped = false;
            'slots: for s in lo..self.times.len() as u16 {
                let pair = self.cost.pair(prev_time, self.times[s as usize]);
                if pair > target {
                    break;
                }
                for k in 0..self.jobs_at[s as usize].len() {
                    let job = self.jobs_at[s as usize][k];
                    if mask & (1u64 << job) != 0 || !self.canonical(job, mask) {
                        continue;
                    }
                    let v = self.suffix(Some(s), mask | 1u64 << job);
                    if v != INF && pair + v == target {
                        times[job as usize] = self.times[s as usize];
                        mask |= 1u64 << job;
                        last = Some(s);
                        target -= pair;
                        stepped = true;
                        break 'slots;
                    }
                }
            }
            assert!(stepped, "reconstruction must follow an optimal branch");
        }
        // Duplicate-class members are interchangeable: the canonical
        // ordering may have assigned a twin's slot; any bijection within
        // a class is valid, and index order is what the walk produced.
        times
    }
}

/// One unit of parallel work: one root branch (first occupied slot and
/// the job placed there) of one component's search tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubtreeTask {
    /// Component index within the plan.
    pub component: usize,
    /// Root index within the component's canonical frontier.
    pub root: usize,
}

/// What one subtree task produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubtreeOutcome {
    /// Pruned at the root against the shared incumbent (strict
    /// comparison, so a subtree attaining the optimum is never skipped).
    Skipped,
    /// Explored to its exact subtree optimum. `value` is `None` when
    /// the subtree admits no completion; `times` is the canonical
    /// witness (component-local job order), `nodes` the states expanded.
    Solved {
        /// Exact subtree optimum (root pair cost included).
        value: Option<u64>,
        /// Canonical witness times, component-local job order.
        times: Vec<Time>,
        /// Branch-and-bound states expanded by this task.
        nodes: u64,
    },
}

struct PlanComponent {
    /// Original job indices, relative order preserved.
    jobs: Vec<usize>,
    inst: MultiInstance,
    slots: Vec<Time>,
    /// Lemma 3 feasible completion — the initial incumbent witness.
    greedy: MultiSchedule,
    upper: u64,
    /// Lower bound met the greedy witness: certified optimal, no tasks.
    closed: bool,
    /// Root frontier `(slot index, job)` in canonical scan order.
    roots: Vec<(u16, u8)>,
    /// Shared best-so-far (monotone non-increasing). Relaxed ordering is
    /// sound: the bound is the only datum transferred, staleness only
    /// weakens pruning, and exactness never depends on reading the
    /// latest value — see DESIGN.md §13.
    incumbent: AtomicU64,
    updates: AtomicU64,
}

/// The decomposed search, exposed as data for an external parallel
/// driver (see the module docs' *Parallelism* section). Usage:
/// [`ParallelPlan::new`] → [`ParallelPlan::tasks`] → run each task (any
/// order, any thread) via [`ParallelPlan::run_task`] →
/// [`ParallelPlan::finish`] with the outcomes in task order.
pub struct ParallelPlan {
    objective: MultiObjective,
    cost: Cost,
    n: usize,
    components: Vec<PlanComponent>,
}

impl ParallelPlan {
    /// Decompose and prepare the instance; `None` iff infeasible (some
    /// component has no complete matching).
    pub fn new(inst: &MultiInstance, objective: MultiObjective) -> Option<ParallelPlan> {
        let cost = objective.cost();
        let n = inst.job_count();
        if n > 0 {
            check_caps(inst);
        }
        let mut components = Vec::new();
        if n > 0 {
            for jobs in decompose_jobs(inst, cost.min_zone()) {
                let sub = sub_instance(inst, &jobs);
                let greedy = complete_schedule(&sub, &vec![None; jobs.len()])?;
                let upper = cost.of_schedule(&greedy);
                let closed = cost.instance_bound(&sub) >= upper;
                let slots = sub.slot_union();
                let roots = if closed {
                    Vec::new()
                } else {
                    root_frontier(&sub, &slots, cost)
                };
                components.push(PlanComponent {
                    jobs,
                    inst: sub,
                    slots,
                    greedy,
                    upper,
                    closed,
                    roots,
                    incumbent: AtomicU64::new(upper),
                    updates: AtomicU64::new(0),
                });
            }
        }
        Some(ParallelPlan {
            objective,
            cost,
            n,
            components,
        })
    }

    /// Every subtree task, component by component, roots in canonical
    /// order. Outcomes must be handed back to [`ParallelPlan::finish`]
    /// in exactly this order.
    pub fn tasks(&self) -> Vec<SubtreeTask> {
        let mut out = Vec::new();
        for (component, comp) in self.components.iter().enumerate() {
            for root in 0..comp.roots.len() {
                out.push(SubtreeTask { component, root });
            }
        }
        out
    }

    /// Explore one subtree to its exact optimum (or skip it when even
    /// the admissible floor cannot beat the shared incumbent). Safe to
    /// call concurrently from any thread.
    pub fn run_task(&self, task: &SubtreeTask) -> SubtreeOutcome {
        let comp = &self.components[task.component];
        let (s, job) = comp.roots[task.root];
        let nc = comp.inst.job_count();
        let pair = self.cost.pair(None, comp.slots[s as usize]);
        let floor = self.cost.suffix_floor(nc - 1);
        // Strict `>`: a subtree whose exact optimum equals the incumbent
        // still runs, so every optimum-attaining root reports its value
        // — that is what keeps the winner choice timing-independent.
        if pair.saturating_add(floor) > comp.incumbent.load(Ordering::Relaxed) {
            return SubtreeOutcome::Skipped;
        }
        let mut solver = Solver::new(&comp.inst, &comp.slots, self.cost);
        let mask = 1u64 << job;
        let suffix = solver.suffix(Some(s), mask);
        if suffix == INF {
            return SubtreeOutcome::Solved {
                value: None,
                times: Vec::new(),
                nodes: solver.nodes,
            };
        }
        let value = pair + suffix;
        let prev = comp.incumbent.fetch_min(value, Ordering::Relaxed);
        if value < prev {
            comp.updates.fetch_add(1, Ordering::Relaxed);
        }
        let mut times = vec![0; nc];
        times[job as usize] = comp.slots[s as usize];
        let times = solver.reconstruct_from(Some(s), mask, times, suffix);
        SubtreeOutcome::Solved {
            value: Some(value),
            times,
            nodes: solver.nodes,
        }
    }

    /// Fold the per-task outcomes (in [`ParallelPlan::tasks`] order)
    /// into the instance optimum, its canonical witness, and the search
    /// statistics. Per component the winner is the **first** root in
    /// canonical order attaining the component optimum — the same branch
    /// sequential reconstruction takes, which is why the result is
    /// bit-identical to the sequential solver for any thread count.
    pub fn finish(&self, outcomes: &[SubtreeOutcome]) -> (u64, MultiSchedule, SearchStats) {
        let mut stats = SearchStats {
            component_jobs: self.components.iter().map(|c| c.jobs.len()).collect(),
            subtree_tasks: outcomes.len() as u64,
            ..SearchStats::default()
        };
        let mut times = vec![0; self.n];
        let mut total = 0u64;
        let mut offset = 0usize;
        for comp in &self.components {
            let slice = &outcomes[offset..offset + comp.roots.len()];
            offset += comp.roots.len();
            stats.incumbent_updates += comp.updates.load(Ordering::Relaxed);
            if comp.closed {
                total += comp.upper;
                for (local, &j) in comp.jobs.iter().enumerate() {
                    times[j] = comp.greedy.times()[local];
                }
                continue;
            }
            let mut best = INF;
            let mut winner: Option<&[Time]> = None;
            for outcome in slice {
                if let SubtreeOutcome::Solved {
                    value,
                    times: sub_times,
                    nodes,
                } = outcome
                {
                    stats.nodes_expanded += nodes;
                    // Strictly `<`, so the first root keeps ties — the
                    // canonical winner.
                    if let Some(v) = value {
                        if *v < best {
                            best = *v;
                            winner = Some(sub_times);
                        }
                    }
                }
            }
            // A feasible, non-closed component always yields a finite
            // winner: a subtree attaining the optimum is never skipped
            // (strict root pruning) and never returns `None`.
            // analyzer: allow(panic-free): see the invariant above
            let winner = winner.expect("some subtree attains the component optimum");
            assert!(best <= comp.upper, "subtree optimum beat by greedy?");
            total += best;
            for (local, &j) in comp.jobs.iter().enumerate() {
                times[j] = winner[local];
            }
        }
        assert_eq!(offset, outcomes.len(), "outcomes misaligned with tasks");
        (
            self.objective.finalize(total),
            MultiSchedule::new(times),
            stats,
        )
    }
}

/// The canonical root frontier of one component: every `(first slot,
/// job)` branch the sequential search's root state would scan, in scan
/// order.
fn root_frontier(inst: &MultiInstance, slots: &[Time], cost: Cost) -> Vec<(u16, u8)> {
    let seed = Solver::new(inst, slots, cost);
    let n = inst.job_count();
    let mut hi = (slots.len() - n) as u16;
    for j in 0..n {
        hi = hi.min(seed.max_slot[j]);
    }
    let mut roots = Vec::new();
    for s in 0..=hi {
        for &job in &seed.jobs_at[s as usize] {
            if seed.canonical(job, 0) {
                roots.push((s, job));
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;

    fn inst(times: &[Vec<i64>]) -> MultiInstance {
        MultiInstance::from_times(times.to_vec()).unwrap()
    }

    /// Sequential reference driver for [`ParallelPlan`]: run every task
    /// inline, in order.
    fn run_plan(i: &MultiInstance, obj: MultiObjective) -> Option<(u64, MultiSchedule)> {
        let plan = ParallelPlan::new(i, obj)?;
        let outcomes: Vec<_> = plan.tasks().iter().map(|t| plan.run_task(t)).collect();
        let (value, sched, _) = plan.finish(&outcomes);
        Some((value, sched))
    }

    #[test]
    fn matches_brute_force_on_worked_examples() {
        let cases = [
            vec![vec![0, 4], vec![5]],
            vec![vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11]],
            vec![vec![0, 10], vec![1, 11], vec![5]],
            vec![vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]],
            vec![vec![0], vec![1, 5], vec![2, 6], vec![7]],
            vec![vec![3], vec![3, 4], vec![4, 5]],
        ];
        for times in cases {
            let i = inst(&times);
            assert_eq!(
                min_gaps_multi(&i).map(|(v, _)| v),
                brute_force::min_gaps_multi(&i).map(|(v, _)| v),
                "gaps diverged on {times:?}"
            );
            assert_eq!(
                min_spans_multi(&i).map(|(v, _)| v),
                brute_force::min_spans_multi(&i).map(|(v, _)| v),
                "spans diverged on {times:?}"
            );
            for alpha in [0u64, 1, 2, 5, 9] {
                assert_eq!(
                    min_power_multi(&i, alpha).map(|(v, _)| v),
                    brute_force::min_power_multi(&i, alpha).map(|(v, _)| v),
                    "power diverged on {times:?} α={alpha}"
                );
            }
        }
    }

    #[test]
    fn witnesses_verify_and_attain_their_values() {
        let i = inst(&[vec![0, 7], vec![3], vec![8, 9], vec![4, 5], vec![12]]);
        let (gaps, sched) = min_gaps_multi(&i).unwrap();
        sched.verify(&i).unwrap();
        assert_eq!(sched.gap_count(), gaps);
        let (power, psched) = min_power_multi(&i, 3).unwrap();
        psched.verify(&i).unwrap();
        assert_eq!(power_cost_single(&psched, 3), power);
    }

    #[test]
    fn infeasible_detected_without_search() {
        let i = inst(&[vec![3], vec![3]]);
        assert_eq!(min_gaps_multi(&i), None);
        assert_eq!(min_spans_multi(&i), None);
        assert_eq!(min_power_multi(&i, 4), None);
        assert!(run_plan(&i, MultiObjective::Spans).is_none());
    }

    #[test]
    fn empty_instance() {
        let i = MultiInstance::new(vec![]).unwrap();
        assert_eq!(min_gaps_multi(&i).unwrap().0, 0);
        assert_eq!(min_power_multi(&i, 7).unwrap().0, 0);
        assert_eq!(run_plan(&i, MultiObjective::Gaps).unwrap().0, 0);
    }

    #[test]
    fn duplicate_jobs_exercise_the_dominance_pruning() {
        // Eight interchangeable jobs over one window: one span, and the
        // canonical ordering must still produce a valid bijection.
        let times: Vec<Vec<i64>> = (0..8).map(|_| (0..10).collect()).collect();
        let i = inst(&times);
        let (spans, sched) = min_spans_multi(&i).unwrap();
        assert_eq!(spans, 1);
        sched.verify(&i).unwrap();
    }

    #[test]
    fn early_cutoff_agrees_with_search_on_forced_instances() {
        // Three far-apart pinned jobs: LB = UB = 3 spans; the shortcut
        // path must return the same value the search would.
        let i = inst(&[vec![0], vec![10], vec![20]]);
        assert_eq!(min_spans_multi(&i).unwrap().0, 3);
        assert_eq!(
            min_spans_multi(&i).unwrap().0,
            brute_force::min_spans_multi(&i).unwrap().0
        );
    }

    #[test]
    fn decomposition_cuts_at_uncrossed_dead_zones() {
        // Three bands nobody crosses → three components for spans.
        let i = inst(&[
            vec![0, 1],
            vec![1, 2],
            vec![10, 11],
            vec![20, 21],
            vec![21, 22],
        ]);
        let comps = decompose_jobs(&i, 1);
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
        // A job bridging the first zone glues the first two bands.
        let bridged = inst(&[
            vec![0, 1],
            vec![1, 2],
            vec![10, 11],
            vec![20, 21],
            vec![21, 22],
            vec![2, 10],
        ]);
        let comps = decompose_jobs(&bridged, 1);
        assert_eq!(comps, vec![vec![0, 1, 2, 5], vec![3, 4]]);
    }

    #[test]
    fn power_decomposition_respects_the_alpha_zone_width() {
        // Zone widths 7 (between 1 and 9) and 2 (between 10 and 13).
        let i = inst(&[vec![0, 1], vec![9, 10], vec![13]]);
        // α = 2: both zones qualify → 3 components.
        assert_eq!(decompose_jobs(&i, 2).len(), 3);
        // α = 5: only the width-7 zone qualifies → 2 components.
        assert_eq!(decompose_jobs(&i, 5), vec![vec![0], vec![1, 2]]);
        // The optima stay exact either way (vs. the undecomposed search).
        for alpha in [0u64, 1, 2, 3, 5, 8, 20] {
            let obj = MultiObjective::Power { alpha };
            assert_eq!(
                solve_multi_stats(&i, obj).0.map(|(v, _)| v),
                solve_multi_undecomposed(&i, obj).map(|(v, _)| v),
                "power decomposition diverged at α={alpha}"
            );
        }
    }

    #[test]
    fn decomposed_solves_report_component_stats() {
        let i = inst(&[vec![0, 1], vec![1, 2], vec![50, 51], vec![100]]);
        let (res, stats) = solve_multi_stats(&i, MultiObjective::Spans);
        let (spans, sched) = res.unwrap();
        sched.verify(&i).unwrap();
        assert_eq!(spans, 3);
        assert_eq!(stats.component_jobs, vec![2, 1, 1]);
        assert_eq!(stats.subtree_steals, 0, "core never records steals");
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_the_sequential_solver() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA5A5));
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=8))
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| rng.gen_range(0..24))
                        .collect()
                })
                .collect();
            let i = inst(&jobs);
            for obj in [
                MultiObjective::Gaps,
                MultiObjective::Spans,
                MultiObjective::Power { alpha: 3 },
            ] {
                let seq = solve_multi_stats(&i, obj).0;
                let par = run_plan(&i, obj);
                match (seq, par) {
                    (None, None) => {}
                    (Some((sv, ss)), Some((pv, ps))) => {
                        assert_eq!(sv, pv, "seed {seed}: value diverged on {jobs:?}");
                        assert_eq!(
                            ss.times(),
                            ps.times(),
                            "seed {seed}: schedule diverged on {jobs:?}"
                        );
                    }
                    (s, p) => panic!("seed {seed}: feasibility diverged: {s:?} vs {p:?}"),
                }
            }
        }
    }

    #[test]
    fn subtree_outcomes_fold_regardless_of_execution_order() {
        // Run the tasks in reverse order (worst-case steal pattern);
        // outcomes are folded by position, so the result must not move.
        let i = inst(&[
            vec![0, 2, 5],
            vec![1, 3],
            vec![4, 6],
            vec![20, 21],
            vec![21, 22],
        ]);
        let obj = MultiObjective::Spans;
        let plan = ParallelPlan::new(&i, obj).unwrap();
        let tasks = plan.tasks();
        assert!(tasks.len() > 1, "expected a real frontier");
        let mut outcomes: Vec<Option<SubtreeOutcome>> = vec![None; tasks.len()];
        for (idx, task) in tasks.iter().enumerate().rev() {
            outcomes[idx] = Some(plan.run_task(task));
        }
        let outcomes: Vec<_> = outcomes.into_iter().map(Option::unwrap).collect();
        let (value, sched, stats) = plan.finish(&outcomes);
        let (seq_value, seq_sched) = solve_multi_stats(&i, obj).0.unwrap();
        assert_eq!(value, seq_value);
        assert_eq!(sched.times(), seq_sched.times());
        assert_eq!(stats.subtree_tasks, tasks.len() as u64);
    }

    #[test]
    fn randomized_bit_match_against_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37));
            let jobs: Vec<Vec<i64>> = (0..rng.gen_range(1..=7))
                .map(|_| {
                    (0..rng.gen_range(1..=3))
                        .map(|_| rng.gen_range(0..18))
                        .collect()
                })
                .collect();
            let i = inst(&jobs);
            assert_eq!(
                min_gaps_multi(&i).map(|(v, _)| v),
                brute_force::min_gaps_multi(&i).map(|(v, _)| v),
                "seed {seed}: gaps diverged on {jobs:?}"
            );
            for alpha in [0u64, 1, 3, 6] {
                assert_eq!(
                    min_power_multi(&i, alpha).map(|(v, _)| v),
                    brute_force::min_power_multi(&i, alpha).map(|(v, _)| v),
                    "seed {seed}: power diverged on {jobs:?} α={alpha}"
                );
            }
        }
    }

    #[test]
    fn wide_job_counts_fit_the_u64_mask() {
        // 33+ jobs would have overflowed the old u32 mask; keep them
        // decomposable so the test stays fast.
        let times: Vec<Vec<i64>> = (0..36).map(|j| vec![10 * j, 10 * j + 1]).collect();
        let i = inst(&times);
        let (spans, sched) = min_spans_multi(&i).unwrap();
        assert_eq!(spans, 36);
        sched.verify(&i).unwrap();
    }
}

//! **\[Bap06\] substrate**: Baptiste's single-processor dynamic program,
//! the algorithm the paper's Theorem 1 generalizes.
//!
//! For `p = 1` the span/gap distinction is trivial (`gaps = spans − 1` for
//! any non-empty schedule), so Baptiste's "minimum number of idle periods"
//! is exactly the span objective. This module provides an **independently
//! coded** specialization of the window DP with boolean edge states —
//! single-processor occupancy at a column is 0 or 1, which collapses the
//! boundary bookkeeping (a column adjacent to the peeled job can never
//! start a new span: `(X − 1)⁺ = 0` for `X ≤ 1`). The values are
//! cross-checked against both the general multiprocessor DP at `p = 1`
//! and exhaustive search in the test suite; witness schedules delegate to
//! [`crate::multiproc_dp`] / [`crate::power_dp`].
//!
//! The state evaluation shares the hot-path engineering of
//! [`crate::multiproc_dp`] via [`crate::dp_interval`] (per-interval
//! window memoization, pooled split counting, [`crate::fasthash`] memo)
//! — this is the solver the batch engine routes every `p = 1`
//! one-interval request to.
//!
//! # Critical-time restriction
//!
//! Candidate columns for the peeled job are restricted to the
//! **critical times** `⋃_i [r_i − n, r_i + n] ∪ [d_i − n, d_i + n]`
//! (Baptiste's state-space argument): any maximal busy block of any
//! schedule can be shifted toward whichever extreme does not increase
//! the objective until it merges with a neighbor or a job inside it hits
//! its release (left shift) or deadline (right shift) — the per-block
//! cost `min(gap_left, α) + min(gap_right, α)` is piecewise linear in
//! the block position with its minimum at an extreme, and the span count
//! is shift-invariant. In the resulting optimal schedule every block is
//! anchored, so every busy column lies within `n − 1` slots of some
//! release or deadline. On sparse instances (few jobs, long windows)
//! this shrinks the reachable state space by an order of magnitude; on
//! dense instances every column is critical and nothing changes. The
//! restriction is exactness-preserving and re-proved against
//! `brute_force` by the differential suite on every run.

use crate::dp_interval::{IntervalIndex, WindowInfo};
use crate::fasthash::FastMap;
use crate::instance::Instance;
use std::rc::Rc;

const INF: u64 = u64::MAX;

fn add(a: u64, b: u64) -> u64 {
    if a == INF || b == INF {
        INF
    } else {
        a + b
    }
}

/// Minimum number of gaps (idle periods strictly between busy periods) on
/// one processor — Baptiste's objective. `None` iff infeasible.
///
/// # Panics
/// Panics if the instance has more than one processor.
///
/// ```
/// use gaps_core::instance::Instance;
/// use gaps_core::baptiste::min_gaps_value;
/// let inst = Instance::from_windows([(0, 0), (2, 5), (5, 5)], 1).unwrap();
/// // Schedule {0, 4, 5}: one gap. Nothing can glue 0 to the rest.
/// assert_eq!(min_gaps_value(&inst), Some(1));
/// ```
pub fn min_gaps_value(inst: &Instance) -> Option<u64> {
    min_spans_value(inst).map(|s| s.saturating_sub(1))
}

/// Minimum number of spans (= wake-up transitions) on one processor.
/// `None` iff infeasible.
pub fn min_spans_value(inst: &Instance) -> Option<u64> {
    assert_eq!(
        inst.processors(),
        1,
        "baptiste handles single-processor instances"
    );
    if inst.job_count() == 0 {
        return Some(0);
    }
    crate::edf::edf(inst).ok()?;
    let mut ctx = Ctx::new(inst, 0);
    let top = ctx.top();
    let v = ctx.spans(top);
    assert_ne!(v, INF, "EDF said feasible, DP must agree");
    Some(v)
}

/// Minimum power on one processor with transition cost `alpha`
/// (gap of length `g` costs `min(g, α)`; the first wake-up costs `α`).
/// `None` iff infeasible.
pub fn min_power_value(inst: &Instance, alpha: u64) -> Option<u64> {
    assert_eq!(
        inst.processors(),
        1,
        "baptiste handles single-processor instances"
    );
    if inst.job_count() == 0 {
        return Some(0);
    }
    crate::edf::edf(inst).ok()?;
    let mut ctx = Ctx::new(inst, alpha);
    let top = ctx.top();
    let v = ctx.power(top);
    assert_ne!(v, INF, "EDF said feasible, DP must agree");
    Some(v)
}

/// Witness schedule for [`min_gaps_value`] (delegates to the general DP).
pub fn min_gaps_schedule(inst: &Instance) -> Option<(u64, crate::schedule::Schedule)> {
    assert_eq!(
        inst.processors(),
        1,
        "baptiste handles single-processor instances"
    );
    let sol = crate::multiproc_dp::min_gap_schedule(inst)?;
    debug_assert_eq!(
        sol.schedule.verify(inst),
        Ok(()),
        "emitted schedule violates job windows"
    );
    debug_assert_eq!(
        min_gaps_value(inst),
        Some(sol.gaps),
        "delegated witness disagrees with the window DP's optimum"
    );
    Some((sol.gaps, sol.schedule))
}

/// Witness schedule for [`min_power_value`] (delegates to the general DP).
pub fn min_power_schedule(inst: &Instance, alpha: u64) -> Option<(u64, crate::schedule::Schedule)> {
    assert_eq!(
        inst.processors(),
        1,
        "baptiste handles single-processor instances"
    );
    let sol = crate::power_dp::min_power_schedule(inst, alpha)?;
    debug_assert_eq!(
        sol.schedule.verify(inst),
        Ok(()),
        "emitted schedule violates job windows"
    );
    debug_assert_eq!(
        min_power_value(inst, alpha),
        Some(sol.power),
        "delegated witness disagrees with the window DP's optimum"
    );
    Some((sol.power, sol.schedule))
}

/// State of the boolean-edge window DP. Booleans are packed as 0/1:
/// for the span DP, `e1`/`e2` say whether a *job* occupies `t1`/`t2`
/// (with `anc` = 1 if an ancestor job sits at `t2`); for the power DP they
/// say whether the processor is *active* there.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct St {
    t1: u16,
    t2: u16,
    k: u16,
    anc: bool,
    e1: bool,
    e2: bool,
}

/// Pack a state for the memo. The `power` bit keeps the two objectives'
/// entries disjoint, so a `Ctx` reused for both can never serve a span
/// value to a power query (or vice versa).
fn key(s: St, power: bool) -> u64 {
    (s.t1 as u64)
        | (s.t2 as u64) << 14
        | (s.k as u64) << 28
        | (s.anc as u64) << 42
        | (s.e1 as u64) << 43
        | (s.e2 as u64) << 44
        | (power as u64) << 45
}

struct Ctx {
    t_max: u16,
    alpha: u64,
    /// `(release, deadline)` in padded indices, deadline order.
    jobs: Vec<(u16, u16)>,
    /// Columns within `n` of a release or deadline — the only candidate
    /// placement columns the DP needs to consider (see the module docs).
    critical: Vec<bool>,
    /// Memoized interval windows + pooled split-counting buffers.
    intervals: IntervalIndex,
    memo: FastMap<u64, u64>,
    /// Re-entrancy guard for the debug-build memo audit: while a hit is
    /// being re-derived, nested hits must return without re-verifying or
    /// the recomputation becomes exponential again.
    #[cfg(debug_assertions)]
    verifying: bool,
}

impl Ctx {
    fn new(inst: &Instance, alpha: u64) -> Ctx {
        Ctx::with_restriction(inst, alpha, true)
    }

    /// `restrict = false` disables the critical-time restriction; kept
    /// for the state-count instrumentation test below.
    fn with_restriction(inst: &Instance, alpha: u64, restrict: bool) -> Ctx {
        // analyzer: allow(panic-free): both public entry points return early for zero-job instances before building a Ctx
        let horizon = inst.horizon().expect("non-empty");
        let t0 = horizon.start - 1;
        let len = horizon.end - horizon.start + 3;
        assert!(
            len <= 16000,
            "horizon too long; compress the instance first"
        );
        let jobs: Vec<(u16, u16)> = inst
            .deadline_order()
            .iter()
            .map(|&i| {
                let j = &inst.jobs()[i];
                ((j.release - t0) as u16, (j.deadline - t0) as u16)
            })
            .collect();
        let len = len as usize;
        let mut critical = vec![!restrict; len];
        if restrict {
            let radius = jobs.len();
            for &(r, d) in &jobs {
                for anchor in [r as usize, d as usize] {
                    let lo = anchor.saturating_sub(radius);
                    let hi = (anchor + radius).min(len - 1);
                    critical[lo..=hi].fill(true);
                }
            }
        }
        Ctx {
            t_max: (len - 1) as u16,
            alpha,
            jobs,
            critical,
            intervals: IntervalIndex::new(len),
            memo: FastMap::with_capacity_and_hasher(1 << 12, Default::default()),
            #[cfg(debug_assertions)]
            verifying: false,
        }
    }

    /// Debug-build memo audit: re-derive a hit state once (children are
    /// served from the memo) and check the cached value is still the
    /// exact recomputed one — a stale or clobbered entry would silently
    /// corrupt every optimum derived from it.
    #[cfg(debug_assertions)]
    fn audit_memo_hit(&mut self, s: St, power: bool, cached: u64) {
        if self.verifying {
            return;
        }
        self.verifying = true;
        let fresh = if power {
            self.power_compute(s)
        } else {
            self.spans_compute(s)
        };
        debug_assert_eq!(
            cached, fresh,
            "baptiste memo entry diverged from recomputation (power = {power})"
        );
        self.verifying = false;
    }

    fn top(&self) -> St {
        St {
            t1: 0,
            t2: self.t_max,
            k: self.jobs.len() as u16,
            anc: false,
            e1: false,
            e2: false,
        }
    }

    /// Memoized per-interval window (see [`crate::dp_interval`]).
    fn window(&mut self, t1: u16, t2: u16) -> Rc<WindowInfo> {
        self.intervals.window(&self.jobs, t1, t2)
    }

    // ---------------- span objective ----------------

    fn spans(&mut self, s: St) -> u64 {
        if let Some(&v) = self.memo.get(&key(s, false)) {
            #[cfg(debug_assertions)]
            self.audit_memo_hit(s, false, v);
            return v;
        }
        let v = self.spans_compute(s);
        self.memo.insert(key(s, false), v);
        v
    }

    fn spans_compute(&mut self, s: St) -> u64 {
        let St {
            t1,
            t2,
            k,
            anc,
            e1,
            e2,
        } = s;
        if anc && e2 {
            return INF; // one processor: t2 cannot hold two jobs
        }
        let window = self.window(t1, t2);
        if (k as usize) > window.jobs.len() {
            return INF;
        }
        if t1 == t2 {
            let occ = k == 1;
            return if k <= 1 && e1 == occ && e2 == occ && !(anc && occ) {
                0
            } else {
                INF
            };
        }
        if k == 0 {
            return if !e1 && !e2 { anc as u64 } else { INF };
        }

        let jk = window.jobs[(k - 1) as usize];
        let (rk, dk) = self.jobs[jk as usize];
        let mut best = INF;

        // jk at t2 (joins as the ancestor).
        if e2 && !anc && dk >= t2 {
            best = best.min(self.spans(St {
                t1,
                t2,
                k: k - 1,
                anc: true,
                e1,
                e2: false,
            }));
        }

        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        if lo > hi {
            return best;
        }
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            // The counter accumulates per column, so it advances even
            // over columns the critical-time restriction rules out.
            let i = (k as u32 - split.advance(tp)) as u16;
            if !self.critical[tp as usize] {
                continue;
            }
            let k1 = k - 1 - i;
            // Left part: jobs strictly left of jk's column.
            let sub1 = if tp == t1 {
                if !e1 || k1 != 0 {
                    continue; // p = 1: jk alone occupies t1
                }
                0
            } else {
                self.spans(St {
                    t1,
                    t2: tp,
                    k: k1,
                    anc: true,
                    e1,
                    e2: false,
                })
            };
            if sub1 == INF {
                continue;
            }
            // Right part. The column after jk never *starts* a span beyond
            // what the child counts: (X − 1)⁺ = 0 on one processor, because
            // jk keeps column t′ busy.
            let sub2 = if tp + 1 == t2 {
                self.spans(St {
                    t1: t2,
                    t2,
                    k: i,
                    anc,
                    e1: e2,
                    e2,
                })
            } else {
                let mut b = INF;
                for x in [false, true] {
                    let v = self.spans(St {
                        t1: tp + 1,
                        t2,
                        k: i,
                        anc,
                        e1: x,
                        e2,
                    });
                    b = b.min(v);
                }
                b
            };
            if sub2 == INF {
                continue;
            }
            best = best.min(add(sub1, sub2));
        }
        self.intervals.recycle(split);
        best
    }

    // ---------------- power objective ----------------

    fn power(&mut self, s: St) -> u64 {
        if let Some(&v) = self.memo.get(&key(s, true)) {
            #[cfg(debug_assertions)]
            self.audit_memo_hit(s, true, v);
            return v;
        }
        let v = self.power_compute(s);
        self.memo.insert(key(s, true), v);
        v
    }

    fn power_compute(&mut self, s: St) -> u64 {
        let St {
            t1,
            t2,
            k,
            anc,
            e1,
            e2,
        } = s;
        if anc && e2 {
            return INF;
        }
        let window = self.window(t1, t2);
        if (k as usize) > window.jobs.len() {
            return INF;
        }
        if t1 == t2 {
            // Own active bit e2 must cover the k ≤ 1 own jobs; e1 == e2.
            return if k <= 1 && e1 == e2 && (k == 0 || e2) {
                0
            } else {
                INF
            };
        }
        if k == 0 {
            // Empty window: right column is active iff anc || e2.
            let right = (anc || e2) as u64;
            let left = e1 as u64;
            let interior = (t2 - t1 - 1) as u64;
            let cont = left.min(right);
            let fresh = right - cont;
            return right + cont * interior.min(self.alpha) + fresh * self.alpha;
        }

        let jk = window.jobs[(k - 1) as usize];
        let (rk, dk) = self.jobs[jk as usize];
        let mut best = INF;

        if e2 && !anc && dk >= t2 {
            best = best.min(self.power(St {
                t1,
                t2,
                k: k - 1,
                anc: true,
                e1,
                e2: false,
            }));
        }

        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        if lo > hi {
            return best;
        }
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            let i = (k as u32 - split.advance(tp)) as u16;
            if !self.critical[tp as usize] {
                continue;
            }
            let k1 = k - 1 - i;
            let sub1 = if tp == t1 {
                if !e1 || k1 != 0 {
                    continue;
                }
                0
            } else {
                self.power(St {
                    t1,
                    t2: tp,
                    k: k1,
                    anc: true,
                    e1,
                    e2: false,
                })
            };
            if sub1 == INF {
                continue;
            }
            // Right child; parent pays the t′+1 column (wake-up impossible:
            // t′ is active).
            if tp + 1 == t2 {
                let right_active = anc || e2;
                let sub2 = self.power(St {
                    t1: t2,
                    t2,
                    k: i,
                    anc,
                    e1: e2,
                    e2,
                });
                if sub2 != INF {
                    best = best.min(add(add(sub1, sub2), right_active as u64));
                }
            } else {
                for x in [false, true] {
                    let sub2 = self.power(St {
                        t1: tp + 1,
                        t2,
                        k: i,
                        anc,
                        e1: x,
                        e2,
                    });
                    if sub2 != INF {
                        best = best.min(add(add(sub1, sub2), x as u64));
                    }
                }
            }
        }
        self.intervals.recycle(split);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use crate::instance::Instance;

    fn single(windows: &[(i64, i64)]) -> Instance {
        Instance::from_windows(windows.iter().copied(), 1).unwrap()
    }

    #[test]
    fn matches_brute_force_on_gaps() {
        for windows in [
            vec![(0, 0), (2, 5), (5, 5)],
            vec![(0, 3), (1, 2), (2, 5), (4, 4), (0, 5)],
            vec![(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)],
            vec![(0, 0), (2, 2), (4, 4)],
            vec![(0, 10), (9, 10)],
            vec![(1, 1)],
        ] {
            let inst = single(&windows);
            let multi = inst.to_multi_interval(1000);
            let bf = brute_force::min_gaps_multi(&multi).map(|(g, _)| g);
            assert_eq!(min_gaps_value(&inst), bf, "windows {windows:?}");
        }
    }

    #[test]
    fn matches_general_dp_at_p1() {
        for windows in [
            vec![(0, 4), (2, 2), (6, 9), (7, 8)],
            vec![(0, 1), (1, 2), (4, 6), (5, 6), (6, 6)],
            vec![(0, 2), (0, 2), (0, 2)],
        ] {
            let inst = single(&windows);
            assert_eq!(
                min_spans_value(&inst),
                crate::multiproc_dp::min_span_value(&inst),
                "windows {windows:?}"
            );
        }
    }

    #[test]
    fn power_matches_brute_force() {
        for alpha in [0u64, 1, 2, 3, 7] {
            for windows in [
                vec![(0, 0), (3, 3)],
                vec![(0, 0), (2, 5), (5, 5)],
                vec![(0, 4), (2, 2), (6, 9)],
                vec![(0, 1), (0, 1), (4, 4)],
            ] {
                let inst = single(&windows);
                let multi = inst.to_multi_interval(1000);
                let bf = brute_force::min_power_multi(&multi, alpha).map(|(c, _)| c);
                assert_eq!(min_power_value(&inst, alpha), bf, "{windows:?} α={alpha}");
            }
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = single(&[(0, 0), (0, 0)]);
        assert_eq!(min_gaps_value(&inst), None);
        assert_eq!(min_power_value(&inst, 3), None);
    }

    /// Span-DP value and memoized state count with the critical-time
    /// restriction on or off.
    fn spans_states(inst: &Instance, restrict: bool) -> (u64, usize, usize) {
        let mut ctx = Ctx::with_restriction(inst, 0, restrict);
        let top = ctx.top();
        let v = ctx.spans(top);
        let critical = ctx.critical.iter().filter(|&&c| c).count();
        (v, ctx.memo.len(), critical)
    }

    /// The critical-time restriction must preserve the optimum while
    /// shrinking the state space on sparse instances — the ROADMAP (b)
    /// claim, pinned.
    #[test]
    fn critical_time_restriction_shrinks_state_counts() {
        // Four jobs with wide, widely spaced windows over an ~1200-slot
        // horizon: almost no column is within n of a release/deadline.
        let inst = single(&[(0, 280), (300, 580), (610, 880), (900, 1180)]);
        let (restricted_v, restricted_states, critical) = spans_states(&inst, true);
        let (full_v, full_states, columns) = spans_states(&inst, false);
        assert_eq!(restricted_v, full_v, "restriction changed the optimum");
        assert_eq!(restricted_v, 4, "four isolated windows: one span each");
        assert!(
            critical * 4 < columns,
            "restriction should rule out most columns: {critical}/{columns}"
        );
        assert!(
            restricted_states * 4 < full_states,
            "state count must shrink ≥ 4×: {restricted_states} vs {full_states}"
        );
        // Absolute pin so a future edit that quietly disables the
        // restriction fails loudly.
        assert!(
            restricted_states < 1000,
            "restricted state count regressed: {restricted_states}"
        );
    }

    /// Same instrumentation through the power DP: equal optima both ways.
    #[test]
    fn critical_time_restriction_preserves_power_optima() {
        let inst = single(&[(0, 60), (70, 130), (140, 200), (20, 180)]);
        for alpha in [0u64, 1, 3, 8] {
            let mut full = Ctx::with_restriction(&inst, alpha, false);
            let top = full.top();
            let unrestricted = full.power(top);
            assert_eq!(
                min_power_value(&inst, alpha),
                Some(unrestricted),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "single-processor")]
    fn rejects_multiprocessor_instances() {
        let inst = Instance::from_windows([(0, 1)], 2).unwrap();
        min_gaps_value(&inst);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 1).unwrap();
        assert_eq!(min_gaps_value(&inst), Some(0));
        assert_eq!(min_power_value(&inst, 5), Some(0));
    }

    #[test]
    fn schedule_wrappers_agree_with_values() {
        let inst = single(&[(0, 0), (2, 5), (5, 5)]);
        let (gaps, sched) = min_gaps_schedule(&inst).unwrap();
        assert_eq!(Some(gaps), min_gaps_value(&inst));
        sched.verify(&inst).unwrap();
        let (power, psched) = min_power_schedule(&inst, 2).unwrap();
        assert_eq!(Some(power), min_power_value(&inst, 2));
        psched.verify(&inst).unwrap();
    }
}

//! Shared hot-path machinery for the interval-structure DPs
//! ([`crate::multiproc_dp`], [`crate::power_dp`], [`crate::baptiste`]).
//!
//! All three solvers recurse over states keyed by a time interval
//! `[t1, t2]` plus edge bookkeeping, and all three repeatedly need (a)
//! the deadline-ordered jobs released inside the interval and (b) the
//! split count `i(t′) = #{releases > t′}` among a prefix of those jobs.
//! This module centralizes both so the solvers cannot drift apart:
//!
//! * [`IntervalIndex::window`] memoizes the per-interval job list — built
//!   once per distinct interval and shared by every state over it,
//!   indexed through a flat preallocated table on short horizons (hash
//!   map fallback on long ones);
//! * [`IntervalIndex::split_counter`] hands out a pooled counting buffer
//!   ([`SplitCounter`]) that replaces the former per-state
//!   sort + `partition_point` with one O(k) counting pass and a running
//!   prefix — no sort, no allocation in the steady state.

use crate::fasthash::FastMap;
use std::rc::Rc;

/// The deadline-ordered jobs of one interval `[t1, t2]`.
pub(crate) struct WindowInfo {
    /// Positions (into the solver's deadline-ordered job array) of jobs
    /// released in the interval, deadline order.
    pub jobs: Vec<u16>,
    /// Release of each listed job, same order.
    pub releases: Vec<u16>,
}

/// Horizon-squared budget under which intervals are indexed through a
/// flat preallocated table (4 MiB of `u32` at the limit); longer padded
/// horizons fall back to a hash map.
const FLAT_INTERVAL_LIMIT: usize = 1 << 20;

/// Memoized interval → [`WindowInfo`] index plus the counting-buffer
/// pool. One per solver context.
pub(crate) struct IntervalIndex {
    /// Padded horizon length (`t_max + 1`).
    t_len: u32,
    /// Flat `(t1, t2) → window id + 1` table (0 = not built), used when
    /// `t_len²` fits [`FLAT_INTERVAL_LIMIT`].
    slots: Vec<u32>,
    /// Fallback interval index for long horizons.
    map: FastMap<u32, u32>,
    /// Window storage; ids index here.
    windows: Vec<Rc<WindowInfo>>,
    /// Pool of reusable counting buffers (one per recursion depth in
    /// flight).
    scratch: Vec<Vec<u32>>,
}

impl IntervalIndex {
    /// An index for a padded timeline of `len` slots (`t_max = len − 1`).
    pub(crate) fn new(len: usize) -> IntervalIndex {
        let flat = len * len <= FLAT_INTERVAL_LIMIT;
        IntervalIndex {
            t_len: len as u32,
            slots: if flat { vec![0; len * len] } else { Vec::new() },
            map: FastMap::default(),
            windows: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The memoized window of `[t1, t2]`: deadline-ordered positions of
    /// the jobs (given as `(release, deadline)` pairs in deadline order)
    /// released inside, plus their releases.
    pub(crate) fn window(&mut self, jobs: &[(u16, u16)], t1: u16, t2: u16) -> Rc<WindowInfo> {
        let iid = t1 as u32 * self.t_len + t2 as u32;
        let slot = if self.slots.is_empty() {
            self.map.get(&iid).copied().unwrap_or(0)
        } else {
            self.slots[iid as usize]
        };
        if slot != 0 {
            return Rc::clone(&self.windows[(slot - 1) as usize]);
        }
        let mut in_window = Vec::new();
        let mut releases = Vec::new();
        for (i, &(r, _)) in jobs.iter().enumerate() {
            if t1 <= r && r <= t2 {
                in_window.push(i as u16);
                releases.push(r);
            }
        }
        let info = Rc::new(WindowInfo {
            jobs: in_window,
            releases,
        });
        self.windows.push(Rc::clone(&info));
        let id = self.windows.len() as u32;
        if self.slots.is_empty() {
            self.map.insert(iid, id);
        } else {
            self.slots[iid as usize] = id;
        }
        info
    }

    /// A counter for the split loop over `t′ ∈ [lo, ..]` of a state on
    /// `[t1, t2]`: `releases` are the releases of the job prefix being
    /// split (all in `[t1, t2]`). Call [`SplitCounter::advance`] with
    /// strictly increasing `t′` starting at `lo`; return the counter via
    /// [`IntervalIndex::recycle`] when done.
    pub(crate) fn split_counter(
        &mut self,
        releases: &[u16],
        t1: u16,
        t2: u16,
        lo: u16,
    ) -> SplitCounter {
        let mut cnt = self.scratch.pop().unwrap_or_default();
        cnt.clear();
        cnt.resize((t2 - t1 + 1) as usize, 0);
        for &r in releases {
            cnt[(r - t1) as usize] += 1;
        }
        let mut released_le = 0u32;
        for t in t1..lo {
            released_le += cnt[(t - t1) as usize];
        }
        SplitCounter {
            cnt,
            t1,
            released_le,
        }
    }

    /// Return a counter's buffer to the pool.
    pub(crate) fn recycle(&mut self, counter: SplitCounter) {
        self.scratch.push(counter.cnt);
    }
}

/// Running release-prefix counter for one split loop (see
/// [`IntervalIndex::split_counter`]).
pub(crate) struct SplitCounter {
    cnt: Vec<u32>,
    t1: u16,
    released_le: u32,
}

impl SplitCounter {
    /// Advance to `t′ = tp` and return `#{releases ≤ tp}` — equal to
    /// `releases.partition_point(|&r| r <= tp)` on the sorted releases,
    /// without the sort.
    #[inline]
    pub(crate) fn advance(&mut self, tp: u16) -> u32 {
        self.released_le += self.cnt[(tp - self.t1) as usize];
        self.released_le
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_memoizes_and_filters() {
        let jobs = vec![(1u16, 3u16), (2, 2), (5, 6), (0, 9)];
        let mut index = IntervalIndex::new(12);
        let w = index.window(&jobs, 1, 5);
        assert_eq!(w.jobs, vec![0, 1, 2]);
        assert_eq!(w.releases, vec![1, 2, 5]);
        let again = index.window(&jobs, 1, 5);
        assert!(Rc::ptr_eq(&w, &again), "second lookup must be memoized");
        assert_eq!(index.windows.len(), 1);
    }

    #[test]
    fn split_counter_equals_sorted_partition_point() {
        let releases = [4u16, 2, 7, 2, 5];
        let (t1, t2, lo) = (1u16, 9u16, 3u16);
        let mut sorted = releases.to_vec();
        sorted.sort_unstable();
        let mut index = IntervalIndex::new(10);
        let mut counter = index.split_counter(&releases, t1, t2, lo);
        for tp in lo..=t2 {
            let expected = sorted.partition_point(|&r| r <= tp) as u32;
            assert_eq!(counter.advance(tp), expected, "tp = {tp}");
        }
        index.recycle(counter);
        assert_eq!(index.scratch.len(), 1, "buffer returned to the pool");
    }
}

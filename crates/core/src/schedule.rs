//! Schedules, their verification, and gap/span/power metrics.
//!
//! Conventions (Section 1 and 5 of the paper):
//!
//! * a **span** is a maximal interval of busy slots on one processor;
//! * a **gap** is a *finite* maximal idle interval on one processor, i.e.
//!   the hole between two consecutive spans — so a processor with `s ≥ 1`
//!   spans has `s − 1` gaps, and `gaps = spans − processors_used` in total.
//!   (Section 5 of the paper sometimes counts one infinite interval as an
//!   extra gap, making gaps = spans; use [`Schedule::span_count`] for that
//!   convention.)

use crate::instance::{Instance, MultiInstance};
use crate::time::{run_count, runs_of, Time, TimeInterval};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by schedule verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule has a different number of entries than the instance has
    /// jobs.
    WrongLength { expected: usize, got: usize },
    /// A job is scheduled outside its allowed window/set.
    OutsideWindow { job: usize, time: Time },
    /// A job is scheduled on a processor index `≥ p`.
    BadProcessor { job: usize, processor: u32 },
    /// Two jobs occupy the same (processor, time) slot.
    SlotCollision {
        job_a: usize,
        job_b: usize,
        time: Time,
        processor: u32,
    },
    /// Two jobs occupy the same time on the single processor.
    TimeCollision {
        job_a: usize,
        job_b: usize,
        time: Time,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => {
                write!(f, "schedule covers {got} jobs, instance has {expected}")
            }
            ScheduleError::OutsideWindow { job, time } => {
                write!(f, "job {job} scheduled at disallowed time {time}")
            }
            ScheduleError::BadProcessor { job, processor } => {
                write!(f, "job {job} scheduled on invalid processor {processor}")
            }
            ScheduleError::SlotCollision {
                job_a,
                job_b,
                time,
                processor,
            } => write!(
                f,
                "jobs {job_a} and {job_b} collide at time {time} on processor {processor}"
            ),
            ScheduleError::TimeCollision { job_a, job_b, time } => {
                write!(f, "jobs {job_a} and {job_b} collide at time {time}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Placement of one job: a time slot and a processor (0-based; the paper's
/// `P_1, …, P_p` are indices `0, …, p−1` here).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Slot in which the job runs.
    pub time: Time,
    /// Processor on which the job runs.
    pub processor: u32,
}

/// A complete schedule for a one-interval [`Instance`]: `assignments[i]`
/// places job `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// Wrap per-job assignments (index-aligned with the instance's jobs).
    pub fn new(assignments: Vec<Assignment>) -> Schedule {
        Schedule { assignments }
    }

    /// Build from `(time, processor)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Time, u32)>) -> Schedule {
        Schedule {
            assignments: pairs
                .into_iter()
                .map(|(time, processor)| Assignment { time, processor })
                .collect(),
        }
    }

    /// The assignments, index-aligned with jobs.
    #[inline]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of scheduled jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no jobs are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Check the schedule against its instance: right length, every job in
    /// its window, valid processor, no slot collisions.
    pub fn verify(&self, inst: &Instance) -> Result<(), ScheduleError> {
        if self.assignments.len() != inst.job_count() {
            return Err(ScheduleError::WrongLength {
                expected: inst.job_count(),
                got: self.assignments.len(),
            });
        }
        let mut seen: BTreeMap<(Time, u32), usize> = BTreeMap::new();
        for (i, a) in self.assignments.iter().enumerate() {
            let job = &inst.jobs()[i];
            if a.time < job.release || a.time > job.deadline {
                return Err(ScheduleError::OutsideWindow {
                    job: i,
                    time: a.time,
                });
            }
            if a.processor >= inst.processors() {
                return Err(ScheduleError::BadProcessor {
                    job: i,
                    processor: a.processor,
                });
            }
            if let Some(&other) = seen.get(&(a.time, a.processor)) {
                return Err(ScheduleError::SlotCollision {
                    job_a: other,
                    job_b: i,
                    time: a.time,
                    processor: a.processor,
                });
            }
            seen.insert((a.time, a.processor), i);
        }
        Ok(())
    }

    /// Busy slots of each processor (sorted), indexed by processor.
    pub fn busy_times(&self, processors: u32) -> Vec<Vec<Time>> {
        let mut busy = vec![Vec::new(); processors as usize];
        for a in &self.assignments {
            busy[a.processor as usize].push(a.time);
        }
        for b in &mut busy {
            b.sort_unstable();
        }
        busy
    }

    /// Occupancy profile `ℓ(t)` = number of jobs running at time `t`,
    /// as a sorted map over the busy times only.
    pub fn occupancy(&self) -> BTreeMap<Time, u32> {
        let mut occ = BTreeMap::new();
        for a in &self.assignments {
            *occ.entry(a.time).or_insert(0) += 1;
        }
        occ
    }

    /// Total number of spans (maximal busy runs) over all processors.
    pub fn span_count(&self, processors: u32) -> u64 {
        self.busy_times(processors)
            .iter()
            .map(|b| run_count(b) as u64)
            .sum()
    }

    /// Total number of gaps (finite maximal idle intervals) over all
    /// processors — the paper's Theorem 1 objective.
    pub fn gap_count(&self, processors: u32) -> u64 {
        self.busy_times(processors)
            .iter()
            .map(|b| (run_count(b) as u64).saturating_sub(1))
            .sum()
    }

    /// The gaps themselves, as `(processor, idle interval)` pairs.
    pub fn gaps(&self, processors: u32) -> Vec<(u32, TimeInterval)> {
        let mut out = Vec::new();
        for (q, busy) in self.busy_times(processors).iter().enumerate() {
            let runs = runs_of(busy);
            for w in runs.windows(2) {
                out.push((q as u32, TimeInterval::new(w[0].end + 1, w[1].start - 1)));
            }
        }
        out
    }

    /// Number of processors that run at least one job.
    pub fn processors_used(&self, processors: u32) -> u32 {
        self.busy_times(processors)
            .iter()
            .filter(|b| !b.is_empty())
            .count() as u32
    }

    /// Lemma 1 canonicalization: at every time, move the jobs scheduled
    /// there onto the lowest-numbered processors (stably, by original
    /// processor index). This never increases the **span** count (the
    /// transition objective); note that it *can* increase the number of
    /// finite gaps, because it also minimizes the number of processors used
    /// and `gaps = spans − processors_used` — see
    /// [`Schedule::spread_for_min_gaps`] for the gap-minimizing
    /// rearrangement of a profile.
    pub fn canonicalize_prefix(&self) -> Schedule {
        let mut by_time: BTreeMap<Time, Vec<usize>> = BTreeMap::new();
        for (i, a) in self.assignments.iter().enumerate() {
            by_time.entry(a.time).or_default().push(i);
        }
        let mut out = self.assignments.clone();
        for (_, mut jobs) in by_time {
            jobs.sort_by_key(|&i| self.assignments[i].processor);
            for (rank, job) in jobs.into_iter().enumerate() {
                out[job].processor = rank as u32;
            }
        }
        Schedule { assignments: out }
    }

    /// Is the schedule prefix-structured (at every time, occupied
    /// processors are exactly `0..count`)?
    pub fn is_prefix_structured(&self) -> bool {
        let mut by_time: BTreeMap<Time, Vec<u32>> = BTreeMap::new();
        for a in &self.assignments {
            by_time.entry(a.time).or_default().push(a.processor);
        }
        by_time.values_mut().all(|procs| {
            procs.sort_unstable();
            procs.iter().enumerate().all(|(i, &q)| q == i as u32)
        })
    }

    /// Rearrange the schedule to minimize **finite gaps** while keeping each
    /// job's execution *time* (hence the occupancy profile) fixed.
    ///
    /// The staircase decomposition of the profile yields
    /// `R = Σ_t (ℓ(t) − ℓ(t−1))⁺` busy runs, no two of which can merge (a
    /// run can only start where the profile rises, i.e. where no run ends).
    /// Spreading the runs greedily over processors — a fresh processor
    /// while any remains, otherwise any processor idle throughout the run —
    /// uses `min(p, R)` processors, which is the maximum possible, so the
    /// result has exactly `max(0, R − p)` gaps: the fewest achievable for
    /// this profile. This is the witness construction behind
    /// `min_gap_schedule` (see DESIGN.md on the Lemma 1 subtlety).
    pub fn spread_for_min_gaps(&self, processors: u32) -> Schedule {
        let p = processors as usize;
        // Staircase runs of the occupancy profile, as (start, end, level).
        let occ = self.occupancy();
        let mut runs: Vec<(Time, Time)> = Vec::new();
        let mut open: Vec<(Time, u32)> = Vec::new(); // (start, level) of open runs
        let mut prev_t: Option<Time> = None;
        let mut prev_l: u32 = 0;
        let close_down_to =
            |open: &mut Vec<(Time, u32)>, level: u32, end: Time, runs: &mut Vec<(Time, Time)>| {
                while open.len() as u32 > level {
                    // analyzer: allow(panic-free): the loop condition open.len() > level >= 0 guarantees a poppable element
                    let (s, _) = open.pop().expect("open non-empty");
                    runs.push((s, end));
                }
            };
        for (&t, &l) in &occ {
            if let Some(pt) = prev_t {
                if t != pt + 1 {
                    close_down_to(&mut open, 0, pt, &mut runs);
                    prev_l = 0;
                }
            }
            if l < prev_l {
                close_down_to(&mut open, l, t - 1, &mut runs);
            }
            while (open.len() as u32) < l {
                open.push((t, open.len() as u32 + 1));
            }
            prev_t = Some(t);
            prev_l = l;
        }
        if let Some(pt) = prev_t {
            close_down_to(&mut open, 0, pt, &mut runs);
        }
        runs.sort_unstable();

        // Greedy spread: fresh processor first, else one idle for the run.
        let mut proc_last_end: Vec<Time> = Vec::new(); // indexed by processor
        let mut run_proc: Vec<(Time, Time, u32)> = Vec::new();
        for (s, e) in runs {
            let q = if proc_last_end.len() < p {
                proc_last_end.push(e);
                proc_last_end.len() - 1
            } else {
                let q = (0..p)
                    .find(|&q| proc_last_end[q] < s)
                    // analyzer: allow(panic-free): the occupancy profile never exceeds p, so some processor is idle at s
                    .expect("profile respects capacity p, so an idle processor exists");
                proc_last_end[q] = e;
                q
            };
            run_proc.push((s, e, q as u32));
        }

        // Re-map jobs: at each time, hand the jobs (in index order) the
        // processors whose assigned runs cover that time.
        let mut by_time: BTreeMap<Time, Vec<usize>> = BTreeMap::new();
        for (i, a) in self.assignments.iter().enumerate() {
            by_time.entry(a.time).or_default().push(i);
        }
        let mut out = self.assignments.clone();
        for (t, jobs) in by_time {
            let mut procs: Vec<u32> = run_proc
                .iter()
                .filter(|&&(s, e, _)| s <= t && t <= e)
                .map(|&(_, _, q)| q)
                .collect();
            procs.sort_unstable();
            debug_assert_eq!(procs.len(), jobs.len(), "runs cover the profile exactly");
            for (job, q) in jobs.into_iter().zip(procs) {
                out[job].processor = q;
            }
        }
        Schedule { assignments: out }
    }
}

/// A complete schedule for a [`MultiInstance`] on the single processor:
/// `times[i]` is the slot of job `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiSchedule {
    times: Vec<Time>,
}

impl MultiSchedule {
    /// Wrap per-job times (index-aligned with the instance's jobs).
    pub fn new(times: Vec<Time>) -> MultiSchedule {
        MultiSchedule { times }
    }

    /// Per-job execution times.
    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Number of scheduled jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no jobs are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Check the schedule: right length, every job at an allowed time, all
    /// times distinct.
    pub fn verify(&self, inst: &MultiInstance) -> Result<(), ScheduleError> {
        if self.times.len() != inst.job_count() {
            return Err(ScheduleError::WrongLength {
                expected: inst.job_count(),
                got: self.times.len(),
            });
        }
        let mut seen: BTreeMap<Time, usize> = BTreeMap::new();
        for (i, &t) in self.times.iter().enumerate() {
            if !inst.jobs()[i].allows(t) {
                return Err(ScheduleError::OutsideWindow { job: i, time: t });
            }
            if let Some(&other) = seen.get(&t) {
                return Err(ScheduleError::TimeCollision {
                    job_a: other,
                    job_b: i,
                    time: t,
                });
            }
            seen.insert(t, i);
        }
        Ok(())
    }

    /// The occupied slots, sorted.
    pub fn occupied(&self) -> Vec<Time> {
        let mut occ = self.times.clone();
        occ.sort_unstable();
        occ.dedup();
        occ
    }

    /// Number of spans (maximal busy runs).
    pub fn span_count(&self) -> u64 {
        run_count(&self.occupied()) as u64
    }

    /// Number of gaps = spans − 1 (0 for an empty schedule). This is the
    /// "finite maximal idle intervals" convention; Section 5's convention
    /// (one infinite side counts too) equals [`MultiSchedule::span_count`].
    pub fn gap_count(&self) -> u64 {
        self.span_count().saturating_sub(1)
    }

    /// The gaps as idle intervals between consecutive spans.
    pub fn gaps(&self) -> Vec<TimeInterval> {
        crate::time::gaps_between(&self.occupied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst2() -> Instance {
        Instance::new(
            vec![
                Job::new(0, 3),
                Job::new(0, 3),
                Job::new(2, 5),
                Job::new(5, 5),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn verify_catches_all_violations() {
        let inst = inst2();
        // Valid schedule.
        let ok = Schedule::from_pairs([(0, 0), (0, 1), (2, 0), (5, 0)]);
        ok.verify(&inst).unwrap();
        // Wrong length.
        assert!(matches!(
            Schedule::from_pairs([(0, 0)]).verify(&inst),
            Err(ScheduleError::WrongLength { .. })
        ));
        // Outside window.
        assert!(matches!(
            Schedule::from_pairs([(4, 0), (0, 1), (2, 0), (5, 0)]).verify(&inst),
            Err(ScheduleError::OutsideWindow { job: 0, time: 4 })
        ));
        // Bad processor.
        assert!(matches!(
            Schedule::from_pairs([(0, 2), (0, 1), (2, 0), (5, 0)]).verify(&inst),
            Err(ScheduleError::BadProcessor {
                job: 0,
                processor: 2
            })
        ));
        // Collision.
        assert!(matches!(
            Schedule::from_pairs([(0, 0), (0, 0), (2, 0), (5, 0)]).verify(&inst),
            Err(ScheduleError::SlotCollision { .. })
        ));
    }

    #[test]
    fn gap_and_span_counting() {
        let inst = inst2();
        // P0 busy at {0, 2, 5} (2 gaps), P1 busy at {0} (0 gaps).
        let s = Schedule::from_pairs([(0, 0), (0, 1), (2, 0), (5, 0)]);
        s.verify(&inst).unwrap();
        assert_eq!(s.span_count(2), 4);
        assert_eq!(s.gap_count(2), 2);
        assert_eq!(s.processors_used(2), 2);
        assert_eq!(
            s.gaps(2),
            vec![(0, TimeInterval::new(1, 1)), (0, TimeInterval::new(3, 4))]
        );
        // gaps = spans − used.
        assert_eq!(
            s.gap_count(2),
            s.span_count(2) - s.processors_used(2) as u64
        );
    }

    #[test]
    fn canonicalize_prefix_preserves_spans() {
        let inst = inst2();
        let s = Schedule::from_pairs([(0, 1), (1, 1), (2, 1), (5, 0)]);
        s.verify(&inst).unwrap();
        assert!(!s.is_prefix_structured());
        let c = s.canonicalize_prefix();
        assert!(c.is_prefix_structured());
        c.verify(&inst).unwrap();
        // Lemma 1 (span form): canonicalization never increases spans.
        assert!(c.span_count(2) <= s.span_count(2));
        assert_eq!(c.span_count(2), 2);
    }

    #[test]
    fn prefix_can_increase_finite_gaps_the_lemma_1_subtlety() {
        // The counterexample from DESIGN.md: runs {0,1,2} and {5} parked on
        // different processors have no finite gap; squashing them onto the
        // prefix creates one. This is why `gaps = spans − processors_used`
        // and why the finite-gap optimum needs run spreading.
        let s = Schedule::from_pairs([(0, 1), (1, 1), (2, 1), (5, 0)]);
        assert_eq!(s.gap_count(2), 0);
        let c = s.canonicalize_prefix();
        assert_eq!(c.gap_count(2), 1);
        assert_eq!(c.span_count(2), s.span_count(2));
        // Spreading recovers the optimum for this profile.
        let spread = c.spread_for_min_gaps(2);
        assert_eq!(spread.gap_count(2), 0);
    }

    #[test]
    fn spread_for_min_gaps_attains_runs_minus_p() {
        // Profile with 3 runs on 2 processors: best possible is 1 gap.
        let s = Schedule::from_pairs([(0, 0), (3, 0), (6, 0)]);
        assert_eq!(s.gap_count(2), 2);
        let spread = s.spread_for_min_gaps(2);
        assert_eq!(spread.span_count(2), 3);
        assert_eq!(spread.gap_count(2), 1); // max(0, 3 − 2)
                                            // Times are untouched.
        for (a, b) in s.assignments().iter().zip(spread.assignments()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn spread_handles_multilevel_staircase() {
        // Profile [2, 1, 0, 1]: runs L1=[0,1], L2=[0,0], plus [3,3] → R = 3.
        let s = Schedule::from_pairs([(0, 0), (0, 1), (1, 0), (3, 0)]);
        let spread = s.spread_for_min_gaps(3);
        assert_eq!(spread.gap_count(3), 0); // 3 runs, 3 processors
        assert_eq!(spread.span_count(3), 3);
        let spread2 = s.spread_for_min_gaps(2);
        assert_eq!(spread2.gap_count(2), 1); // max(0, 3 − 2)
    }

    #[test]
    fn occupancy_profile() {
        let s = Schedule::from_pairs([(0, 0), (0, 1), (2, 0), (5, 0)]);
        let occ = s.occupancy();
        assert_eq!(occ.get(&0), Some(&2));
        assert_eq!(occ.get(&2), Some(&1));
        assert_eq!(occ.get(&1), None);
    }

    #[test]
    fn multi_schedule_verify_and_gaps() {
        let inst = MultiInstance::from_times([vec![0, 5], vec![1, 6], vec![2]]).unwrap();
        let s = MultiSchedule::new(vec![0, 1, 2]);
        s.verify(&inst).unwrap();
        assert_eq!(s.span_count(), 1);
        assert_eq!(s.gap_count(), 0);

        let spread = MultiSchedule::new(vec![5, 1, 2]);
        spread.verify(&inst).unwrap();
        assert_eq!(spread.span_count(), 2);
        assert_eq!(spread.gap_count(), 1);
        assert_eq!(spread.gaps(), vec![TimeInterval::new(3, 4)]);

        assert!(matches!(
            MultiSchedule::new(vec![0, 0, 2]).verify(&inst),
            Err(ScheduleError::OutsideWindow { job: 1, time: 0 })
        ));
        assert!(matches!(
            MultiSchedule::new(vec![0, 1, 1]).verify(&inst),
            Err(ScheduleError::OutsideWindow { .. }) | Err(ScheduleError::TimeCollision { .. })
        ));
    }

    #[test]
    fn empty_schedules() {
        let s = Schedule::new(vec![]);
        assert_eq!(s.gap_count(3), 0);
        assert_eq!(s.span_count(3), 0);
        assert!(s.is_prefix_structured());
        let m = MultiSchedule::new(vec![]);
        assert_eq!(m.gap_count(), 0);
        assert_eq!(m.span_count(), 0);
    }
}

//! Integer time, intervals, and timeline helpers.
//!
//! All problems in the paper use unit-length jobs on an integer timeline; a
//! "time" names one unit-length slot. We use `i64` so that hardness gadgets
//! with super-polynomial separations (the paper places intervals more than
//! n³ apart in Theorem 4) fit comfortably.

/// A discrete time slot (the unit interval `[t, t+1)` of the paper).
pub type Time = i64;

/// A closed integer interval `[start, end]` of time slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeInterval {
    /// First slot of the interval.
    pub start: Time,
    /// Last slot of the interval (inclusive); `end >= start`.
    pub end: Time,
}

impl TimeInterval {
    /// Build `[start, end]`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: Time, end: Time) -> TimeInterval {
        assert!(end >= start, "empty interval [{start}, {end}]");
        TimeInterval { start, end }
    }

    /// Number of slots in the interval.
    #[inline]
    pub fn len(&self) -> u64 {
        (self.end - self.start + 1) as u64
    }

    /// Intervals are never empty by construction; kept for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the interval contain slot `t`?
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// Do two intervals share at least one slot?
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Iterate the slots of the interval in order.
    pub fn iter(&self) -> impl Iterator<Item = Time> {
        self.start..=self.end
    }
}

/// Group a sorted, deduplicated slice of times into maximal runs of
/// consecutive values. Each run is returned as a [`TimeInterval`].
///
/// This is the primitive behind span/gap counting: the busy times of a
/// processor split into runs (spans), and the paper's *gaps* are the finite
/// holes between consecutive runs.
///
/// # Panics
/// Debug-asserts that the input is strictly increasing.
pub fn runs_of(times: &[Time]) -> Vec<TimeInterval> {
    debug_assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "input must be strictly increasing"
    );
    let mut runs = Vec::new();
    let mut iter = times.iter().copied();
    let Some(first) = iter.next() else {
        return runs;
    };
    let mut start = first;
    let mut prev = first;
    for t in iter {
        if t != prev + 1 {
            runs.push(TimeInterval::new(start, prev));
            start = t;
        }
        prev = t;
    }
    runs.push(TimeInterval::new(start, prev));
    runs
}

/// Number of maximal runs in a sorted, deduplicated slice of times.
/// Equivalent to `runs_of(times).len()` without allocating.
pub fn run_count(times: &[Time]) -> usize {
    debug_assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "input must be strictly increasing"
    );
    if times.is_empty() {
        return 0;
    }
    1 + times.windows(2).filter(|w| w[1] != w[0] + 1).count()
}

/// The finite holes between consecutive runs: for busy times with runs
/// `R1, …, Rm`, returns the `m − 1` idle intervals strictly between them.
/// These are exactly the paper's *gaps* (the two infinite idle intervals on
/// the outside are not counted).
pub fn gaps_between(times: &[Time]) -> Vec<TimeInterval> {
    let runs = runs_of(times);
    runs.windows(2)
        .map(|w| TimeInterval::new(w[0].end + 1, w[1].start - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = TimeInterval::new(3, 5);
        assert_eq!(iv.len(), 3);
        assert!(iv.contains(3) && iv.contains(5) && !iv.contains(6));
        assert!(iv.overlaps(&TimeInterval::new(5, 9)));
        assert!(!iv.overlaps(&TimeInterval::new(6, 9)));
        assert_eq!(iv.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn interval_rejects_reversed() {
        TimeInterval::new(5, 3);
    }

    #[test]
    fn runs_of_splits_on_holes() {
        assert_eq!(runs_of(&[]), vec![]);
        assert_eq!(runs_of(&[7]), vec![TimeInterval::new(7, 7)]);
        assert_eq!(
            runs_of(&[1, 2, 3, 7, 9, 10]),
            vec![
                TimeInterval::new(1, 3),
                TimeInterval::new(7, 7),
                TimeInterval::new(9, 10)
            ]
        );
    }

    #[test]
    fn run_count_matches_runs_of() {
        for times in [
            vec![],
            vec![0],
            vec![0, 1],
            vec![0, 2],
            vec![-5, -4, 0, 1, 2, 9],
        ] {
            assert_eq!(run_count(&times), runs_of(&times).len());
        }
    }

    #[test]
    fn gaps_between_runs() {
        assert_eq!(
            gaps_between(&[1, 2, 5, 8, 9]),
            vec![TimeInterval::new(3, 4), TimeInterval::new(6, 7),]
        );
        assert_eq!(gaps_between(&[1, 2, 3]), vec![]);
        assert_eq!(gaps_between(&[]), vec![]);
    }

    #[test]
    fn negative_times_work() {
        let runs = runs_of(&[-3, -2, 4]);
        assert_eq!(
            runs,
            vec![TimeInterval::new(-3, -2), TimeInterval::new(4, 4)]
        );
    }
}

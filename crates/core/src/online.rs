//! **Section 1**: online gap scheduling and its Ω(n) lower bound.
//!
//! An online algorithm sees each job only at its release time. The paper
//! argues that any online algorithm that *guarantees feasibility whenever
//! possible* must run pending jobs immediately (non-lazy EDF): idling
//! while work is pending risks a burst of tight jobs arriving later. On
//! the adversarial family below, the forced eagerness costs `n` gaps while
//! the offline optimum pays O(1) — so no online algorithm has competitive
//! ratio better than n.
//!
//! The family (paper, Section 1): `n` flexible jobs arrive at time 0 with
//! deadline `3n`, and `n` tight jobs arrive at times `n, n+2, n+4, …`,
//! each due one unit after arrival. Offline, the flexible jobs fill the
//! holes between the tight ones (O(1) gaps); online, they must be executed
//! during `[0, n)` and every tight job then stands alone — `n` gaps.

use crate::edf;
use crate::instance::Instance;
use crate::schedule::Schedule;

/// Run the canonical online algorithm (non-lazy EDF) and report its gap
/// count along with the schedule. `None` iff the instance is infeasible.
pub fn online_gap_schedule(inst: &Instance) -> Option<(u64, Schedule)> {
    let sched = edf::edf(inst).ok()?;
    let gaps = sched.gap_count(inst.processors());
    Some((gaps, sched))
}

/// Measured competitive ratio on one instance: online (non-lazy EDF) gaps
/// versus the offline optimum (exact DP). Returns `None` if infeasible.
/// The ratio reported is `(online_gaps, offline_gaps)`; divide with care
/// when the optimum is 0.
pub fn online_vs_offline_gaps(inst: &Instance) -> Option<(u64, u64)> {
    let (online, _) = online_gap_schedule(inst)?;
    let offline = crate::multiproc_dp::min_gap_schedule(inst)?.gaps;
    Some((online, offline))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 1 adversarial family (also available in
    /// `gaps-workloads`): n flexible + n tight jobs.
    fn adversarial(n: i64) -> Instance {
        let mut windows = Vec::new();
        for _ in 0..n {
            windows.push((0, 3 * n));
        }
        for j in 0..n {
            let t = n + 2 * j;
            windows.push((t, t + 1));
        }
        Instance::from_windows(windows, 1).unwrap()
    }

    #[test]
    fn online_pays_n_gaps_on_adversarial_family() {
        // The flexible block [0, n) abuts the first tight job at n, so the
        // online cost is exactly n − 1 gaps (one per inter-tight hole); the
        // offline optimum tucks the flexible jobs into those holes for 0.
        for n in [2i64, 3, 5, 8] {
            let inst = adversarial(n);
            let (online, offline) = online_vs_offline_gaps(&inst).unwrap();
            assert_eq!(online, n as u64 - 1, "online gap cost should grow with n");
            assert_eq!(offline, 0, "offline optimum is gap-free");
        }
    }

    #[test]
    fn online_equals_offline_when_no_slack() {
        // All jobs tight: EDF is forced and optimal.
        let inst = Instance::from_windows([(0, 0), (1, 1), (5, 5)], 1).unwrap();
        let (online, offline) = online_vs_offline_gaps(&inst).unwrap();
        assert_eq!(online, offline);
    }

    #[test]
    fn online_infeasible_is_none() {
        let inst = Instance::from_windows([(0, 0), (0, 0)], 1).unwrap();
        assert_eq!(online_gap_schedule(&inst), None);
    }
}

//! Instance analysis: the structural statistics that predict how hard an
//! instance is for each algorithm. Used by the CLI's `info` command and
//! the workload documentation; the experiment harness reports them next to
//! measured running times.

use crate::instance::{Instance, MultiInstance};
use crate::time::runs_of;

/// Summary statistics of a one-interval instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of processors.
    pub processors: u32,
    /// Horizon length in slots (0 for an empty instance).
    pub horizon: u64,
    /// Load factor `n / (p · horizon)` — above 1.0 is trivially infeasible.
    pub load: f64,
    /// Minimum, mean, and maximum window length (slack + 1).
    pub window_min: u64,
    /// Mean window length.
    pub window_mean: f64,
    /// Maximum window length.
    pub window_max: u64,
    /// Number of distinct release times (arrival burstiness indicator).
    pub distinct_releases: usize,
}

/// Compute [`InstanceStats`].
pub fn analyze_instance(inst: &Instance) -> InstanceStats {
    let jobs = inst.job_count();
    let horizon = inst.horizon().map_or(0, |h| h.len());
    let lens: Vec<u64> = inst.jobs().iter().map(|j| j.window_len()).collect();
    let mut releases: Vec<i64> = inst.jobs().iter().map(|j| j.release).collect();
    releases.sort_unstable();
    releases.dedup();
    InstanceStats {
        jobs,
        processors: inst.processors(),
        horizon,
        load: if horizon == 0 {
            0.0
        } else {
            jobs as f64 / (inst.processors() as u64 * horizon) as f64
        },
        window_min: lens.iter().copied().min().unwrap_or(0),
        window_mean: if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<u64>() as f64 / lens.len() as f64
        },
        window_max: lens.iter().copied().max().unwrap_or(0),
        distinct_releases: releases.len(),
    }
}

/// Summary statistics of a multi-interval instance.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Distinct allowed slots.
    pub slots: usize,
    /// Maximal runs of the slot union (the span upper structure).
    pub slot_runs: usize,
    /// Mean allowed-set size per job.
    pub mean_choices: f64,
    /// The `k` of "k-interval job": max maximal-interval count.
    pub max_intervals: usize,
    /// Unit-interval instance (Section 5 families)?
    pub unit: bool,
    /// Pairwise-disjoint allowed sets (Section 5 families)?
    pub disjoint: bool,
    /// Slack ratio `slots / jobs` — below 1.0 is trivially infeasible.
    pub slack: f64,
}

/// Compute [`MultiStats`].
pub fn analyze_multi(inst: &MultiInstance) -> MultiStats {
    let slots = inst.slot_union();
    let runs = runs_of(&slots);
    let jobs = inst.job_count();
    let total_choices: usize = inst.jobs().iter().map(|j| j.times().len()).sum();
    MultiStats {
        jobs,
        slots: slots.len(),
        slot_runs: runs.len(),
        mean_choices: if jobs == 0 {
            0.0
        } else {
            total_choices as f64 / jobs as f64
        },
        max_intervals: inst.max_intervals_per_job(),
        unit: inst.is_unit_interval(),
        disjoint: inst.is_disjoint(),
        slack: if jobs == 0 {
            f64::INFINITY
        } else {
            slots.len() as f64 / jobs as f64
        },
    }
}

impl std::fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} jobs on {} processors over {} slots (load {:.2})",
            self.jobs, self.processors, self.horizon, self.load
        )?;
        writeln!(
            f,
            "window lengths: min {} / mean {:.1} / max {}; {} distinct releases",
            self.window_min, self.window_mean, self.window_max, self.distinct_releases
        )
    }
}

impl std::fmt::Display for MultiStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} jobs over {} slots in {} runs (slack {:.2})",
            self.jobs, self.slots, self.slot_runs, self.slack
        )?;
        writeln!(
            f,
            "choices/job: {:.1} mean, ≤ {} intervals; unit: {}, disjoint: {}",
            self.mean_choices, self.max_intervals, self.unit, self.disjoint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_interval_stats() {
        let inst = Instance::from_windows([(0, 4), (2, 2), (5, 9)], 2).unwrap();
        let s = analyze_instance(&inst);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.horizon, 10);
        assert_eq!(s.window_min, 1);
        assert_eq!(s.window_max, 5);
        assert!((s.window_mean - 11.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.distinct_releases, 3);
        assert!((s.load - 3.0 / 20.0).abs() < 1e-9);
        assert!(s.to_string().contains("3 jobs"));
    }

    #[test]
    fn multi_stats() {
        let inst = MultiInstance::from_times([vec![0, 1, 5], vec![6], vec![0, 6]]).unwrap();
        let s = analyze_multi(&inst);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.slots, 4); // {0,1,5,6}
        assert_eq!(s.slot_runs, 2); // {0,1} and {5,6}
        assert!((s.mean_choices - 2.0).abs() < 1e-9);
        assert!(!s.disjoint);
        assert!((s.slack - 4.0 / 3.0).abs() < 1e-9);
        assert!(s.to_string().contains("2 runs"));
    }

    #[test]
    fn empty_instances() {
        let s = analyze_instance(&Instance::new(vec![], 3).unwrap());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.horizon, 0);
        let m = analyze_multi(&MultiInstance::new(vec![]).unwrap());
        assert_eq!(m.jobs, 0);
        assert!(m.slack.is_infinite());
    }

    #[test]
    fn overload_is_visible_in_load_factor() {
        let inst = Instance::from_windows([(0, 0), (0, 0), (0, 0)], 1).unwrap();
        let s = analyze_instance(&inst);
        assert!(s.load > 1.0, "load {} should exceed 1", s.load);
    }
}

//! **Theorem 2**: exact multiprocessor *power* minimization in polynomial
//! time, with processors allowed to idle in the active state.
//!
//! # Model
//!
//! The total power of a schedule-plus-active-profile is
//!
//! ```text
//! power = Σ_t a(t) + α · Σ_t (a(t) − a(t−1))⁺
//! ```
//!
//! where `a(t)` is the number of active processors at time `t` (every
//! active slot costs 1, every wake-up costs α — including a processor's
//! first). Jobs need an active slot: `ℓ(t) ≤ a(t) ≤ p`. Lemma 2 makes the
//! active sets prefix-structured, so only the counts matter. Unlike the
//! gap objective, spreading runs across processors cannot help here (every
//! wake-up costs α no matter where it happens), so the prefix optimum *is*
//! the optimum — the paper's Lemma 2 is exactly right.
//!
//! # The recursion
//!
//! Identical skeleton to [`crate::multiproc_dp`], except the edge state
//! variables `a1, a2` count **active** processors (≥ the jobs there), the
//! window cost is `Σ_{t=t1+1}^{t2} [a(t) + α·(a(t) − a(t−1))⁺]`, and an
//! empty window has the closed-form optimum
//!
//! ```text
//! (q+a2) + min(a1, q+a2) · min(L, α) + (q+a2 − a1)⁺ · α,   L = t2 − t1 − 1:
//! ```
//!
//! each active level continuing across the window either *bridges* (pays
//! the `L` idle-active slots) or *sleeps and re-wakes* (pays `α`), and
//! levels with no left-edge continuation must pay the wake-up.
//!
//! The DP returns the optimal cost and a prefix witness schedule; the
//! witness's power under per-gap `min(len, α)` accounting
//! ([`crate::power::power_cost_multiproc`]) equals the DP value, which the
//! solver debug-asserts.
//!
//! # Implementation notes
//!
//! The state evaluation shares the hot-path engineering of
//! [`crate::multiproc_dp`] (via [`crate::dp_interval`]): per-interval
//! window memoization (flat preallocated interval table on short
//! horizons), dominance pruning of states whose jobs cannot fit the
//! edge/interior capacities, pooled counting buffers for the split loop,
//! and a [`crate::fasthash`] memo. The recursion itself is unchanged;
//! `tests/solver_differential.rs` re-proves exactness against
//! `brute_force` on every run.

use crate::dp_interval::{IntervalIndex, WindowInfo};
use crate::fasthash::FastMap;
use crate::instance::Instance;
use crate::schedule::{Assignment, Schedule};
use std::rc::Rc;

const INF: u64 = u64::MAX;

fn add(a: u64, b: u64) -> u64 {
    if a == INF || b == INF {
        INF
    } else {
        a + b
    }
}

/// Result of the Theorem 2 solver.
#[derive(Clone, Debug)]
pub struct PowerSolution {
    /// Minimum total power: active slots + α per wake-up.
    pub power: u64,
    /// A prefix-structured witness schedule achieving it (with optimal
    /// per-gap sleep decisions, cost `min(gap, α)`).
    pub schedule: Schedule,
}

/// Solve multiprocessor power minimization exactly (Theorem 2).
/// Returns `None` iff the instance is infeasible.
///
/// ```
/// use gaps_core::instance::Instance;
/// use gaps_core::power_dp::min_power_schedule;
/// // Two jobs 3 slots apart: with α = 1 sleep between them
/// // (2 + 2·1 wake-ups = 4); with α = 5 bridge (2 + 5 + 2 idle = 9).
/// let inst = Instance::from_windows([(0, 0), (3, 3)], 1).unwrap();
/// assert_eq!(min_power_schedule(&inst, 1).unwrap().power, 4);
/// assert_eq!(min_power_schedule(&inst, 5).unwrap().power, 9);
/// ```
pub fn min_power_schedule(inst: &Instance, alpha: u64) -> Option<PowerSolution> {
    let n = inst.job_count();
    if n == 0 {
        return Some(PowerSolution {
            power: 0,
            schedule: Schedule::new(vec![]),
        });
    }
    crate::edf::edf(inst).ok()?;

    let mut ctx = Ctx::new(inst, alpha);
    let top = ctx.top_state();
    let power = ctx.value(top);
    assert_ne!(power, INF, "EDF said feasible, DP must agree");

    let mut placements: Vec<(i64, u32)> = vec![(i64::MIN, 0); n];
    ctx.walk(top, &mut placements);
    let assignments = placements
        .iter()
        .map(|&(t, q)| {
            debug_assert!(t != i64::MIN, "every job must be placed");
            Assignment {
                time: ctx.t0 + t,
                processor: q,
            }
        })
        .collect();
    let schedule = Schedule::new(assignments);
    debug_assert_eq!(schedule.verify(inst), Ok(()));
    debug_assert!(schedule.is_prefix_structured());
    debug_assert_eq!(
        crate::power::power_cost_multiproc(&schedule, inst.processors(), alpha),
        power,
        "witness power must equal the DP optimum"
    );
    Some(PowerSolution { power, schedule })
}

/// Convenience: just the optimal power.
pub fn min_power_value(inst: &Instance, alpha: u64) -> Option<u64> {
    min_power_schedule(inst, alpha).map(|s| s.power)
}

/// DP state; `a1`, `a2` are **active** counts at the edges (own actives;
/// `q` ancestors additionally sit at `t2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct State {
    t1: u16,
    t2: u16,
    k: u16,
    q: u16,
    a1: u16,
    a2: u16,
}

fn key(s: State) -> u64 {
    (s.t1 as u64)
        | (s.t2 as u64) << 12
        | (s.k as u64) << 24
        | (s.q as u64) << 36
        | (s.a1 as u64) << 45
        | (s.a2 as u64) << 54
}

struct Ctx {
    t0: i64,
    t_max: u16,
    /// Active-count cap `min(p, n)` (an active level that never runs a job
    /// can be deleted, so peaks beyond `n` are never useful).
    cap: u16,
    alpha: u64,
    order: Vec<u32>,
    jobs: Vec<(u16, u16)>,
    /// Memoized interval windows + pooled split-counting buffers.
    intervals: IntervalIndex,
    memo: FastMap<u64, u64>,
}

impl Ctx {
    fn new(inst: &Instance, alpha: u64) -> Ctx {
        // analyzer: allow(panic-free): the public entry points return early for zero-job instances before building a Ctx
        let horizon = inst.horizon().expect("non-empty instance");
        let t0 = horizon.start - 1;
        let len = horizon.end - horizon.start + 3;
        assert!(
            len <= 4000,
            "horizon too long ({len}); compress the instance first"
        );
        assert!(
            inst.job_count() <= 4000,
            "too many jobs for the DP key packing"
        );
        let order: Vec<u32> = inst.deadline_order().iter().map(|&i| i as u32).collect();
        let jobs: Vec<(u16, u16)> = order
            .iter()
            .map(|&i| {
                let j = &inst.jobs()[i as usize];
                ((j.release - t0) as u16, (j.deadline - t0) as u16)
            })
            .collect();
        let len = len as usize;
        Ctx {
            t0,
            t_max: (len - 1) as u16,
            cap: (inst.processors() as usize).min(inst.job_count()).min(511) as u16,
            alpha,
            order,
            jobs,
            intervals: IntervalIndex::new(len),
            memo: FastMap::with_capacity_and_hasher(1 << 12, Default::default()),
        }
    }

    fn top_state(&self) -> State {
        State {
            t1: 0,
            t2: self.t_max,
            k: self.jobs.len() as u16,
            q: 0,
            a1: 0,
            a2: 0,
        }
    }

    fn window(&mut self, t1: u16, t2: u16) -> Rc<WindowInfo> {
        self.intervals.window(&self.jobs, t1, t2)
    }

    /// Closed-form optimum of an empty window `[t1, t2]`, `t1 < t2`: pay
    /// the `t2` column, bridge-or-rewake each level continuing from `a1`,
    /// and wake the levels with no continuation.
    fn empty_window_cost(&self, t1: u16, t2: u16, a1: u16, right_total: u16) -> u64 {
        let interior = (t2 - t1 - 1) as u64;
        let cont = a1.min(right_total) as u64;
        let fresh = (right_total.saturating_sub(a1)) as u64;
        right_total as u64 + cont * interior.min(self.alpha) + fresh * self.alpha
    }

    fn value(&mut self, s: State) -> u64 {
        if let Some(&v) = self.memo.get(&key(s)) {
            return v;
        }
        let v = self.compute(s);
        self.memo.insert(key(s), v);
        v
    }

    fn compute(&mut self, s: State) -> u64 {
        let State {
            t1,
            t2,
            k,
            q,
            a1,
            a2,
        } = s;
        let m = self.cap;
        if q + a2 > m || a1 > m {
            return INF;
        }
        let window = self.window(t1, t2);
        if (k as usize) > window.jobs.len() {
            return INF;
        }

        // Base: single-point window — all k jobs at t1 = t2 inside the own
        // active block (k ≤ a2); no interior columns.
        if t1 == t2 {
            return if a1 == a2 && k <= a2 { 0 } else { INF };
        }

        // Base: empty window.
        if k == 0 {
            return self.empty_window_cost(t1, t2, a1, q + a2);
        }

        // Dominance pruning: jobs occupy active slots — at most a1 at t1,
        // a2 (own) at t2, and cap per interior column. A state whose k
        // jobs cannot fit has no feasible completion.
        let slot_capacity = a1 as u32 + a2 as u32 + (t2 - t1 - 1) as u32 * m as u32;
        if k as u32 > slot_capacity {
            return INF;
        }

        let jk = window.jobs[(k - 1) as usize];
        let (rk, dk) = self.jobs[jk as usize];
        let mut best = INF;

        // Case A: jk at t2, taking one of the own active slots there.
        if a2 >= 1 && dk >= t2 {
            let child = self.value(State {
                t1,
                t2,
                k: k - 1,
                q: q + 1,
                a1,
                a2: a2 - 1,
            });
            best = best.min(child);
        }

        // Split cases: jk at t′ ∈ [max(t1, rk), min(dk, t2−1)], with the
        // split count i(t′) from a pooled counting pass (see multiproc_dp).
        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        if lo > hi {
            return best;
        }
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            let i = (k as u32 - split.advance(tp)) as u16;
            debug_assert!(i < k);
            let k1 = k - 1 - i;

            if tp == t1 {
                // jk at the left edge: all window jobs released at t1 are
                // scheduled at t1, inside the a1 own actives (jk at bottom).
                if a1 < 1 {
                    continue;
                }
                let sub1 = self.value(State {
                    t1,
                    t2: t1,
                    k: k1,
                    q: 1,
                    a1: a1 - 1,
                    a2: a1 - 1,
                });
                if sub1 == INF {
                    continue;
                }
                best = best.min(self.best_right(s, tp, a1 - 1, i, sub1));
            } else {
                for lp in 0..m {
                    let sub1 = self.value(State {
                        t1,
                        t2: tp,
                        k: k1,
                        q: 1,
                        a1,
                        a2: lp,
                    });
                    if sub1 == INF {
                        continue;
                    }
                    best = best.min(self.best_right(s, tp, lp, i, sub1));
                }
            }
        }
        self.intervals.recycle(split);
        best
    }

    /// Best completion with the right child: the parent pays the column
    /// `t′+1` and its wake-ups, `X + α·(X − (1 + lp))⁺`.
    fn best_right(&mut self, s: State, tp: u16, lp: u16, i: u16, sub1: u64) -> u64 {
        let State { t2, q, a2, .. } = s;
        let col_tp = 1 + lp as u64; // total active at t′
        if tp + 1 == t2 {
            let sub2 = self.value(State {
                t1: t2,
                t2,
                k: i,
                q,
                a1: a2,
                a2,
            });
            let x = q as u64 + a2 as u64;
            let boundary = x + self.alpha * x.saturating_sub(col_tp);
            add(add(sub1, sub2), boundary)
        } else {
            let mut best = INF;
            for l2 in 0..=self.cap {
                let sub2 = self.value(State {
                    t1: tp + 1,
                    t2,
                    k: i,
                    q,
                    a1: l2,
                    a2,
                });
                if sub2 == INF {
                    continue;
                }
                let x = l2 as u64;
                let boundary = x + self.alpha * x.saturating_sub(col_tp);
                best = best.min(add(add(sub1, sub2), boundary));
            }
            best
        }
    }

    /// Witness reconstruction; transition order mirrors [`Ctx::compute`].
    fn walk(&mut self, s: State, placements: &mut Vec<(i64, u32)>) {
        let target = self.value(s);
        assert_ne!(target, INF, "walking an infeasible state");
        let State {
            t1,
            t2,
            k,
            q,
            a1,
            a2,
        } = s;
        let window = self.window(t1, t2);

        if t1 == t2 {
            for (rank, &j) in window.jobs[..k as usize].iter().enumerate() {
                let job = self.order[j as usize] as usize;
                placements[job] = (t1 as i64, q as u32 + rank as u32);
            }
            return;
        }
        if k == 0 {
            return;
        }

        let jk = window.jobs[(k - 1) as usize];
        let job_k = self.order[jk as usize] as usize;
        let (rk, dk) = self.jobs[jk as usize];

        if a2 >= 1 && dk >= t2 {
            let child_state = State {
                t1,
                t2,
                k: k - 1,
                q: q + 1,
                a1,
                a2: a2 - 1,
            };
            if self.value(child_state) == target {
                placements[job_k] = (t2 as i64, q as u32);
                self.walk(child_state, placements);
                return;
            }
        }

        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            let i = (k as u32 - split.advance(tp)) as u16;
            let k1 = k - 1 - i;
            let lp_range = if tp == t1 {
                if a1 < 1 {
                    continue;
                }
                a1 - 1..=a1 - 1
            } else {
                #[allow(clippy::reversed_empty_ranges)]
                match self.cap {
                    0 => 1..=0, // empty; cap ≥ 1 whenever jobs exist
                    c => 0..=c - 1,
                }
            };
            for lp in lp_range {
                let st1 = if tp == t1 {
                    State {
                        t1,
                        t2: t1,
                        k: k1,
                        q: 1,
                        a1: a1 - 1,
                        a2: lp,
                    }
                } else {
                    State {
                        t1,
                        t2: tp,
                        k: k1,
                        q: 1,
                        a1,
                        a2: lp,
                    }
                };
                let col_tp = 1 + lp as u64;
                let sub1 = self.value(st1);
                if sub1 == INF {
                    continue;
                }
                let l2_range = if tp + 1 == t2 { a2..=a2 } else { 0..=self.cap };
                for l2 in l2_range {
                    let st2 = if tp + 1 == t2 {
                        State {
                            t1: t2,
                            t2,
                            k: i,
                            q,
                            a1: a2,
                            a2,
                        }
                    } else {
                        State {
                            t1: tp + 1,
                            t2,
                            k: i,
                            q,
                            a1: l2,
                            a2,
                        }
                    };
                    let sub2 = self.value(st2);
                    if sub2 == INF {
                        continue;
                    }
                    let x = if tp + 1 == t2 {
                        q as u64 + a2 as u64
                    } else {
                        st2.a1 as u64
                    };
                    let boundary = x + self.alpha * x.saturating_sub(col_tp);
                    if add(add(sub1, sub2), boundary) == target {
                        placements[job_k] = (tp as i64, 0);
                        self.intervals.recycle(split);
                        self.walk(st1, placements);
                        self.walk(st2, placements);
                        return;
                    }
                }
            }
        }
        unreachable!("no transition reproduces the memoized optimum");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::min_power_multiproc;

    fn check(windows: &[(i64, i64)], p: u32, alpha: u64) {
        let inst = Instance::from_windows(windows.iter().copied(), p).unwrap();
        let dp = min_power_schedule(&inst, alpha);
        let bf = min_power_multiproc(&inst, alpha);
        match (dp, bf) {
            (None, None) => {}
            (Some(dp), Some((bf_power, _))) => {
                assert_eq!(
                    dp.power, bf_power,
                    "power DP vs BF on {windows:?} p={p} alpha={alpha}"
                );
                dp.schedule.verify(&inst).unwrap();
            }
            (dp, bf) => panic!(
                "feasibility disagreement on {windows:?} p={p} alpha={alpha}: dp={:?} bf={:?}",
                dp.map(|s| s.power),
                bf.map(|(c, _)| c)
            ),
        }
    }

    #[test]
    fn empty_instance_costs_nothing() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert_eq!(min_power_schedule(&inst, 7).unwrap().power, 0);
    }

    #[test]
    fn single_job_costs_one_plus_alpha() {
        for alpha in 0..5 {
            let inst = Instance::from_windows([(3, 8)], 2).unwrap();
            assert_eq!(min_power_value(&inst, alpha), Some(1 + alpha));
        }
    }

    #[test]
    fn doc_example_bridging_crossover() {
        let inst = Instance::from_windows([(0, 0), (3, 3)], 1).unwrap();
        assert_eq!(min_power_value(&inst, 1), Some(4));
        assert_eq!(min_power_value(&inst, 5), Some(9));
        // At α = 2 both choices tie: 2 + 2 + 2 = 6.
        assert_eq!(min_power_value(&inst, 2), Some(6));
    }

    #[test]
    fn stacking_beats_spreading_for_power() {
        // Two flexible jobs, p = 2: running both in one slot on two
        // processors costs 2 + 2α; consecutive on one processor 2 + α.
        let inst = Instance::from_windows([(0, 1), (0, 1)], 2).unwrap();
        assert_eq!(min_power_value(&inst, 3), Some(5));
    }

    #[test]
    fn forced_stacking_pays_two_wakeups() {
        let inst = Instance::from_windows([(0, 0), (0, 0)], 2).unwrap();
        assert_eq!(min_power_value(&inst, 3), Some(2 + 6));
    }

    #[test]
    fn fixed_cases_vs_brute_force() {
        for alpha in [0, 1, 2, 4, 9] {
            check(&[(0, 3), (1, 2), (2, 5), (4, 4)], 2, alpha);
            check(&[(0, 0), (2, 2), (4, 4)], 2, alpha);
            check(&[(0, 1), (0, 1), (3, 4), (3, 4)], 2, alpha);
            check(&[(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)], 1, alpha);
            check(&[(0, 2), (0, 2), (0, 2), (4, 6), (4, 6)], 3, alpha);
        }
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::from_windows([(0, 0), (0, 0)], 1).unwrap();
        assert!(min_power_schedule(&inst, 3).is_none());
    }

    #[test]
    fn alpha_zero_power_is_just_n() {
        let inst = Instance::from_windows([(0, 0), (5, 5), (9, 9)], 1).unwrap();
        assert_eq!(min_power_value(&inst, 0), Some(3));
    }
}

//! **\[FHKN06\] baseline**: the greedy 3-approximation for one-interval
//! gap scheduling on a single processor.
//!
//! The paper describes it in Section 1: *"The algorithm tries all possible
//! gaps and chooses the largest gap that still leaves a feasible schedule
//! (whose existence can be checked by maximum-cardinality matching). Then
//! it removes this interval of time and repeats the process until no more
//! gaps can be introduced."* Feige, Hajiaghayi, Khanna and Naor prove a
//! ratio of 3; experiment E6 measures the actual ratio against Baptiste's
//! exact DP.
//!
//! Implementation: we keep an [`IncrementalMatching`] of jobs into slots;
//! declaring `[a, b]` a gap is `try_disable_many` over its slots (which
//! rematches displaced jobs or rolls back). The loop stops when every
//! still-enabled slot is matched — then no further slot can be idled.
//!
//! The seed version re-probed all O(T²) candidate windows every round.
//! Two monotonicity facts make that unnecessary: as the enabled set only
//! shrinks, (1) a window that once failed to disable can never succeed
//! later, and (2) a window that ever contained a disabled slot never
//! becomes fully enabled again. Each length therefore keeps a **cursor**
//! past the windows it has already ruled out, and support counts (enabled
//! slots per prefix) are cached and recomputed only after a commit — only
//! the windows overlapping the last committed gap change status, and they
//! change to permanently-skippable. Every window is probed at most once
//! across the whole run (`GreedyGapResult::probes` exposes the count).

use crate::instance::Instance;
use crate::schedule::{Assignment, Schedule};
use crate::time::Time;
use gaps_matching::{BipartiteGraph, IncrementalMatching};

/// Result of the greedy gap scheduler.
#[derive(Clone, Debug)]
pub struct GreedyGapResult {
    /// Number of gaps of the final schedule (finite idle intervals).
    pub gaps: u64,
    /// Number of spans of the final schedule.
    pub spans: u64,
    /// The schedule.
    pub schedule: Schedule,
    /// The gap intervals the greedy committed, in pick order (informative;
    /// adjacent picks merge in the final schedule).
    pub picked: Vec<(Time, Time)>,
    /// Matching probes (`try_disable_many` calls) issued. Bounded by the
    /// number of distinct windows, `T(T+1)/2`, across the *entire* run —
    /// the seed version could spend that much per round.
    pub probes: u64,
}

/// Which candidate gap the greedy commits each round. The paper's
/// algorithm (and its 3-approximation proof) uses [`PickOrder::LargestFirst`];
/// [`PickOrder::SmallestFirst`] exists as an ablation (experiment E18)
/// showing the ordering is load-bearing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PickOrder {
    /// The paper's rule: the largest interval that keeps feasibility.
    #[default]
    LargestFirst,
    /// Ablation: the smallest (non-trivial) disableable interval.
    SmallestFirst,
}

/// Run the greedy 3-approximation. Returns `None` iff infeasible.
///
/// # Panics
/// Panics if the instance has more than one processor (the cited
/// baseline is single-processor).
///
/// ```
/// use gaps_core::instance::Instance;
/// use gaps_core::greedy_gap::greedy_gap_schedule;
/// let inst = Instance::from_windows([(0, 0), (0, 9), (9, 9)], 1).unwrap();
/// let res = greedy_gap_schedule(&inst).unwrap();
/// assert!(res.gaps <= 3 * 1); // OPT = 1 here; greedy is 3-approximate
/// res.schedule.verify(&inst).unwrap();
/// ```
pub fn greedy_gap_schedule(inst: &Instance) -> Option<GreedyGapResult> {
    greedy_gap_schedule_with_order(inst, PickOrder::LargestFirst)
}

/// [`greedy_gap_schedule`] with an explicit pick order (see [`PickOrder`]).
pub fn greedy_gap_schedule_with_order(
    inst: &Instance,
    order: PickOrder,
) -> Option<GreedyGapResult> {
    assert_eq!(
        inst.processors(),
        1,
        "greedy gap baseline is single-processor"
    );
    let n = inst.job_count();
    if n == 0 {
        return Some(GreedyGapResult {
            gaps: 0,
            spans: 0,
            schedule: Schedule::new(vec![]),
            picked: vec![],
            probes: 0,
        });
    }
    // analyzer: allow(panic-free): the n == 0 case returned just above, so the instance has jobs
    let horizon = inst.horizon().expect("non-empty");
    let t0 = horizon.start;
    let t_len = (horizon.end - horizon.start + 1) as usize;
    assert!(
        t_len <= 100_000,
        "horizon too long; compress the instance first"
    );

    let mut graph = BipartiteGraph::new(n, t_len);
    for (j, job) in inst.jobs().iter().enumerate() {
        for t in job.window().iter() {
            graph.add_edge(j as u32, (t - t0) as u32);
        }
    }
    graph.dedup();
    let mut inc = IncrementalMatching::new(&graph);
    if inc.maximize() < n {
        return None;
    }

    let mut enabled = vec![true; t_len];
    let mut picked: Vec<(Time, Time)> = Vec::new();
    let mut probes = 0u64;
    let lengths: Vec<usize> = match order {
        PickOrder::LargestFirst => (1..=t_len).rev().collect(),
        PickOrder::SmallestFirst => (1..=t_len).collect(),
    };
    // Cached support counts: disabled_before[s] = #disabled slots < s, so
    // a window [a, b] is fully enabled iff its disabled count is zero.
    // Recomputed only after a commit (the only event that changes it).
    let support = |enabled: &[bool]| -> Vec<u32> {
        let mut acc = Vec::with_capacity(t_len + 1);
        let mut d = 0u32;
        acc.push(0);
        for &e in enabled {
            d += u32::from(!e);
            acc.push(d);
        }
        acc
    };
    let mut disabled_before = support(&enabled);
    // Per-length probe cursors: everything before the cursor is either a
    // window that failed a probe (it can never succeed once the enabled
    // set has shrunk) or one overlapping a committed gap (it can never be
    // fully enabled again) — skip both forever.
    let mut cursor = vec![0usize; t_len + 1];
    loop {
        // Find the first disableable interval in the configured order.
        let mut committed = false;
        'lengths: for &len in &lengths {
            let mut a = cursor[len];
            while a + len <= t_len {
                let b = a + len - 1;
                if disabled_before[b + 1] - disabled_before[a] > 0 {
                    a += 1;
                    continue; // overlaps a committed gap: skippable forever
                }
                let slots: Vec<u32> = (a..=b).map(|s| s as u32).collect();
                probes += 1;
                if inc.try_disable_many(&slots) {
                    enabled[a..=b].fill(false);
                    disabled_before = support(&enabled);
                    picked.push((t0 + a as Time, t0 + b as Time));
                    cursor[len] = a;
                    committed = true;
                    break 'lengths;
                }
                a += 1; // failed: failures are permanent
            }
            cursor[len] = a;
        }
        if !committed {
            break;
        }
        // Fast exit: if every enabled slot is matched, nothing more can go.
        let all_busy =
            (0..t_len).all(|s| !enabled[s] || inc.matching().partner_of_right(s as u32).is_some());
        if all_busy {
            break;
        }
    }

    let assignments = (0..n as u32)
        .map(|j| {
            let s = inc
                .matching()
                .partner_of_left(j)
                // analyzer: allow(panic-free): the augmentation loop above returned None unless every job stayed matched
                .expect("perfect matching maintained");
            Assignment {
                time: t0 + s as Time,
                processor: 0,
            }
        })
        .collect();
    let schedule = Schedule::new(assignments);
    debug_assert_eq!(schedule.verify(inst), Ok(()));
    Some(GreedyGapResult {
        gaps: schedule.gap_count(1),
        spans: schedule.span_count(1),
        schedule,
        picked,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baptiste;

    fn single(windows: &[(i64, i64)]) -> Instance {
        Instance::from_windows(windows.iter().copied(), 1).unwrap()
    }

    #[test]
    fn greedy_matches_optimum_on_easy_cases() {
        // All jobs can pack contiguously.
        let inst = single(&[(0, 3), (0, 3), (0, 3), (0, 3)]);
        let res = greedy_gap_schedule(&inst).unwrap();
        assert_eq!(res.gaps, 0);
    }

    #[test]
    fn greedy_respects_factor_three() {
        let cases = [
            vec![(0, 0), (2, 5), (5, 5)],
            vec![(0, 10), (9, 10)],
            vec![(0, 0), (3, 3), (6, 6), (0, 6)],
            vec![(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)],
            vec![(0, 12), (2, 2), (6, 6), (10, 10), (0, 12)],
        ];
        for windows in cases {
            let inst = single(&windows);
            let opt = baptiste::min_gaps_value(&inst).unwrap();
            let res = greedy_gap_schedule(&inst).unwrap();
            assert!(
                res.gaps <= 3 * opt.max(1),
                "greedy {} vs opt {opt} on {windows:?}",
                res.gaps
            );
            res.schedule.verify(&inst).unwrap();
        }
    }

    #[test]
    fn greedy_finds_the_single_big_gap() {
        // One job at each end; everything between can be one huge gap.
        let inst = single(&[(0, 1), (99, 100)]);
        let res = greedy_gap_schedule(&inst).unwrap();
        assert_eq!(res.gaps, 1);
        assert_eq!(res.spans, 2);
        // The first committed gap should be the big middle stretch.
        let (a, b) = res.picked[0];
        assert!(
            b - a + 1 >= 97,
            "first pick should be the large middle interval"
        );
    }

    #[test]
    fn infeasible_detected() {
        let inst = single(&[(4, 4), (4, 4)]);
        assert!(greedy_gap_schedule(&inst).is_none());
    }

    /// The cursor cache must make the total probe count sub-quadratic in
    /// practice and never exceed one probe per distinct window over the
    /// whole run — the seed version could pay the full O(T²) sweep once
    /// per committed gap.
    #[test]
    fn probe_count_is_bounded_by_one_per_window() {
        // Multi-round instance: three pinned anchors force two committed
        // gaps (plus the failed probes in between).
        let inst = single(&[(0, 0), (10, 10), (20, 20), (0, 20), (0, 20)]);
        let res = greedy_gap_schedule(&inst).unwrap();
        assert!(res.picked.len() >= 2, "expected a multi-round run");
        let t = 21u64;
        let windows = t * (t + 1) / 2;
        assert!(
            res.probes <= windows,
            "probes {} exceed one-per-window budget {windows}",
            res.probes
        );
        // Regression floor for the caching claim: the seed behavior on
        // this instance pays well over one budget's worth of probes.
        assert!(
            res.probes < windows / 2,
            "caching not engaging: {}",
            res.probes
        );
    }

    /// The caching is an optimization only: gap counts and pick sequences
    /// must equal the seed algorithm's (reimplemented naively here) on
    /// random feasible instances.
    #[test]
    fn cached_probing_matches_naive_reprobing() {
        use gaps_matching::{BipartiteGraph, IncrementalMatching};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // The seed algorithm, verbatim: full O(T²) sweep per round.
        let naive = |inst: &Instance| -> Option<(u64, Vec<(Time, Time)>)> {
            let n = inst.job_count();
            let horizon = inst.horizon()?;
            let t0 = horizon.start;
            let t_len = (horizon.end - horizon.start + 1) as usize;
            let mut graph = BipartiteGraph::new(n, t_len);
            for (j, job) in inst.jobs().iter().enumerate() {
                for t in job.window().iter() {
                    graph.add_edge(j as u32, (t - t0) as u32);
                }
            }
            graph.dedup();
            let mut inc = IncrementalMatching::new(&graph);
            if inc.maximize() < n {
                return None;
            }
            let mut enabled = vec![true; t_len];
            let mut picked = Vec::new();
            loop {
                let mut committed = false;
                'lengths: for len in (1..=t_len).rev() {
                    for a in 0..=(t_len - len) {
                        let b = a + len - 1;
                        if !(a..=b).all(|s| enabled[s]) {
                            continue;
                        }
                        let slots: Vec<u32> = (a..=b).map(|s| s as u32).collect();
                        if inc.try_disable_many(&slots) {
                            enabled[a..=b].fill(false);
                            picked.push((t0 + a as Time, t0 + b as Time));
                            committed = true;
                            break 'lengths;
                        }
                    }
                }
                if !committed {
                    break;
                }
            }
            let busy: Vec<Time> = (0..n as u32)
                .map(|j| t0 + inc.matching().partner_of_left(j).unwrap() as Time)
                .collect();
            let mut sorted = busy;
            sorted.sort_unstable();
            Some((
                (crate::time::run_count(&sorted) as u64).saturating_sub(1),
                picked,
            ))
        };

        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x6A11);
            let n = rng.gen_range(1..=7);
            let windows: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let r: i64 = rng.gen_range(0..14);
                    (r, r + rng.gen_range(0..6i64))
                })
                .collect();
            let inst = single(&windows);
            let fast = greedy_gap_schedule(&inst);
            let slow = naive(&inst);
            assert_eq!(fast.is_some(), slow.is_some(), "seed {seed}: feasibility");
            if let (Some(fast), Some((gaps, picked))) = (fast, slow) {
                assert_eq!(fast.gaps, gaps, "seed {seed}: gaps diverged");
                assert_eq!(fast.picked, picked, "seed {seed}: pick order diverged");
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 1).unwrap();
        let res = greedy_gap_schedule(&inst).unwrap();
        assert_eq!(res.gaps, 0);
    }

    #[test]
    #[should_panic(expected = "single-processor")]
    fn rejects_multiproc() {
        let inst = Instance::from_windows([(0, 1)], 2).unwrap();
        greedy_gap_schedule(&inst);
    }
}

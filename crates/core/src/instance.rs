//! Problem instances: one-interval jobs on `p` processors, and
//! multi-interval jobs on a single processor.
//!
//! Terminology follows the paper:
//!
//! * a **one-interval** job has an integer release time `r` and deadline `d`
//!   and may execute in any slot `t` with `r ≤ t ≤ d`;
//! * a **multi-interval** job has an explicit finite set of allowed slots
//!   `T_i` (Sections 3–6);
//! * all jobs have **unit processing time**.

use crate::time::{Time, TimeInterval};
use std::fmt;

/// Errors raised by instance construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// A job's deadline precedes its release time.
    EmptyWindow {
        job: usize,
        release: Time,
        deadline: Time,
    },
    /// A multi-interval job has no allowed times at all.
    NoAllowedTimes { job: usize },
    /// Processor count must be at least 1.
    NoProcessors,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::EmptyWindow {
                job,
                release,
                deadline,
            } => write!(
                f,
                "job {job} has empty window [release {release}, deadline {deadline}]"
            ),
            InstanceError::NoAllowedTimes { job } => {
                write!(f, "job {job} has no allowed execution times")
            }
            InstanceError::NoProcessors => write!(f, "processor count must be >= 1"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A unit job with a release time and a deadline (one-interval model).
///
/// The job may be executed in any slot `t` with `release ≤ t ≤ deadline`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Job {
    /// First slot in which the job may run.
    pub release: Time,
    /// Last slot in which the job may run (inclusive).
    pub deadline: Time,
}

impl Job {
    /// Build a job; `deadline ≥ release` is validated by [`Instance::new`].
    pub fn new(release: Time, deadline: Time) -> Job {
        Job { release, deadline }
    }

    /// The execution window as an interval.
    pub fn window(&self) -> TimeInterval {
        TimeInterval::new(self.release, self.deadline)
    }

    /// Window length in slots (the job's slack plus one).
    pub fn window_len(&self) -> u64 {
        (self.deadline - self.release + 1) as u64
    }
}

/// A one-interval scheduling instance on `p ≥ 1` identical processors.
///
/// This is the input of the paper's Theorems 1 and 2 (for `p ≥ 2`) and of
/// the Baptiste single-processor DP (`p = 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    jobs: Vec<Job>,
    processors: u32,
}

impl Instance {
    /// Build and validate an instance.
    pub fn new(jobs: Vec<Job>, processors: u32) -> Result<Instance, InstanceError> {
        if processors == 0 {
            return Err(InstanceError::NoProcessors);
        }
        for (i, j) in jobs.iter().enumerate() {
            if j.deadline < j.release {
                return Err(InstanceError::EmptyWindow {
                    job: i,
                    release: j.release,
                    deadline: j.deadline,
                });
            }
        }
        Ok(Instance { jobs, processors })
    }

    /// Single-processor convenience constructor.
    pub fn single(jobs: Vec<Job>) -> Result<Instance, InstanceError> {
        Instance::new(jobs, 1)
    }

    /// Build from `(release, deadline)` pairs.
    pub fn from_windows(
        windows: impl IntoIterator<Item = (Time, Time)>,
        processors: u32,
    ) -> Result<Instance, InstanceError> {
        Instance::new(
            windows.into_iter().map(|(r, d)| Job::new(r, d)).collect(),
            processors,
        )
    }

    /// The jobs, in input order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of processors `p`.
    #[inline]
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// The hull `[min release, max deadline]`, or `None` with no jobs.
    pub fn horizon(&self) -> Option<TimeInterval> {
        let start = self.jobs.iter().map(|j| j.release).min()?;
        let end = self.jobs.iter().map(|j| j.deadline).max()?;
        Some(TimeInterval::new(start, end))
    }

    /// Job indices sorted by `(deadline, release, index)` — the order every
    /// DP in this crate presorts by (the paper's `j_1, …, j_k` with
    /// earliest deadlines first).
    pub fn deadline_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by_key(|&i| (self.jobs[i].deadline, self.jobs[i].release, i));
        order
    }

    /// Reinterpret on a different processor count.
    pub fn with_processors(&self, processors: u32) -> Result<Instance, InstanceError> {
        Instance::new(self.jobs.clone(), processors)
    }

    /// Convert to the multi-interval model (single processor): each job's
    /// allowed set becomes the explicit expansion of its window.
    ///
    /// Only meaningful for `p = 1`; for `p ≥ 2` the paper instead views the
    /// processors laid out one after another on the timeline (see
    /// [`Instance::to_multi_interval_arithmetic`]).
    ///
    /// # Panics
    /// Panics if a window is longer than `max_expansion` slots
    /// (guarding against accidentally materializing huge gadget windows).
    pub fn to_multi_interval(&self, max_expansion: u64) -> MultiInstance {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                assert!(
                    j.window_len() <= max_expansion,
                    "window of length {} exceeds expansion budget {}",
                    j.window_len(),
                    max_expansion
                );
                MultiJob::new(j.window().iter().collect())
            })
            .collect();
        // analyzer: allow(panic-free): Job::new enforces release <= deadline, so every expanded window has a slot
        MultiInstance::new(jobs).expect("windows are non-empty")
    }

    /// The paper's Section 2 correspondence: lay the `p` processors one
    /// after another on a single timeline, each shifted by `period`, so a
    /// job with window `[r, d]` becomes executable in the arithmetic family
    /// of intervals `[r, d], [r + period, d + period], …,
    /// [r + (p−1)·period, d + (p−1)·period]`.
    ///
    /// `period` must exceed the horizon length so the copies do not
    /// interleave (the paper: "each processor runs for less than x units").
    ///
    /// # Panics
    /// Panics if there are no jobs or `period` is not strictly larger than
    /// the horizon length.
    pub fn to_multi_interval_arithmetic(&self, period: Time) -> MultiInstance {
        // analyzer: allow(panic-free): documented API contract — the doc comment above promises a panic on empty instances
        let horizon = self.horizon().expect("instance has jobs");
        assert!(
            period > horizon.end - horizon.start,
            "period {period} must exceed the horizon length {}",
            horizon.end - horizon.start
        );
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                let mut times = Vec::new();
                for q in 0..self.processors as i64 {
                    for t in j.window().iter() {
                        times.push(t + q * period);
                    }
                }
                MultiJob::new(times)
            })
            .collect();
        // analyzer: allow(panic-free): Job::new enforces release <= deadline, so every shifted copy has a slot
        MultiInstance::new(jobs).expect("windows are non-empty")
    }
}

/// A unit job with an explicit set of allowed execution slots
/// (multi-interval model, Sections 3–6 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MultiJob {
    /// Allowed slots, sorted and deduplicated.
    times: Vec<Time>,
}

impl MultiJob {
    /// Build a job from allowed slots (sorted and deduplicated here).
    pub fn new(mut times: Vec<Time>) -> MultiJob {
        times.sort_unstable();
        times.dedup();
        MultiJob { times }
    }

    /// Build from a list of intervals (the paper's "list of time
    /// intervals during which it can execute").
    pub fn from_intervals(intervals: &[TimeInterval]) -> MultiJob {
        let mut times = Vec::new();
        for iv in intervals {
            times.extend(iv.iter());
        }
        MultiJob::new(times)
    }

    /// Allowed slots, sorted.
    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Can the job run at `t`?
    pub fn allows(&self, t: Time) -> bool {
        self.times.binary_search(&t).is_ok()
    }

    /// The allowed set as maximal intervals (the `k` of "k-interval job").
    pub fn intervals(&self) -> Vec<TimeInterval> {
        crate::time::runs_of(&self.times)
    }
}

/// A multi-interval scheduling instance (single processor).
///
/// The input of the paper's Theorems 3–11: each job must be assigned a
/// distinct slot from its allowed set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiInstance {
    jobs: Vec<MultiJob>,
}

impl MultiInstance {
    /// Build and validate an instance (every job needs ≥ 1 allowed slot).
    pub fn new(jobs: Vec<MultiJob>) -> Result<MultiInstance, InstanceError> {
        for (i, j) in jobs.iter().enumerate() {
            if j.times.is_empty() {
                return Err(InstanceError::NoAllowedTimes { job: i });
            }
        }
        Ok(MultiInstance { jobs })
    }

    /// Build from per-job slot lists.
    pub fn from_times(
        jobs: impl IntoIterator<Item = Vec<Time>>,
    ) -> Result<MultiInstance, InstanceError> {
        MultiInstance::new(jobs.into_iter().map(MultiJob::new).collect())
    }

    /// The jobs, in input order.
    #[inline]
    pub fn jobs(&self) -> &[MultiJob] {
        &self.jobs
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Union of all allowed slots, sorted and deduplicated. These are the
    /// only slots any schedule can use.
    pub fn slot_union(&self) -> Vec<Time> {
        let mut slots: Vec<Time> = self
            .jobs
            .iter()
            .flat_map(|j| j.times.iter().copied())
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Maximum number of intervals of any job (the `k` in "k-interval gap
    /// scheduling"); 0 for an empty instance.
    pub fn max_intervals_per_job(&self) -> usize {
        self.jobs
            .iter()
            .map(|j| j.intervals().len())
            .max()
            .unwrap_or(0)
    }

    /// True iff every allowed interval of every job has unit length
    /// ("unit" in the paper's 2-unit / 3-unit problems).
    pub fn is_unit_interval(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| j.intervals().iter().all(|iv| iv.len() == 1))
    }

    /// True iff the allowed sets are pairwise disjoint
    /// ("disjoint-interval gap scheduling" of Theorem 9/10).
    pub fn is_disjoint(&self) -> bool {
        let mut slots: Vec<Time> = self
            .jobs
            .iter()
            .flat_map(|j| j.times.iter().copied())
            .collect();
        let before = slots.len();
        slots.sort_unstable();
        slots.dedup();
        slots.len() == before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_validates_windows() {
        assert!(Instance::from_windows([(0, 3), (2, 2)], 1).is_ok());
        let err = Instance::from_windows([(3, 1)], 1).unwrap_err();
        assert_eq!(
            err,
            InstanceError::EmptyWindow {
                job: 0,
                release: 3,
                deadline: 1
            }
        );
        assert_eq!(
            Instance::new(vec![], 0).unwrap_err(),
            InstanceError::NoProcessors
        );
    }

    #[test]
    fn horizon_and_deadline_order() {
        let inst = Instance::from_windows([(5, 9), (0, 3), (2, 3)], 2).unwrap();
        assert_eq!(inst.horizon(), Some(TimeInterval::new(0, 9)));
        assert_eq!(inst.deadline_order(), vec![1, 2, 0]);
        assert_eq!(Instance::new(vec![], 1).unwrap().horizon(), None);
    }

    #[test]
    fn multi_job_from_intervals() {
        let j = MultiJob::from_intervals(&[TimeInterval::new(0, 2), TimeInterval::new(5, 5)]);
        assert_eq!(j.times(), &[0, 1, 2, 5]);
        assert!(j.allows(1));
        assert!(!j.allows(3));
        assert_eq!(j.intervals().len(), 2);
    }

    #[test]
    fn multi_instance_rejects_empty_job() {
        let err = MultiInstance::from_times([vec![]]).unwrap_err();
        assert_eq!(err, InstanceError::NoAllowedTimes { job: 0 });
    }

    #[test]
    fn one_interval_expansion() {
        let inst = Instance::from_windows([(0, 2), (1, 1)], 1).unwrap();
        let multi = inst.to_multi_interval(100);
        assert_eq!(multi.jobs()[0].times(), &[0, 1, 2]);
        assert_eq!(multi.jobs()[1].times(), &[1]);
        assert_eq!(multi.max_intervals_per_job(), 1);
    }

    #[test]
    fn arithmetic_expansion_matches_section_2() {
        // 2 processors, horizon [0, 2], period 10: job windows replicate at
        // +0 and +10.
        let inst = Instance::from_windows([(0, 1), (2, 2)], 2).unwrap();
        let multi = inst.to_multi_interval_arithmetic(10);
        assert_eq!(multi.jobs()[0].times(), &[0, 1, 10, 11]);
        assert_eq!(multi.jobs()[1].times(), &[2, 12]);
        // Each job's allowed set is an arithmetic family of p intervals.
        assert_eq!(multi.jobs()[0].intervals().len(), 2);
    }

    #[test]
    #[should_panic(expected = "must exceed the horizon length")]
    fn arithmetic_expansion_rejects_small_period() {
        let inst = Instance::from_windows([(0, 5)], 2).unwrap();
        inst.to_multi_interval_arithmetic(3);
    }

    #[test]
    fn unit_and_disjoint_classification() {
        let unit = MultiInstance::from_times([vec![0, 2, 4], vec![6]]).unwrap();
        assert!(unit.is_unit_interval());
        assert!(unit.is_disjoint());
        let overlapping = MultiInstance::from_times([vec![0, 1], vec![1, 5]]).unwrap();
        assert!(!overlapping.is_unit_interval());
        assert!(!overlapping.is_disjoint());
        assert_eq!(overlapping.slot_union(), vec![0, 1, 5]);
    }
}

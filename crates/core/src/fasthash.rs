//! A minimal multiplicative hasher for the DP memo tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~2× the whole probe
//! on the packed-`u64` keys the exact solvers use; the memo tables are
//! process-internal (keys are never attacker-controlled), so a single
//! round of splitmix64-style mixing is enough. The finisher keeps the
//! high bits well distributed, which is what `HashMap`'s power-of-two
//! bucket masking consumes.

use std::hash::{BuildHasherDefault, Hasher};

/// One-shot mixing hasher for integer keys (splitmix64 finalizer).
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut z = self.state ^ v;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-integer keys: mix 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        // Two-word keys (the multi-exact memo packs `(slot, 64-job mask)`
        // into a `u128`) skip the byte-chunking fallback.
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` plugging [`FastHasher`] into `HashMap`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by small integers with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k.wrapping_mul(0x1234_5678_9abc_def1), k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(
                m.get(&k.wrapping_mul(0x1234_5678_9abc_def1)),
                Some(&(k as u32))
            );
        }
    }

    #[test]
    fn nearby_keys_spread() {
        // Packed DP states differ in low bits; the finisher must spread
        // them across high bits so bucket masking doesn't cluster.
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        let top: Vec<u64> = (0..64).map(|v| hash(v) >> 56).collect();
        let distinct = {
            let mut t = top.clone();
            t.sort_unstable();
            t.dedup();
            t.len()
        };
        assert!(distinct > 32, "top bytes too clustered: {distinct}");
    }
}

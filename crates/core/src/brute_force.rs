//! Exhaustive reference solvers for small instances.
//!
//! Every approximation ratio and every DP in this workspace is validated
//! against the solvers in this module. They are exponential-time by design
//! (the problems are NP-hard in their multi-interval forms) and intended
//! for `n ≲ 10` jobs and `≲ 96` distinct slots; they memoize on
//! `(job index, occupied-slot bitmask)`, which keeps typical test instances
//! in the tens of thousands of states.

use crate::instance::{Instance, MultiInstance};
use crate::power::processor_power;
use crate::schedule::{Assignment, MultiSchedule, Schedule};
use crate::time::{run_count, Time};
use std::collections::HashMap;

/// Hard cap on distinct slots for the bitmask solvers.
const MAX_SLOTS: usize = 128;

/// Minimum-gap schedule of a multi-interval instance (Theorem 6's problem),
/// or `None` if infeasible. Gaps are counted as spans − 1.
pub fn min_gaps_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    min_cost_multi(inst, |occupied| {
        (run_count(occupied) as u64).saturating_sub(1)
    })
}

/// Minimum number of spans (Section 5 convention: one infinite side counts
/// as a gap, so "gaps" = spans).
pub fn min_spans_multi(inst: &MultiInstance) -> Option<(u64, MultiSchedule)> {
    min_cost_multi(inst, |occupied| run_count(occupied) as u64)
}

/// Minimum-power schedule of a multi-interval instance under transition
/// cost `alpha` (Theorem 3's problem), or `None` if infeasible.
pub fn min_power_multi(inst: &MultiInstance, alpha: u64) -> Option<(u64, MultiSchedule)> {
    min_cost_multi(inst, |occupied| processor_power(occupied, alpha))
}

/// Generic exact solver: minimize `cost(occupied slots)` over all feasible
/// complete schedules.
fn min_cost_multi(
    inst: &MultiInstance,
    cost: impl Fn(&[Time]) -> u64,
) -> Option<(u64, MultiSchedule)> {
    let slots = inst.slot_union();
    assert!(
        slots.len() <= MAX_SLOTS,
        "brute force supports at most {MAX_SLOTS} distinct slots, got {}",
        slots.len()
    );
    let n = inst.job_count();
    if n == 0 {
        return Some((cost(&[]), MultiSchedule::new(vec![])));
    }

    // Most-constrained-first ordering shrinks the search tree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| inst.jobs()[i].times().len());
    let allowed: Vec<Vec<usize>> = order
        .iter()
        .map(|&i| {
            inst.jobs()[i]
                .times()
                .iter()
                // analyzer: allow(panic-free): slot_union() is the sorted set of exactly these job times
                .map(|t| slots.binary_search(t).expect("slot in union"))
                .collect()
        })
        .collect();

    let mut memo: HashMap<(usize, u128), u64> = HashMap::new();
    let best = search_min(&allowed, 0, 0u128, &slots, &cost, &mut memo)?;

    // Reconstruct by following memo-optimal branches.
    let mut times = vec![0; n];
    let mut mask = 0u128;
    for (depth, &job) in order.iter().enumerate() {
        let target = search_min(&allowed, depth, mask, &slots, &cost, &mut memo)
            // analyzer: allow(panic-free): reconstruction replays memo states the successful outer search already proved feasible
            .expect("feasible by outer check");
        let mut placed = false;
        for &s in &allowed[depth] {
            let bit = 1u128 << s;
            if mask & bit != 0 {
                continue;
            }
            if search_min(&allowed, depth + 1, mask | bit, &slots, &cost, &mut memo) == Some(target)
            {
                times[job] = slots[s];
                mask |= bit;
                placed = true;
                break;
            }
        }
        assert!(placed, "reconstruction must follow an optimal branch");
    }
    let sched = MultiSchedule::new(times);
    debug_assert!(sched.verify(inst).is_ok());
    Some((best, sched))
}

fn search_min(
    allowed: &[Vec<usize>],
    depth: usize,
    mask: u128,
    slots: &[Time],
    cost: &impl Fn(&[Time]) -> u64,
    memo: &mut HashMap<(usize, u128), u64>,
) -> Option<u64> {
    if depth == allowed.len() {
        let occupied: Vec<Time> = slots
            .iter()
            .enumerate()
            .filter(|&(s, _)| mask & (1u128 << s) != 0)
            .map(|(_, &t)| t)
            .collect();
        return Some(cost(&occupied));
    }
    if let Some(&v) = memo.get(&(depth, mask)) {
        return (v != u64::MAX).then_some(v);
    }
    let mut best: Option<u64> = None;
    for &s in &allowed[depth] {
        let bit = 1u128 << s;
        if mask & bit != 0 {
            continue;
        }
        if let Some(v) = search_min(allowed, depth + 1, mask | bit, slots, cost, memo) {
            best = Some(best.map_or(v, |b: u64| b.min(v)));
        }
    }
    memo.insert((depth, mask), best.unwrap_or(u64::MAX));
    best
}

/// Exact minimum-span schedule of a one-interval instance on `p` processors
/// — the transition-count objective that the paper's Theorem 1 DP actually
/// minimizes — or `None` if infeasible. The returned witness is
/// prefix-structured.
///
/// The cost of a complete occupancy profile `ℓ` is the number of span
/// starts `Σ_t (ℓ_t − ℓ_{t−1})⁺`, which is arrangement-independent (it is a
/// lower bound on the runs of any arrangement and the prefix arrangement
/// attains it).
pub fn min_spans_multiproc(inst: &Instance) -> Option<(u64, Schedule)> {
    min_cost_multiproc(inst, profile_starts)
}

/// Exact minimum-gap schedule (finite maximal idle intervals, the paper's
/// literal Section 2 objective) of a one-interval instance on `p`
/// processors, or `None` if infeasible.
///
/// For a fixed occupancy profile with `R` span starts, any arrangement has
/// `R` runs or more and can use at most `min(p, R)` processors, so the best
/// achievable gap count is `max(0, R − p)`; run spreading attains it (see
/// [`Schedule::spread_for_min_gaps`] and the Lemma 1 discussion in
/// DESIGN.md). The witness returned here is run-spread.
pub fn min_gaps_multiproc(inst: &Instance) -> Option<(u64, Schedule)> {
    let p = inst.processors() as u64;
    let (gaps, sched) =
        min_cost_multiproc(inst, |profile| profile_starts(profile).saturating_sub(p))?;
    let spread = sched.spread_for_min_gaps(inst.processors());
    debug_assert_eq!(spread.gap_count(inst.processors()), gaps);
    Some((gaps, spread))
}

/// Exact minimum-power schedule of a one-interval instance on `p`
/// processors (Theorem 2's problem). Processors may stay active through
/// gaps; a gap of length `g` on one processor costs `min(g, α)`.
pub fn min_power_multiproc(inst: &Instance, alpha: u64) -> Option<(u64, Schedule)> {
    min_cost_multiproc(inst, |profile| profile_power(profile, alpha))
}

/// Span starts of an occupancy profile: `Σ_t (ℓ_t − ℓ_{t−1})⁺`.
fn profile_starts(profile: &[u8]) -> u64 {
    let mut prev = 0u8;
    let mut starts = 0u64;
    for &l in profile {
        starts += l.saturating_sub(prev) as u64;
        prev = l;
    }
    starts
}

/// Power of a profile under the prefix arrangement: level `q` of the
/// staircase is busy exactly where `ℓ(t) ≥ q`; each level is an independent
/// single processor.
fn profile_power(profile: &[u8], alpha: u64) -> u64 {
    let peak = profile.iter().copied().max().unwrap_or(0);
    let mut total = 0u64;
    for q in 1..=peak {
        let busy: Vec<Time> = profile
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l >= q)
            .map(|(t, _)| t as Time)
            .collect();
        total += processor_power(&busy, alpha);
    }
    total
}

fn min_cost_multiproc(inst: &Instance, cost: impl Fn(&[u8]) -> u64) -> Option<(u64, Schedule)> {
    let n = inst.job_count();
    if n == 0 {
        return Some((cost(&[]), Schedule::new(vec![])));
    }
    // analyzer: allow(panic-free): the n == 0 case returned just above, so the instance has jobs
    let horizon = inst.horizon().expect("non-empty");
    let t0 = horizon.start;
    let horizon_len = (horizon.end - horizon.start + 1) as usize;
    assert!(
        horizon_len <= MAX_SLOTS,
        "brute force supports horizons up to {MAX_SLOTS} slots, got {horizon_len}"
    );
    assert!(
        inst.processors() < 250,
        "processor count too large for u8 profile"
    );

    let order = inst.deadline_order();
    let windows: Vec<(usize, usize)> = order
        .iter()
        .map(|&i| {
            let j = &inst.jobs()[i];
            ((j.release - t0) as usize, (j.deadline - t0) as usize)
        })
        .collect();
    let p = inst.processors() as u8;

    let mut memo: HashMap<(usize, Vec<u8>), u64> = HashMap::new();
    let mut profile = vec![0u8; horizon_len];
    let best = search_profile(&windows, 0, &mut profile, p, &cost, &mut memo)?;

    // Reconstruct.
    let mut times: Vec<Time> = vec![0; n];
    let mut prof = vec![0u8; horizon_len];
    for (depth, &job) in order.iter().enumerate() {
        let target = search_profile(&windows, depth, &mut prof, p, &cost, &mut memo)
            // analyzer: allow(panic-free): reconstruction replays memo states the successful outer search already proved feasible
            .expect("feasible by outer check");
        let (lo, hi) = windows[depth];
        let mut placed = false;
        for t in lo..=hi {
            if prof[t] >= p {
                continue;
            }
            prof[t] += 1;
            if search_profile(&windows, depth + 1, &mut prof, p, &cost, &mut memo) == Some(target) {
                times[job] = t0 + t as Time;
                placed = true;
                break;
            }
            prof[t] -= 1;
        }
        assert!(placed, "reconstruction must follow an optimal branch");
    }

    // Prefix processor assignment: jobs at equal times stack from P0 up.
    let mut used_at: HashMap<Time, u32> = HashMap::new();
    let assignments = times
        .iter()
        .map(|&t| {
            let q = used_at.entry(t).or_insert(0);
            let a = Assignment {
                time: t,
                processor: *q,
            };
            *q += 1;
            a
        })
        .collect();
    let sched = Schedule::new(assignments);
    debug_assert!(sched.verify(inst).is_ok());
    debug_assert!(sched.is_prefix_structured());
    Some((best, sched))
}

fn search_profile(
    windows: &[(usize, usize)],
    depth: usize,
    profile: &mut Vec<u8>,
    p: u8,
    cost: &impl Fn(&[u8]) -> u64,
    memo: &mut HashMap<(usize, Vec<u8>), u64>,
) -> Option<u64> {
    if depth == windows.len() {
        return Some(cost(profile));
    }
    if let Some(&v) = memo.get(&(depth, profile.clone())) {
        return (v != u64::MAX).then_some(v);
    }
    let (lo, hi) = windows[depth];
    let mut best: Option<u64> = None;
    for t in lo..=hi {
        if profile[t] >= p {
            continue;
        }
        profile[t] += 1;
        if let Some(v) = search_profile(windows, depth + 1, profile, p, cost, memo) {
            best = Some(best.map_or(v, |b: u64| b.min(v)));
        }
        profile[t] -= 1;
    }
    memo.insert((depth, profile.clone()), best.unwrap_or(u64::MAX));
    best
}

/// Exact maximum throughput under a span budget (Theorem 11's problem,
/// Section 5 gap convention: the budget bounds the number of spans):
/// the most jobs schedulable with at most `k` spans, plus a witness
/// (per-job `Some(time)` or `None` if dropped).
pub fn max_throughput_spans(inst: &MultiInstance, k: u64) -> (usize, Vec<Option<Time>>) {
    let slots = inst.slot_union();
    assert!(
        slots.len() <= MAX_SLOTS,
        "brute force supports at most {MAX_SLOTS} distinct slots"
    );
    let n = inst.job_count();
    let allowed: Vec<Vec<usize>> = inst
        .jobs()
        .iter()
        .map(|j| {
            j.times()
                .iter()
                // analyzer: allow(panic-free): slot_union() is the sorted set of exactly these job times
                .map(|t| slots.binary_search(t).expect("slot in union"))
                .collect()
        })
        .collect();

    let mut memo: HashMap<(usize, u128), usize> = HashMap::new();
    let best = search_max(&allowed, 0, 0u128, &slots, k, &mut memo);

    // Reconstruct.
    let mut choice = vec![None; n];
    let mut mask = 0u128;
    for depth in 0..n {
        let target = search_max(&allowed, depth, mask, &slots, k, &mut memo);
        // Try scheduling this job somewhere on an optimal branch.
        let mut done = false;
        for &s in &allowed[depth] {
            let bit = 1u128 << s;
            if mask & bit != 0 {
                continue;
            }
            let sub = search_max(&allowed, depth + 1, mask | bit, &slots, k, &mut memo);
            if sub != usize::MAX && sub + 1 == target {
                choice[depth] = Some(slots[s]);
                mask |= bit;
                done = true;
                break;
            }
        }
        if !done {
            debug_assert_eq!(
                search_max(&allowed, depth + 1, mask, &slots, k, &mut memo),
                target
            );
        }
    }
    (best, choice)
}

fn search_max(
    allowed: &[Vec<usize>],
    depth: usize,
    mask: u128,
    slots: &[Time],
    k: u64,
    memo: &mut HashMap<(usize, u128), usize>,
) -> usize {
    if depth == allowed.len() {
        let occupied: Vec<Time> = slots
            .iter()
            .enumerate()
            .filter(|&(s, _)| mask & (1u128 << s) != 0)
            .map(|(_, &t)| t)
            .collect();
        return if run_count(&occupied) as u64 <= k {
            0
        } else {
            usize::MAX
        };
    }
    if let Some(&v) = memo.get(&(depth, mask)) {
        return v;
    }
    // Option 1: skip this job.
    let mut best = search_max(allowed, depth + 1, mask, slots, k, memo);
    // Option 2: schedule it.
    for &s in &allowed[depth] {
        let bit = 1u128 << s;
        if mask & bit != 0 {
            continue;
        }
        let sub = search_max(allowed, depth + 1, mask | bit, slots, k, memo);
        if sub != usize::MAX {
            best = if best == usize::MAX {
                sub + 1
            } else {
                best.max(sub + 1)
            };
        }
    }
    memo.insert((depth, mask), best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_cost_single;

    #[test]
    fn min_gaps_multi_prefers_contiguous() {
        // Job 1 is pinned at 5; job 0 can join it or sit at 0.
        let inst = MultiInstance::from_times([vec![0, 4], vec![5]]).unwrap();
        let (gaps, sched) = min_gaps_multi(&inst).unwrap();
        sched.verify(&inst).unwrap();
        assert_eq!(gaps, 0);
        assert_eq!(sched.times(), &[4, 5]);
    }

    #[test]
    fn min_gaps_multi_detects_infeasible() {
        let inst = MultiInstance::from_times([vec![0], vec![0]]).unwrap();
        assert_eq!(min_gaps_multi(&inst), None);
    }

    #[test]
    fn min_spans_is_gaps_plus_one() {
        let inst = MultiInstance::from_times([vec![0, 10], vec![1, 11], vec![5]]).unwrap();
        let (gaps, _) = min_gaps_multi(&inst).unwrap();
        let (spans, _) = min_spans_multi(&inst).unwrap();
        assert_eq!(spans, gaps + 1);
    }

    #[test]
    fn min_power_multi_tradeoff_with_alpha() {
        // Jobs at {0} and {3 or 1}: adjacent placement avoids the gap.
        let inst = MultiInstance::from_times([vec![0], vec![1, 3]]).unwrap();
        let (cost, sched) = min_power_multi(&inst, 5).unwrap();
        sched.verify(&inst).unwrap();
        assert_eq!(sched.times(), &[0, 1]);
        assert_eq!(cost, 2 + 5);
        assert_eq!(cost, power_cost_single(&sched, 5));
    }

    #[test]
    fn min_power_respects_min_len_alpha() {
        // Forced gap of 3 between 0 and 4: cost n + α + min(3, α).
        let inst = MultiInstance::from_times([vec![0], vec![4]]).unwrap();
        for alpha in 0..7 {
            let (cost, _) = min_power_multi(&inst, alpha).unwrap();
            assert_eq!(cost, 2 + alpha + 3.min(alpha), "alpha = {alpha}");
        }
    }

    #[test]
    fn multiproc_uses_second_processor_to_kill_gap() {
        // Two jobs pinned at time 0, one at time 2. With p = 1 infeasible;
        // with p = 2 the profile is [2, 0, 1]: starts 3, peak 2 → 1 gap.
        let inst = Instance::from_windows([(0, 0), (0, 0), (2, 2)], 2).unwrap();
        let (gaps, sched) = min_gaps_multiproc(&inst).unwrap();
        sched.verify(&inst).unwrap();
        assert_eq!(gaps, 1);
        assert_eq!(gaps, sched.gap_count(2));
    }

    #[test]
    fn multiproc_gap_count_matches_schedule_metric() {
        let inst = Instance::from_windows([(0, 3), (0, 3), (1, 2), (3, 4)], 2).unwrap();
        let (gaps, sched) = min_gaps_multiproc(&inst).unwrap();
        sched.verify(&inst).unwrap();
        assert_eq!(gaps, sched.gap_count(2));
        assert_eq!(gaps, 0);
    }

    #[test]
    fn multiproc_infeasible_detected() {
        let inst = Instance::from_windows([(0, 0), (0, 0), (0, 0)], 2).unwrap();
        assert_eq!(min_gaps_multiproc(&inst), None);
    }

    #[test]
    fn multiproc_power_matches_schedule_metric() {
        let inst = Instance::from_windows([(0, 4), (0, 4), (4, 4)], 2).unwrap();
        for alpha in 0..5 {
            let (cost, sched) = min_power_multiproc(&inst, alpha).unwrap();
            sched.verify(&inst).unwrap();
            assert_eq!(
                cost,
                crate::power::power_cost_multiproc(&sched, 2, alpha),
                "alpha = {alpha}"
            );
        }
    }

    #[test]
    fn throughput_respects_span_budget() {
        // Three far-apart unit slots; one span can hold only one job.
        let inst = MultiInstance::from_times([vec![0], vec![10], vec![20]]).unwrap();
        let (count, choice) = max_throughput_spans(&inst, 1);
        assert_eq!(count, 1);
        assert_eq!(choice.iter().flatten().count(), 1);
        let (count2, _) = max_throughput_spans(&inst, 2);
        assert_eq!(count2, 2);
        let (count3, _) = max_throughput_spans(&inst, 3);
        assert_eq!(count3, 3);
    }

    #[test]
    fn throughput_packs_contiguous_block() {
        let inst =
            MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![2, 3], vec![50]]).unwrap();
        let (count, choice) = max_throughput_spans(&inst, 1);
        assert_eq!(count, 3);
        // The witness respects allowed sets and distinctness.
        let mut used = Vec::new();
        for (j, c) in choice.iter().enumerate() {
            if let Some(t) = c {
                assert!(inst.jobs()[j].allows(*t));
                assert!(!used.contains(t));
                used.push(*t);
            }
        }
    }

    #[test]
    fn zero_span_budget_schedules_nothing() {
        let inst = MultiInstance::from_times([vec![0]]).unwrap();
        let (count, choice) = max_throughput_spans(&inst, 0);
        assert_eq!(count, 0);
        assert_eq!(choice, vec![None]);
    }
}

//! Feasibility of instances via bipartite matching, with Hall certificates.
//!
//! A multi-interval instance is feasible iff the job×slot bipartite graph
//! has a left-perfect matching (each job gets a distinct allowed slot). For
//! one-interval multiprocessor instances, feasibility is equivalent to
//! earliest-deadline-first succeeding (see [`crate::edf`]), but the matching
//! view additionally yields an explicit infeasibility certificate: a set of
//! jobs whose joint slots are too few (Hall violator).

use crate::instance::MultiInstance;
use crate::schedule::MultiSchedule;
use crate::time::Time;
use gaps_matching::{hall_violator_from, hopcroft_karp, BipartiteGraph};

/// The job×slot graph of a multi-interval instance, plus the slot-index →
/// time translation table (sorted). Jobs are left vertices (instance
/// order), distinct allowed times are right vertices.
pub fn slot_graph(inst: &MultiInstance) -> (BipartiteGraph, Vec<Time>) {
    let slots = inst.slot_union();
    let mut graph = BipartiteGraph::new(inst.job_count(), slots.len());
    for (j, job) in inst.jobs().iter().enumerate() {
        for &t in job.times() {
            let s = slots
                .binary_search(&t)
                // analyzer: allow(panic-free): slot_union() is the sorted set of exactly these job times
                .expect("slot union contains all job times");
            graph.add_edge(j as u32, s as u32);
        }
    }
    graph.dedup();
    (graph, slots)
}

/// An explicit reason an instance is infeasible: `jobs` can only use
/// `slots`, and there are fewer slots than jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfeasibilityCertificate {
    /// Indices of the over-constrained jobs.
    pub jobs: Vec<usize>,
    /// The union of their allowed slots; strictly fewer than `jobs.len()`.
    pub slots: Vec<Time>,
}

/// Find a feasible schedule (any one), or a certificate that none exists.
///
/// ```
/// use gaps_core::instance::MultiInstance;
/// use gaps_core::feasibility::feasible_schedule;
/// let inst = MultiInstance::from_times([vec![0, 1], vec![0]]).unwrap();
/// let sched = feasible_schedule(&inst).unwrap();
/// sched.verify(&inst).unwrap();
/// ```
pub fn feasible_schedule(inst: &MultiInstance) -> Result<MultiSchedule, InfeasibilityCertificate> {
    let (graph, slots) = slot_graph(inst);
    let matching = hopcroft_karp(&graph);
    if matching.is_left_perfect() {
        let times = (0..inst.job_count() as u32)
            // analyzer: allow(panic-free): is_left_perfect() just confirmed every left vertex is matched
            .map(|j| slots[matching.partner_of_left(j).expect("perfect") as usize])
            .collect();
        Ok(MultiSchedule::new(times))
    } else {
        // analyzer: allow(panic-free): König/Hall — an imperfect maximum matching always yields a violating set
        let w = hall_violator_from(&graph, &matching).expect("imperfect matching has violator");
        Err(InfeasibilityCertificate {
            jobs: w.lefts.iter().map(|&u| u as usize).collect(),
            slots: w.rights.iter().map(|&v| slots[v as usize]).collect(),
        })
    }
}

/// Is the instance feasible at all?
pub fn is_feasible(inst: &MultiInstance) -> bool {
    feasible_schedule(inst).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_instance_schedules_everything() {
        let inst = MultiInstance::from_times([vec![0, 1, 2], vec![1], vec![0, 2]]).unwrap();
        let s = feasible_schedule(&inst).unwrap();
        s.verify(&inst).unwrap();
    }

    #[test]
    fn infeasible_instance_yields_certificate() {
        // Three jobs share two slots.
        let inst = MultiInstance::from_times([vec![3, 7], vec![3, 7], vec![3, 7]]).unwrap();
        let cert = feasible_schedule(&inst).unwrap_err();
        assert_eq!(cert.jobs.len(), 3);
        assert_eq!(cert.slots, vec![3, 7]);
        assert!(cert.slots.len() < cert.jobs.len());
        assert!(!is_feasible(&inst));
    }

    #[test]
    fn certificate_is_local() {
        // Jobs 0,1 fight over slot 0; job 2 is fine at slot 9 and must not
        // appear in the certificate.
        let inst = MultiInstance::from_times([vec![0], vec![0], vec![9]]).unwrap();
        let cert = feasible_schedule(&inst).unwrap_err();
        assert_eq!(cert.jobs, vec![0, 1]);
        assert_eq!(cert.slots, vec![0]);
    }

    #[test]
    fn slot_graph_translation() {
        let inst = MultiInstance::from_times([vec![10, 30], vec![20]]).unwrap();
        let (graph, slots) = slot_graph(&inst);
        assert_eq!(slots, vec![10, 20, 30]);
        assert_eq!(graph.neighbors(0), &[0, 2]);
        assert_eq!(graph.neighbors(1), &[1]);
    }

    #[test]
    fn empty_instance_is_feasible() {
        let inst = MultiInstance::new(vec![]).unwrap();
        let s = feasible_schedule(&inst).unwrap();
        assert!(s.is_empty());
    }
}

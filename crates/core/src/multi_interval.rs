//! **Theorem 3**: the (1 + (2/3 + ε)α)-approximation for multi-interval
//! power minimization, and **Lemma 3**: completing partial schedules by
//! augmenting paths.
//!
//! # Pipeline (Lemmas 3–5 of the paper)
//!
//! 1. For each parity `i ∈ {0, 1}`, build a **3-set packing** instance: for
//!    every consecutive slot pair `(t, t+1)` with `t ≡ i (mod 2)` and every
//!    pair of distinct jobs `(a, b)` with `t ∈ T_a`, `t+1 ∈ T_b`, add the
//!    set `{a, b, block_t}` over the base set *jobs ∪ block-starts*. The
//!    parity restriction makes chosen blocks time-disjoint; Lemma 4
//!    guarantees one parity admits a packing of size ≥ (n − M)/2 when an
//!    optimal schedule uses M spans.
//! 2. Pack with Hurkens–Schrijver local search
//!    ([`gaps_setcover::packing::local_search_packing`]) — each packed set
//!    schedules two jobs in one 2-block (Lemma 5).
//! 3. Complete the partial schedule with augmenting paths: each remaining
//!    job adds exactly one occupied slot, hence at most one gap (Lemma 3).
//! 4. Apply optimal sleep decisions per gap (cost `min(len, α)`).
//!
//! The α ≤ 1 / α > 1 case analysis in the paper's Theorem 3 proof then
//! bounds the result by (1 + (2/3 + ε)α) times the optimum; experiment E4
//! measures the actual ratio against exhaustive optima.

use crate::feasibility::slot_graph;
use crate::instance::MultiInstance;
use crate::power::power_cost_single_f;
use crate::schedule::MultiSchedule;
use crate::time::Time;
use gaps_matching::IncrementalMatching;
use gaps_setcover::packing::local_search_packing;
use gaps_setcover::SetPackingInstance;

/// **Lemma 3.** Extend a partial schedule (per-job `Some(time)` or `None`)
/// to a complete feasible schedule by augmenting paths, or return `None`
/// if the instance is infeasible.
///
/// Each augmentation adds exactly **one** new occupied slot (jobs may swap
/// slots along the path, but the set of busy times grows by one element),
/// so the completed schedule has at most `gaps(partial) + #added` gaps.
///
/// # Panics
/// Panics if the partial schedule itself is invalid (disallowed time or
/// duplicate slot).
pub fn complete_schedule(inst: &MultiInstance, partial: &[Option<Time>]) -> Option<MultiSchedule> {
    assert_eq!(
        partial.len(),
        inst.job_count(),
        "partial schedule has wrong length"
    );
    let (graph, slots) = slot_graph(inst);
    let mut inc = IncrementalMatching::new(&graph);
    for (j, t) in partial.iter().enumerate() {
        if let Some(t) = t {
            let s = slots
                .binary_search(t)
                // analyzer: allow(panic-free): documented API contract — the doc comment above promises a panic on invalid partials
                .unwrap_or_else(|_| panic!("job {j} pinned to unknown slot {t}"));
            inc.force_link(j as u32, s as u32); // panics on conflicts
        }
    }
    for j in 0..inst.job_count() as u32 {
        if inc.matching().partner_of_left(j).is_none() && !inc.augment(j) {
            return None; // no perfect matching exists at all
        }
    }
    let times = (0..inst.job_count() as u32)
        // analyzer: allow(panic-free): the augmentation loop above returned None unless every job got matched
        .map(|j| slots[inc.matching().partner_of_left(j).expect("perfect") as usize])
        .collect();
    let sched = MultiSchedule::new(times);
    debug_assert_eq!(sched.verify(inst), Ok(()));
    Some(sched)
}

/// Result of the Theorem 3 approximation.
#[derive(Clone, Debug)]
pub struct ApproxPowerResult {
    /// The schedule produced.
    pub schedule: MultiSchedule,
    /// Its power (optimal sleep decisions, real-valued α).
    pub power: f64,
    /// Number of 2-blocks the set packing scheduled.
    pub packed_blocks: usize,
    /// The parity (0 or 1) of block starts that won.
    pub parity: u8,
}

/// **Theorem 3**: approximate multi-interval power minimization.
///
/// `swap_rounds` bounds the local-search effort of the set packing (the
/// paper's ε: more rounds → closer to the 2/3 share; 64 is plenty for the
/// instance sizes the experiments use). Returns `None` iff infeasible.
///
/// ```
/// use gaps_core::instance::MultiInstance;
/// use gaps_core::multi_interval::approx_min_power;
/// let inst = MultiInstance::from_times([
///     vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11],
/// ]).unwrap();
/// let res = approx_min_power(&inst, 4.0, 64).unwrap();
/// // Two 2-blocks, two spans: power = 4 + 2α = 12.
/// assert_eq!(res.power, 12.0);
/// ```
pub fn approx_min_power(
    inst: &MultiInstance,
    alpha: f64,
    swap_rounds: usize,
) -> Option<ApproxPowerResult> {
    assert!(
        alpha >= 0.0 && alpha.is_finite(),
        "alpha must be finite and >= 0"
    );
    let n = inst.job_count();
    // Baseline: any feasible schedule (this alone is (1 + α)-approximate).
    let trivial = complete_schedule(inst, &vec![None; n])?;
    let mut best = ApproxPowerResult {
        power: power_cost_single_f(&trivial, alpha),
        schedule: trivial,
        packed_blocks: 0,
        parity: 0,
    };

    for parity in 0..2u8 {
        let partial = pack_blocks(inst, parity, swap_rounds);
        let packed_blocks = partial.iter().flatten().count() / 2;
        let schedule = complete_schedule(inst, &partial)
            // analyzer: allow(panic-free): the trivial completion above already proved the instance feasible, so Lemma 3 augmentation succeeds
            .expect("feasible instance: augmentation cannot get stuck");
        let power = power_cost_single_f(&schedule, alpha);
        // On ties prefer the more-packed schedule — it is the object the
        // theorem analyzes (and ties with the trivial baseline are common
        // on easy instances).
        if power < best.power || (power == best.power && packed_blocks > best.packed_blocks) {
            best = ApproxPowerResult {
                schedule,
                power,
                packed_blocks,
                parity,
            };
        }
    }
    Some(best)
}

/// Build and solve the parity-`i` 3-set packing; returns a partial schedule
/// placing each packed pair of jobs into its 2-block.
fn pack_blocks(inst: &MultiInstance, parity: u8, swap_rounds: usize) -> Vec<Option<Time>> {
    let n = inst.job_count();
    let slots = inst.slot_union();

    // Jobs allowed at each slot.
    let jobs_at = |t: Time| -> Vec<u32> {
        (0..n as u32)
            .filter(|&j| inst.jobs()[j as usize].allows(t))
            .collect()
    };

    // Candidate block starts: t ≡ parity (mod 2) with both t and t+1 usable.
    let mut block_starts: Vec<Time> = Vec::new();
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut set_blocks: Vec<(Time, u32, u32)> = Vec::new(); // (t, job_a, job_b)
    for &t in &slots {
        if t.rem_euclid(2) != parity as i64 || slots.binary_search(&(t + 1)).is_err() {
            continue;
        }
        let at_t = jobs_at(t);
        let at_t1 = jobs_at(t + 1);
        if at_t.is_empty() || at_t1.is_empty() {
            continue;
        }
        let block_id = n as u32 + block_starts.len() as u32;
        block_starts.push(t);
        for &a in &at_t {
            for &b in &at_t1 {
                if a != b {
                    sets.push(vec![a, b, block_id]);
                    set_blocks.push((t, a, b));
                }
            }
        }
    }
    let mut partial = vec![None; n];
    if sets.is_empty() {
        return partial;
    }
    let packing = SetPackingInstance::new((n + block_starts.len()) as u32, sets);
    let chosen = local_search_packing(&packing, swap_rounds);
    for idx in chosen {
        let (t, a, b) = set_blocks[idx];
        debug_assert!(partial[a as usize].is_none() && partial[b as usize].is_none());
        partial[a as usize] = Some(t);
        partial[b as usize] = Some(t + 1);
    }
    partial
}

/// The paper's a-priori performance bound for the schedule produced by the
/// k = 2 pipeline: any schedule with all n jobs in at most
/// `(2/3 + ε)·n + (1/3 − ε)·M` spans has power at most
/// `(1 + (2/3 + ε)·α) · OPT` (Theorem 3's case analysis). Exposed for the
/// experiment harness.
pub fn theorem3_bound(alpha: f64, epsilon: f64) -> f64 {
    1.0 + (2.0 / 3.0 + epsilon) * alpha
}

/// The generalized bound for block length `k` (Corollary 1 + the Theorem 3
/// case analysis): the α coefficient is `1 − 2(k−1)/(k(k+1))`, which
/// equals 2/3 at **both** k = 2 and k = 3 and worsens from k = 4 on.
/// The paper's choice of k = 2 is therefore optimal but not uniquely so
/// in the limit — it wins on the ε side (the Hurkens–Schrijver share
/// `2/(k+1) − ε` is easier to approach for smaller set sizes) and on
/// gadget size. Exposed for ablation E21.
pub fn theorem3_bound_k(alpha: f64, k: usize, epsilon: f64) -> f64 {
    assert!(k >= 2);
    let kf = k as f64;
    1.0 + (1.0 - 2.0 * (kf - 1.0) / (kf * (kf + 1.0)) + epsilon) * alpha
}

/// **Lemma 4**, directly: given a feasible schedule `S` with `M` spans and
/// a block length `k`, there is a residue `i` such that at least
/// `(n − M(k−1)) / k` block starts `t ≡ i (mod k)` have all of
/// `t, …, t+k−1` occupied. Returns `(best_i, count_of_full_blocks)`.
///
/// The pipeline itself does not need this scan (the set packing finds the
/// blocks), but the experiment suite verifies the lemma's bound on random
/// schedules — it is the combinatorial heart of Theorem 3's analysis.
pub fn lemma4_best_residue(schedule: &MultiSchedule, k: usize) -> (usize, usize) {
    assert!(k >= 2);
    let occupied = schedule.occupied();
    let mut best = (0usize, 0usize);
    for i in 0..k {
        let count = occupied
            .iter()
            .filter(|&&t| {
                t.rem_euclid(k as i64) == i as i64
                    && (0..k as i64).all(|m| occupied.binary_search(&(t + m)).is_ok())
            })
            .count();
        if count > best.1 {
            best = (i, count);
        }
    }
    best
}

/// Lemma 4's guaranteed count for a schedule of `n` jobs in `m` spans:
/// `max(0, ⌈(n − m(k−1)) / k⌉)` — the floor the measured count must meet.
pub fn lemma4_guarantee(n: usize, m: u64, k: usize) -> usize {
    let numer = n as i64 - m as i64 * (k as i64 - 1);
    if numer <= 0 {
        0
    } else {
        (numer as usize).div_ceil(k)
    }
}

/// **Theorem 3, generalized block length** (ablation E21): schedule jobs
/// in k-blocks found by (k+1)-set packing, then complete via Lemma 3.
/// `approx_min_power` is the paper's `k = 2` case and remains the method
/// of record; larger `k` has a worse guarantee (see [`theorem3_bound_k`]).
///
/// Block enumeration is exponential in `k`; intended for small k (≤ 4)
/// and experiment-scale instances.
pub fn approx_min_power_k(
    inst: &MultiInstance,
    alpha: f64,
    k: usize,
    swap_rounds: usize,
) -> Option<ApproxPowerResult> {
    assert!((2..=4).contains(&k), "block length k must be in 2..=4");
    assert!(
        alpha >= 0.0 && alpha.is_finite(),
        "alpha must be finite and >= 0"
    );
    let n = inst.job_count();
    let trivial = complete_schedule(inst, &vec![None; n])?;
    let mut best = ApproxPowerResult {
        power: power_cost_single_f(&trivial, alpha),
        schedule: trivial,
        packed_blocks: 0,
        parity: 0,
    };
    for residue in 0..k as u8 {
        let partial = pack_k_blocks(inst, residue, k, swap_rounds);
        let packed_blocks = partial.iter().flatten().count() / k;
        let schedule = complete_schedule(inst, &partial)
            // analyzer: allow(panic-free): the trivial completion above already proved the instance feasible, so Lemma 3 augmentation succeeds
            .expect("feasible instance: augmentation cannot get stuck");
        let power = power_cost_single_f(&schedule, alpha);
        if power < best.power || (power == best.power && packed_blocks > best.packed_blocks) {
            best = ApproxPowerResult {
                schedule,
                power,
                packed_blocks,
                parity: residue,
            };
        }
    }
    Some(best)
}

/// Build and solve the residue-`i` (k+1)-set packing: sets are
/// `{job_0, …, job_{k−1}, block_t}` for every start `t ≡ i (mod k)` whose
/// k consecutive slots can each take a distinct job.
fn pack_k_blocks(
    inst: &MultiInstance,
    residue: u8,
    k: usize,
    swap_rounds: usize,
) -> Vec<Option<Time>> {
    let n = inst.job_count();
    let slots = inst.slot_union();
    let jobs_at = |t: Time| -> Vec<u32> {
        (0..n as u32)
            .filter(|&j| inst.jobs()[j as usize].allows(t))
            .collect()
    };

    let mut block_count = 0u32;
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut set_blocks: Vec<(Time, Vec<u32>)> = Vec::new();
    for &t in &slots {
        if t.rem_euclid(k as i64) != residue as i64 {
            continue;
        }
        if !(1..k as i64).all(|m| slots.binary_search(&(t + m)).is_ok()) {
            continue;
        }
        let per_offset: Vec<Vec<u32>> = (0..k as i64).map(|m| jobs_at(t + m)).collect();
        if per_offset.iter().any(Vec::is_empty) {
            continue;
        }
        let block_id = n as u32 + block_count;
        block_count += 1;
        // Enumerate distinct-job tuples across the offsets (bounded: the
        // caller keeps k ≤ 4 and instances experiment-sized).
        let mut tuples: Vec<Vec<u32>> = vec![vec![]];
        for offset in &per_offset {
            let mut next = Vec::new();
            for prefix in &tuples {
                for &j in offset {
                    if !prefix.contains(&j) {
                        let mut t2 = prefix.clone();
                        t2.push(j);
                        next.push(t2);
                    }
                }
            }
            tuples = next;
            if tuples.len() > 20_000 {
                break; // cap the enumeration; packing quality degrades
                       // gracefully with fewer candidate sets
            }
        }
        for tuple in tuples {
            if tuple.len() == k {
                let mut set = tuple.clone();
                set.push(block_id);
                sets.push(set);
                set_blocks.push((t, tuple));
            }
        }
    }
    let mut partial = vec![None; n];
    if sets.is_empty() {
        return partial;
    }
    let packing = SetPackingInstance::new(n as u32 + block_count, sets);
    let chosen = local_search_packing(&packing, swap_rounds);
    for idx in chosen {
        let (t, ref tuple) = set_blocks[idx];
        for (m, &j) in tuple.iter().enumerate() {
            debug_assert!(partial[j as usize].is_none());
            partial[j as usize] = Some(t + m as Time);
        }
    }
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::min_power_multi;

    #[test]
    fn complete_from_empty_is_feasible_schedule() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let s = complete_schedule(&inst, &[None, None, None]).unwrap();
        s.verify(&inst).unwrap();
    }

    #[test]
    fn complete_respects_pins() {
        let inst = MultiInstance::from_times([vec![0, 5], vec![0, 5]]).unwrap();
        let s = complete_schedule(&inst, &[Some(5), None]).unwrap();
        assert_eq!(s.times()[0], 5);
        assert_eq!(s.times()[1], 0);
    }

    #[test]
    fn complete_detects_infeasible() {
        let inst = MultiInstance::from_times([vec![0], vec![0]]).unwrap();
        assert_eq!(complete_schedule(&inst, &[None, None]), None);
    }

    #[test]
    #[should_panic(expected = "pinned to unknown slot")]
    fn complete_rejects_bad_pin() {
        let inst = MultiInstance::from_times([vec![0]]).unwrap();
        complete_schedule(&inst, &[Some(9)]);
    }

    #[test]
    fn lemma3_gap_growth_bound() {
        // Partial schedule with g gaps; each augmentation adds ≤ 1 gap.
        let inst =
            MultiInstance::from_times([vec![0], vec![1], vec![10], vec![20, 21], vec![20, 21]])
                .unwrap();
        let partial = vec![Some(0), Some(1), Some(10), None, None];
        let partial_sched = MultiSchedule::new(vec![0, 1, 10]);
        let g = partial_sched.gap_count();
        let s = complete_schedule(&inst, &partial).unwrap();
        assert!(s.gap_count() <= g + 2, "gaps {} > {} + 2", s.gap_count(), g);
    }

    #[test]
    fn approx_packs_obvious_blocks() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11]])
            .unwrap();
        let res = approx_min_power(&inst, 4.0, 64).unwrap();
        assert_eq!(res.packed_blocks, 2);
        assert_eq!(res.power, 12.0);
        res.schedule.verify(&inst).unwrap();
    }

    #[test]
    fn approx_matches_exact_on_small_instances() {
        // Ratio must respect 1 + (2/3 + ε)α; on these easy instances the
        // pipeline should actually find the optimum or be very close.
        let cases = [
            MultiInstance::from_times([vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]]).unwrap(),
            MultiInstance::from_times([vec![0], vec![1, 5], vec![2, 6], vec![7]]).unwrap(),
            MultiInstance::from_times([vec![0, 10], vec![1, 11], vec![2, 12]]).unwrap(),
        ];
        for inst in cases {
            for alpha in [0u64, 1, 2, 5] {
                let exact = min_power_multi(&inst, alpha).unwrap().0 as f64;
                let approx = approx_min_power(&inst, alpha as f64, 64).unwrap();
                let bound = theorem3_bound(alpha as f64, 0.05) * exact;
                assert!(
                    approx.power <= bound + 1e-9,
                    "approx {} exceeds bound {bound} (exact {exact}, α={alpha})",
                    approx.power
                );
            }
        }
    }

    #[test]
    fn approx_never_worse_than_one_plus_alpha() {
        let inst =
            MultiInstance::from_times([vec![0, 7], vec![3], vec![8, 9], vec![4, 5], vec![12]])
                .unwrap();
        for alpha in [0.5, 1.0, 2.5] {
            let res = approx_min_power(&inst, alpha, 64).unwrap();
            let n = inst.job_count() as f64;
            // Power lower bound: n + α (one wake-up at least).
            let lb = n + alpha;
            assert!(res.power <= (1.0 + alpha) * lb + 1e-9);
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = MultiInstance::from_times([vec![3], vec![3]]).unwrap();
        assert!(approx_min_power(&inst, 1.0, 8).is_none());
        assert!(approx_min_power_k(&inst, 1.0, 3, 8).is_none());
    }

    #[test]
    fn k3_blocks_pack_triples() {
        // Six jobs forming two clean 3-blocks.
        let inst =
            MultiInstance::from_times([vec![0], vec![1], vec![2], vec![30], vec![31], vec![32]])
                .unwrap();
        let res = approx_min_power_k(&inst, 4.0, 3, 32).unwrap();
        res.schedule.verify(&inst).unwrap();
        assert_eq!(res.packed_blocks, 2);
        assert_eq!(res.power, 6.0 + 2.0 * 4.0);
    }

    #[test]
    fn k2_generalization_matches_special_case_shape() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11]])
            .unwrap();
        let k2 = approx_min_power_k(&inst, 4.0, 2, 32).unwrap();
        let special = approx_min_power(&inst, 4.0, 32).unwrap();
        assert_eq!(k2.power, special.power);
    }

    #[test]
    fn theorem3_bound_k_shape() {
        for alpha in [0.5, 1.0, 4.0] {
            let b2 = theorem3_bound_k(alpha, 2, 0.0);
            assert!((b2 - theorem3_bound(alpha, 0.0)).abs() < 1e-12);
            // k = 3 ties k = 2 exactly (both coefficients are 2/3)...
            assert!((theorem3_bound_k(alpha, 3, 0.0) - b2).abs() < 1e-12);
            // ... and k = 4 is strictly worse (7/10 > 2/3).
            assert!(theorem3_bound_k(alpha, 4, 0.0) > b2 + 1e-12 * alpha.max(1.0));
        }
    }

    #[test]
    fn lemma4_bound_holds_on_contiguous_schedule() {
        // 9 jobs in one span: for k = 3 the best residue must yield at
        // least ceil((9 − 2)/3) = 3 full blocks.
        let sched = MultiSchedule::new((0..9).collect());
        let (_, count) = lemma4_best_residue(&sched, 3);
        assert!(count >= lemma4_guarantee(9, 1, 3));
        assert_eq!(count, 3);
    }

    #[test]
    fn lemma4_bound_holds_on_fragmented_schedule() {
        // Spans {0,1}, {5,6,7}, {20}: n = 6, M = 3, k = 2 →
        // guarantee ceil((6 − 3)/2) = 2.
        let sched = MultiSchedule::new(vec![0, 1, 5, 6, 7, 20]);
        let (_, count) = lemma4_best_residue(&sched, 2);
        assert!(count >= lemma4_guarantee(6, 3, 2), "count {count}");
    }

    #[test]
    fn empty_instance() {
        let inst = MultiInstance::new(vec![]).unwrap();
        let res = approx_min_power(&inst, 2.0, 8).unwrap();
        assert_eq!(res.power, 0.0);
    }
}

//! **Theorems 1 & 2 (gap side)**: exact multiprocessor gap scheduling in
//! polynomial time.
//!
//! # What the DP minimizes, made precise
//!
//! For a schedule with occupancy profile `ℓ(t)` (# jobs at time `t`), the
//! number of **spans** (maximal busy runs, = wake-up transitions) over all
//! processors is at least `R(ℓ) = Σ_t (ℓ(t) − ℓ(t−1))⁺` in *any*
//! arrangement, and the prefix (staircase) arrangement of Lemma 1 attains
//! it. The DP below therefore computes
//!
//! ```text
//! G(p)  =  min { R(ℓ) : ℓ a feasible profile with ℓ(t) ≤ p }
//! ```
//!
//! which answers both of the paper's objectives:
//!
//! * **span / transition objective** (the intro's "minimize the total
//!   number of transitions"): optimum `G(p)`, prefix witness —
//!   [`min_span_schedule`];
//! * **finite-gap objective** (Section 2's literal definition): optimum
//!   `max(0, G(p) − p)` — every arrangement has ≥ `R(ℓ)` runs on ≤
//!   `min(p, runs)` processors and `gaps = runs − used`; spreading the
//!   staircase runs over processors attains the bound
//!   ([`crate::schedule::Schedule::spread_for_min_gaps`]) —
//!   [`min_gap_schedule`].
//!
//! The distinction matters: the paper's Lemma 1 proof counts span starts,
//! and prefix rearrangement can strictly *increase* finite gaps (see
//! DESIGN.md and the tests below). For `p = 1` the objectives coincide up
//! to the constant 1.
//!
//! # The recursion
//!
//! A state `C(t1, t2, k, q, o1, o2)` schedules the `k` earliest-deadline
//! jobs among those *released* in `[t1, t2]`, with exactly `o1` of them at
//! `t1`, `o2` of them at `t2`, and `q` ancestor jobs already pinned at `t2`
//! below them (total occupancy `q + o2` at `t2`). Its value is the number
//! of span starts at the boundaries `(t1, t1+1], …, (t2−1, t2]`. Following
//! the paper, the recursion peels the latest-deadline job `jk`, placed at a
//! time `t′`:
//!
//! * `t′ = t2`: `jk` joins the ancestors → `C(t1, t2, k−1, q+1, o1, o2−1)`;
//! * `t′ < t2`: the exchange argument in the paper's proof pins the right
//!   child's job count to `i = #{window jobs released after t′}`; children
//!   are `C(t1, t′, k−i−1, 1, o1, ℓ′)` (`jk` sits at the bottom of column
//!   `t′`) and `C(t′+1, t2, i, q, ℓ″, o2)`; the parent pays the boundary
//!   `(occ(t′+1) − (1 + ℓ′))⁺`.
//!
//! The timeline is padded with one empty sentinel slot on each side so the
//! top-level state has `o1 = o2 = q = 0` and every real start is counted.
//! Run [`crate::compress::compress_instance_gap`] first if the horizon is
//! long; the DP is polynomial in the horizon length, `n`, and `p`.

use crate::instance::Instance;
use crate::schedule::{Assignment, Schedule};
use std::collections::HashMap;

const INF: u32 = u32::MAX;

fn add(a: u32, b: u32) -> u32 {
    if a == INF || b == INF {
        INF
    } else {
        a + b
    }
}

/// Result of the exact multiprocessor solver.
#[derive(Clone, Debug)]
pub struct GapSolution {
    /// Optimal value of the requested objective (gaps or spans).
    pub gaps: u64,
    /// A witness schedule achieving it.
    pub schedule: Schedule,
    /// Minimum span count `G(p)` (= wake-up transitions of the witness).
    pub spans: u64,
}

/// Solve the **span / transition** objective exactly: fewest maximal busy
/// runs (= sleep→active transitions) over all processors. Returns a
/// prefix-structured witness. `None` iff infeasible.
pub fn min_span_schedule(inst: &Instance) -> Option<GapSolution> {
    let (spans, schedule) = solve(inst)?;
    Some(GapSolution {
        gaps: spans,
        schedule,
        spans,
    })
}

/// Solve the **finite-gap** objective exactly (Section 2's literal
/// definition: a gap is a finite maximal idle interval on one processor).
/// Returns a run-spread witness using `min(p, spans)` processors.
/// `None` iff infeasible.
///
/// ```
/// use gaps_core::instance::Instance;
/// use gaps_core::multiproc_dp::min_gap_schedule;
/// // Two far-apart pinned jobs: on p = 2 each gets its own processor and
/// // no finite gap remains; the span count is still 2.
/// let inst = Instance::from_windows([(0, 0), (6, 6)], 2).unwrap();
/// let sol = min_gap_schedule(&inst).unwrap();
/// assert_eq!(sol.gaps, 0);
/// assert_eq!(sol.spans, 2);
/// ```
pub fn min_gap_schedule(inst: &Instance) -> Option<GapSolution> {
    let (spans, schedule) = solve(inst)?;
    let gaps = spans.saturating_sub(inst.processors() as u64);
    let spread = schedule.spread_for_min_gaps(inst.processors());
    debug_assert_eq!(spread.gap_count(inst.processors()), gaps);
    Some(GapSolution {
        gaps,
        schedule: spread,
        spans,
    })
}

/// Convenience: optimal finite-gap count only.
pub fn min_gap_value(inst: &Instance) -> Option<u64> {
    min_gap_schedule(inst).map(|s| s.gaps)
}

/// Convenience: optimal span/transition count `G(p)` only.
pub fn min_span_value(inst: &Instance) -> Option<u64> {
    min_span_schedule(inst).map(|s| s.spans)
}

/// Core solver: `(G(p), prefix witness)`.
fn solve(inst: &Instance) -> Option<(u64, Schedule)> {
    let n = inst.job_count();
    if n == 0 {
        return Some((0, Schedule::new(vec![])));
    }
    // Fast infeasibility exit (EDF is exact for unit jobs).
    crate::edf::edf(inst).ok()?;

    let ctx = Ctx::new(inst);
    let mut memo = HashMap::new();
    let spans = ctx.value(ctx.top_state(), &mut memo);
    assert_ne!(spans, INF, "EDF said feasible, DP must agree");

    let mut placements: Vec<(i64, u32)> = vec![(i64::MIN, 0); n];
    ctx.walk(ctx.top_state(), &mut memo, &mut placements);
    let assignments = placements
        .iter()
        .map(|&(t, q)| {
            debug_assert!(t != i64::MIN, "every job must be placed");
            Assignment {
                time: ctx.t0 + t,
                processor: q,
            }
        })
        .collect();
    let schedule = Schedule::new(assignments);
    debug_assert_eq!(schedule.verify(inst), Ok(()));
    debug_assert!(schedule.is_prefix_structured());
    debug_assert_eq!(schedule.span_count(inst.processors()), spans as u64);
    Some((spans as u64, schedule))
}

/// A DP state (times are indices into the padded timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct State {
    t1: u16,
    t2: u16,
    k: u16,
    q: u16,
    o1: u16,
    o2: u16,
}

fn key(s: State) -> u64 {
    (s.t1 as u64)
        | (s.t2 as u64) << 12
        | (s.k as u64) << 24
        | (s.q as u64) << 36
        | (s.o1 as u64) << 45
        | (s.o2 as u64) << 54
}

/// Immutable solver context: jobs sorted by deadline, times shifted so the
/// padded timeline is `0..=t_max` with sentinels at both ends.
struct Ctx {
    /// Original time of padded index 0.
    t0: i64,
    /// Last padded index (right sentinel).
    t_max: u16,
    /// Occupancy cap: `min(p, n)`.
    cap: u16,
    /// Job ids in deadline order.
    order: Vec<u32>,
    /// `(release, deadline)` in padded indices, deadline order.
    jobs: Vec<(u16, u16)>,
}

impl Ctx {
    fn new(inst: &Instance) -> Ctx {
        let horizon = inst.horizon().expect("non-empty instance");
        let t0 = horizon.start - 1;
        let len = horizon.end - horizon.start + 3; // two sentinels
        assert!(
            len <= 4000,
            "horizon too long ({len}); compress the instance first"
        );
        assert!(
            inst.job_count() <= 4000,
            "too many jobs for the DP key packing"
        );
        let order: Vec<u32> = inst.deadline_order().iter().map(|&i| i as u32).collect();
        let jobs = order
            .iter()
            .map(|&i| {
                let j = &inst.jobs()[i as usize];
                ((j.release - t0) as u16, (j.deadline - t0) as u16)
            })
            .collect();
        Ctx {
            t0,
            t_max: (len - 1) as u16,
            cap: (inst.processors() as usize).min(inst.job_count()).min(511) as u16,
            order,
            jobs,
        }
    }

    fn top_state(&self) -> State {
        State {
            t1: 0,
            t2: self.t_max,
            k: self.jobs.len() as u16,
            q: 0,
            o1: 0,
            o2: 0,
        }
    }

    /// Deadline-ordered positions (into `self.jobs`) of jobs released in
    /// `[t1, t2]`.
    fn window_jobs(&self, t1: u16, t2: u16) -> Vec<u16> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|&(_, &(r, _))| t1 <= r && r <= t2)
            .map(|(i, _)| i as u16)
            .collect()
    }

    /// Memoized DP evaluation.
    fn value(&self, s: State, memo: &mut HashMap<u64, u32>) -> u32 {
        if let Some(&v) = memo.get(&key(s)) {
            return v;
        }
        let v = self.compute(s, memo);
        memo.insert(key(s), v);
        v
    }

    fn compute(&self, s: State, memo: &mut HashMap<u64, u32>) -> u32 {
        let State {
            t1,
            t2,
            k,
            q,
            o1,
            o2,
        } = s;
        let m = self.cap;
        // Structural validity.
        if o1 > k || o2 > k || q + o2 > m || o1 > m {
            return INF;
        }
        let window = self.window_jobs(t1, t2);
        if (k as usize) > window.len() {
            return INF;
        }

        // Base: single-point window. All k jobs sit at t1 = t2 on top of
        // the q ancestors; no boundary lies inside, so the cost is 0.
        if t1 == t2 {
            return if o1 == o2 && o1 == k && q + k <= m {
                0
            } else {
                INF
            };
        }

        // Base: nothing to schedule. The q ancestors at t2 rise from an
        // empty column t2−1, costing q starts.
        if k == 0 {
            return if o1 == 0 && o2 == 0 { q as u32 } else { INF };
        }

        let jk = window[(k - 1) as usize];
        let (rk, dk) = self.jobs[jk as usize];
        let mut best = INF;

        // Case A: jk at t2, joining the ancestors.
        if o2 >= 1 && dk >= t2 {
            let child = self.value(
                State {
                    t1,
                    t2,
                    k: k - 1,
                    q: q + 1,
                    o1,
                    o2: o2 - 1,
                },
                memo,
            );
            best = best.min(child);
        }

        // Split cases: jk at t′ ∈ [max(t1, rk), min(dk, t2−1)].
        let mut releases: Vec<u16> = window[..k as usize]
            .iter()
            .map(|&j| self.jobs[j as usize].0)
            .collect();
        releases.sort_unstable();

        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        for tp in lo..=hi {
            // i = #releases > t′ among the k window jobs.
            let i = (k as usize - releases.partition_point(|&r| r <= tp)) as u16;
            debug_assert!(i < k, "jk has release ≤ t′, so i ≤ k − 1");
            let k1 = k - 1 - i;

            if tp == t1 {
                // jk at the left edge: every window job released at t1 must
                // be there too, so o1 = k1 + 1 (jk included).
                if o1 != k1 + 1 {
                    continue;
                }
                let sub1 = self.value(
                    State {
                        t1,
                        t2: t1,
                        k: k1,
                        q: 1,
                        o1: o1 - 1,
                        o2: o1 - 1,
                    },
                    memo,
                );
                if sub1 == INF {
                    continue;
                }
                best = best.min(self.best_right(s, memo, tp, o1 - 1, i, sub1));
            } else {
                // jk at the bottom of column t′; ℓ′ sub1 jobs above it.
                for lp in 0..=k1.min(m - 1) {
                    let sub1 = self.value(
                        State {
                            t1,
                            t2: tp,
                            k: k1,
                            q: 1,
                            o1,
                            o2: lp,
                        },
                        memo,
                    );
                    if sub1 == INF {
                        continue;
                    }
                    best = best.min(self.best_right(s, memo, tp, lp, i, sub1));
                }
            }
        }
        best
    }

    /// Best completion with the right child, given `sub1` (left child value
    /// with `lp` own jobs above jk in column `t′ = tp`); the parent pays the
    /// boundary `(occ(t′+1) − (1 + lp))⁺`.
    fn best_right(
        &self,
        s: State,
        memo: &mut HashMap<u64, u32>,
        tp: u16,
        lp: u16,
        i: u16,
        sub1: u32,
    ) -> u32 {
        let State { t2, q, o2, .. } = s;
        let col_tp = 1 + lp as u32; // occupancy at t′
        if tp + 1 == t2 {
            // Right child is the single-point state at t2.
            let sub2 = self.value(
                State {
                    t1: t2,
                    t2,
                    k: i,
                    q,
                    o1: o2,
                    o2,
                },
                memo,
            );
            let boundary = (q as u32 + o2 as u32).saturating_sub(col_tp);
            add(add(sub1, sub2), boundary)
        } else {
            let mut best = INF;
            for l2 in 0..=i.min(self.cap) {
                let sub2 = self.value(
                    State {
                        t1: tp + 1,
                        t2,
                        k: i,
                        q,
                        o1: l2,
                        o2,
                    },
                    memo,
                );
                if sub2 == INF {
                    continue;
                }
                let boundary = (l2 as u32).saturating_sub(col_tp);
                best = best.min(add(add(sub1, sub2), boundary));
            }
            best
        }
    }

    /// Reconstruct one optimal witness by re-deriving a transition whose
    /// value matches the memoized optimum, then descending. Jobs are placed
    /// on prefix processors.
    fn walk(&self, s: State, memo: &mut HashMap<u64, u32>, placements: &mut Vec<(i64, u32)>) {
        let target = self.value(s, memo);
        assert_ne!(target, INF, "walking an infeasible state");
        let State {
            t1,
            t2,
            k,
            q,
            o1,
            o2,
        } = s;
        let window = self.window_jobs(t1, t2);

        // Single-point base: place all k jobs at t1 on processors q..q+k.
        if t1 == t2 {
            for (rank, &j) in window[..k as usize].iter().enumerate() {
                let job = self.order[j as usize] as usize;
                placements[job] = (t1 as i64, q as u32 + rank as u32);
            }
            return;
        }
        if k == 0 {
            return;
        }

        let jk = window[(k - 1) as usize];
        let job_k = self.order[jk as usize] as usize;
        let (rk, dk) = self.jobs[jk as usize];

        // Case A.
        if o2 >= 1 && dk >= t2 {
            let child_state = State {
                t1,
                t2,
                k: k - 1,
                q: q + 1,
                o1,
                o2: o2 - 1,
            };
            if self.value(child_state, memo) == target {
                placements[job_k] = (t2 as i64, q as u32);
                self.walk(child_state, memo, placements);
                return;
            }
        }

        let mut releases: Vec<u16> = window[..k as usize]
            .iter()
            .map(|&j| self.jobs[j as usize].0)
            .collect();
        releases.sort_unstable();
        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        for tp in lo..=hi {
            let i = (k as usize - releases.partition_point(|&r| r <= tp)) as u16;
            let k1 = k - 1 - i;
            let sub1_states: Vec<State> = if tp == t1 {
                if o1 != k1 + 1 {
                    continue;
                }
                vec![State {
                    t1,
                    t2: t1,
                    k: k1,
                    q: 1,
                    o1: o1 - 1,
                    o2: o1 - 1,
                }]
            } else {
                (0..=k1.min(self.cap - 1))
                    .map(|lp| State {
                        t1,
                        t2: tp,
                        k: k1,
                        q: 1,
                        o1,
                        o2: lp,
                    })
                    .collect()
            };
            for st1 in sub1_states {
                let lp = st1.o2;
                let col_tp = 1 + lp as u32;
                let sub1 = self.value(st1, memo);
                if sub1 == INF {
                    continue;
                }
                let sub2_states: Vec<State> = if tp + 1 == t2 {
                    vec![State {
                        t1: t2,
                        t2,
                        k: i,
                        q,
                        o1: o2,
                        o2,
                    }]
                } else {
                    (0..=i.min(self.cap))
                        .map(|l2| State {
                            t1: tp + 1,
                            t2,
                            k: i,
                            q,
                            o1: l2,
                            o2,
                        })
                        .collect()
                };
                for st2 in sub2_states {
                    let sub2 = self.value(st2, memo);
                    let occ_next = if tp + 1 == t2 {
                        q as u32 + o2 as u32
                    } else {
                        st2.o1 as u32
                    };
                    let boundary = occ_next.saturating_sub(col_tp);
                    if add(add(sub1, sub2), boundary) == target {
                        placements[job_k] = (tp as i64, 0);
                        self.walk(st1, memo, placements);
                        self.walk(st2, memo, placements);
                        return;
                    }
                }
            }
        }
        unreachable!("no transition reproduces the memoized optimum");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::{min_gaps_multiproc, min_spans_multiproc};

    fn check(windows: &[(i64, i64)], p: u32) {
        let inst = Instance::from_windows(windows.iter().copied(), p).unwrap();
        // Span objective.
        let dp = min_span_schedule(&inst);
        let bf = min_spans_multiproc(&inst);
        match (&dp, &bf) {
            (None, None) => {}
            (Some(dp), Some((bf_spans, _))) => {
                assert_eq!(dp.spans, *bf_spans, "spans: DP vs BF on {windows:?} p={p}");
                dp.schedule.verify(&inst).unwrap();
                assert_eq!(dp.schedule.span_count(p), dp.spans);
            }
            _ => panic!("span feasibility disagreement on {windows:?} p={p}"),
        }
        // Finite-gap objective.
        let dp = min_gap_schedule(&inst);
        let bf = min_gaps_multiproc(&inst);
        match (dp, bf) {
            (None, None) => {}
            (Some(dp), Some((bf_gaps, _))) => {
                assert_eq!(dp.gaps, bf_gaps, "gaps: DP vs BF on {windows:?} p={p}");
                dp.schedule.verify(&inst).unwrap();
                assert_eq!(dp.schedule.gap_count(p), dp.gaps);
            }
            _ => panic!("gap feasibility disagreement on {windows:?} p={p}"),
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert_eq!(min_gap_schedule(&inst).unwrap().gaps, 0);
        assert_eq!(min_span_schedule(&inst).unwrap().spans, 0);
    }

    #[test]
    fn single_job() {
        check(&[(5, 9)], 1);
        let inst = Instance::from_windows([(5, 9)], 3).unwrap();
        assert_eq!(min_gap_value(&inst), Some(0));
        assert_eq!(min_span_value(&inst), Some(1));
    }

    #[test]
    fn two_pinned_far_jobs() {
        // p = 1: spans 2, gaps 1. p = 2: spans 2, gaps 0 (park each run).
        check(&[(0, 0), (5, 5)], 1);
        check(&[(0, 0), (5, 5)], 2);
        let inst1 = Instance::from_windows([(0, 0), (5, 5)], 1).unwrap();
        assert_eq!(min_gap_value(&inst1), Some(1));
        let inst2 = inst1.with_processors(2).unwrap();
        assert_eq!(min_gap_value(&inst2), Some(0));
        assert_eq!(min_span_value(&inst2), Some(2));
    }

    #[test]
    fn lemma_1_counterexample_is_solved_correctly() {
        // DESIGN.md counterexample: {0},{1},{2},{5} on p = 2.
        let inst = Instance::from_windows([(0, 0), (1, 1), (2, 2), (5, 5)], 2).unwrap();
        let sol = min_gap_schedule(&inst).unwrap();
        assert_eq!(sol.spans, 2);
        assert_eq!(sol.gaps, 0, "run {{5}} parks on its own processor");
        check(&[(0, 0), (1, 1), (2, 2), (5, 5)], 2);
    }

    #[test]
    fn stacked_pinned_jobs() {
        check(&[(0, 0), (0, 0)], 2);
        let inst = Instance::from_windows([(0, 0), (0, 0)], 2).unwrap();
        assert_eq!(min_span_value(&inst), Some(2));
        assert_eq!(min_gap_value(&inst), Some(0));
    }

    #[test]
    fn profile_choice_matters() {
        // Three jobs pinned at 0, one at 2, flexible filler (0..2), p = 3.
        check(&[(0, 0), (0, 0), (0, 0), (2, 2), (0, 2)], 3);
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::from_windows([(0, 0), (0, 0), (0, 0)], 2).unwrap();
        assert!(min_gap_schedule(&inst).is_none());
        assert!(min_span_schedule(&inst).is_none());
    }

    #[test]
    fn fixed_cases_vs_brute_force() {
        check(&[(0, 3), (1, 2), (2, 5), (4, 4), (0, 5)], 2);
        check(&[(0, 1), (0, 1), (3, 4), (3, 4)], 2);
        check(&[(0, 2), (0, 2), (0, 2), (4, 6), (4, 6), (4, 6)], 3);
        check(&[(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)], 1);
        check(&[(0, 0), (2, 2), (4, 4), (0, 4)], 2);
        check(&[(1, 1), (1, 3), (3, 3), (5, 6), (6, 6)], 2);
        check(&[(0, 0), (0, 0), (9, 9)], 2);
        check(&[(0, 3), (0, 3), (0, 3), (0, 3)], 4);
    }

    #[test]
    fn flexible_jobs_stack_into_one_span() {
        let inst = Instance::from_windows([(0, 3), (0, 3), (0, 3), (0, 3)], 4).unwrap();
        let sol = min_span_schedule(&inst).unwrap();
        assert_eq!(sol.spans, 1, "one contiguous run on a single processor");
        assert_eq!(min_gap_value(&inst), Some(0));
    }
}

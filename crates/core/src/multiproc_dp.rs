//! **Theorems 1 & 2 (gap side)**: exact multiprocessor gap scheduling in
//! polynomial time.
//!
//! # What the DP minimizes, made precise
//!
//! For a schedule with occupancy profile `ℓ(t)` (# jobs at time `t`), the
//! number of **spans** (maximal busy runs, = wake-up transitions) over all
//! processors is at least `R(ℓ) = Σ_t (ℓ(t) − ℓ(t−1))⁺` in *any*
//! arrangement, and the prefix (staircase) arrangement of Lemma 1 attains
//! it. The DP below therefore computes
//!
//! ```text
//! G(p)  =  min { R(ℓ) : ℓ a feasible profile with ℓ(t) ≤ p }
//! ```
//!
//! which answers both of the paper's objectives:
//!
//! * **span / transition objective** (the intro's "minimize the total
//!   number of transitions"): optimum `G(p)`, prefix witness —
//!   [`min_span_schedule`];
//! * **finite-gap objective** (Section 2's literal definition): optimum
//!   `max(0, G(p) − p)` — every arrangement has ≥ `R(ℓ)` runs on ≤
//!   `min(p, runs)` processors and `gaps = runs − used`; spreading the
//!   staircase runs over processors attains the bound
//!   ([`crate::schedule::Schedule::spread_for_min_gaps`]) —
//!   [`min_gap_schedule`].
//!
//! The distinction matters: the paper's Lemma 1 proof counts span starts,
//! and prefix rearrangement can strictly *increase* finite gaps (see
//! DESIGN.md and the tests below). For `p = 1` the objectives coincide up
//! to the constant 1.
//!
//! # The recursion
//!
//! A state `C(t1, t2, k, q, o1, o2)` schedules the `k` earliest-deadline
//! jobs among those *released* in `[t1, t2]`, with exactly `o1` of them at
//! `t1`, `o2` of them at `t2`, and `q` ancestor jobs already pinned at `t2`
//! below them (total occupancy `q + o2` at `t2`). Its value is the number
//! of span starts at the boundaries `(t1, t1+1], …, (t2−1, t2]`. Following
//! the paper, the recursion peels the latest-deadline job `jk`, placed at a
//! time `t′`:
//!
//! * `t′ = t2`: `jk` joins the ancestors → `C(t1, t2, k−1, q+1, o1, o2−1)`;
//! * `t′ < t2`: the exchange argument in the paper's proof pins the right
//!   child's job count to `i = #{window jobs released after t′}`; children
//!   are `C(t1, t′, k−i−1, 1, o1, ℓ′)` (`jk` sits at the bottom of column
//!   `t′`) and `C(t′+1, t2, i, q, ℓ″, o2)`; the parent pays the boundary
//!   `(occ(t′+1) − (1 + ℓ′))⁺`.
//!
//! The timeline is padded with one empty sentinel slot on each side so the
//! top-level state has `o1 = o2 = q = 0` and every real start is counted.
//! Run [`crate::compress::compress_instance_gap`] first if the horizon is
//! long; the DP is polynomial in the horizon length, `n`, and `p`.
//!
//! # Implementation notes (hot-path engineering)
//!
//! The recursion is the batch engine's dominant exact path, so the state
//! evaluation is tuned (in the style of Baptiste–Chrobak–Dürr's
//! interval-structure memoization):
//!
//! * **interval memoization** — the deadline-ordered job list of a window
//!   `[t1, t2]` (and its releases) is computed once per distinct interval
//!   and shared by every state over that interval, instead of rescanning
//!   all jobs per state (see [`crate::dp_interval`], shared with the
//!   other interval DPs);
//! * **dominance pruning** — states whose `k` window jobs cannot fit the
//!   column capacities (`o1` at `t1`, `o2` at `t2`, `≤ cap` per interior
//!   column) are cut to `INF` without expanding children;
//! * **flat split counting** — the split loop derives `i(t′)` from a
//!   reusable per-depth counting buffer (one pass over the `k` releases
//!   plus a running prefix), replacing the per-state sort;
//! * **fast memo hashing** — the packed-`u64` state memo uses
//!   [`crate::fasthash`] instead of SipHash.
//!
//! None of this changes the recursion: optima and witnesses are identical
//! to the reference formulation, which `tests/solver_differential.rs`
//! re-proves against `brute_force` on every run.

use crate::dp_interval::{IntervalIndex, WindowInfo};
use crate::fasthash::FastMap;
use crate::instance::Instance;
use crate::schedule::{Assignment, Schedule};
use std::rc::Rc;

const INF: u32 = u32::MAX;

fn add(a: u32, b: u32) -> u32 {
    if a == INF || b == INF {
        INF
    } else {
        a + b
    }
}

/// Result of the exact multiprocessor solver.
#[derive(Clone, Debug)]
pub struct GapSolution {
    /// Optimal value of the requested objective (gaps or spans).
    pub gaps: u64,
    /// A witness schedule achieving it.
    pub schedule: Schedule,
    /// Minimum span count `G(p)` (= wake-up transitions of the witness).
    pub spans: u64,
}

/// Solve the **span / transition** objective exactly: fewest maximal busy
/// runs (= sleep→active transitions) over all processors. Returns a
/// prefix-structured witness. `None` iff infeasible.
pub fn min_span_schedule(inst: &Instance) -> Option<GapSolution> {
    let (spans, schedule) = solve(inst)?;
    Some(GapSolution {
        gaps: spans,
        schedule,
        spans,
    })
}

/// Solve the **finite-gap** objective exactly (Section 2's literal
/// definition: a gap is a finite maximal idle interval on one processor).
/// Returns a run-spread witness using `min(p, spans)` processors.
/// `None` iff infeasible.
///
/// ```
/// use gaps_core::instance::Instance;
/// use gaps_core::multiproc_dp::min_gap_schedule;
/// // Two far-apart pinned jobs: on p = 2 each gets its own processor and
/// // no finite gap remains; the span count is still 2.
/// let inst = Instance::from_windows([(0, 0), (6, 6)], 2).unwrap();
/// let sol = min_gap_schedule(&inst).unwrap();
/// assert_eq!(sol.gaps, 0);
/// assert_eq!(sol.spans, 2);
/// ```
pub fn min_gap_schedule(inst: &Instance) -> Option<GapSolution> {
    let (spans, schedule) = solve(inst)?;
    let gaps = spans.saturating_sub(inst.processors() as u64);
    let spread = schedule.spread_for_min_gaps(inst.processors());
    debug_assert_eq!(spread.gap_count(inst.processors()), gaps);
    Some(GapSolution {
        gaps,
        schedule: spread,
        spans,
    })
}

/// Convenience: optimal finite-gap count only.
pub fn min_gap_value(inst: &Instance) -> Option<u64> {
    min_gap_schedule(inst).map(|s| s.gaps)
}

/// Convenience: optimal span/transition count `G(p)` only.
pub fn min_span_value(inst: &Instance) -> Option<u64> {
    min_span_schedule(inst).map(|s| s.spans)
}

/// Core solver: `(G(p), prefix witness)`.
fn solve(inst: &Instance) -> Option<(u64, Schedule)> {
    let n = inst.job_count();
    if n == 0 {
        return Some((0, Schedule::new(vec![])));
    }
    // Fast infeasibility exit (EDF is exact for unit jobs).
    crate::edf::edf(inst).ok()?;

    let mut ctx = Ctx::new(inst);
    let top = ctx.top_state();
    let spans = ctx.value(top);
    assert_ne!(spans, INF, "EDF said feasible, DP must agree");

    let mut placements: Vec<(i64, u32)> = vec![(i64::MIN, 0); n];
    ctx.walk(top, &mut placements);
    let assignments = placements
        .iter()
        .map(|&(t, q)| {
            debug_assert!(t != i64::MIN, "every job must be placed");
            Assignment {
                time: ctx.t0 + t,
                processor: q,
            }
        })
        .collect();
    let schedule = Schedule::new(assignments);
    debug_assert_eq!(schedule.verify(inst), Ok(()));
    debug_assert!(schedule.is_prefix_structured());
    debug_assert_eq!(schedule.span_count(inst.processors()), spans as u64);
    Some((spans as u64, schedule))
}

/// A DP state (times are indices into the padded timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct State {
    t1: u16,
    t2: u16,
    k: u16,
    q: u16,
    o1: u16,
    o2: u16,
}

fn key(s: State) -> u64 {
    (s.t1 as u64)
        | (s.t2 as u64) << 12
        | (s.k as u64) << 24
        | (s.q as u64) << 36
        | (s.o1 as u64) << 45
        | (s.o2 as u64) << 54
}

/// Solver context: jobs sorted by deadline, times shifted so the padded
/// timeline is `0..=t_max` with sentinels at both ends, plus the memo and
/// interval tables that make the recursion cheap.
struct Ctx {
    /// Original time of padded index 0.
    t0: i64,
    /// Last padded index (right sentinel).
    t_max: u16,
    /// Occupancy cap: `min(p, n)`.
    cap: u16,
    /// Job ids in deadline order.
    order: Vec<u32>,
    /// `(release, deadline)` in padded indices, deadline order.
    jobs: Vec<(u16, u16)>,
    /// Memoized interval windows + pooled split-counting buffers.
    intervals: IntervalIndex,
    /// Packed-state memo.
    memo: FastMap<u64, u32>,
}

impl Ctx {
    fn new(inst: &Instance) -> Ctx {
        // analyzer: allow(panic-free): the public entry points return early for zero-job instances before building a Ctx
        let horizon = inst.horizon().expect("non-empty instance");
        let t0 = horizon.start - 1;
        let len = horizon.end - horizon.start + 3; // two sentinels
        assert!(
            len <= 4000,
            "horizon too long ({len}); compress the instance first"
        );
        assert!(
            inst.job_count() <= 4000,
            "too many jobs for the DP key packing"
        );
        let order: Vec<u32> = inst.deadline_order().iter().map(|&i| i as u32).collect();
        let jobs: Vec<(u16, u16)> = order
            .iter()
            .map(|&i| {
                let j = &inst.jobs()[i as usize];
                ((j.release - t0) as u16, (j.deadline - t0) as u16)
            })
            .collect();
        let len = len as usize;
        Ctx {
            t0,
            t_max: (len - 1) as u16,
            cap: (inst.processors() as usize).min(inst.job_count()).min(511) as u16,
            order,
            jobs,
            intervals: IntervalIndex::new(len),
            memo: FastMap::with_capacity_and_hasher(1 << 12, Default::default()),
        }
    }

    fn top_state(&self) -> State {
        State {
            t1: 0,
            t2: self.t_max,
            k: self.jobs.len() as u16,
            q: 0,
            o1: 0,
            o2: 0,
        }
    }

    /// The memoized window of `[t1, t2]` (deadline-ordered positions of
    /// jobs released inside, plus their releases).
    fn window(&mut self, t1: u16, t2: u16) -> Rc<WindowInfo> {
        self.intervals.window(&self.jobs, t1, t2)
    }

    /// Memoized DP evaluation.
    fn value(&mut self, s: State) -> u32 {
        if let Some(&v) = self.memo.get(&key(s)) {
            return v;
        }
        let v = self.compute(s);
        self.memo.insert(key(s), v);
        v
    }

    fn compute(&mut self, s: State) -> u32 {
        let State {
            t1,
            t2,
            k,
            q,
            o1,
            o2,
        } = s;
        let m = self.cap;
        // Structural validity.
        if o1 > k || o2 > k || q + o2 > m || o1 > m {
            return INF;
        }
        let window = self.window(t1, t2);
        if (k as usize) > window.jobs.len() {
            return INF;
        }

        // Base: single-point window. All k jobs sit at t1 = t2 on top of
        // the q ancestors; no boundary lies inside, so the cost is 0.
        if t1 == t2 {
            return if o1 == o2 && o1 == k && q + k <= m {
                0
            } else {
                INF
            };
        }

        // Base: nothing to schedule. The q ancestors at t2 rise from an
        // empty column t2−1, costing q starts.
        if k == 0 {
            return if o1 == 0 && o2 == 0 { q as u32 } else { INF };
        }

        // Dominance pruning: with t1 < t2 the o1 edge jobs and o2 edge
        // jobs are disjoint, and the remaining window jobs must fit the
        // interior columns at ≤ cap each. States violating either bound
        // have no feasible completion and are cut without expansion.
        if o1 + o2 > k {
            return INF;
        }
        let interior_capacity = (t2 - t1 - 1) as u32 * m as u32;
        if (k - o1 - o2) as u32 > interior_capacity {
            return INF;
        }

        let jk = window.jobs[(k - 1) as usize];
        let (rk, dk) = self.jobs[jk as usize];
        let mut best = INF;

        // Case A: jk at t2, joining the ancestors.
        if o2 >= 1 && dk >= t2 {
            let child = self.value(State {
                t1,
                t2,
                k: k - 1,
                q: q + 1,
                o1,
                o2: o2 - 1,
            });
            best = best.min(child);
        }

        // Split cases: jk at t′ ∈ [max(t1, rk), min(dk, t2−1)]. The split
        // count i(t′) = #{window releases > t′ among the first k jobs}
        // comes from a counting pass over a pooled buffer plus a running
        // prefix — no sort, no allocation.
        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        if lo > hi {
            return best;
        }
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            let i = (k as u32 - split.advance(tp)) as u16;
            debug_assert!(i < k, "jk has release ≤ t′, so i ≤ k − 1");
            let k1 = k - 1 - i;

            if tp == t1 {
                // jk at the left edge: every window job released at t1 must
                // be there too, so o1 = k1 + 1 (jk included).
                if o1 != k1 + 1 {
                    continue;
                }
                let sub1 = self.value(State {
                    t1,
                    t2: t1,
                    k: k1,
                    q: 1,
                    o1: o1 - 1,
                    o2: o1 - 1,
                });
                if sub1 == INF {
                    continue;
                }
                best = best.min(self.best_right(s, tp, o1 - 1, i, sub1));
            } else {
                // jk at the bottom of column t′; ℓ′ sub1 jobs above it.
                for lp in 0..=k1.min(m - 1) {
                    let sub1 = self.value(State {
                        t1,
                        t2: tp,
                        k: k1,
                        q: 1,
                        o1,
                        o2: lp,
                    });
                    if sub1 == INF {
                        continue;
                    }
                    best = best.min(self.best_right(s, tp, lp, i, sub1));
                }
            }
        }
        self.intervals.recycle(split);
        best
    }

    /// Best completion with the right child, given `sub1` (left child value
    /// with `lp` own jobs above jk in column `t′ = tp`); the parent pays the
    /// boundary `(occ(t′+1) − (1 + lp))⁺`.
    fn best_right(&mut self, s: State, tp: u16, lp: u16, i: u16, sub1: u32) -> u32 {
        let State { t2, q, o2, .. } = s;
        let col_tp = 1 + lp as u32; // occupancy at t′
        if tp + 1 == t2 {
            // Right child is the single-point state at t2.
            let sub2 = self.value(State {
                t1: t2,
                t2,
                k: i,
                q,
                o1: o2,
                o2,
            });
            let boundary = (q as u32 + o2 as u32).saturating_sub(col_tp);
            add(add(sub1, sub2), boundary)
        } else {
            let mut best = INF;
            for l2 in 0..=i.min(self.cap) {
                let sub2 = self.value(State {
                    t1: tp + 1,
                    t2,
                    k: i,
                    q,
                    o1: l2,
                    o2,
                });
                if sub2 == INF {
                    continue;
                }
                let boundary = (l2 as u32).saturating_sub(col_tp);
                best = best.min(add(add(sub1, sub2), boundary));
            }
            best
        }
    }

    /// Reconstruct one optimal witness by re-deriving a transition whose
    /// value matches the memoized optimum, then descending. Jobs are placed
    /// on prefix processors. Transition order mirrors [`Ctx::compute`], so
    /// the witness is identical to the reference formulation's.
    fn walk(&mut self, s: State, placements: &mut Vec<(i64, u32)>) {
        let target = self.value(s);
        assert_ne!(target, INF, "walking an infeasible state");
        let State {
            t1,
            t2,
            k,
            q,
            o1,
            o2,
        } = s;
        let window = self.window(t1, t2);

        // Single-point base: place all k jobs at t1 on processors q..q+k.
        if t1 == t2 {
            for (rank, &j) in window.jobs[..k as usize].iter().enumerate() {
                let job = self.order[j as usize] as usize;
                placements[job] = (t1 as i64, q as u32 + rank as u32);
            }
            return;
        }
        if k == 0 {
            return;
        }

        let jk = window.jobs[(k - 1) as usize];
        let job_k = self.order[jk as usize] as usize;
        let (rk, dk) = self.jobs[jk as usize];

        // Case A.
        if o2 >= 1 && dk >= t2 {
            let child_state = State {
                t1,
                t2,
                k: k - 1,
                q: q + 1,
                o1,
                o2: o2 - 1,
            };
            if self.value(child_state) == target {
                placements[job_k] = (t2 as i64, q as u32);
                self.walk(child_state, placements);
                return;
            }
        }

        let lo = t1.max(rk);
        let hi = dk.min(t2 - 1);
        let mut split = self
            .intervals
            .split_counter(&window.releases[..k as usize], t1, t2, lo);
        for tp in lo..=hi {
            let i = (k as u32 - split.advance(tp)) as u16;
            let k1 = k - 1 - i;
            let lp_range = if tp == t1 {
                if o1 != k1 + 1 {
                    continue;
                }
                o1 - 1..=o1 - 1
            } else {
                0..=k1.min(self.cap - 1)
            };
            for lp in lp_range {
                let st1 = if tp == t1 {
                    State {
                        t1,
                        t2: t1,
                        k: k1,
                        q: 1,
                        o1: o1 - 1,
                        o2: lp,
                    }
                } else {
                    State {
                        t1,
                        t2: tp,
                        k: k1,
                        q: 1,
                        o1,
                        o2: lp,
                    }
                };
                let col_tp = 1 + lp as u32;
                let sub1 = self.value(st1);
                if sub1 == INF {
                    continue;
                }
                let l2_range = if tp + 1 == t2 {
                    o2..=o2
                } else {
                    0..=i.min(self.cap)
                };
                for l2 in l2_range {
                    let st2 = if tp + 1 == t2 {
                        State {
                            t1: t2,
                            t2,
                            k: i,
                            q,
                            o1: o2,
                            o2,
                        }
                    } else {
                        State {
                            t1: tp + 1,
                            t2,
                            k: i,
                            q,
                            o1: l2,
                            o2,
                        }
                    };
                    let sub2 = self.value(st2);
                    let occ_next = if tp + 1 == t2 {
                        q as u32 + o2 as u32
                    } else {
                        st2.o1 as u32
                    };
                    let boundary = occ_next.saturating_sub(col_tp);
                    if add(add(sub1, sub2), boundary) == target {
                        placements[job_k] = (tp as i64, 0);
                        self.intervals.recycle(split);
                        self.walk(st1, placements);
                        self.walk(st2, placements);
                        return;
                    }
                }
            }
        }
        unreachable!("no transition reproduces the memoized optimum");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::{min_gaps_multiproc, min_spans_multiproc};

    fn check(windows: &[(i64, i64)], p: u32) {
        let inst = Instance::from_windows(windows.iter().copied(), p).unwrap();
        // Span objective.
        let dp = min_span_schedule(&inst);
        let bf = min_spans_multiproc(&inst);
        match (&dp, &bf) {
            (None, None) => {}
            (Some(dp), Some((bf_spans, _))) => {
                assert_eq!(dp.spans, *bf_spans, "spans: DP vs BF on {windows:?} p={p}");
                dp.schedule.verify(&inst).unwrap();
                assert_eq!(dp.schedule.span_count(p), dp.spans);
            }
            _ => panic!("span feasibility disagreement on {windows:?} p={p}"),
        }
        // Finite-gap objective.
        let dp = min_gap_schedule(&inst);
        let bf = min_gaps_multiproc(&inst);
        match (dp, bf) {
            (None, None) => {}
            (Some(dp), Some((bf_gaps, _))) => {
                assert_eq!(dp.gaps, bf_gaps, "gaps: DP vs BF on {windows:?} p={p}");
                dp.schedule.verify(&inst).unwrap();
                assert_eq!(dp.schedule.gap_count(p), dp.gaps);
            }
            _ => panic!("gap feasibility disagreement on {windows:?} p={p}"),
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert_eq!(min_gap_schedule(&inst).unwrap().gaps, 0);
        assert_eq!(min_span_schedule(&inst).unwrap().spans, 0);
    }

    #[test]
    fn single_job() {
        check(&[(5, 9)], 1);
        let inst = Instance::from_windows([(5, 9)], 3).unwrap();
        assert_eq!(min_gap_value(&inst), Some(0));
        assert_eq!(min_span_value(&inst), Some(1));
    }

    #[test]
    fn two_pinned_far_jobs() {
        // p = 1: spans 2, gaps 1. p = 2: spans 2, gaps 0 (park each run).
        check(&[(0, 0), (5, 5)], 1);
        check(&[(0, 0), (5, 5)], 2);
        let inst1 = Instance::from_windows([(0, 0), (5, 5)], 1).unwrap();
        assert_eq!(min_gap_value(&inst1), Some(1));
        let inst2 = inst1.with_processors(2).unwrap();
        assert_eq!(min_gap_value(&inst2), Some(0));
        assert_eq!(min_span_value(&inst2), Some(2));
    }

    #[test]
    fn lemma_1_counterexample_is_solved_correctly() {
        // DESIGN.md counterexample: {0},{1},{2},{5} on p = 2.
        let inst = Instance::from_windows([(0, 0), (1, 1), (2, 2), (5, 5)], 2).unwrap();
        let sol = min_gap_schedule(&inst).unwrap();
        assert_eq!(sol.spans, 2);
        assert_eq!(sol.gaps, 0, "run {{5}} parks on its own processor");
        check(&[(0, 0), (1, 1), (2, 2), (5, 5)], 2);
    }

    #[test]
    fn stacked_pinned_jobs() {
        check(&[(0, 0), (0, 0)], 2);
        let inst = Instance::from_windows([(0, 0), (0, 0)], 2).unwrap();
        assert_eq!(min_span_value(&inst), Some(2));
        assert_eq!(min_gap_value(&inst), Some(0));
    }

    #[test]
    fn profile_choice_matters() {
        // Three jobs pinned at 0, one at 2, flexible filler (0..2), p = 3.
        check(&[(0, 0), (0, 0), (0, 0), (2, 2), (0, 2)], 3);
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::from_windows([(0, 0), (0, 0), (0, 0)], 2).unwrap();
        assert!(min_gap_schedule(&inst).is_none());
        assert!(min_span_schedule(&inst).is_none());
    }

    #[test]
    fn fixed_cases_vs_brute_force() {
        check(&[(0, 3), (1, 2), (2, 5), (4, 4), (0, 5)], 2);
        check(&[(0, 1), (0, 1), (3, 4), (3, 4)], 2);
        check(&[(0, 2), (0, 2), (0, 2), (4, 6), (4, 6), (4, 6)], 3);
        check(&[(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)], 1);
        check(&[(0, 0), (2, 2), (4, 4), (0, 4)], 2);
        check(&[(1, 1), (1, 3), (3, 3), (5, 6), (6, 6)], 2);
        check(&[(0, 0), (0, 0), (9, 9)], 2);
        check(&[(0, 3), (0, 3), (0, 3), (0, 3)], 4);
    }

    #[test]
    fn flexible_jobs_stack_into_one_span() {
        let inst = Instance::from_windows([(0, 3), (0, 3), (0, 3), (0, 3)], 4).unwrap();
        let sol = min_span_schedule(&inst).unwrap();
        assert_eq!(sol.spans, 1, "one contiguous run on a single processor");
        assert_eq!(min_gap_value(&inst), Some(0));
    }
}

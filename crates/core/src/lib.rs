//! # gaps-core
//!
//! Algorithms from *“Scheduling to Minimize Gaps and Power Consumption”*
//! (Demaine, Ghodsi, Hajiaghayi, Sayedi-Roshkhar, Zadimoghaddam; SPAA 2007):
//! scheduling unit jobs on processors that can sleep, minimizing either the
//! number of **gaps** (idle periods) or the total **power**
//! (active time + α per wake-up).
//!
//! ## Map of the crate
//!
//! | paper result | module |
//! |--------------|--------|
//! | model & metrics | [`time`], [`instance`], [`schedule`], [`power`] |
//! | Lemma 1/2 (prefix structure) | [`schedule::Schedule::canonicalize_prefix`] |
//! | Theorem 1 (multiprocessor gap DP) | [`multiproc_dp`] |
//! | Theorem 2 (multiprocessor power DP) | [`power_dp`] |
//! | Theorem 3 ((1+(2/3+ε)α)-approx) + Lemma 3 | [`multi_interval`] |
//! | Theorem 11 (O(√n) throughput greedy) | [`min_restart`] |
//! | \[Bap06\] single-processor DP | [`baptiste`] |
//! | \[FHKN06\] greedy 3-approximation | [`greedy_gap`] |
//! | Section 1 online lower bound | [`online`] |
//! | feasibility / EDF substrate | [`feasibility`], [`edf`] |
//! | exact reference solvers | [`brute_force`] |
//! | optimized multi-interval exact solver | [`multi_exact`] |
//! | dead-zone compression | [`compress`] |
//!
//! ## Quick start
//!
//! ```
//! use gaps_core::instance::Instance;
//! use gaps_core::multiproc_dp::min_gap_schedule;
//!
//! // Four unit jobs on two processors.
//! let inst = Instance::from_windows([(0, 3), (0, 3), (2, 5), (5, 5)], 2).unwrap();
//! let solution = min_gap_schedule(&inst).expect("feasible");
//! assert_eq!(solution.gaps, 0); // everything packs contiguously
//! solution.schedule.verify(&inst).unwrap();
//! ```

pub mod analysis;
pub mod baptiste;
pub mod brute_force;
pub mod compress;
mod dp_interval;
pub mod edf;
pub mod fasthash;
pub mod feasibility;
pub mod greedy_gap;
pub mod instance;
pub mod lower_bounds;
pub mod min_restart;
pub mod multi_exact;
pub mod multi_interval;
pub mod multiproc_dp;
pub mod online;
pub mod power;
pub mod power_dp;
pub mod render;
pub mod schedule;
pub mod time;

pub use instance::{Instance, InstanceError, Job, MultiInstance, MultiJob};
pub use schedule::{Assignment, MultiSchedule, Schedule, ScheduleError};
pub use time::{Time, TimeInterval};

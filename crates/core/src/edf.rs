//! Earliest-deadline-first scheduling for unit jobs on `p` processors.
//!
//! For one-interval unit jobs, non-lazy EDF (run the `≤ p` released pending
//! jobs with earliest deadlines at every step, never idling while work is
//! pending) finds a feasible schedule whenever one exists — the classic
//! exchange argument. The paper uses EDF in two roles:
//!
//! * the baseline "most basic scheduling algorithm" (Section 1), oblivious
//!   to gaps, against which the gap-aware DPs are compared;
//! * the canonical **online** algorithm: any online algorithm that
//!   guarantees feasibility must execute pending jobs immediately, so its
//!   gap cost on the adversarial family of Section 1 is Ω(n) times optimal
//!   (experiment E12).

use crate::instance::Instance;
use crate::schedule::{Assignment, Schedule};
use crate::time::Time;
use std::collections::BinaryHeap;

/// Why EDF failed: some job's deadline passed before it could be run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdfFailure {
    /// The job whose deadline was missed.
    pub job: usize,
    /// The first time at which the miss became unavoidable.
    pub time: Time,
}

/// Run non-lazy EDF. Returns the schedule, or the first deadline miss.
///
/// For unit jobs this is exact for feasibility: `edf` fails iff the
/// instance is infeasible.
pub fn edf(inst: &Instance) -> Result<Schedule, EdfFailure> {
    let n = inst.job_count();
    let p = inst.processors() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| inst.jobs()[i].release);

    // Min-heap on (deadline, index) via Reverse.
    let mut pending: BinaryHeap<std::cmp::Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut assignments = vec![
        Assignment {
            time: 0,
            processor: 0
        };
        n
    ];
    let mut next = 0usize;
    let mut t = match order.first() {
        Some(&i) => inst.jobs()[i].release,
        None => return Ok(Schedule::new(Vec::new())),
    };

    while next < n || !pending.is_empty() {
        if pending.is_empty() {
            // Idle period: jump to the next release.
            t = t.max(inst.jobs()[order[next]].release);
        }
        while next < n && inst.jobs()[order[next]].release <= t {
            let i = order[next];
            pending.push(std::cmp::Reverse((inst.jobs()[i].deadline, i)));
            next += 1;
        }
        for q in 0..p {
            let Some(std::cmp::Reverse((d, i))) = pending.pop() else {
                break;
            };
            if d < t {
                return Err(EdfFailure { job: i, time: t });
            }
            assignments[i] = Assignment {
                time: t,
                processor: q as u32,
            };
        }
        t += 1;
    }
    let sched = Schedule::new(assignments);
    debug_assert!(sched.verify(inst).is_ok());
    Ok(sched)
}

/// Feasibility test for one-interval multiprocessor instances via EDF.
pub fn is_feasible(inst: &Instance) -> bool {
    edf(inst).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edf_schedules_simple_chain() {
        let inst = Instance::from_windows([(0, 2), (0, 2), (0, 2)], 1).unwrap();
        let s = edf(&inst).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.gap_count(1), 0);
    }

    #[test]
    fn edf_detects_infeasible() {
        // Three unit jobs due by time 1 on one processor.
        let inst = Instance::from_windows([(0, 1), (0, 1), (0, 1)], 1).unwrap();
        let err = edf(&inst).unwrap_err();
        assert_eq!(err.time, 2);
        // Two processors make it feasible.
        assert!(is_feasible(&inst.with_processors(2).unwrap()));
    }

    #[test]
    fn edf_uses_multiple_processors() {
        let inst = Instance::from_windows([(0, 0), (0, 0), (1, 1)], 2).unwrap();
        let s = edf(&inst).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.assignments()[0].time, 0);
        assert_eq!(s.assignments()[1].time, 0);
        assert_ne!(s.assignments()[0].processor, s.assignments()[1].processor);
    }

    #[test]
    fn edf_jumps_over_idle_stretches() {
        let inst = Instance::from_windows([(0, 0), (1_000_000, 1_000_000)], 1).unwrap();
        let s = edf(&inst).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.gap_count(1), 1);
    }

    #[test]
    fn edf_prioritizes_tight_deadline() {
        // Job 0 has slack, job 1 must run now.
        let inst = Instance::from_windows([(0, 5), (0, 0)], 1).unwrap();
        let s = edf(&inst).unwrap();
        assert_eq!(s.assignments()[1].time, 0);
        assert_eq!(s.assignments()[0].time, 1);
    }

    #[test]
    fn edf_is_greedy_not_gap_optimal() {
        // The Section 1 phenomenon in miniature: EDF runs the flexible job
        // immediately, creating a gap; the optimum runs it adjacent to the
        // tight job.
        let inst = Instance::from_windows([(0, 10), (9, 10)], 1).unwrap();
        let s = edf(&inst).unwrap();
        assert_eq!(s.gap_count(1), 1); // runs at 0 and 9
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 3).unwrap();
        let s = edf(&inst).unwrap();
        assert!(s.is_empty());
    }
}

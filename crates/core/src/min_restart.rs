//! **Theorem 11**: the greedy O(√n)-approximation for maximizing
//! throughput under a budget of `k` gaps (the *minimum-restart* problem).
//!
//! The model (Section 6, using Section 5's convention that one infinite
//! idle side counts as a gap): a budget of `k` gaps buys `k` *working
//! intervals* — the consultant of the paper's running example bills `k`
//! days and each day is one contiguous stretch of work. In each of `k`
//! rounds the greedy picks the **largest** time interval `[a, b]` that can
//! be *completely filled* with `b − a + 1` distinct unscheduled jobs
//! (checked by maximum matching of slots into jobs), schedules them, and
//! repeats. The paper proves the total number of scheduled jobs is an
//! O(√n) approximation of the optimum; experiment E11 measures the actual
//! ratio against exhaustive search.

use crate::instance::MultiInstance;
use crate::time::{runs_of, Time, TimeInterval};
use gaps_matching::{hopcroft_karp, BipartiteGraph};

/// Result of the greedy minimum-restart scheduler.
#[derive(Clone, Debug)]
pub struct MinRestartResult {
    /// Per-job assigned time, `None` if the job was left unscheduled.
    pub assignment: Vec<Option<Time>>,
    /// Number of jobs scheduled.
    pub scheduled: usize,
    /// The working intervals chosen, in pick order (sizes non-increasing).
    pub intervals: Vec<TimeInterval>,
}

impl MinRestartResult {
    /// Check the result against its instance: assigned times allowed and
    /// distinct, every scheduled job inside one of the intervals.
    pub fn verify(&self, inst: &MultiInstance) -> Result<(), String> {
        let mut used: Vec<Time> = Vec::new();
        for (j, t) in self.assignment.iter().enumerate() {
            let Some(t) = t else { continue };
            if !inst.jobs()[j].allows(*t) {
                return Err(format!("job {j} at disallowed time {t}"));
            }
            if used.contains(t) {
                return Err(format!("time {t} used twice"));
            }
            if !self.intervals.iter().any(|iv| iv.contains(*t)) {
                return Err(format!("job {j} at {t} outside all working intervals"));
            }
            used.push(*t);
        }
        if used.len() != self.scheduled {
            return Err("scheduled count mismatch".into());
        }
        Ok(())
    }
}

/// Run the Theorem 11 greedy with a budget of `k` working intervals.
///
/// ```
/// use gaps_core::instance::MultiInstance;
/// use gaps_core::min_restart::greedy_min_restart;
/// // Three contiguous jobs and one far loner: with k = 1 the greedy takes
/// // the length-3 block.
/// let inst = MultiInstance::from_times([
///     vec![0, 1], vec![1, 2], vec![0, 2], vec![50],
/// ]).unwrap();
/// let res = greedy_min_restart(&inst, 1);
/// assert_eq!(res.scheduled, 3);
/// ```
pub fn greedy_min_restart(inst: &MultiInstance, k: u64) -> MinRestartResult {
    let n = inst.job_count();
    let mut assignment: Vec<Option<Time>> = vec![None; n];
    let mut intervals = Vec::new();
    let mut used_slots: Vec<Time> = Vec::new();
    let mut scheduled = 0usize;

    for _ in 0..k {
        // Free slots, grouped into maximal runs.
        let free: Vec<Time> = inst
            .slot_union()
            .into_iter()
            .filter(|t| used_slots.binary_search(t).is_err())
            .collect();
        let runs = runs_of(&free);
        // Largest fully-packable interval over all runs and sub-intervals,
        // scanning lengths downward so the first hit wins.
        let max_len = runs.iter().map(|r| r.len()).max().unwrap_or(0) as usize;
        let mut found: Option<(TimeInterval, Vec<(usize, Time)>)> = None;
        'len: for len in (1..=max_len).rev() {
            for run in &runs {
                if (run.len() as usize) < len {
                    continue;
                }
                for a in run.start..=(run.end - len as Time + 1) {
                    let iv = TimeInterval::new(a, a + len as Time - 1);
                    if let Some(pack) = try_pack(inst, &assignment, iv) {
                        found = Some((iv, pack));
                        break 'len;
                    }
                }
            }
        }
        let Some((iv, pack)) = found else { break };
        for (j, t) in pack {
            debug_assert!(assignment[j].is_none());
            assignment[j] = Some(t);
            scheduled += 1;
            used_slots.push(t);
        }
        used_slots.sort_unstable();
        intervals.push(iv);
    }

    let res = MinRestartResult {
        assignment,
        scheduled,
        intervals,
    };
    debug_assert_eq!(res.verify(inst), Ok(()));
    res
}

/// Can interval `iv` be perfectly filled with distinct *unscheduled* jobs?
/// Returns the packing as `(job, time)` pairs if so.
fn try_pack(
    inst: &MultiInstance,
    assignment: &[Option<Time>],
    iv: TimeInterval,
) -> Option<Vec<(usize, Time)>> {
    let len = iv.len() as usize;
    // Left side: the slots of the interval; right side: unscheduled jobs.
    let unscheduled: Vec<usize> = (0..inst.job_count())
        .filter(|&j| assignment[j].is_none())
        .collect();
    if unscheduled.len() < len {
        return None;
    }
    let mut graph = BipartiteGraph::new(len, unscheduled.len());
    for (si, t) in iv.iter().enumerate() {
        for (ji, &j) in unscheduled.iter().enumerate() {
            if inst.jobs()[j].allows(t) {
                graph.add_edge(si as u32, ji as u32);
            }
        }
    }
    graph.dedup();
    let m = hopcroft_karp(&graph);
    if !m.is_left_perfect() {
        return None;
    }
    Some(
        m.pairs()
            .map(|(si, ji)| (unscheduled[ji as usize], iv.start + si as Time))
            .collect(),
    )
}

/// The paper's approximation guarantee for reporting: with n jobs the
/// greedy is within a factor `2·√n` of the optimum (Theorem 11's analysis
/// concludes O(√n); the constant from the proof is 2 plus lower-order
/// terms).
pub fn sqrt_bound(n: usize) -> f64 {
    2.0 * (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::max_throughput_spans;

    #[test]
    fn takes_largest_block_first() {
        let inst =
            MultiInstance::from_times([vec![0, 1], vec![1, 2], vec![0, 2], vec![50]]).unwrap();
        let res = greedy_min_restart(&inst, 2);
        assert_eq!(res.scheduled, 4);
        assert_eq!(res.intervals.len(), 2);
        assert!(res.intervals[0].len() >= res.intervals[1].len());
        res.verify(&inst).unwrap();
    }

    #[test]
    fn zero_budget_schedules_nothing() {
        let inst = MultiInstance::from_times([vec![0]]).unwrap();
        let res = greedy_min_restart(&inst, 0);
        assert_eq!(res.scheduled, 0);
        assert!(res.intervals.is_empty());
    }

    #[test]
    fn stops_early_when_no_jobs_remain() {
        let inst = MultiInstance::from_times([vec![0], vec![5]]).unwrap();
        let res = greedy_min_restart(&inst, 10);
        assert_eq!(res.scheduled, 2);
        assert_eq!(res.intervals.len(), 2);
    }

    #[test]
    fn respects_sqrt_bound_vs_exact() {
        let cases = [
            MultiInstance::from_times([
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![10],
                vec![12],
            ])
            .unwrap(),
            MultiInstance::from_times([vec![0, 5], vec![1, 6], vec![2, 7], vec![0, 1], vec![6, 7]])
                .unwrap(),
        ];
        for inst in cases {
            for k in 1..=3u64 {
                let greedy = greedy_min_restart(&inst, k);
                let (opt, _) = max_throughput_spans(&inst, k);
                assert!(greedy.scheduled > 0 || opt == 0);
                let bound = sqrt_bound(inst.job_count());
                assert!(
                    (opt as f64) <= bound * greedy.scheduled.max(1) as f64,
                    "opt {opt} vs greedy {} exceeds √n bound",
                    greedy.scheduled
                );
            }
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Greedy takes the middle length-3 block, splitting two length-2
        // blocks it can no longer afford; optimum with k = 2 is 4 jobs.
        let inst = MultiInstance::from_times([
            vec![0, 1],
            vec![0, 1],
            vec![3, 4, 5],
            vec![3, 4, 5],
            vec![3, 4, 5],
            vec![7, 8],
            vec![7, 8],
        ])
        .unwrap();
        let res = greedy_min_restart(&inst, 2);
        res.verify(&inst).unwrap();
        let (opt, _) = max_throughput_spans(&inst, 2);
        assert!(res.scheduled <= opt);
        assert!(opt <= 5);
    }

    #[test]
    fn interval_is_fully_packed() {
        let inst = MultiInstance::from_times([vec![0, 1, 2], vec![1], vec![2, 3]]).unwrap();
        let res = greedy_min_restart(&inst, 1);
        // The chosen interval must be exactly filled.
        let iv = res.intervals[0];
        let inside = res
            .assignment
            .iter()
            .flatten()
            .filter(|&&t| iv.contains(t))
            .count() as u64;
        assert_eq!(inside, iv.len());
    }
}

//! ASCII timeline (Gantt-style) rendering of schedules, for the CLI and
//! examples. Purely presentational — but tested, because misleading
//! diagnostics are worse than none.
//!
//! ```text
//! t       0         1
//! t       0123456789012
//! P0      ##..#####..##
//! P1      ##...........
//!         ^ jobs 0,3 at t=0 …
//! ```
//!
//! `#` = executing a job, `~` = idle-active (for renderings with an active
//! profile), `.` = asleep/idle, space = outside the horizon.

use crate::instance::Instance;
use crate::schedule::{MultiSchedule, Schedule};
use crate::time::Time;

/// Render a multiprocessor schedule as one row per processor over the
/// instance horizon. Long horizons are clipped to `max_width` columns
/// (with a trailing `…`).
pub fn render_timeline(inst: &Instance, sched: &Schedule, max_width: usize) -> String {
    let Some(horizon) = inst.horizon() else {
        return String::from("(empty instance)\n");
    };
    let width = (horizon.len() as usize).min(max_width.max(1));
    let clipped = (horizon.len() as usize) > width;
    let busy = sched.busy_times(inst.processors());

    let mut out = header(horizon.start, width, clipped);
    for (q, times) in busy.iter().enumerate() {
        let mut row = format!("P{q:<4}  ");
        for c in 0..width {
            let t = horizon.start + c as Time;
            row.push(if times.binary_search(&t).is_ok() {
                '#'
            } else {
                '.'
            });
        }
        if clipped {
            row.push('…');
        }
        row.push('\n');
        out.push_str(&row);
    }
    out
}

/// Render a multiprocessor schedule together with an explicit active
/// profile (`~` marks idle-active slots).
pub fn render_timeline_with_active(
    inst: &Instance,
    sched: &Schedule,
    active: &[Vec<Time>],
    max_width: usize,
) -> String {
    let Some(horizon) = inst.horizon() else {
        return String::from("(empty instance)\n");
    };
    let width = (horizon.len() as usize).min(max_width.max(1));
    let clipped = (horizon.len() as usize) > width;
    let busy = sched.busy_times(inst.processors());

    let mut out = header(horizon.start, width, clipped);
    for (q, times) in busy.iter().enumerate() {
        let empty = Vec::new();
        let act = active.get(q).unwrap_or(&empty);
        let mut row = format!("P{q:<4}  ");
        for c in 0..width {
            let t = horizon.start + c as Time;
            row.push(if times.binary_search(&t).is_ok() {
                '#'
            } else if act.binary_search(&t).is_ok() {
                '~'
            } else {
                '.'
            });
        }
        if clipped {
            row.push('…');
        }
        row.push('\n');
        out.push_str(&row);
    }
    out
}

/// Render a single-processor multi-interval schedule over its slot hull.
pub fn render_multi_timeline(sched: &MultiSchedule, max_width: usize) -> String {
    let occupied = sched.occupied();
    let (Some(&lo), Some(&hi)) = (occupied.first(), occupied.last()) else {
        return String::from("(empty schedule)\n");
    };
    let span = (hi - lo + 1) as usize;
    let width = span.min(max_width.max(1));
    let clipped = span > width;
    let mut out = header(lo, width, clipped);
    let mut row = String::from("P0     ");
    for c in 0..width {
        let t = lo + c as Time;
        row.push(if occupied.binary_search(&t).is_ok() {
            '#'
        } else {
            '.'
        });
    }
    if clipped {
        row.push('…');
    }
    row.push('\n');
    out.push_str(&row);
    out
}

/// Two-line time axis: tens digits (sparse) and unit digits.
fn header(start: Time, width: usize, clipped: bool) -> String {
    let mut tens = String::from("t      ");
    let mut units = String::from("t      ");
    for c in 0..width {
        let t = start + c as Time;
        let human = t.rem_euclid(100);
        tens.push(if human % 10 == 0 {
            char::from_digit((human / 10) as u32, 10).unwrap_or('?')
        } else {
            ' '
        });
        units.push(char::from_digit((human % 10) as u32, 10).unwrap_or('?'));
    }
    if clipped {
        tens.push(' ');
        units.push('…');
    }
    tens.push('\n');
    units.push('\n');
    tens + &units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::optimal_active_profile;

    #[test]
    fn renders_busy_and_idle() {
        let inst = Instance::from_windows([(0, 0), (3, 3)], 1).unwrap();
        let sched = Schedule::from_pairs([(0, 0), (3, 0)]);
        let s = render_timeline(&inst, &sched, 80);
        let row = s.lines().last().unwrap();
        assert!(row.starts_with("P0"));
        assert!(row.ends_with("#..#"));
    }

    #[test]
    fn renders_multiple_processors() {
        let inst = Instance::from_windows([(0, 1), (0, 1)], 2).unwrap();
        let sched = Schedule::from_pairs([(0, 0), (1, 1)]);
        let s = render_timeline(&inst, &sched, 80);
        assert_eq!(s.lines().count(), 4); // 2 header + 2 processors
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
    }

    #[test]
    fn clips_long_horizons() {
        let inst = Instance::from_windows([(0, 0), (500, 500)], 1).unwrap();
        let sched = Schedule::from_pairs([(0, 0), (500, 0)]);
        let s = render_timeline(&inst, &sched, 20);
        for line in s.lines() {
            assert!(
                line.chars().count() <= 7 + 20 + 1,
                "line too wide: {line:?}"
            );
        }
        assert!(s.contains('…'));
    }

    #[test]
    fn active_profile_shows_bridges() {
        let inst = Instance::from_windows([(0, 0), (2, 2)], 1).unwrap();
        let sched = Schedule::from_pairs([(0, 0), (2, 0)]);
        let active = optimal_active_profile(&sched, 1, 5); // bridges the gap
        let s = render_timeline_with_active(&inst, &sched, &active, 80);
        assert!(s.lines().last().unwrap().ends_with("#~#"));
    }

    #[test]
    fn multi_render() {
        let sched = MultiSchedule::new(vec![2, 3, 7]);
        let s = render_multi_timeline(&sched, 80);
        assert!(s.lines().last().unwrap().ends_with("##...#"));
    }

    #[test]
    fn empty_cases() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert!(render_timeline(&inst, &Schedule::new(vec![]), 10).contains("empty"));
        assert!(render_multi_timeline(&MultiSchedule::new(vec![]), 10).contains("empty"));
    }

    #[test]
    fn header_digits_align() {
        let inst = Instance::from_windows([(8, 8), (12, 12)], 1).unwrap();
        let sched = Schedule::from_pairs([(8, 0), (12, 0)]);
        let s = render_timeline(&inst, &sched, 80);
        let units_line = s.lines().nth(1).unwrap();
        // Columns are times 8..=12 → digits 89012.
        assert!(units_line.ends_with("89012"));
    }
}

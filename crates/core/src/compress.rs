//! Dead-zone compression: shrink stretches of time no job can use.
//!
//! The hardness gadgets of Theorems 4–8 place intervals more than n³ apart,
//! far beyond what a dense-timeline DP can sweep. Compression exploits that
//! slots usable by *no* job ("dead zones") only matter through their
//! *presence* (they split spans) and, for the power objective, their
//! *length capped at α + 1*:
//!
//! * **gap objective** — a gap costs 1 regardless of length, and no span
//!   can cross a dead slot, so any dead zone can shrink to width 1;
//! * **power objective** (transition cost α) — an idle period of length `g`
//!   costs `min(g, α)`, so any dead zone of length `> α + 1` can shrink to
//!   width `α + 1` (then `min(g, α)` is unchanged for every schedule).
//!
//! Both transformations are bijections on schedules preserving the
//! objective; [`TimeMap`] maps compressed times back to originals.

use crate::instance::{Instance, Job, MultiInstance, MultiJob};
use crate::time::Time;

/// A monotone partial map from compressed times back to original times.
///
/// Built from the sorted list of *live* (non-dead) original times and their
/// compressed images; compressed dead slots map to an arbitrary original
/// slot inside their zone (schedules never use them).
#[derive(Clone, Debug)]
pub struct TimeMap {
    /// `(compressed, original)` pairs for live slots, sorted by both.
    pairs: Vec<(Time, Time)>,
}

impl TimeMap {
    /// Map a compressed live time back to its original. Panics on a time
    /// that was not a live slot (schedules only use live slots).
    pub fn to_original(&self, compressed: Time) -> Time {
        let i = self
            .pairs
            .binary_search_by_key(&compressed, |&(c, _)| c)
            // analyzer: allow(panic-free): documented API contract — the doc comment above promises a panic on non-live slots
            .unwrap_or_else(|_| panic!("{compressed} is not a live compressed slot"));
        self.pairs[i].1
    }

    /// Map an original live time to its compressed image.
    pub fn to_compressed(&self, original: Time) -> Time {
        let i = self
            .pairs
            .binary_search_by_key(&original, |&(_, o)| o)
            // analyzer: allow(panic-free): documented API contract — the doc comment above promises a panic on non-live slots
            .unwrap_or_else(|_| panic!("{original} is not a live original slot"));
        self.pairs[i].0
    }

    fn from_live_slots(live: &[Time], zone_width: impl Fn(u64) -> u64) -> TimeMap {
        let mut pairs = Vec::with_capacity(live.len());
        let mut next_compressed: Time = 0;
        let mut prev: Option<Time> = None;
        for &t in live {
            if let Some(p) = prev {
                let hole = (t - p - 1) as u64;
                next_compressed += zone_width(hole) as Time;
            }
            pairs.push((next_compressed, t));
            next_compressed += 1;
            prev = Some(t);
        }
        TimeMap { pairs }
    }
}

/// Compress a multi-interval instance for the **gap** objective: every dead
/// zone shrinks to width 1. Returns the compressed instance and the time
/// map. Gap counts of corresponding schedules are identical.
pub fn compress_multi_gap(inst: &MultiInstance) -> (MultiInstance, TimeMap) {
    compress_multi(inst, |hole| if hole == 0 { 0 } else { 1 })
}

/// Compress a multi-interval instance for the **power** objective with
/// transition cost `alpha`: every dead zone longer than `alpha + 1` shrinks
/// to width `alpha + 1`. Power costs of corresponding schedules are
/// identical.
pub fn compress_multi_power(inst: &MultiInstance, alpha: u64) -> (MultiInstance, TimeMap) {
    compress_multi(inst, move |hole| hole.min(alpha + 1))
}

fn compress_multi(
    inst: &MultiInstance,
    zone_width: impl Fn(u64) -> u64,
) -> (MultiInstance, TimeMap) {
    let live = inst.slot_union();
    let map = TimeMap::from_live_slots(&live, zone_width);
    let jobs = inst
        .jobs()
        .iter()
        .map(|j| MultiJob::new(j.times().iter().map(|&t| map.to_compressed(t)).collect()))
        .collect();
    (
        // analyzer: allow(panic-free): to_compressed is a bijection on live slots, so every job keeps its slot count
        MultiInstance::new(jobs).expect("compression preserves non-emptiness"),
        map,
    )
}

/// Compress a one-interval instance for the gap objective. Dead zones are
/// stretches covered by no job window; windows never straddle them, so the
/// remap applies cleanly to window endpoints.
pub fn compress_instance_gap(inst: &Instance) -> (Instance, TimeMap) {
    compress_instance(inst, |hole| if hole == 0 { 0 } else { 1 })
}

/// Compress a one-interval instance for the power objective with
/// transition cost `alpha`.
pub fn compress_instance_power(inst: &Instance, alpha: u64) -> (Instance, TimeMap) {
    compress_instance(inst, move |hole| hole.min(alpha + 1))
}

fn compress_instance(inst: &Instance, zone_width: impl Fn(u64) -> u64) -> (Instance, TimeMap) {
    // Live slots: union of all windows. Merge window intervals.
    let mut windows: Vec<(Time, Time)> = inst
        .jobs()
        .iter()
        .map(|j| (j.release, j.deadline))
        .collect();
    windows.sort_unstable();
    let mut live: Vec<Time> = Vec::new();
    for (r, d) in windows {
        let from = if let Some(&last) = live.last() {
            if r <= last {
                last + 1
            } else {
                r
            }
        } else {
            r
        };
        live.extend(from..=d);
    }
    let map = TimeMap::from_live_slots(&live, zone_width);
    let jobs = inst
        .jobs()
        .iter()
        .map(|j| Job::new(map.to_compressed(j.release), map.to_compressed(j.deadline)))
        .collect();
    (
        // analyzer: allow(panic-free): the time map is monotone, so release <= deadline survives compression
        Instance::new(jobs, inst.processors()).expect("compression preserves windows"),
        map,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::{min_gaps_multi, min_power_multi};
    use crate::schedule::MultiSchedule;

    #[test]
    fn gap_compression_shrinks_dead_zones_to_one() {
        let inst = MultiInstance::from_times([vec![0, 1], vec![1_000_000]]).unwrap();
        let (c, map) = compress_multi_gap(&inst);
        assert_eq!(c.jobs()[0].times(), &[0, 1]);
        assert_eq!(c.jobs()[1].times(), &[3]); // one dead slot at 2
        assert_eq!(map.to_original(3), 1_000_000);
        assert_eq!(map.to_compressed(1_000_000), 3);
    }

    #[test]
    fn gap_compression_preserves_optimum() {
        let inst = MultiInstance::from_times([vec![0, 500], vec![501], vec![2000, 2001]]).unwrap();
        let (c, _) = compress_multi_gap(&inst);
        let (g1, _) = min_gaps_multi(&inst).unwrap();
        let (g2, _) = min_gaps_multi(&c).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn power_compression_caps_zone_at_alpha_plus_one() {
        let alpha = 3;
        let inst = MultiInstance::from_times([vec![0], vec![100]]).unwrap();
        let (c, _) = compress_multi_power(&inst, alpha);
        // Dead zone 99 → 4, so slot 100 → 5.
        assert_eq!(c.jobs()[1].times(), &[5]);
        let (p1, _) = min_power_multi(&inst, alpha).unwrap();
        let (p2, _) = min_power_multi(&c, alpha).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn power_compression_keeps_short_zones_exact() {
        let alpha = 5;
        let inst = MultiInstance::from_times([vec![0], vec![3]]).unwrap();
        let (c, _) = compress_multi_power(&inst, alpha);
        // Zone of 2 < α + 1: unchanged.
        assert_eq!(c.jobs()[1].times(), &[3]);
    }

    #[test]
    fn schedule_maps_back_through_time_map() {
        let inst = MultiInstance::from_times([vec![0], vec![7_000], vec![7_001]]).unwrap();
        let (c, map) = compress_multi_gap(&inst);
        let (_, sched) = min_gaps_multi(&c).unwrap();
        let back: Vec<Time> = sched.times().iter().map(|&t| map.to_original(t)).collect();
        let back_sched = MultiSchedule::new(back);
        back_sched.verify(&inst).unwrap();
        assert_eq!(back_sched.gap_count(), sched.gap_count());
    }

    #[test]
    fn instance_compression_remaps_windows() {
        let inst = Instance::from_windows([(0, 2), (1_000, 1_001)], 1).unwrap();
        let (c, map) = compress_instance_gap(&inst);
        assert_eq!(c.jobs()[0].release, 0);
        assert_eq!(c.jobs()[0].deadline, 2);
        assert_eq!(c.jobs()[1].release, 4); // dead slot at 3
        assert_eq!(c.jobs()[1].deadline, 5);
        assert_eq!(map.to_original(4), 1_000);
    }

    #[test]
    fn instance_compression_handles_overlapping_windows() {
        let inst = Instance::from_windows([(0, 5), (3, 8), (20, 21)], 2).unwrap();
        let (c, _) = compress_instance_gap(&inst);
        // Live: 0..=8 and 20..=21 → 20 maps to 10.
        assert_eq!(c.jobs()[2].release, 10);
        assert_eq!(c.jobs()[2].deadline, 11);
    }

    #[test]
    fn adjacent_zones_of_zero_width_are_noops() {
        let inst = MultiInstance::from_times([vec![0, 1, 2]]).unwrap();
        let (c, _) = compress_multi_gap(&inst);
        assert_eq!(c, inst);
    }
}

//! Property-based tests for the simulator: energy accounting must match
//! the analytic model for every schedule and every policy's invariants.

use gaps_core::instance::Instance;
use gaps_core::power::power_cost_multiproc;
use gaps_sim::policy::gap_cost;
use gaps_sim::{
    simulate_schedule, Clairvoyant, NeverSleep, RandomizedTimeout, SleepImmediately, Timeout,
};
use proptest::prelude::*;

/// Random feasible instance + its EDF schedule.
fn arb_instance_schedule() -> impl Strategy<Value = (Instance, gaps_core::schedule::Schedule)> {
    (
        1u32..=3,
        proptest::collection::vec((0i64..20, 0i64..4), 1..=10),
    )
        .prop_filter_map("feasible draws only", |(p, jobs)| {
            let windows: Vec<(i64, i64)> = jobs.into_iter().map(|(r, s)| (r, r + s)).collect();
            let inst = Instance::from_windows(windows, p).ok()?;
            let sched = gaps_core::edf::edf(&inst).ok()?;
            Some((inst, sched))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clairvoyant simulation ≡ analytic power, for any schedule and α.
    #[test]
    fn clairvoyant_equals_analytic((inst, sched) in arb_instance_schedule(), alpha in 0u64..8) {
        let report = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha });
        prop_assert_eq!(report.energy, power_cost_multiproc(&sched, inst.processors(), alpha));
    }

    /// The clairvoyant policy is the floor: no other policy beats it.
    #[test]
    fn clairvoyant_is_optimal((inst, sched) in arb_instance_schedule(), alpha in 0u64..8) {
        let opt = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha }).energy;
        for policy in [
            simulate_schedule(&inst, &sched, alpha, &SleepImmediately).energy,
            simulate_schedule(&inst, &sched, alpha, &NeverSleep).energy,
            simulate_schedule(&inst, &sched, alpha, &Timeout { threshold: alpha }).energy,
            simulate_schedule(&inst, &sched, alpha, &Timeout { threshold: 1 }).energy,
        ] {
            prop_assert!(opt <= policy);
        }
    }

    /// Timeout(α) never exceeds twice the clairvoyant energy... per run
    /// the bound composes over gaps, with the busy slots and first wake
    /// shared, so the whole-run ratio is ≤ 2 as well.
    #[test]
    fn timeout_two_competitive((inst, sched) in arb_instance_schedule(), alpha in 1u64..8) {
        let opt = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha }).energy;
        let online = simulate_schedule(&inst, &sched, alpha, &Timeout { threshold: alpha }).energy;
        prop_assert!(online <= 2 * opt, "online {online} vs opt {opt}");
    }

    /// Per-gap invariants: gap_cost is monotone in g for every policy, and
    /// clairvoyant per-gap cost is exactly min(g, α).
    #[test]
    fn gap_cost_invariants(alpha in 1u64..12, g in 0u64..40) {
        let clair = Clairvoyant { alpha };
        prop_assert_eq!(gap_cost(&clair, g, alpha), g.min(alpha));
        for t in [0, 1, alpha / 2, alpha, alpha * 2] {
            let pol = Timeout { threshold: t };
            let c = gap_cost(&pol, g, alpha);
            let c_next = gap_cost(&pol, g + 1, alpha);
            prop_assert!(c <= c_next, "cost must be monotone in gap length");
            prop_assert!(c >= g.min(alpha), "no policy beats clairvoyant");
        }
    }

    /// The randomized distribution is a probability distribution and its
    /// expected per-gap cost stays within [min(g,α), 2·min(g,α)].
    #[test]
    fn randomized_expected_cost_sandwich(alpha in 1u64..16, g in 1u64..48) {
        let d = RandomizedTimeout::new(alpha);
        let total: f64 = (0..=alpha).map(|i| d.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let e = d.expected_gap_cost(g);
        let opt = g.min(alpha) as f64;
        prop_assert!(e + 1e-9 >= opt, "expectation below optimum");
        prop_assert!(e <= 2.0 * opt + 1e-9, "expectation above the deterministic bound");
    }

    /// Wake-up counts: sleep-immediately wakes once per span; never-sleep
    /// wakes once per processor used.
    #[test]
    fn wakeup_counts_match_span_structure((inst, sched) in arb_instance_schedule()) {
        let p = inst.processors();
        let alpha = 3;
        let eager = simulate_schedule(&inst, &sched, alpha, &SleepImmediately);
        let lazy = simulate_schedule(&inst, &sched, alpha, &NeverSleep);
        let spans = sched.span_count(p);
        let used = sched.processors_used(p) as u64;
        let eager_wakes: u64 = eager.per_processor.iter().map(|r| r.wakeups).sum();
        let lazy_wakes: u64 = lazy.per_processor.iter().map(|r| r.wakeups).sum();
        prop_assert_eq!(eager_wakes, spans);
        prop_assert_eq!(lazy_wakes, used);
    }
}

//! The randomized power-down strategy: sleep after a random threshold
//! drawn from the exponential-ish distribution that achieves expected
//! competitive ratio e/(e−1) ≈ 1.582 — beating every deterministic
//! strategy's 2 (classic ski-rental theory; the paper's Section 1 cites
//! the deterministic bounds for the *scheduling* variant).
//!
//! The density on [0, α] is `f(x) = e^{x/α} / (α (e − 1))`; we discretize
//! to integer thresholds. Expected gap cost is evaluated exactly by
//! summing over thresholds — no sampling noise in tests — while
//! [`RandomizedTimeout::sample`] draws a concrete threshold for live
//! simulation.

use crate::policy::{gap_cost, Timeout};
use rand::Rng;

/// Distribution over sleep thresholds `0..=alpha` approximating the
/// optimal randomized ski-rental strategy.
#[derive(Clone, Debug)]
pub struct RandomizedTimeout {
    alpha: u64,
    /// `weights[i]` ∝ probability of threshold `i`.
    weights: Vec<f64>,
    total: f64,
}

impl RandomizedTimeout {
    /// Build the discretized optimal distribution for wake cost `alpha`.
    pub fn new(alpha: u64) -> RandomizedTimeout {
        let a = alpha.max(1) as f64;
        let weights: Vec<f64> = (0..=alpha).map(|i| ((i as f64 + 0.5) / a).exp()).collect();
        let total = weights.iter().sum();
        RandomizedTimeout {
            alpha,
            weights,
            total,
        }
    }

    /// The wake cost this distribution was built for.
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// Probability of choosing threshold `i`.
    pub fn probability(&self, i: u64) -> f64 {
        if i > self.alpha {
            0.0
        } else {
            self.weights[i as usize] / self.total
        }
    }

    /// Draw a concrete threshold.
    pub fn sample(&self, rng: &mut impl Rng) -> Timeout {
        let mut x: f64 = rng.gen_range(0.0..self.total);
        for (i, w) in self.weights.iter().enumerate() {
            if x < *w {
                return Timeout {
                    threshold: i as u64,
                };
            }
            x -= w;
        }
        Timeout {
            threshold: self.alpha,
        }
    }

    /// Exact expected cost of one gap of length `g` under this
    /// distribution (wake cost `alpha`).
    pub fn expected_gap_cost(&self, g: u64) -> f64 {
        (0..=self.alpha)
            .map(|i| {
                self.probability(i) * gap_cost(&Timeout { threshold: i }, g, self.alpha) as f64
            })
            .sum()
    }

    /// Worst-case expected competitive ratio over gap lengths `1..=horizon`
    /// against the clairvoyant `min(g, α)`.
    pub fn worst_expected_ratio(&self, horizon: u64) -> f64 {
        (1..=horizon)
            .map(|g| self.expected_gap_cost(g) / (g.min(self.alpha).max(1)) as f64)
            .fold(0.0, f64::max)
    }
}

/// The continuous-theory optimum e/(e−1), for reporting.
pub fn ski_rental_randomized_bound() -> f64 {
    let e = std::f64::consts::E;
    e / (e - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribution_is_normalized() {
        for alpha in [1u64, 4, 16] {
            let d = RandomizedTimeout::new(alpha);
            let total: f64 = (0..=alpha).map(|i| d.probability(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha {alpha}: total {total}");
            assert_eq!(d.probability(alpha + 1), 0.0);
        }
    }

    #[test]
    fn expected_ratio_beats_deterministic_two() {
        // The discretization loses a little vs e/(e−1) but must stay
        // comfortably below 2 for reasonable alphas.
        for alpha in [4u64, 8, 16, 32] {
            let d = RandomizedTimeout::new(alpha);
            let worst = d.worst_expected_ratio(4 * alpha);
            assert!(
                worst < 1.95,
                "alpha {alpha}: randomized worst expected ratio {worst}"
            );
        }
    }

    #[test]
    fn approaches_the_continuous_bound_for_large_alpha() {
        let d = RandomizedTimeout::new(64);
        let worst = d.worst_expected_ratio(256);
        let bound = ski_rental_randomized_bound();
        assert!(
            worst < bound + 0.08,
            "worst {worst} should approach e/(e-1) = {bound:.3}"
        );
    }

    #[test]
    fn sampling_respects_support() {
        let d = RandomizedTimeout::new(6);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = d.sample(&mut rng);
            assert!(t.threshold <= 6);
        }
    }

    #[test]
    fn short_gaps_cost_their_length_in_expectation_limit() {
        // A gap of length 1 costs at most ~1 + P(threshold 0)*alpha.
        let d = RandomizedTimeout::new(8);
        let c = d.expected_gap_cost(1);
        assert!(c < 2.5, "short gaps stay cheap: {c}");
    }
}

//! Execution traces: what each processor did at each slot.

use gaps_core::time::Time;
use std::fmt;

/// One simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slot at which the event happened.
    pub time: Time,
    /// Processor index.
    pub processor: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Kinds of simulator events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Sleep → active transition (costs α).
    Wake,
    /// Executed a job during this slot.
    RunJob {
        /// The job index.
        job: u32,
    },
    /// Stayed active through an idle slot.
    IdleActive,
    /// Entered the sleep state.
    Sleep,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceEventKind::Wake => write!(f, "t={} P{} wake", self.time, self.processor),
            TraceEventKind::RunJob { job } => {
                write!(f, "t={} P{} run j{}", self.time, self.processor, job)
            }
            TraceEventKind::IdleActive => {
                write!(f, "t={} P{} idle-active", self.time, self.processor)
            }
            TraceEventKind::Sleep => write!(f, "t={} P{} sleep", self.time, self.processor),
        }
    }
}

/// An ordered log of simulator events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one processor.
    pub fn of_processor(&self, q: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.processor == q)
    }

    /// Render the trace as one line per event (stable, diff-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a trace back from [`Trace::render`] output (used by tests and
    /// the experiment harness to round-trip recorded runs).
    pub fn parse(s: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
            let mut parts = line.split_whitespace();
            let t = parts
                .next()
                .and_then(|w| w.strip_prefix("t="))
                .and_then(|w| w.parse::<Time>().ok())
                .ok_or_else(|| err("expected t=<time>"))?;
            let q = parts
                .next()
                .and_then(|w| w.strip_prefix('P'))
                .and_then(|w| w.parse::<u32>().ok())
                .ok_or_else(|| err("expected P<processor>"))?;
            let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
                "wake" => TraceEventKind::Wake,
                "idle-active" => TraceEventKind::IdleActive,
                "sleep" => TraceEventKind::Sleep,
                "run" => {
                    let job = parts
                        .next()
                        .and_then(|w| w.strip_prefix('j'))
                        .and_then(|w| w.parse::<u32>().ok())
                        .ok_or_else(|| err("expected j<job>"))?;
                    TraceEventKind::RunJob { job }
                }
                other => return Err(err(&format!("unknown kind {other:?}"))),
            };
            events.push(TraceEvent {
                time: t,
                processor: q,
                kind,
            });
        }
        Ok(Trace { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            time: 0,
            processor: 0,
            kind: TraceEventKind::Wake,
        });
        t.push(TraceEvent {
            time: 0,
            processor: 0,
            kind: TraceEventKind::RunJob { job: 3 },
        });
        t.push(TraceEvent {
            time: 1,
            processor: 0,
            kind: TraceEventKind::IdleActive,
        });
        t.push(TraceEvent {
            time: 2,
            processor: 0,
            kind: TraceEventKind::Sleep,
        });
        let text = t.render();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("t=x P0 wake").is_err());
        assert!(Trace::parse("t=0 Q0 wake").is_err());
        assert!(Trace::parse("t=0 P0 dance").is_err());
        assert!(Trace::parse("t=0 P0 run jx").is_err());
    }

    #[test]
    fn of_processor_filters() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            time: 0,
            processor: 0,
            kind: TraceEventKind::Wake,
        });
        t.push(TraceEvent {
            time: 0,
            processor: 1,
            kind: TraceEventKind::Wake,
        });
        assert_eq!(t.of_processor(1).count(), 1);
    }
}

//! The per-processor power-state machine.

use crate::trace::{Trace, TraceEvent, TraceEventKind};
use gaps_core::time::Time;

/// Power state of a simulated processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerState {
    /// Consumes 1 energy unit per slot; may execute one job per slot.
    Active,
    /// Consumes nothing; cannot execute. Transitioning out costs α.
    Asleep,
}

/// A single processor with a sleep state and energy metering.
///
/// Drive it slot by slot with [`ProcessorSim::run_job`],
/// [`ProcessorSim::idle_active`], and [`ProcessorSim::sleep`]; the
/// machine checks the physics (a job needs an active processor; waking is
/// what costs) and meters energy and transitions.
#[derive(Clone, Debug)]
pub struct ProcessorSim {
    id: u32,
    alpha: u64,
    state: PowerState,
    energy: u64,
    active_slots: u64,
    wakeups: u64,
    jobs_run: u64,
    last_time: Option<Time>,
}

impl ProcessorSim {
    /// A new processor, asleep, with wake-up cost `alpha`.
    pub fn new(id: u32, alpha: u64) -> ProcessorSim {
        ProcessorSim {
            id,
            alpha,
            state: PowerState::Asleep,
            energy: 0,
            active_slots: 0,
            wakeups: 0,
            jobs_run: 0,
            last_time: None,
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Total energy consumed so far.
    pub fn energy(&self) -> u64 {
        self.energy
    }

    /// Slots spent active (busy or idling).
    pub fn active_slots(&self) -> u64 {
        self.active_slots
    }

    /// Number of sleep → active transitions so far.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Jobs executed so far.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    fn advance(&mut self, t: Time) {
        if let Some(last) = self.last_time {
            assert!(
                t > last,
                "time must advance monotonically (last {last}, got {t})"
            );
        }
        self.last_time = Some(t);
    }

    fn ensure_active(&mut self, t: Time, trace: &mut Trace) {
        if self.state == PowerState::Asleep {
            self.state = PowerState::Active;
            self.energy += self.alpha;
            self.wakeups += 1;
            trace.push(TraceEvent {
                time: t,
                processor: self.id,
                kind: TraceEventKind::Wake,
            });
        }
    }

    /// Execute job `job` during slot `t` (waking up first if needed).
    pub fn run_job(&mut self, t: Time, job: u32, trace: &mut Trace) {
        self.advance(t);
        self.ensure_active(t, trace);
        self.energy += 1;
        self.active_slots += 1;
        self.jobs_run += 1;
        trace.push(TraceEvent {
            time: t,
            processor: self.id,
            kind: TraceEventKind::RunJob { job },
        });
    }

    /// Stay active through idle slot `t` without executing.
    pub fn idle_active(&mut self, t: Time, trace: &mut Trace) {
        self.advance(t);
        assert_eq!(
            self.state,
            PowerState::Active,
            "idle_active only makes sense for an already-active processor"
        );
        self.energy += 1;
        self.active_slots += 1;
        trace.push(TraceEvent {
            time: t,
            processor: self.id,
            kind: TraceEventKind::IdleActive,
        });
    }

    /// Sleep through slot `t` (entering the sleep state if active).
    pub fn sleep(&mut self, t: Time, trace: &mut Trace) {
        self.advance(t);
        if self.state == PowerState::Active {
            self.state = PowerState::Asleep;
            trace.push(TraceEvent {
                time: t,
                processor: self.id,
                kind: TraceEventKind::Sleep,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_wakes_and_meters() {
        let mut p = ProcessorSim::new(0, 5);
        let mut trace = Trace::new();
        p.run_job(0, 7, &mut trace);
        assert_eq!(p.state(), PowerState::Active);
        assert_eq!(p.energy(), 6); // wake 5 + slot 1
        assert_eq!(p.wakeups(), 1);
        assert_eq!(p.jobs_run(), 1);
    }

    #[test]
    fn consecutive_jobs_cost_one_each() {
        let mut p = ProcessorSim::new(0, 5);
        let mut trace = Trace::new();
        p.run_job(0, 1, &mut trace);
        p.run_job(1, 2, &mut trace);
        assert_eq!(p.energy(), 5 + 2);
        assert_eq!(p.wakeups(), 1);
    }

    #[test]
    fn sleep_then_wake_pays_alpha_again() {
        let mut p = ProcessorSim::new(0, 3);
        let mut trace = Trace::new();
        p.run_job(0, 1, &mut trace);
        p.sleep(1, &mut trace);
        p.sleep(2, &mut trace);
        p.run_job(3, 2, &mut trace);
        assert_eq!(p.energy(), (3 + 1) + (3 + 1));
        assert_eq!(p.wakeups(), 2);
    }

    #[test]
    fn idle_active_bridges_without_second_wake() {
        let mut p = ProcessorSim::new(0, 3);
        let mut trace = Trace::new();
        p.run_job(0, 1, &mut trace);
        p.idle_active(1, &mut trace);
        p.run_job(2, 2, &mut trace);
        assert_eq!(p.energy(), 3 + 3); // one wake + 3 active slots
        assert_eq!(p.wakeups(), 1);
        assert_eq!(p.active_slots(), 3);
    }

    #[test]
    #[should_panic(expected = "time must advance")]
    fn time_must_advance() {
        let mut p = ProcessorSim::new(0, 1);
        let mut trace = Trace::new();
        p.run_job(5, 1, &mut trace);
        p.run_job(5, 2, &mut trace);
    }

    #[test]
    #[should_panic(expected = "already-active")]
    fn idle_active_requires_active() {
        let mut p = ProcessorSim::new(0, 1);
        let mut trace = Trace::new();
        p.idle_active(0, &mut trace);
    }
}

//! Power-down policies: when should an idle processor go to sleep?
//!
//! During a gap of length `g`, staying active costs `g` and sleeping costs
//! `α` at the next wake-up, so the *clairvoyant* optimum is `min(g, α)` —
//! exactly the accounting of the paper's power objective. Online policies
//! do not know `g`; the classic ski-rental argument shows the
//! [`Timeout`] policy with threshold `α` pays at most twice the
//! clairvoyant cost per gap, which experiment E17 measures on real
//! schedule traces. (The paper cites the stronger (3 + 2√2)-competitive
//! strategy of Augustine–Irani–Swamy for the *scheduling* version, where
//! the algorithm also chooses the schedule; here the schedule is fixed
//! and only sleeping is decided.)

/// Decides, slot by slot, whether an idle processor stays active.
pub trait PowerPolicy {
    /// Called for each idle slot. `idle_so_far` counts the idle slots this
    /// gap has already lasted (0 on the first idle slot);
    /// `remaining_gap` is the number of idle slots from now until the next
    /// job **including this one** — `Some` only for clairvoyant policies
    /// (the executor passes it; online policies must ignore it).
    ///
    /// Returning `false` sends the processor to sleep; once asleep it
    /// stays asleep until the next job (sleeping is irrevocable within a
    /// gap — waking early only wastes energy).
    fn stay_active(&self, idle_so_far: u64, remaining_gap: Option<u64>) -> bool;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Go to sleep the moment the processor idles — the paper's *gap
/// scheduling* model (every gap is a transition).
#[derive(Clone, Copy, Debug, Default)]
pub struct SleepImmediately;

impl PowerPolicy for SleepImmediately {
    fn stay_active(&self, _idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "sleep-immediately"
    }
}

/// Never sleep once awake (the "race-to-idle never pays" straw man).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverSleep;

impl PowerPolicy for NeverSleep {
    fn stay_active(&self, _idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "never-sleep"
    }
}

/// Stay active for `threshold` idle slots, then sleep — the ski-rental
/// strategy; with `threshold = α` it is 2-competitive per gap.
#[derive(Clone, Copy, Debug)]
pub struct Timeout {
    /// Idle slots to wait before sleeping.
    pub threshold: u64,
}

impl PowerPolicy for Timeout {
    fn stay_active(&self, idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        idle_so_far < self.threshold
    }
    fn name(&self) -> &'static str {
        "timeout"
    }
}

/// The offline optimum: bridge the gap iff its total length is at most α
/// (cost `min(g, α)` per gap) — reproduces the paper's power accounting.
#[derive(Clone, Copy, Debug)]
pub struct Clairvoyant {
    /// The wake-up cost.
    pub alpha: u64,
}

impl PowerPolicy for Clairvoyant {
    fn stay_active(&self, idle_so_far: u64, remaining_gap: Option<u64>) -> bool {
        let remaining = remaining_gap.expect("clairvoyant policy needs gap lookahead");
        idle_so_far + remaining <= self.alpha
    }
    fn name(&self) -> &'static str {
        "clairvoyant"
    }
}

/// Cost of one idle period of length `g` under a policy, with wake cost
/// `alpha`: active slots spent idling, plus `alpha` if the processor went
/// to sleep (it must wake for the next job).
pub fn gap_cost(policy: &dyn PowerPolicy, g: u64, alpha: u64) -> u64 {
    let mut cost = 0;
    for idle in 0..g {
        if policy.stay_active(idle, Some(g - idle)) {
            cost += 1;
        } else {
            return cost + alpha; // slept; wake for the next job
        }
    }
    cost // bridged the whole gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clairvoyant_pays_min_g_alpha() {
        let alpha = 4;
        let p = Clairvoyant { alpha };
        for g in 0..12 {
            assert_eq!(gap_cost(&p, g, alpha), g.min(alpha), "g = {g}");
        }
    }

    #[test]
    fn sleep_immediately_pays_alpha_always() {
        let p = SleepImmediately;
        for g in 1..6 {
            assert_eq!(gap_cost(&p, g, 4), 4);
        }
        assert_eq!(gap_cost(&p, 0, 4), 0);
    }

    #[test]
    fn never_sleep_pays_gap_length() {
        let p = NeverSleep;
        for g in 0..6 {
            assert_eq!(gap_cost(&p, g, 4), g);
        }
    }

    #[test]
    fn timeout_alpha_is_two_competitive() {
        let alpha = 5;
        let online = Timeout { threshold: alpha };
        let offline = Clairvoyant { alpha };
        for g in 0..25 {
            let on = gap_cost(&online, g, alpha);
            let off = gap_cost(&offline, g, alpha);
            assert!(on <= 2 * off, "g = {g}: online {on} vs offline {off}");
        }
        // And the bound is tight at g slightly above α.
        assert_eq!(gap_cost(&online, alpha + 1, alpha), 2 * alpha);
    }
}

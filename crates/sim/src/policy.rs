//! Power-down policies: when should an idle processor go to sleep?
//!
//! During a gap of length `g`, staying active costs `g` and sleeping costs
//! `α` at the next wake-up, so the *clairvoyant* optimum is `min(g, α)` —
//! exactly the accounting of the paper's power objective. Online policies
//! do not know `g`; the classic ski-rental argument shows the
//! [`Timeout`] policy with threshold `α` pays at most twice the
//! clairvoyant cost per gap, which experiment E17 measures on real
//! schedule traces. (The paper cites the stronger (3 + 2√2)-competitive
//! strategy of Augustine–Irani–Swamy for the *scheduling* version, where
//! the algorithm also chooses the schedule; here the schedule is fixed
//! and only sleeping is decided.)

/// Decides, slot by slot, whether an idle processor stays active.
pub trait PowerPolicy {
    /// Called for each idle slot. `idle_so_far` counts the idle slots this
    /// gap has already lasted (0 on the first idle slot);
    /// `remaining_gap` is the number of idle slots from now until the next
    /// job **including this one** — `Some` only for clairvoyant policies
    /// (the executor passes it; online policies must ignore it).
    ///
    /// Returning `false` sends the processor to sleep; once asleep it
    /// stays asleep until the next job (sleeping is irrevocable within a
    /// gap — waking early only wastes energy).
    fn stay_active(&self, idle_so_far: u64, remaining_gap: Option<u64>) -> bool;

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Online entry point: the same decision as [`stay_active`] but with
    /// no lookahead, for callers that reveal slots one at a time (the
    /// serve `SESSION` mode and `gaps batch --replay-online`). Online
    /// policies answer from `idle_so_far` alone; clairvoyant policies
    /// cannot be driven this way and panic.
    ///
    /// [`stay_active`]: PowerPolicy::stay_active
    fn stay_active_online(&self, idle_so_far: u64) -> bool {
        self.stay_active(idle_so_far, None)
    }
}

/// Go to sleep the moment the processor idles — the paper's *gap
/// scheduling* model (every gap is a transition).
#[derive(Clone, Copy, Debug, Default)]
pub struct SleepImmediately;

impl PowerPolicy for SleepImmediately {
    fn stay_active(&self, _idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "sleep-immediately"
    }
}

/// Never sleep once awake (the "race-to-idle never pays" straw man).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverSleep;

impl PowerPolicy for NeverSleep {
    fn stay_active(&self, _idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "never-sleep"
    }
}

/// Stay active for `threshold` idle slots, then sleep — the ski-rental
/// strategy; with `threshold = α` it is 2-competitive per gap.
#[derive(Clone, Copy, Debug)]
pub struct Timeout {
    /// Idle slots to wait before sleeping.
    pub threshold: u64,
}

impl PowerPolicy for Timeout {
    fn stay_active(&self, idle_so_far: u64, _remaining_gap: Option<u64>) -> bool {
        idle_so_far < self.threshold
    }
    fn name(&self) -> &'static str {
        "timeout"
    }
}

/// The offline optimum: bridge the gap iff its total length is at most α
/// (cost `min(g, α)` per gap) — reproduces the paper's power accounting.
#[derive(Clone, Copy, Debug)]
pub struct Clairvoyant {
    /// The wake-up cost.
    pub alpha: u64,
}

impl PowerPolicy for Clairvoyant {
    fn stay_active(&self, idle_so_far: u64, remaining_gap: Option<u64>) -> bool {
        let remaining = remaining_gap.expect("clairvoyant policy needs gap lookahead");
        idle_so_far + remaining <= self.alpha
    }
    fn name(&self) -> &'static str {
        "clairvoyant"
    }
}

/// Cost of one idle period of length `g` under a policy, with wake cost
/// `alpha`: active slots spent idling, plus `alpha` if the processor went
/// to sleep (it must wake for the next job).
pub fn gap_cost(policy: &dyn PowerPolicy, g: u64, alpha: u64) -> u64 {
    let mut cost = 0;
    for idle in 0..g {
        if policy.stay_active(idle, Some(g - idle)) {
            cost += 1;
        } else {
            return cost + alpha; // slept; wake for the next job
        }
    }
    cost // bridged the whole gap
}

/// Incremental online execution: feed busy and idle slots one at a time
/// — no lookahead, no schedule — and accrue energy under a policy's
/// sleep decisions. This is the slot-by-slot twin of
/// [`crate::executor`]'s accounting: every active slot (busy or
/// idle-active) costs 1, every sleep→active transition costs `alpha`
/// **including the first** (the processor starts asleep), and sleeping
/// is irrevocable within a gap.
///
/// Summing [`gap_cost`] over the gaps of the same arrival sequence,
/// plus one unit per job and `alpha` for the initial wake, gives the
/// identical total; `online_run_matches_gap_cost` pins that.
pub struct OnlineRun {
    policy: Box<dyn PowerPolicy + Send + Sync>,
    alpha: u64,
    awake: bool,
    idle_run: u64,
    cost: u64,
    wakeups: u64,
}

impl OnlineRun {
    /// Start a run with the processor asleep (the first job pays the
    /// wake cost, matching [`crate::processor::ProcessorSim`]).
    pub fn new(policy: Box<dyn PowerPolicy + Send + Sync>, alpha: u64) -> OnlineRun {
        OnlineRun {
            policy,
            alpha,
            awake: false,
            idle_run: 0,
            cost: 0,
            wakeups: 0,
        }
    }

    /// One slot running a job: wake if asleep (+`alpha`), spend 1 active
    /// unit, and reset the idle counter — the current gap is over.
    pub fn job_slot(&mut self) {
        if !self.awake {
            self.cost += self.alpha;
            self.wakeups += 1;
            self.awake = true;
        }
        self.cost += 1;
        self.idle_run = 0;
    }

    /// One idle slot: while awake the policy decides (stay → 1 unit,
    /// sleep → free and irrevocable until the next job); while asleep
    /// idling is free.
    pub fn idle_slot(&mut self) {
        if self.awake {
            if self.policy.stay_active_online(self.idle_run) {
                self.cost += 1;
            } else {
                self.awake = false;
            }
        }
        self.idle_run += 1;
    }

    /// Total energy accrued so far.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Is the processor currently in the active state?
    pub fn awake(&self) -> bool {
        self.awake
    }

    /// Sleep→active transitions so far (the first wake counts).
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// The driving policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clairvoyant_pays_min_g_alpha() {
        let alpha = 4;
        let p = Clairvoyant { alpha };
        for g in 0..12 {
            assert_eq!(gap_cost(&p, g, alpha), g.min(alpha), "g = {g}");
        }
    }

    #[test]
    fn sleep_immediately_pays_alpha_always() {
        let p = SleepImmediately;
        for g in 1..6 {
            assert_eq!(gap_cost(&p, g, 4), 4);
        }
        assert_eq!(gap_cost(&p, 0, 4), 0);
    }

    #[test]
    fn never_sleep_pays_gap_length() {
        let p = NeverSleep;
        for g in 0..6 {
            assert_eq!(gap_cost(&p, g, 4), g);
        }
    }

    #[test]
    fn timeout_alpha_is_two_competitive() {
        let alpha = 5;
        let online = Timeout { threshold: alpha };
        let offline = Clairvoyant { alpha };
        for g in 0..25 {
            let on = gap_cost(&online, g, alpha);
            let off = gap_cost(&offline, g, alpha);
            assert!(on <= 2 * off, "g = {g}: online {on} vs offline {off}");
        }
        // And the bound is tight at g slightly above α.
        assert_eq!(gap_cost(&online, alpha + 1, alpha), 2 * alpha);
    }

    /// Pin the exact `idle_so_far < threshold` boundary against the
    /// ski-rental argument: with `threshold == α` the policy idles
    /// active through slots 0..α (α units) and sleeps on the (α+1)-th
    /// idle slot. A gap of exactly α must therefore be *bridged* at
    /// cost α — no wake — and any longer gap must cost exactly 2α, not
    /// 2α ± 1.
    #[test]
    fn timeout_boundary_is_exact() {
        for alpha in [1, 2, 5, 8] {
            let online = Timeout { threshold: alpha };
            // Bridged region: g ≤ α costs g, identical to clairvoyant.
            for g in 0..=alpha {
                assert_eq!(gap_cost(&online, g, alpha), g, "alpha = {alpha}, g = {g}");
            }
            // Sleeping region: every g > α costs exactly α idle-active
            // slots plus the α wake — the worst case is exactly 2α.
            for g in alpha + 1..=4 * alpha {
                assert_eq!(
                    gap_cost(&online, g, alpha),
                    2 * alpha,
                    "alpha = {alpha}, g = {g}"
                );
            }
        }
        // The decision slots themselves: at idle_so_far = α-1 the
        // processor is still active, at α it sleeps.
        let p = Timeout { threshold: 3 };
        assert!(p.stay_active(2, None));
        assert!(!p.stay_active(3, None));
        assert!(p.stay_active_online(2));
        assert!(!p.stay_active_online(3));
    }

    /// The incremental walker must agree with the per-gap accounting:
    /// total = α (initial wake) + one unit per job + Σ gap_cost.
    #[test]
    fn online_run_matches_gap_cost() {
        let alpha = 4;
        let arrivals: [u64; 6] = [0, 1, 5, 6, 20, 21];
        let policies: [Box<dyn PowerPolicy + Send + Sync>; 3] = [
            Box::new(Timeout { threshold: alpha }),
            Box::new(SleepImmediately),
            Box::new(NeverSleep),
        ];
        for policy in policies {
            let name = policy.name();
            let reference: u64 = {
                let jobs = arrivals.len() as u64;
                let gaps: u64 = arrivals
                    .windows(2)
                    .map(|w| gap_cost(&*policy, w[1] - w[0] - 1, alpha))
                    .sum();
                alpha + jobs + gaps
            };
            let mut run = OnlineRun::new(policy, alpha);
            let mut now = 0;
            for &t in &arrivals {
                while now < t {
                    run.idle_slot();
                    now += 1;
                }
                run.job_slot();
                now = t + 1;
            }
            assert_eq!(run.cost(), reference, "policy = {name}");
        }
    }

    /// Idle slots before the first job and after sleeping are free, and
    /// trailing idle-active slots are bounded by the threshold.
    #[test]
    fn online_run_start_and_trailing_idle() {
        let alpha = 3;
        let mut run = OnlineRun::new(Box::new(Timeout { threshold: alpha }), alpha);
        for _ in 0..10 {
            run.idle_slot();
        }
        assert_eq!(run.cost(), 0, "asleep idling is free");
        assert!(!run.awake());
        run.job_slot();
        assert_eq!(run.cost(), alpha + 1);
        assert_eq!(run.wakeups(), 1);
        for _ in 0..100 {
            run.idle_slot();
        }
        // Stays active exactly `threshold` slots, then sleeps.
        assert_eq!(run.cost(), alpha + 1 + alpha);
        assert!(!run.awake());
    }
}

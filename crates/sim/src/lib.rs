//! # gaps-sim
//!
//! A discrete-event simulator for processors with a sleep state — the
//! physical system the SPAA 2007 paper abstracts. Schedules produced by
//! the solvers in `gaps-core` can be *executed* here, slot by slot, and
//! their energy measured rather than counted combinatorially:
//!
//! * every slot spent in the **active** state costs 1 energy unit;
//! * every **sleep → active** transition costs α (including the first);
//! * the sleep state costs nothing.
//!
//! The simulator separates *what runs when* (the schedule) from *when to
//! sleep during idleness* (a [`policy::PowerPolicy`]). The clairvoyant
//! policy reproduces the paper's `min(gap, α)` accounting exactly —
//! experiment E15 asserts simulated energy ≡ analytic
//! [`gaps_core::power::power_cost_multiproc`] — while the online
//! timeout policy demonstrates the classic 2-competitive ski-rental
//! behavior on gap traces (experiment E17).

pub mod executor;
pub mod policy;
pub mod processor;
pub mod randomized;
pub mod trace;

pub use executor::{simulate_multi_schedule, simulate_schedule, ProcReport, SimReport};
pub use policy::{Clairvoyant, NeverSleep, OnlineRun, PowerPolicy, SleepImmediately, Timeout};
pub use processor::{PowerState, ProcessorSim};
pub use randomized::{ski_rental_randomized_bound, RandomizedTimeout};
pub use trace::{Trace, TraceEvent, TraceEventKind};

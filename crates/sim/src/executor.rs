//! Execute schedules on simulated processors and measure energy.

use crate::policy::PowerPolicy;
use crate::processor::ProcessorSim;
use crate::trace::Trace;
use gaps_core::instance::{Instance, MultiInstance};
use gaps_core::schedule::{MultiSchedule, Schedule};
use gaps_core::time::Time;

/// Per-processor accounting of one simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcReport {
    /// Slots spent active (busy + idle-active).
    pub active_slots: u64,
    /// Sleep → active transitions.
    pub wakeups: u64,
    /// Energy: `active_slots + α · wakeups`.
    pub energy: u64,
    /// Jobs executed.
    pub jobs_run: u64,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total energy over all processors.
    pub energy: u64,
    /// Per-processor breakdown.
    pub per_processor: Vec<ProcReport>,
    /// Full event trace.
    pub trace: Trace,
}

/// Execute a multiprocessor schedule under a power policy.
///
/// The schedule is verified against the instance first (panics on an
/// invalid schedule — simulating garbage would mis-meter energy). During
/// idle periods the policy decides slot-by-slot whether to stay active;
/// once it chooses sleep, the processor sleeps until its next job.
///
/// With the [`crate::policy::Clairvoyant`] policy, the reported energy
/// equals [`gaps_core::power::power_cost_multiproc`] exactly (experiment
/// E15 asserts this across random schedules).
pub fn simulate_schedule(
    inst: &Instance,
    sched: &Schedule,
    alpha: u64,
    policy: &dyn PowerPolicy,
) -> SimReport {
    sched
        .verify(inst)
        .unwrap_or_else(|e| panic!("refusing to simulate an invalid schedule: {e}"));
    let p = inst.processors();
    let mut trace = Trace::new();
    let mut per_processor = Vec::with_capacity(p as usize);
    let busy = sched.busy_times(p);
    let by_slot: std::collections::HashMap<(u32, Time), u32> = sched
        .assignments()
        .iter()
        .enumerate()
        .map(|(j, a)| ((a.processor, a.time), j as u32))
        .collect();

    for q in 0..p {
        let mut proc = ProcessorSim::new(q, alpha);
        let times = &busy[q as usize];
        for (i, &t) in times.iter().enumerate() {
            proc.run_job(t, by_slot[&(q, t)], &mut trace);
            if let Some(&next) = times.get(i + 1) {
                let gap = (next - t - 1) as u64;
                let mut asleep = false;
                for (offset, idle_t) in (t + 1..next).enumerate() {
                    if !asleep && policy.stay_active(offset as u64, Some(gap - offset as u64)) {
                        proc.idle_active(idle_t, &mut trace);
                    } else {
                        asleep = true;
                        proc.sleep(idle_t, &mut trace);
                    }
                }
            }
        }
        per_processor.push(ProcReport {
            active_slots: proc.active_slots(),
            wakeups: proc.wakeups(),
            energy: proc.energy(),
            jobs_run: proc.jobs_run(),
        });
    }
    SimReport {
        energy: per_processor.iter().map(|r| r.energy).sum(),
        per_processor,
        trace,
    }
}

/// Execute a single-processor multi-interval schedule under a policy.
pub fn simulate_multi_schedule(
    inst: &MultiInstance,
    sched: &MultiSchedule,
    alpha: u64,
    policy: &dyn PowerPolicy,
) -> SimReport {
    sched
        .verify(inst)
        .unwrap_or_else(|e| panic!("refusing to simulate an invalid schedule: {e}"));
    // Reuse the multiprocessor path through a 1-processor view.
    let mut trace = Trace::new();
    let mut proc = ProcessorSim::new(0, alpha);
    let occupied = sched.occupied();
    let job_at = |t: Time| -> u32 {
        sched
            .times()
            .iter()
            .position(|&x| x == t)
            .expect("occupied slot") as u32
    };
    for (i, &t) in occupied.iter().enumerate() {
        proc.run_job(t, job_at(t), &mut trace);
        if let Some(&next) = occupied.get(i + 1) {
            let gap = (next - t - 1) as u64;
            let mut asleep = false;
            for (offset, idle_t) in (t + 1..next).enumerate() {
                if !asleep && policy.stay_active(offset as u64, Some(gap - offset as u64)) {
                    proc.idle_active(idle_t, &mut trace);
                } else {
                    asleep = true;
                    proc.sleep(idle_t, &mut trace);
                }
            }
        }
    }
    let report = ProcReport {
        active_slots: proc.active_slots(),
        wakeups: proc.wakeups(),
        energy: proc.energy(),
        jobs_run: proc.jobs_run(),
    };
    SimReport {
        energy: report.energy,
        per_processor: vec![report],
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Clairvoyant, NeverSleep, SleepImmediately, Timeout};
    use gaps_core::power::{power_cost_multiproc, power_cost_single};

    fn demo() -> (Instance, Schedule) {
        let inst = Instance::from_windows([(0, 0), (2, 2), (8, 8), (0, 8)], 2).unwrap();
        let sched = Schedule::from_pairs([(0, 0), (2, 0), (8, 0), (0, 1)]);
        sched.verify(&inst).unwrap();
        (inst, sched)
    }

    #[test]
    fn clairvoyant_energy_matches_analytic_power() {
        let (inst, sched) = demo();
        for alpha in 0..8 {
            let report = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha });
            assert_eq!(
                report.energy,
                power_cost_multiproc(&sched, 2, alpha),
                "alpha = {alpha}"
            );
        }
    }

    #[test]
    fn sleep_immediately_counts_every_span() {
        let (inst, sched) = demo();
        let alpha = 4;
        let report = simulate_schedule(&inst, &sched, alpha, &SleepImmediately);
        // P0 has 3 spans, P1 has 1: wakeups = spans.
        assert_eq!(report.per_processor[0].wakeups, 3);
        assert_eq!(report.per_processor[1].wakeups, 1);
        assert_eq!(report.energy, 4 + alpha * 4);
    }

    #[test]
    fn never_sleep_pays_all_idle_slots() {
        let (inst, sched) = demo();
        let alpha = 4;
        let report = simulate_schedule(&inst, &sched, alpha, &NeverSleep);
        // P0: busy {0,2,8} → active 0..=8 (9 slots), one wake; P1: 1 slot.
        assert_eq!(report.energy, (9 + alpha) + (1 + alpha));
    }

    #[test]
    fn timeout_between_extremes() {
        let (inst, sched) = demo();
        let alpha = 3;
        let imm = simulate_schedule(&inst, &sched, alpha, &SleepImmediately).energy;
        let never = simulate_schedule(&inst, &sched, alpha, &NeverSleep).energy;
        let opt = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha }).energy;
        let timeout = simulate_schedule(&inst, &sched, alpha, &Timeout { threshold: alpha }).energy;
        assert!(opt <= timeout);
        assert!(timeout <= 2 * opt);
        assert!(opt <= imm.min(never));
    }

    #[test]
    fn multi_schedule_simulation_matches_power() {
        let inst = MultiInstance::from_times([vec![0], vec![3, 4], vec![9]]).unwrap();
        let sched = MultiSchedule::new(vec![0, 4, 9]);
        for alpha in 0..6 {
            let report = simulate_multi_schedule(&inst, &sched, alpha, &Clairvoyant { alpha });
            assert_eq!(report.energy, power_cost_single(&sched, alpha));
        }
    }

    #[test]
    fn trace_records_all_jobs() {
        let (inst, sched) = demo();
        let report = simulate_schedule(&inst, &sched, 2, &Clairvoyant { alpha: 2 });
        let runs = report
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::TraceEventKind::RunJob { .. }))
            .count();
        assert_eq!(runs, 4);
    }

    #[test]
    #[should_panic(expected = "invalid schedule")]
    fn rejects_invalid_schedule() {
        let (inst, _) = demo();
        let bad = Schedule::from_pairs([(5, 0), (2, 0), (8, 0), (0, 1)]);
        simulate_schedule(&inst, &bad, 2, &SleepImmediately);
    }
}

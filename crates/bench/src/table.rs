//! Minimal aligned-text tables for experiment output.

use std::fmt;

/// A titled table with a header row and string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `"E4"`.
    pub id: String,
    /// Human title (one line).
    pub title: String,
    /// The claim being tested, quoted/paraphrased from the paper.
    pub claim: String,
    /// One-line verdict filled by the experiment (e.g. "confirmed: 240/240
    /// agreements").
    pub verdict: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            verdict: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies anything `Display`).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: fmt::Display,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Set the verdict line.
    pub fn verdict(&mut self, v: impl Into<String>) {
        self.verdict = v.into();
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "   ")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        write!(f, "   ")?;
        for w in &widths {
            write!(f, "{}  ", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        if !self.verdict.is_empty() {
            writeln!(f, "   verdict: {}", self.verdict)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", "x = x", &["n", "value"]);
        t.row(["3", "12"]);
        t.row(["100", "7"]);
        t.verdict("confirmed");
        let s = t.to_string();
        assert!(s.contains("E0"));
        assert!(s.contains("confirmed"));
        assert!(s.contains("value"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "demo", "", &["a", "b"]);
        t.row(["only-one"]);
    }
}

//! # gaps-bench
//!
//! The experiment harness regenerating every quantitative claim of the
//! paper (the paper has no tables or figures of its own — it is a theory
//! paper — so the experiment index E1–E17 defined in `DESIGN.md` plays
//! that role; `EXPERIMENTS.md` records claimed-vs-measured outcomes).
//!
//! * `cargo run -p gaps-bench --release --bin experiments` runs everything;
//!   pass experiment ids (`e1 e4 e16 …`) to filter.
//! * `cargo bench -p gaps-bench` runs the Criterion microbenchmarks (one
//!   per performance-shaped claim, e.g. the polynomial scaling of the
//!   Theorem 1 DP).
//!
//! Seed-sweeps inside experiments fan out over threads with
//! `crossbeam::scope`, collecting into `parking_lot::Mutex`ed accumulators.

pub mod experiments;
pub mod perf;
pub mod table;

pub use table::Table;

/// Run the named experiments (or all, if `filter` is empty) and return the
/// rendered tables in order.
pub fn run(filter: &[String]) -> Vec<Table> {
    let wanted = |id: &str| filter.is_empty() || filter.iter().any(|f| f.eq_ignore_ascii_case(id));
    experiments::REGISTRY
        .iter()
        .filter(|(id, _, _)| wanted(id))
        .map(|(_, _, f)| f())
        .collect()
}

/// List the available experiment ids and descriptions.
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    experiments::REGISTRY
        .iter()
        .map(|(id, desc, _)| (*id, *desc))
        .collect()
}

//! Machine-readable performance trajectory for the batch engine.
//!
//! `experiments --json PATH` runs [`engine_trajectory`] and writes the
//! per-benchmark median wall-clock times as JSON (`BENCH_engine.json` by
//! convention), seeding the perf-trajectory files that later PRs compare
//! against. The same workload builder feeds the criterion bench
//! (`benches/bench_engine.rs`), so the two views measure the same thing.
//!
//! JSON is hand-rolled (the workspace is offline — no serde); the schema
//! is deliberately flat:
//!
//! ```json
//! {
//!   "suite": "engine",
//!   "benchmarks": [
//!     {"name": "batch_cold/threads=1", "median_ns": 123, "samples": 3}
//!   ],
//!   "derived": {"speedup_threads4_over_threads1": 2.5, "warm_hit_rate": 1.0}
//! }
//! ```

use gaps_engine::{BatchInstance, Engine, EngineConfig, Objective};
use gaps_workloads::{multi_interval, one_interval};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One measured benchmark: a name and its median wall clock.
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Benchmark id, e.g. `batch_cold/threads=4`.
    pub name: String,
    /// Median wall-clock over the samples, in nanoseconds.
    pub median_ns: u128,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// A named set of results plus derived scalar metrics.
#[derive(Clone, Debug, Default)]
pub struct PerfSuite {
    /// Suite id (`engine`).
    pub suite: String,
    /// Measured benchmarks, in execution order.
    pub results: Vec<PerfResult>,
    /// Derived metrics (`(name, value)`), e.g. thread speedups.
    pub derived: Vec<(String, f64)>,
}

impl PerfSuite {
    /// Serialize the suite; stable key order, no external crates.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{comma}\n",
                escape(&r.name),
                r.median_ns,
                r.samples
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": {");
        for (i, (name, value)) in self.derived.iter().enumerate() {
            let comma = if i + 1 < self.derived.len() { "," } else { "" };
            out.push_str(&format!("\n    \"{}\": {value:.4}{comma}", escape(name)));
        }
        if !self.derived.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A deterministic mixed batch exercising every router path: single- and
/// multi-processor one-interval instances (DP-heavy), zero-laxity chains
/// (forced fast path), and multi-interval instances (optimized exact
/// search). Instances are pairwise distinct, so a cold run gets no free
/// cache hits. The one-interval sizes were scaled ~1.5× in PR 3; the
/// multi-interval fifth was scaled again (12-job/2-slot `feasible_slots`
/// → 14-job/3-slot `banded`) alongside the `multi_exact` solver it now
/// routes to, so trajectory numbers before that change are not directly
/// comparable. The multi sizes sit inside the *brute-force* router caps
/// on purpose: the same batch must be solvable with `use_multi_exact`
/// off to measure the win (see [`engine_trajectory`]).
pub fn mixed_batch(count: usize) -> Vec<BatchInstance> {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    (0..count)
        .map(|i| match i % 5 {
            0 => BatchInstance::One(one_interval::feasible(&mut rng, 36, 72, 3, 1)),
            1 => BatchInstance::One(one_interval::uniform(&mut rng, 30, 60, 4, 2)),
            2 => BatchInstance::One(one_interval::bursty(&mut rng, 5, 6, 9, 3, 3, 2)),
            3 => BatchInstance::One(one_interval::fixed_laxity(&mut rng, 36, 90, 0, 1)),
            _ => BatchInstance::Multi(multi_interval::banded(&mut rng, 14, 3, 8, 2)),
        })
        .collect()
}

/// The scaled multi-interval bench family on its own: banded feasible
/// instances at the brute-force router ceiling (14 jobs), alternating
/// band shapes. Feeds the `multi_exact`-vs-`brute_force` comparison in
/// [`engine_trajectory`] and the `bench_multi_exact` criterion group.
pub fn multi_batch(count: usize) -> Vec<BatchInstance> {
    let mut rng = StdRng::seed_from_u64(0x4D171);
    (0..count)
        .map(|i| match i % 2 {
            0 => BatchInstance::Multi(multi_interval::banded(&mut rng, 14, 3, 8, 2)),
            _ => BatchInstance::Multi(multi_interval::banded(&mut rng, 12, 4, 5, 3)),
        })
        .collect()
}

/// Coupled-core family: banded instances whose `extra` slots are drawn
/// across bands, so the width-3 inter-band zones are (almost always)
/// crossed and decomposition cannot split the search. At 18 jobs each
/// instance clears the router's parallel threshold (17), making this the
/// workload behind `multi_exact_parallel_speedup`: the whole win must
/// come from the shared-incumbent subtree fan-out, not from peeling.
pub fn coupled_batch(count: usize) -> Vec<BatchInstance> {
    let mut rng = StdRng::seed_from_u64(0xC09E);
    (0..count)
        .map(|_| BatchInstance::Multi(multi_interval::banded(&mut rng, 18, 3, 8, 2)))
        .collect()
}

/// Decomposable family: four 6-job clusters separated by uncrossed dead
/// zones. The dead-zone decomposition peels each instance into (at
/// least) four independent searches; `decomposition_speedup` compares
/// the production decomposed path against a monolithic search over the
/// same instances.
pub fn decomposable_batch(count: usize) -> Vec<BatchInstance> {
    let mut rng = StdRng::seed_from_u64(0xDEC0);
    (0..count)
        .map(|_| BatchInstance::Multi(multi_interval::clustered(&mut rng, 4, 6, 8, 2, 5)))
        .collect()
}

fn median_wall(samples: usize, mut run: impl FnMut()) -> Duration {
    let mut timings: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed()
        })
        .collect();
    timings.sort_unstable();
    timings[timings.len() / 2]
}

/// Measure engine batch throughput cold (fresh cache, threads 1/2/4) and
/// warm (second pass over the same engine), and derive thread speedups
/// plus the warm-cache hit rate.
pub fn engine_trajectory(instances: usize, samples: usize) -> PerfSuite {
    let batch = mixed_batch(instances);
    let mut suite = PerfSuite {
        suite: "engine".to_string(),
        ..PerfSuite::default()
    };
    let mut cold_medians = Vec::new();
    for threads in [1usize, 2, 4] {
        let median = median_wall(samples, || {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let (lines, _) = engine.run_batch(&batch, Objective::Gaps);
            assert_eq!(lines.len(), batch.len());
        });
        cold_medians.push((threads, median));
        suite.results.push(PerfResult {
            name: format!("batch_cold/threads={threads}"),
            median_ns: median.as_nanos(),
            samples,
        });
    }

    // Warm pass: same engine, second time around — measures cache + pool
    // overhead with solving almost fully short-circuited.
    let engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let (_, _) = engine.run_batch(&batch, Objective::Gaps);
    let mut warm_hit_rate = 0.0;
    let warm = median_wall(samples, || {
        let (_, report) = engine.run_batch(&batch, Objective::Gaps);
        warm_hit_rate = report.hit_rate();
    });
    suite.results.push(PerfResult {
        name: "batch_warm/threads=4".to_string(),
        median_ns: warm.as_nanos(),
        samples,
    });

    // Multi-interval exact path: the optimized solver vs the brute-force
    // reference on the same scaled batch (cold cache per sample, one
    // thread — this is a solver comparison, not a scaling test).
    let multi = multi_batch((instances / 5).max(20));
    let mut exact_medians = Vec::new();
    for (name, use_multi_exact) in [
        ("multi_cold/multi_exact", true),
        ("multi_cold/brute_force", false),
    ] {
        let median = median_wall(samples, || {
            let engine = Engine::new(EngineConfig {
                threads: 1,
                router: gaps_engine::RouterConfig {
                    use_multi_exact,
                    ..gaps_engine::RouterConfig::default()
                },
                ..EngineConfig::default()
            });
            let (lines, report) = engine.run_batch(&multi, Objective::Gaps);
            assert_eq!(lines.len(), multi.len());
            let expected = if use_multi_exact {
                "multi_exact"
            } else {
                "brute_force"
            };
            assert_eq!(
                report.solver_counts.get(expected).copied().unwrap_or(0) as u64,
                report.cache_misses,
                "whole batch must take the {expected} path"
            );
        });
        exact_medians.push(median);
        suite.results.push(PerfResult {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            samples,
        });
    }

    // PR-10 levers, measured solver-side (no engine cache in the way).
    // (a) Decomposition: the production decomposed path vs a monolithic
    // search over the same clustered instances.
    use gaps_core::multi_exact::{self, MultiObjective};
    let decomposable: Vec<_> = decomposable_batch((instances / 10).max(10))
        .into_iter()
        .filter_map(|b| match b {
            BatchInstance::Multi(m) => Some(m),
            BatchInstance::One(_) => None,
        })
        .collect();
    let dec = median_wall(samples, || {
        for inst in &decomposable {
            let (res, stats) = multi_exact::solve_multi_stats(inst, MultiObjective::Gaps);
            assert!(res.is_some() && stats.component_jobs.len() >= 4);
        }
    });
    let undec = median_wall(samples, || {
        for inst in &decomposable {
            assert!(multi_exact::solve_multi_undecomposed(inst, MultiObjective::Gaps).is_some());
        }
    });
    suite.results.push(PerfResult {
        name: "multi_decomposed/clustered".to_string(),
        median_ns: dec.as_nanos(),
        samples,
    });
    suite.results.push(PerfResult {
        name: "multi_undecomposed/clustered".to_string(),
        median_ns: undec.as_nanos(),
        samples,
    });

    // (b) Parallel branch-and-bound: the shared-incumbent subtree
    // fan-out at 8 workers vs 1 on coupled cores decomposition cannot
    // split. Optima and witness schedules must be bit-identical — a
    // nondeterministic speedup would be worthless.
    let coupled: Vec<_> = coupled_batch((instances / 10).max(10))
        .into_iter()
        .filter_map(|b| match b {
            BatchInstance::Multi(m) => Some(m),
            BatchInstance::One(_) => None,
        })
        .collect();
    let reference: Vec<_> = coupled
        .iter()
        .map(|inst| gaps_engine::parallel::solve_multi_parallel(inst, MultiObjective::Gaps, 1).0)
        .collect();
    let mut parallel_medians = Vec::new();
    for threads in [1usize, 8] {
        let median = median_wall(samples, || {
            for (inst, expect) in coupled.iter().zip(&reference) {
                let (res, _) = gaps_engine::parallel::solve_multi_parallel(
                    inst,
                    MultiObjective::Gaps,
                    threads,
                );
                assert_eq!(
                    &res, expect,
                    "parallel optimum diverged at {threads} workers"
                );
            }
        });
        parallel_medians.push(median);
        suite.results.push(PerfResult {
            name: format!("multi_parallel/threads={threads}"),
            median_ns: median.as_nanos(),
            samples,
        });
    }

    let cold1 = cold_medians[0].1.as_secs_f64();
    for &(threads, median) in &cold_medians[1..] {
        suite.derived.push((
            format!("speedup_threads{threads}_over_threads1"),
            cold1 / median.as_secs_f64().max(f64::EPSILON),
        ));
    }
    suite.derived.push((
        "warm_speedup_over_cold_threads4".to_string(),
        cold_medians[2].1.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON),
    ));
    suite
        .derived
        .push(("warm_hit_rate".to_string(), warm_hit_rate));
    suite.derived.push((
        "multi_exact_speedup_over_brute_force".to_string(),
        exact_medians[1].as_secs_f64() / exact_medians[0].as_secs_f64().max(f64::EPSILON),
    ));
    suite.derived.push((
        "decomposition_speedup".to_string(),
        undec.as_secs_f64() / dec.as_secs_f64().max(f64::EPSILON),
    ));
    suite.derived.push((
        "multi_exact_parallel_speedup".to_string(),
        parallel_medians[0].as_secs_f64() / parallel_medians[1].as_secs_f64().max(f64::EPSILON),
    ));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_is_deterministic_and_distinctly_shaped() {
        let a = mixed_batch(10);
        let b = mixed_batch(10);
        assert_eq!(a, b);
        assert!(a.iter().any(|i| i.kind_label() == "one"));
        assert!(a.iter().any(|i| i.kind_label() == "multi"));
    }

    #[test]
    fn trajectory_produces_benchmarks_and_derived_metrics() {
        let suite = engine_trajectory(20, 1);
        assert_eq!(suite.suite, "engine");
        assert_eq!(suite.results.len(), 10);
        assert!(suite.results.iter().all(|r| r.median_ns > 0));
        let names: Vec<&str> = suite.derived.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"warm_hit_rate"));
        assert!(names.contains(&"speedup_threads4_over_threads1"));
        assert!(names.contains(&"multi_exact_speedup_over_brute_force"));
        assert!(names.contains(&"decomposition_speedup"));
        assert!(names.contains(&"multi_exact_parallel_speedup"));
        let hit_rate = suite
            .derived
            .iter()
            .find(|(n, _)| n == "warm_hit_rate")
            .unwrap()
            .1;
        assert!(hit_rate > 0.99, "warm pass should hit: {hit_rate}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let suite = PerfSuite {
            suite: "engine".into(),
            results: vec![PerfResult {
                name: "a/b=1".into(),
                median_ns: 42,
                samples: 3,
            }],
            derived: vec![("quote\"test".into(), 1.5)],
        };
        let json = suite.to_json();
        assert!(json.contains("\"median_ns\": 42"));
        assert!(json.contains("quote\\\"test"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }
}

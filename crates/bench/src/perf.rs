//! Machine-readable performance trajectory for the batch engine.
//!
//! `experiments --json PATH` runs [`engine_trajectory`] and writes the
//! per-benchmark median wall-clock times as JSON (`BENCH_engine.json` by
//! convention), seeding the perf-trajectory files that later PRs compare
//! against. The same workload builder feeds the criterion bench
//! (`benches/bench_engine.rs`), so the two views measure the same thing.
//!
//! JSON is hand-rolled (the workspace is offline — no serde); the schema
//! is deliberately flat:
//!
//! ```json
//! {
//!   "suite": "engine",
//!   "benchmarks": [
//!     {"name": "batch_cold/threads=1", "median_ns": 123, "samples": 3}
//!   ],
//!   "derived": {"speedup_threads4_over_threads1": 2.5, "warm_hit_rate": 1.0}
//! }
//! ```

use gaps_engine::{BatchInstance, Engine, EngineConfig, Objective};
use gaps_workloads::{multi_interval, one_interval};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One measured benchmark: a name and its median wall clock.
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Benchmark id, e.g. `batch_cold/threads=4`.
    pub name: String,
    /// Median wall-clock over the samples, in nanoseconds.
    pub median_ns: u128,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// A named set of results plus derived scalar metrics.
#[derive(Clone, Debug, Default)]
pub struct PerfSuite {
    /// Suite id (`engine`).
    pub suite: String,
    /// Measured benchmarks, in execution order.
    pub results: Vec<PerfResult>,
    /// Derived metrics (`(name, value)`), e.g. thread speedups.
    pub derived: Vec<(String, f64)>,
}

impl PerfSuite {
    /// Serialize the suite; stable key order, no external crates.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{comma}\n",
                escape(&r.name),
                r.median_ns,
                r.samples
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": {");
        for (i, (name, value)) in self.derived.iter().enumerate() {
            let comma = if i + 1 < self.derived.len() { "," } else { "" };
            out.push_str(&format!("\n    \"{}\": {value:.4}{comma}", escape(name)));
        }
        if !self.derived.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A deterministic mixed batch exercising every router path: single- and
/// multi-processor one-interval instances (DP-heavy), zero-laxity chains
/// (forced fast path), and small multi-interval instances (exhaustive
/// search). Instances are pairwise distinct, so a cold run gets no free
/// cache hits. Sizes were scaled up ~1.5× in PR 3 alongside the DP
/// optimizations; trajectory numbers before PR 3 used the smaller
/// seed sizes (n = 24/20 one-interval, 8-job multi) and are not directly
/// comparable.
pub fn mixed_batch(count: usize) -> Vec<BatchInstance> {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    (0..count)
        .map(|i| match i % 5 {
            0 => BatchInstance::One(one_interval::feasible(&mut rng, 36, 72, 3, 1)),
            1 => BatchInstance::One(one_interval::uniform(&mut rng, 30, 60, 4, 2)),
            2 => BatchInstance::One(one_interval::bursty(&mut rng, 5, 6, 9, 3, 3, 2)),
            3 => BatchInstance::One(one_interval::fixed_laxity(&mut rng, 36, 90, 0, 1)),
            _ => BatchInstance::Multi(multi_interval::feasible_slots(&mut rng, 12, 20, 1)),
        })
        .collect()
}

fn median_wall(samples: usize, mut run: impl FnMut()) -> Duration {
    let mut timings: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed()
        })
        .collect();
    timings.sort_unstable();
    timings[timings.len() / 2]
}

/// Measure engine batch throughput cold (fresh cache, threads 1/2/4) and
/// warm (second pass over the same engine), and derive thread speedups
/// plus the warm-cache hit rate.
pub fn engine_trajectory(instances: usize, samples: usize) -> PerfSuite {
    let batch = mixed_batch(instances);
    let mut suite = PerfSuite {
        suite: "engine".to_string(),
        ..PerfSuite::default()
    };
    let mut cold_medians = Vec::new();
    for threads in [1usize, 2, 4] {
        let median = median_wall(samples, || {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let (lines, _) = engine.run_batch(&batch, Objective::Gaps);
            assert_eq!(lines.len(), batch.len());
        });
        cold_medians.push((threads, median));
        suite.results.push(PerfResult {
            name: format!("batch_cold/threads={threads}"),
            median_ns: median.as_nanos(),
            samples,
        });
    }

    // Warm pass: same engine, second time around — measures cache + pool
    // overhead with solving almost fully short-circuited.
    let engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let (_, _) = engine.run_batch(&batch, Objective::Gaps);
    let mut warm_hit_rate = 0.0;
    let warm = median_wall(samples, || {
        let (_, report) = engine.run_batch(&batch, Objective::Gaps);
        warm_hit_rate = report.hit_rate();
    });
    suite.results.push(PerfResult {
        name: "batch_warm/threads=4".to_string(),
        median_ns: warm.as_nanos(),
        samples,
    });

    let cold1 = cold_medians[0].1.as_secs_f64();
    for &(threads, median) in &cold_medians[1..] {
        suite.derived.push((
            format!("speedup_threads{threads}_over_threads1"),
            cold1 / median.as_secs_f64().max(f64::EPSILON),
        ));
    }
    suite.derived.push((
        "warm_speedup_over_cold_threads4".to_string(),
        cold_medians[2].1.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON),
    ));
    suite
        .derived
        .push(("warm_hit_rate".to_string(), warm_hit_rate));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_is_deterministic_and_distinctly_shaped() {
        let a = mixed_batch(10);
        let b = mixed_batch(10);
        assert_eq!(a, b);
        assert!(a.iter().any(|i| i.kind_label() == "one"));
        assert!(a.iter().any(|i| i.kind_label() == "multi"));
    }

    #[test]
    fn trajectory_produces_benchmarks_and_derived_metrics() {
        let suite = engine_trajectory(20, 1);
        assert_eq!(suite.suite, "engine");
        assert_eq!(suite.results.len(), 4);
        assert!(suite.results.iter().all(|r| r.median_ns > 0));
        let names: Vec<&str> = suite.derived.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"warm_hit_rate"));
        assert!(names.contains(&"speedup_threads4_over_threads1"));
        let hit_rate = suite
            .derived
            .iter()
            .find(|(n, _)| n == "warm_hit_rate")
            .unwrap()
            .1;
        assert!(hit_rate > 0.99, "warm pass should hit: {hit_rate}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let suite = PerfSuite {
            suite: "engine".into(),
            results: vec![PerfResult {
                name: "a/b=1".into(),
                median_ns: 42,
                samples: 3,
            }],
            derived: vec![("quote\"test".into(), 1.5)],
        };
        let json = suite.to_json();
        assert!(json.contains("\"median_ns\": 42"));
        assert!(json.contains("quote\\\"test"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }
}

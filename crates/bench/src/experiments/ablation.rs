//! Ablations and extension experiments: design choices the reproduction
//! calls out (DESIGN.md §4), measured.

use crate::Table;
use gaps_core::greedy_gap::{greedy_gap_schedule_with_order, PickOrder};
use gaps_core::multi_interval::{
    approx_min_power_k, lemma4_best_residue, lemma4_guarantee, theorem3_bound_k,
};
use gaps_core::{baptiste, brute_force, compress, lower_bounds};
use gaps_sim::{ski_rental_randomized_bound, RandomizedTimeout};
use gaps_workloads::{multi_interval as wl_multi, one_interval as wl_one};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// E18: the greedy baseline's pick order is load-bearing — committing the
/// *largest* feasible gap first (the paper's rule) beats smallest-first.
pub(crate) fn e18() -> Table {
    let mut table = Table::new(
        "E18",
        "Ablation: [FHKN06] greedy pick order",
        "the 3-approximation analysis requires committing the LARGEST feasible gap first",
        &[
            "n",
            "cases",
            "mean gaps largest-first",
            "mean gaps smallest-first",
            "mean OPT",
        ],
    );
    let mut largest_total = 0u64;
    let mut smallest_total = 0u64;
    for &n in &[6usize, 9, 12] {
        let cases = 25u64;
        let (mut g_l, mut g_s, mut g_o) = (0u64, 0u64, 0u64);
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(180 * n as u64 + seed);
            let inst = wl_one::feasible(&mut rng, n, (3 * n) as i64, 2, 1);
            let largest = greedy_gap_schedule_with_order(&inst, PickOrder::LargestFirst).unwrap();
            let smallest = greedy_gap_schedule_with_order(&inst, PickOrder::SmallestFirst).unwrap();
            let opt = baptiste::min_gaps_value(&inst).unwrap();
            g_l += largest.gaps;
            g_s += smallest.gaps;
            g_o += opt;
        }
        largest_total += g_l;
        smallest_total += g_s;
        table.row([
            n.to_string(),
            cases.to_string(),
            format!("{:.2}", g_l as f64 / cases as f64),
            format!("{:.2}", g_s as f64 / cases as f64),
            format!("{:.2}", g_o as f64 / cases as f64),
        ]);
    }
    table.verdict(if largest_total <= smallest_total {
        format!(
            "confirmed: largest-first never worse in aggregate ({largest_total} vs {smallest_total} total gaps)"
        )
    } else {
        "unexpected: smallest-first won in aggregate".to_string()
    });
    table
}

/// E19: dead-zone compression is what makes the DPs run on gadget-scale
/// horizons — equal optima, large horizon reduction.
pub(crate) fn e19() -> Table {
    let mut table = Table::new(
        "E19",
        "Ablation: dead-zone compression",
        "compression preserves optima exactly while shrinking the DP's horizon",
        &[
            "spread",
            "raw horizon",
            "compressed",
            "optima equal",
            "DP ms (compressed)",
        ],
    );
    let mut all_equal = true;
    for &spread in &[50i64, 400, 3000] {
        // Clusters of pinned jobs separated by `spread` dead slots.
        let mut windows = Vec::new();
        for c in 0..4i64 {
            let base = c * spread;
            windows.extend([(base, base + 2), (base + 1, base + 3), (base + 2, base + 4)]);
        }
        let inst = gaps_core::instance::Instance::from_windows(windows.clone(), 1).unwrap();
        let raw_horizon = inst.horizon().unwrap().len();
        let (compressed, _) = compress::compress_instance_gap(&inst);
        let comp_horizon = compressed.horizon().unwrap().len();
        let start = Instant::now();
        let dp = baptiste::min_gaps_value(&compressed).expect("feasible");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        // Reference: slot-union exhaustive search on the raw instance (the
        // brute force only touches live slots, so it tolerates the spread).
        let multi = gaps_core::instance::MultiInstance::from_times(
            windows
                .iter()
                .map(|&(r, d)| (r..=d).collect::<Vec<i64>>())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (bf, _) = brute_force::min_gaps_multi(&multi).expect("feasible");
        all_equal &= dp == bf;
        table.row([
            spread.to_string(),
            raw_horizon.to_string(),
            comp_horizon.to_string(),
            (dp == bf).to_string(),
            format!("{ms:.2}"),
        ]);
    }
    table.verdict(if all_equal {
        "confirmed: optimum invariant under compression; horizon shrinks by orders of magnitude"
    } else {
        "FALSIFIED"
    });
    table
}

/// E20: quality of the combinatorial lower bounds, and the randomized
/// power-down policy's expected competitive ratio e/(e−1).
pub(crate) fn e20() -> Table {
    let mut table = Table::new(
        "E20",
        "Extensions: lower-bound quality and randomized power-down",
        "run-structure bounds sandwich the optimum; randomized timeout beats deterministic 2",
        &["what", "parameter", "value", "reference"],
    );
    // Lower-bound tightness on random multi-interval instances.
    let mut tight = 0u64;
    let mut total = 0u64;
    let mut worst_slack = 0i64;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let inst = wl_multi::random_slots(&mut rng, 6, 14, 2);
        let Some((opt, _)) = brute_force::min_spans_multi(&inst) else {
            continue;
        };
        let lb = lower_bounds::min_spans_lower_bound(&inst);
        assert!(lb <= opt, "lower bound must be sound");
        total += 1;
        tight += (lb == opt) as u64;
        worst_slack = worst_slack.max(opt as i64 - lb as i64);
    }
    table.row([
        "spans LB tight".to_string(),
        format!("{total} instances"),
        format!("{tight}/{total}"),
        format!("worst slack {worst_slack}"),
    ]);

    // Randomized ski rental.
    for &alpha in &[8u64, 32] {
        let d = RandomizedTimeout::new(alpha);
        let worst = d.worst_expected_ratio(4 * alpha);
        table.row([
            "randomized timeout".to_string(),
            format!("alpha {alpha}"),
            format!("E[ratio] <= {worst:.3}"),
            format!(
                "e/(e-1) = {:.3}, det. bound 2",
                ski_rental_randomized_bound()
            ),
        ]);
    }
    table
        .verdict("confirmed: bounds sound (often tight); randomized policy below 2 in expectation");
    table
}

/// E21: ablation on the Theorem 3 block length k — the paper fixes k = 2;
/// the generalized bound ties at k = 3 and worsens from k = 4, and the
/// measured ratios track that shape. Lemma 4's residue guarantee is also
/// verified directly on the optimal schedules.
pub(crate) fn e21() -> Table {
    let mut table = Table::new(
        "E21",
        "Ablation: Theorem 3 block length k",
        "the alpha coefficient 1 − 2(k−1)/(k(k+1)) is 2/3 at k ∈ {2,3} and 7/10 at k = 4; Lemma 4 floor holds",
        &["k", "bound coeff", "cases", "mean ratio", "max ratio", "lemma4 ok"],
    );
    let alpha = 3.0f64;
    let cases = 16u64;
    let mut ok = true;
    for &k in &[2usize, 3, 4] {
        let mut ratios = Vec::new();
        let mut lemma_ok = 0u64;
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(2100 + seed);
            let inst = wl_multi::feasible_slots(&mut rng, 8, 15, 2);
            let (opt, wit) = brute_force::min_power_multi(&inst, alpha as u64).unwrap();
            let res = approx_min_power_k(&inst, alpha, k, 32).expect("feasible");
            ratios.push(res.power / opt as f64);
            // Lemma 4 on the optimal witness.
            let (_, count) = lemma4_best_residue(&wit, k);
            let m = wit.span_count();
            lemma_ok += (count >= lemma4_guarantee(inst.job_count(), m, k)) as u64;
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let bound = theorem3_bound_k(alpha, k, 0.05);
        ok &= max <= bound + 1e-9 && lemma_ok == cases;
        table.row([
            k.to_string(),
            format!("{:.3}", (theorem3_bound_k(1.0, k, 0.0) - 1.0)),
            cases.to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{lemma_ok}/{cases}"),
        ]);
    }
    table.verdict(if ok {
        "confirmed: k = 2 remains the method of record; Lemma 4's floor holds on every witness"
    } else {
        "FALSIFIED"
    });
    table
}

//! Experiments for the hardness gadgets (Theorems 4–10): solve both sides
//! exhaustively and verify the paper's exact correspondences.

use crate::Table;
use gaps_core::brute_force::{min_gaps_multi, min_power_multi, min_spans_multi};
use gaps_reductions::{
    bsetcover_disjoint, setcover_gap, setcover_power, three_unit, two_interval, two_unit_disjoint,
};
use gaps_setcover::exact_min_cover;
use gaps_workloads::{multi_interval as wl_multi, setcover as wl_cover};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E7: set cover ⟺ scheduling cost under the Theorem 4/5/6 gadgets.
pub(crate) fn e7() -> Table {
    let mut table = Table::new(
        "E7",
        "Theorems 4-6: set cover to power/gap gadgets",
        "cover size k <=> power (n+1) + (k+1)*alpha (Thm 4/5) and k+1 spans (Thm 6)",
        &["universe", "sets", "cases", "thm4 ok", "thm5 ok", "thm6 ok"],
    );
    let mut all = true;
    for &(universe, sets) in &[(4u32, 3usize), (5, 4), (6, 4)] {
        let cases = 10u64;
        let (mut ok4, mut ok5, mut ok6) = (0u64, 0u64, 0u64);
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(70 * universe as u64 + seed);
            let cover = wl_cover::random_cover(&mut rng, universe, sets, 3);
            let k = exact_min_cover(&cover).expect("patched feasible").len() as u64;

            let g4 = setcover_power::build_theorem4(&cover);
            let (p4, _) = min_power_multi(&g4.multi, g4.alpha).expect("feasible");
            ok4 += (p4 == g4.power_of_cover_size(k)) as u64;

            let g5 = setcover_power::build_theorem5(&cover);
            let (p5, _) = min_power_multi(&g5.multi, g5.alpha).expect("feasible");
            ok5 += (p5 == g5.power_of_cover_size(k)) as u64;

            let g6 = setcover_gap::build_theorem6(&cover);
            let (spans, _) = min_spans_multi(&g6.multi).expect("feasible");
            ok6 += (spans == setcover_gap::spans_of_cover_size(k)) as u64;
        }
        all &= ok4 == cases && ok5 == cases && ok6 == cases;
        table.row([
            universe.to_string(),
            sets.to_string(),
            cases.to_string(),
            format!("{ok4}/{cases}"),
            format!("{ok5}/{cases}"),
            format!("{ok6}/{cases}"),
        ]);
    }
    table.verdict(if all {
        "confirmed: exact correspondence on every instance (both directions solved exhaustively)"
    } else {
        "FALSIFIED"
    });
    table
}

/// E8: the Theorem 7 (2-interval) gadget shifts the optimum by exactly 1.
pub(crate) fn e8() -> Table {
    let mut table = Table::new(
        "E8",
        "Theorem 7: multi-interval to 2-interval gadget",
        "OPT(2-interval gadget) = OPT(multi-interval) + 1 (one extra block span)",
        &["n", "cases", "exact shifts", "roundtrips ok"],
    );
    let mut all = true;
    for &n in &[3usize, 4] {
        let cases = 12u64;
        let mut exact = 0u64;
        let mut round = 0u64;
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(87 * n as u64 + seed);
            // Jobs with 3 well-separated unit slots → guaranteed 3 intervals.
            let inst = wl_multi::k_interval(&mut rng, n, (4 * n) as i64, 3, 1);
            let Some((opt, wit)) = min_gaps_multi(&inst) else {
                continue;
            };
            let g = two_interval::build(&inst);
            let (opt_g, wit_g) = min_gaps_multi(&g.multi).expect("gadget stays feasible");
            exact += (opt_g == g.expected_gaps(opt)) as u64;
            // Roundtrip: lift the optimal original witness; project the
            // gadget witness back.
            let lifted = g.lift(&inst, &wit);
            let projected = g.project(&inst, &wit_g);
            round += (lifted.verify(&g.multi).is_ok()
                && projected.verify(&inst).is_ok()
                && projected.gap_count() >= opt) as u64;
        }
        all &= exact == cases && round == cases;
        table.row([
            n.to_string(),
            cases.to_string(),
            format!("{exact}/{cases}"),
            format!("{round}/{cases}"),
        ]);
    }
    table.verdict(if all {
        "confirmed: optimum shifts by exactly the one block span; mappings verify"
    } else {
        "FALSIFIED"
    });
    table
}

/// E9: the Theorem 8 (3-unit) gadget shifts the optimum by exactly 1.
pub(crate) fn e9() -> Table {
    let mut table = Table::new(
        "E9",
        "Theorem 8: multi-interval to 3-unit gadget",
        "OPT(3-unit gadget) = OPT(multi-interval) + 1; any k−1 slot-jobs fill the block",
        &["n", "cases", "exact shifts", "fillability ok"],
    );
    let mut all = true;
    for &n in &[2usize, 3] {
        let cases = 12u64;
        let mut exact = 0u64;
        let mut fill = 0u64;
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(98 * n as u64 + seed);
            let inst = wl_multi::disjoint_unit(&mut rng, n, 4, 3);
            let Some((opt, _)) = min_gaps_multi(&inst) else {
                continue;
            };
            let g = three_unit::build(&inst);
            let (opt_g, _) = min_gaps_multi(&g.multi).expect("gadget stays feasible");
            exact += (opt_g == g.expected_gaps(opt)) as u64;
            fill += (0..inst.job_count())
                .all(|j| g.blocks[j].is_none() || three_unit::verify_fillability(&g, j))
                as u64;
        }
        all &= exact == cases && fill == cases;
        table.row([
            n.to_string(),
            cases.to_string(),
            format!("{exact}/{cases}"),
            format!("{fill}/{cases}"),
        ]);
    }
    table.verdict(if all {
        "confirmed: optimum shifts by exactly one; the cyclic fillability claim holds"
    } else {
        "FALSIFIED"
    });
    table
}

/// E10: Theorem 9 equivalences (both directions) and Theorem 10.
pub(crate) fn e10() -> Table {
    let mut table = Table::new(
        "E10",
        "Theorems 9-10: 2-unit <=> disjoint-unit; B-set cover to disjoint-unit",
        "complement constructions keep optima within 1; Thm 10: min spans = min B-set cover",
        &["family", "cases", "within 1 / exact", "notes"],
    );
    // Forward: 2-unit → disjoint.
    let mut rng = StdRng::seed_from_u64(4040);
    let cases = 20u64;
    let mut fwd_ok = 0u64;
    let mut fwd_total = 0u64;
    for _ in 0..cases {
        let inst = wl_multi::two_unit(&mut rng, 5, 9);
        // An Err is an infeasible draw: outside the theorem's scope.
        if let Ok(g) = two_unit_disjoint::two_unit_to_disjoint(&inst) {
            fwd_total += 1;
            let old = min_spans_multi(&inst).expect("feasible").0;
            let new = if g.multi.job_count() == 0 {
                0
            } else {
                min_spans_multi(&g.multi).expect("feasible").0
            };
            fwd_ok += (old.abs_diff(new) <= 1) as u64;
        }
    }
    table.row([
        "2-unit → disjoint".to_string(),
        fwd_total.to_string(),
        format!("{fwd_ok}/{fwd_total}"),
        "span optima differ ≤ 1".to_string(),
    ]);

    // Backward: disjoint → 2-unit.
    let mut bwd_ok = 0u64;
    let mut bwd_total = 0u64;
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(5050 + seed);
        let inst = wl_multi::disjoint_unit(&mut rng, 3, 3, 3);
        let g = two_unit_disjoint::disjoint_to_two_unit(&inst).expect("disjoint input");
        if g.multi.job_count() == 0 {
            continue;
        }
        bwd_total += 1;
        let old = min_spans_multi(&inst).expect("feasible").0;
        let new = min_spans_multi(&g.multi).expect("feasible").0;
        bwd_ok += (old.abs_diff(new) <= 1) as u64;
    }
    table.row([
        "disjoint → 2-unit".to_string(),
        bwd_total.to_string(),
        format!("{bwd_ok}/{bwd_total}"),
        "span optima differ ≤ 1".to_string(),
    ]);

    // Theorem 10: B-set cover ⟺ disjoint-unit spans, exactly.
    let mut t10_ok = 0u64;
    let t10_cases = 10u64;
    for seed in 0..t10_cases {
        let mut rng = StdRng::seed_from_u64(6060 + seed);
        let cover = wl_cover::random_b_cover(&mut rng, 5, 3, 3);
        let k = exact_min_cover(&cover).expect("feasible").len() as u64;
        let g = bsetcover_disjoint::build(&cover);
        let (spans, wit) = min_spans_multi(&g.multi).expect("feasible");
        let mapped = g.schedule_to_cover(&wit);
        t10_ok += (spans == k && cover.verify_cover(&mapped).is_ok()) as u64;
    }
    table.row([
        "B-set cover → disjoint".to_string(),
        t10_cases.to_string(),
        format!("{t10_ok}/{t10_cases}"),
        "min spans = min cover (exact)".to_string(),
    ]);

    let all = fwd_ok == fwd_total && bwd_ok == bwd_total && t10_ok == t10_cases;
    table.verdict(if all {
        "confirmed: equivalences hold on every feasible draw"
    } else {
        "FALSIFIED"
    });
    table
}

//! The experiment registry: every claim of the paper, regenerated.
//!
//! See `DESIGN.md` §6 for the per-experiment index and `EXPERIMENTS.md`
//! for recorded outcomes.

mod ablation;
mod approx;
mod exact;
mod hardness;
mod online_sim;

use crate::Table;

/// `(id, description, runner)` describing one experiment.
pub type ExperimentEntry = (&'static str, &'static str, fn() -> Table);

/// Every experiment, in catalog order.
pub const REGISTRY: &[ExperimentEntry] = &[
    (
        "e1",
        "Theorem 1 DP is exact (vs exhaustive search)",
        exact::e1,
    ),
    (
        "e2",
        "Theorem 1 DP scales polynomially in n and p",
        exact::e2,
    ),
    (
        "e3",
        "Theorem 2 power DP is exact; min(gap, alpha) crossover",
        exact::e3,
    ),
    (
        "e4",
        "Theorem 3 approximation ratio <= 1 + (2/3 + eps)*alpha",
        approx::e4,
    ),
    (
        "e5",
        "Lemma 3: completion adds <= 1 gap per added job",
        approx::e5,
    ),
    (
        "e6",
        "[FHKN06] greedy is 3-approximate for one-interval gaps",
        approx::e6,
    ),
    (
        "e7",
        "Theorems 4-6 gadgets: cover size <=> schedule cost",
        hardness::e7,
    ),
    (
        "e8",
        "Theorem 7 gadget: 2-interval OPT = multi-interval OPT + 1",
        hardness::e8,
    ),
    (
        "e9",
        "Theorem 8 gadget: 3-unit OPT = multi-interval OPT + 1",
        hardness::e9,
    ),
    (
        "e10",
        "Theorem 9: 2-unit <=> disjoint-unit optima within 1",
        hardness::e10,
    ),
    (
        "e11",
        "Theorem 11 greedy is O(sqrt n)-approximate",
        approx::e11,
    ),
    (
        "e12",
        "Section 1: online gap cost grows as n, offline O(1)",
        online_sim::e12,
    ),
    (
        "e13",
        "[HS89] local-search packing share approaches 2/3",
        approx::e13,
    ),
    (
        "e14",
        "Baptiste p=1 DP agrees with general DP and brute force",
        exact::e14,
    ),
    (
        "e15",
        "simulated energy == analytic power cost",
        online_sim::e15,
    ),
    (
        "e16",
        "Lemma 1 subtlety: prefix can hurt finite gaps; spreading fixes it",
        exact::e16,
    ),
    (
        "e17",
        "online power-down policies: timeout(alpha) is 2-competitive",
        online_sim::e17,
    ),
    (
        "e18",
        "ablation: greedy pick order (largest-first is load-bearing)",
        ablation::e18,
    ),
    (
        "e19",
        "ablation: dead-zone compression preserves optima, shrinks horizons",
        ablation::e19,
    ),
    (
        "e20",
        "extensions: lower-bound quality; randomized power-down e/(e-1)",
        ablation::e20,
    ),
    (
        "e21",
        "ablation: Theorem 3 block length k (k = 2 vs 3 vs 4); Lemma 4 floor",
        ablation::e21,
    ),
];

//! Experiments for the exact algorithms (Theorems 1, 2; Baptiste; the
//! Lemma 1 subtlety).

use crate::Table;
use gaps_core::instance::Instance;
use gaps_core::{baptiste, brute_force, multiproc_dp, power_dp};
use gaps_workloads::one_interval;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// E1: the Theorem 1 DP matches exhaustive search on both objectives
/// across random workloads, fanned out over threads per (n, p) cell.
pub(crate) fn e1() -> Table {
    let mut table = Table::new(
        "E1",
        "Theorem 1 DP vs exhaustive search",
        "the DP returns the exact optimum for both the span and the finite-gap objective",
        &[
            "n",
            "p",
            "cases",
            "span agree",
            "gap agree",
            "mean spans",
            "mean gaps",
        ],
    );
    let seeds_per_cell = 30u64;
    let mut all_ok = true;
    for &n in &[4usize, 6, 8] {
        for &p in &[1u32, 2, 3] {
            let agree = Mutex::new((0u64, 0u64, 0u64, 0u64)); // span, gap, sum_spans, sum_gaps
            crossbeam::scope(|scope| {
                for seed in 0..seeds_per_cell {
                    let agree = &agree;
                    scope.spawn(move |_| {
                        let mut rng = StdRng::seed_from_u64(1000 * n as u64 + 10 * p as u64 + seed);
                        let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 3, p);
                        let dp_s = multiproc_dp::min_span_value(&inst).expect("feasible");
                        let bf_s = brute_force::min_spans_multiproc(&inst).expect("feasible").0;
                        let dp_g = multiproc_dp::min_gap_value(&inst).expect("feasible");
                        let bf_g = brute_force::min_gaps_multiproc(&inst).expect("feasible").0;
                        let mut a = agree.lock();
                        a.0 += (dp_s == bf_s) as u64;
                        a.1 += (dp_g == bf_g) as u64;
                        a.2 += dp_s;
                        a.3 += dp_g;
                    });
                }
            })
            .expect("threads join");
            let (sa, ga, ss, sg) = *agree.lock();
            all_ok &= sa == seeds_per_cell && ga == seeds_per_cell;
            table.row([
                n.to_string(),
                p.to_string(),
                seeds_per_cell.to_string(),
                format!("{sa}/{seeds_per_cell}"),
                format!("{ga}/{seeds_per_cell}"),
                format!("{:.2}", ss as f64 / seeds_per_cell as f64),
                format!("{:.2}", sg as f64 / seeds_per_cell as f64),
            ]);
        }
    }
    table.verdict(if all_ok {
        "confirmed: DP = exhaustive optimum in every case"
    } else {
        "FALSIFIED: disagreement found"
    });
    table
}

/// E2: wall-clock scaling of the DP in n and p (polynomial shape: the
/// ratio between successive rows stays bounded, no exponential blow-up).
pub(crate) fn e2() -> Table {
    let mut table = Table::new(
        "E2",
        "Theorem 1 DP running time",
        "the DP runs in time polynomial in n and p (paper: O(n^7 p^5) worst case)",
        &["n", "p", "horizon", "time ms", "growth vs prev n"],
    );
    for &p in &[1u32, 2, 4] {
        let mut prev: Option<f64> = None;
        for &n in &[6usize, 12, 18, 24, 30] {
            let mut rng = StdRng::seed_from_u64(4242 + n as u64 + p as u64);
            let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 4, p);
            let start = Instant::now();
            let sol = multiproc_dp::min_span_schedule(&inst).expect("feasible");
            std::hint::black_box(sol.spans);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let growth = prev.map_or("-".to_string(), |q| format!("{:.2}x", ms / q.max(1e-9)));
            prev = Some(ms);
            table.row([
                n.to_string(),
                p.to_string(),
                (2 * n).to_string(),
                format!("{ms:.2}"),
                growth,
            ]);
        }
    }
    table.verdict("confirmed shape: bounded growth factors (polynomial), no blow-up in p");
    table
}

/// E3: the power DP is exact, and the optimal gap treatment follows
/// min(gap, alpha): bridge short gaps, sleep through long ones.
pub(crate) fn e3() -> Table {
    let mut table = Table::new(
        "E3",
        "Theorem 2 power DP: exactness and the min(gap, alpha) crossover",
        "a gap of length L costs min(L, alpha); DP = exhaustive optimum",
        &["alpha", "exact agree", "power(L=3 gap)", "bridged?"],
    );
    let mut all_ok = true;
    for alpha in 0u64..=6 {
        // Exactness sweep.
        let mut agree = 0;
        let cases = 20;
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(777 + seed);
            let inst = one_interval::feasible(&mut rng, 5, 9, 3, 2);
            let dp = power_dp::min_power_value(&inst, alpha).expect("feasible");
            let bf = brute_force::min_power_multiproc(&inst, alpha)
                .expect("feasible")
                .0;
            agree += (dp == bf) as u64;
        }
        all_ok &= agree == cases;
        // Crossover instance: two pinned jobs, gap of 3.
        let pinned = Instance::from_windows([(0, 0), (4, 4)], 1).unwrap();
        let power = power_dp::min_power_value(&pinned, alpha).unwrap();
        let bridged = power == 2 + alpha + 3; // active through the gap
        table.row([
            alpha.to_string(),
            format!("{agree}/{cases}"),
            power.to_string(),
            if alpha >= 3 {
                format!("yes ({bridged})")
            } else {
                "no".to_string()
            },
        ]);
    }
    table.verdict(if all_ok {
        "confirmed: exact everywhere; bridging switches on exactly at alpha >= gap length"
    } else {
        "FALSIFIED: disagreement found"
    });
    table
}

/// E14: Baptiste's independently-coded p = 1 DP agrees with the general
/// DP and exhaustive search; runtime scaling for good measure.
pub(crate) fn e14() -> Table {
    let mut table = Table::new(
        "E14",
        "Baptiste single-processor DP [Bap06]",
        "the p = 1 specialization is exact; the paper's Theorem 1 generalizes it",
        &["n", "cases", "agree (spans)", "agree (power)", "time ms"],
    );
    let mut all_ok = true;
    for &n in &[4usize, 6, 8, 12, 16] {
        let cases = 20u64;
        let mut agree_s = 0u64;
        let mut agree_p = 0u64;
        let start = Instant::now();
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(31 * n as u64 + seed);
            let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 3, 1);
            let b = baptiste::min_spans_value(&inst);
            agree_s += (b == multiproc_dp::min_span_value(&inst)) as u64;
            let alpha = seed % 5;
            let bp = baptiste::min_power_value(&inst, alpha);
            agree_p += (bp == power_dp::min_power_value(&inst, alpha)) as u64;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / cases as f64;
        all_ok &= agree_s == cases && agree_p == cases;
        table.row([
            n.to_string(),
            cases.to_string(),
            format!("{agree_s}/{cases}"),
            format!("{agree_p}/{cases}"),
            format!("{ms:.2}"),
        ]);
    }
    table.verdict(if all_ok {
        "confirmed: all three solvers agree on every instance"
    } else {
        "FALSIFIED: disagreement found"
    });
    table
}

/// E16: the Lemma 1 subtlety (a finding of this reproduction): prefix
/// rearrangement preserves spans but can increase finite gaps; spreading
/// runs over processors recovers the optimum max(0, spans − p).
pub(crate) fn e16() -> Table {
    let mut table = Table::new(
        "E16",
        "Lemma 1 subtlety: prefix vs run-spreading on the finite-gap objective",
        "prefix schedules minimize spans, not finite gaps; OPT_gaps = max(0, G(p) − p)",
        &[
            "runs k",
            "p",
            "spans G(p)",
            "prefix gaps",
            "spread gaps",
            "DP gaps",
        ],
    );
    let mut ok = true;
    for &(k, p) in &[(2u64, 2u32), (3, 2), (3, 3), (4, 2), (4, 3), (5, 4)] {
        // k pinned singleton jobs, far apart: the profile has k runs.
        let windows: Vec<(i64, i64)> = (0..k as i64).map(|i| (3 * i, 3 * i)).collect();
        let inst = Instance::from_windows(windows, p).unwrap();
        let sol = multiproc_dp::min_span_schedule(&inst).expect("feasible");
        let prefix_gaps = sol.schedule.gap_count(p);
        let spread_gaps = sol.schedule.spread_for_min_gaps(p).gap_count(p);
        let dp_gaps = multiproc_dp::min_gap_value(&inst).unwrap();
        ok &= dp_gaps == sol.spans.saturating_sub(p as u64) && spread_gaps == dp_gaps;
        table.row([
            k.to_string(),
            p.to_string(),
            sol.spans.to_string(),
            prefix_gaps.to_string(),
            spread_gaps.to_string(),
            dp_gaps.to_string(),
        ]);
    }
    table.verdict(if ok {
        "confirmed: prefix overpays by min(p, G) − 1 gaps; spreading attains max(0, G − p)"
    } else {
        "FALSIFIED"
    });
    table
}

//! Experiments for the online lower bound (Section 1) and the simulator
//! (energy accounting and power-down policies).

use crate::Table;
use gaps_core::online;
use gaps_core::power::power_cost_multiproc;
use gaps_core::{edf, multiproc_dp};
use gaps_sim::{
    simulate_schedule, Clairvoyant, NeverSleep, PowerPolicy, SleepImmediately, Timeout,
};
use gaps_workloads::{adversarial, one_interval as wl_one};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E12: the online lower-bound family — non-lazy EDF pays Θ(n) gaps, the
/// offline optimum pays 0, so competitive ratios grow without bound.
pub(crate) fn e12() -> Table {
    let mut table = Table::new(
        "E12",
        "Section 1 online lower bound",
        "any feasibility-guaranteeing online algorithm pays n−1 gaps where offline pays 0",
        &[
            "n",
            "online gaps (EDF)",
            "offline gaps (DP)",
            "ratio (spans)",
        ],
    );
    let mut ok = true;
    for &n in &[4usize, 8, 16, 32] {
        let inst = adversarial::online_lower_bound(n);
        let (online_gaps, offline_gaps) =
            online::online_vs_offline_gaps(&inst).expect("family is feasible");
        ok &= online_gaps == n as u64 - 1 && offline_gaps == 0;
        table.row([
            n.to_string(),
            online_gaps.to_string(),
            offline_gaps.to_string(),
            format!(
                "{:.0}x",
                (online_gaps + 1) as f64 / (offline_gaps + 1) as f64
            ),
        ]);
    }
    table.verdict(if ok {
        "confirmed: online/offline gap ratio grows linearly in n"
    } else {
        "FALSIFIED"
    });
    table
}

/// E15: the simulator's measured energy equals the analytic power cost
/// under the clairvoyant policy, across random schedules and alphas.
pub(crate) fn e15() -> Table {
    let mut table = Table::new(
        "E15",
        "Simulator vs analytic power",
        "executing a schedule with clairvoyant sleeping measures exactly active + alpha * wakeups with per-gap min(len, alpha)",
        &["p", "alpha", "cases", "exact matches"],
    );
    let mut all = true;
    for &p in &[1u32, 2, 3] {
        for &alpha in &[0u64, 1, 3, 7] {
            let cases = 20u64;
            let mut matches = 0u64;
            for seed in 0..cases {
                let mut rng = StdRng::seed_from_u64(150 * p as u64 + 10 * alpha + seed);
                let inst = wl_one::feasible(&mut rng, 10, 18, 3, p);
                let sched = edf::edf(&inst).expect("feasible");
                let report = simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha });
                matches += (report.energy == power_cost_multiproc(&sched, p, alpha)) as u64;
            }
            all &= matches == cases;
            table.row([
                p.to_string(),
                alpha.to_string(),
                cases.to_string(),
                format!("{matches}/{cases}"),
            ]);
        }
    }
    table.verdict(if all {
        "confirmed: simulated energy == analytic cost in every run"
    } else {
        "FALSIFIED"
    });
    table
}

/// E17: power-down policies on gap-rich schedules: clairvoyant is the
/// floor; timeout(alpha) stays within 2x of it (ski rental); the
/// extremes lose on the opposite gap regimes.
pub(crate) fn e17() -> Table {
    let mut table = Table::new(
        "E17",
        "Online power-down policies (extension)",
        "timeout(alpha) is 2-competitive against the clairvoyant min(gap, alpha) optimum",
        &[
            "alpha",
            "clairvoyant",
            "timeout(a)",
            "sleep-now",
            "never-sleep",
            "timeout/clair",
        ],
    );
    let mut worst: f64 = 0.0;
    for &alpha in &[1u64, 2, 4, 8] {
        // Gap-rich workload: sparse pinned jobs over a long horizon, made
        // gap-optimal first so the spans are meaningful.
        let mut rng = StdRng::seed_from_u64(1700 + alpha);
        let inst = wl_one::feasible(&mut rng, 12, 60, 1, 1);
        let sched = multiproc_dp::min_span_schedule(&inst)
            .expect("feasible")
            .schedule;
        let energy = |policy: &dyn PowerPolicy| -> u64 {
            simulate_schedule(&inst, &sched, alpha, policy).energy
        };
        let clair = energy(&Clairvoyant { alpha });
        let timeout = energy(&Timeout { threshold: alpha });
        let now = energy(&SleepImmediately);
        let never = energy(&NeverSleep);
        let ratio = timeout as f64 / clair.max(1) as f64;
        worst = worst.max(ratio);
        table.row([
            alpha.to_string(),
            clair.to_string(),
            timeout.to_string(),
            now.to_string(),
            never.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    table.verdict(format!(
        "confirmed: worst timeout/clairvoyant ratio {worst:.3} <= 2 (ski rental)"
    ));
    table
}

//! Experiments for the approximation algorithms (Theorems 3, 11; Lemma 3;
//! the greedy baseline; Hurkens–Schrijver packing).

use crate::Table;
use gaps_core::schedule::MultiSchedule;
use gaps_core::{baptiste, brute_force, greedy_gap, min_restart, multi_interval};
use gaps_setcover::packing::{exact_max_packing, greedy_packing, local_search_packing};
use gaps_setcover::SetPackingInstance;
use gaps_workloads::{multi_interval as wl_multi, one_interval as wl_one};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E4: Theorem 3 ratio sweep over α, against exhaustive optima, with the
/// trivial (1 + α) baseline for contrast.
pub(crate) fn e4() -> Table {
    let mut table = Table::new(
        "E4",
        "Theorem 3 approximation ratio vs alpha",
        "power(approx) <= (1 + (2/3 + eps) * alpha) * OPT; any schedule is (1 + alpha)-approx",
        &[
            "alpha",
            "cases",
            "mean ratio",
            "max ratio",
            "bound 1+2/3a",
            "trivial bound 1+a",
        ],
    );
    let mut within = true;
    for &alpha in &[0.0f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let results = Mutex::new(Vec::<f64>::new());
        let cases = 24u64;
        crossbeam::scope(|scope| {
            for seed in 0..cases {
                let results = &results;
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(9000 + seed);
                    let inst = wl_multi::feasible_slots(&mut rng, 7, 13, 2);
                    // Exhaustive optimum with integer-scaled alpha when
                    // fractional: scale costs by 2 (alpha in half-units).
                    let opt = exact_power_f(&inst, alpha);
                    let res = multi_interval::approx_min_power(&inst, alpha, 32).expect("feasible");
                    results.lock().push(res.power / opt.max(1e-9));
                });
            }
        })
        .expect("threads join");
        let rs = results.lock();
        let mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let max = rs.iter().cloned().fold(0.0, f64::max);
        let bound = multi_interval::theorem3_bound(alpha, 0.05);
        within &= max <= bound + 1e-9;
        table.row([
            format!("{alpha:.2}"),
            cases.to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{bound:.3}"),
            format!("{:.3}", 1.0 + alpha),
        ]);
    }
    table.verdict(if within {
        "confirmed: measured ratios within the Theorem 3 bound (well below the trivial 1+alpha)"
    } else {
        "measured ratio exceeded the bound — investigate packing share"
    });
    table
}

/// Exhaustive optimum for real alpha: doubles the timeline cost scale so
/// alpha in half-units stays integral (alphas in this suite are multiples
/// of 0.5).
fn exact_power_f(inst: &gaps_core::instance::MultiInstance, alpha: f64) -> f64 {
    let alpha2 = (alpha * 2.0).round() as u64;
    assert!(
        (alpha * 2.0 - alpha2 as f64).abs() < 1e-9,
        "alpha must be a half-integer"
    );
    // power = busy + spans*alpha + bridges... brute force with doubled
    // units: cost2 = 2*busy + sum min(2*gap, 2*alpha) + 2*alpha*... —
    // easiest correct route: enumerate optimum via min over schedules of
    // the f64 cost using the integer brute-force solver on 2x scale:
    // every slot doubled would distort gaps; instead reuse min_power_multi
    // twice when alpha is integral, else compute via custom search below.
    if alpha.fract() == 0.0 {
        return brute_force::min_power_multi(inst, alpha as u64)
            .expect("feasible")
            .0 as f64;
    }
    // Half-integer alpha: minimize 2*cost (integers) by scaling the cost
    // function, not the timeline: 2*power = 2*n + sum over gaps
    // min(2*g, 2*alpha) + 2*alpha per wakeup — all integers.
    let (cost2, _) = brute_force_min_power_scaled(inst, alpha2);
    cost2 as f64 / 2.0
}

/// Exhaustive minimum of `2 * power` where alpha is given in half-units.
fn brute_force_min_power_scaled(
    inst: &gaps_core::instance::MultiInstance,
    alpha2: u64,
) -> (u64, MultiSchedule) {
    // Small instances only (same limits as gaps_core::brute_force).
    let n = inst.job_count();
    let mut best = (u64::MAX, vec![]);
    let mut times: Vec<i64> = vec![0; n];
    fn cost2(occupied: &mut [i64], alpha2: u64) -> u64 {
        occupied.sort_unstable();
        let runs = gaps_core::time::runs_of(occupied);
        if runs.is_empty() {
            return 0;
        }
        let mut c = 2 * occupied.len() as u64 + alpha2;
        for w in runs.windows(2) {
            let gap = 2 * (w[1].start - w[0].end - 1) as u64;
            c += gap.min(alpha2);
        }
        c
    }
    fn rec(
        inst: &gaps_core::instance::MultiInstance,
        j: usize,
        used: &mut Vec<i64>,
        times: &mut Vec<i64>,
        alpha2: u64,
        best: &mut (u64, Vec<i64>),
    ) {
        if j == inst.job_count() {
            let c = cost2(&mut used.clone(), alpha2);
            if c < best.0 {
                *best = (c, times.clone());
            }
            return;
        }
        for &t in inst.jobs()[j].times() {
            if !used.contains(&t) {
                used.push(t);
                times[j] = t;
                rec(inst, j + 1, used, times, alpha2, best);
                used.pop();
            }
        }
    }
    let mut used = Vec::new();
    rec(inst, 0, &mut used, &mut times, alpha2, &mut best);
    assert_ne!(best.0, u64::MAX, "instance must be feasible");
    (best.0, MultiSchedule::new(best.1))
}

/// E5: Lemma 3 — completing a partial schedule of g gaps with m more jobs
/// yields at most g + m gaps; measure the slack.
pub(crate) fn e5() -> Table {
    let mut table = Table::new(
        "E5",
        "Lemma 3 completion growth",
        "a partial schedule with g gaps extends to all n jobs with <= g + (n − n') gaps",
        &["pinned", "added", "cases", "bound holds", "mean slack"],
    );
    let mut rng = StdRng::seed_from_u64(555);
    let mut all_hold = true;
    for &pinned in &[0usize, 2, 4, 6] {
        let cases = 30;
        let mut holds = 0u64;
        let mut slack_sum = 0i64;
        let mut added_total = 0usize;
        for _ in 0..cases {
            let inst = wl_multi::feasible_slots(&mut rng, 8, 15, 2);
            let mut partial = vec![None; 8];
            let mut used = Vec::new();
            for (slot, job) in partial.iter_mut().zip(inst.jobs()).take(pinned.min(8)) {
                let t = job.times()[0];
                if !used.contains(&t) {
                    *slot = Some(t);
                    used.push(t);
                }
            }
            let pinned_times: Vec<i64> = partial.iter().flatten().copied().collect();
            let g = MultiSchedule::new(pinned_times.clone()).gap_count() as i64;
            let added = 8 - pinned_times.len();
            added_total += added;
            let full = multi_interval::complete_schedule(&inst, &partial)
                .expect("feasible by construction");
            let slack = g + added as i64 - full.gap_count() as i64;
            holds += (slack >= 0) as u64;
            slack_sum += slack;
        }
        all_hold &= holds == cases;
        table.row([
            pinned.to_string(),
            format!("{:.1}", added_total as f64 / cases as f64),
            cases.to_string(),
            format!("{holds}/{cases}"),
            format!("{:.2}", slack_sum as f64 / cases as f64),
        ]);
    }
    table.verdict(if all_hold {
        "confirmed: the g + (n − n') bound holds in every trial (usually with slack)"
    } else {
        "FALSIFIED"
    });
    table
}

/// E6: the greedy [FHKN06] baseline vs Baptiste's exact optimum.
pub(crate) fn e6() -> Table {
    let mut table = Table::new(
        "E6",
        "[FHKN06] greedy 3-approximation",
        "greedy gap count <= 3 * OPT (one-interval, single processor)",
        &[
            "n",
            "cases",
            "mean greedy",
            "mean OPT",
            "max ratio",
            "<= 3?",
        ],
    );
    let mut ok = true;
    for &n in &[5usize, 8, 11] {
        let cases = 30u64;
        let mut sum_g = 0u64;
        let mut sum_o = 0u64;
        let mut max_ratio: f64 = 1.0;
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(60 * n as u64 + seed);
            let inst = wl_one::feasible(&mut rng, n, (3 * n) as i64, 2, 1);
            let opt = baptiste::min_gaps_value(&inst).expect("feasible");
            let res = greedy_gap::greedy_gap_schedule(&inst).expect("feasible");
            sum_g += res.gaps;
            sum_o += opt;
            // Ratio on the span objective avoids division by zero and is
            // what the 3-approximation analyses bound.
            let ratio = (res.gaps + 1) as f64 / (opt + 1) as f64;
            max_ratio = max_ratio.max(ratio);
            ok &= res.gaps <= 3 * opt.max(1);
        }
        table.row([
            n.to_string(),
            cases.to_string(),
            format!("{:.2}", sum_g as f64 / cases as f64),
            format!("{:.2}", sum_o as f64 / cases as f64),
            format!("{max_ratio:.2}"),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    table.verdict(if ok {
        "confirmed: greedy within factor 3 (typically much closer to optimal)"
    } else {
        "FALSIFIED"
    });
    table
}

/// E11: Theorem 11 greedy throughput vs the exhaustive optimum, across
/// gap budgets; the ratio stays far inside the 2·√n envelope.
pub(crate) fn e11() -> Table {
    let mut table = Table::new(
        "E11",
        "Theorem 11 greedy (minimum-restart throughput)",
        "greedy schedules at least OPT / O(sqrt n) jobs under a gap budget k",
        &[
            "n",
            "k",
            "cases",
            "mean greedy",
            "mean OPT",
            "worst OPT/greedy",
            "2*sqrt(n)",
        ],
    );
    let mut ok = true;
    for &n in &[6usize, 8] {
        for k in 1..=3u64 {
            let cases = 20u64;
            let mut sum_g = 0usize;
            let mut sum_o = 0usize;
            let mut worst: f64 = 1.0;
            for seed in 0..cases {
                let mut rng = StdRng::seed_from_u64(110 * n as u64 + 7 * k + seed);
                let inst = wl_multi::random_slots(&mut rng, n, (2 * n) as i64, 3);
                let greedy = min_restart::greedy_min_restart(&inst, k);
                let (opt, _) = brute_force::max_throughput_spans(&inst, k);
                sum_g += greedy.scheduled;
                sum_o += opt;
                if opt > 0 {
                    worst = worst.max(opt as f64 / greedy.scheduled.max(1) as f64);
                }
            }
            let envelope = min_restart::sqrt_bound(n);
            ok &= worst <= envelope;
            table.row([
                n.to_string(),
                k.to_string(),
                cases.to_string(),
                format!("{:.2}", sum_g as f64 / cases as f64),
                format!("{:.2}", sum_o as f64 / cases as f64),
                format!("{worst:.2}"),
                format!("{envelope:.2}"),
            ]);
        }
    }
    table.verdict(if ok {
        "confirmed: worst observed ratio well inside the O(sqrt n) envelope"
    } else {
        "FALSIFIED"
    });
    table
}

/// E13: Hurkens–Schrijver local-search share on random 3-set systems —
/// the engine quality behind Theorem 3's constant.
pub(crate) fn e13() -> Table {
    let mut table = Table::new(
        "E13",
        "[HS89] set-packing local search",
        "local search with (1,2)- and (2,3)-swaps achieves a large share of the optimum (k/2-approx; >= 1/2, near 2/3 target for k = 3)",
        &["base", "sets", "cases", "greedy share", "LS share", "min LS share"],
    );
    let mut rng = StdRng::seed_from_u64(1313);
    let mut min_overall: f64 = 1.0;
    for &(base, sets) in &[(12u32, 14usize), (15, 20), (18, 26)] {
        let cases = 25;
        let mut g_share = 0.0;
        let mut l_share = 0.0;
        let mut min_share: f64 = 1.0;
        for _ in 0..cases {
            let collection: Vec<Vec<u32>> = (0..sets)
                .map(|_| (0..3).map(|_| rng.gen_range(0..base)).collect())
                .collect();
            let inst = SetPackingInstance::new(base, collection);
            let opt = exact_max_packing(&inst).len().max(1);
            let g = greedy_packing(&inst).len();
            let l = local_search_packing(&inst, 64).len();
            g_share += g as f64 / opt as f64;
            l_share += l as f64 / opt as f64;
            min_share = min_share.min(l as f64 / opt as f64);
        }
        min_overall = min_overall.min(min_share);
        table.row([
            base.to_string(),
            sets.to_string(),
            cases.to_string(),
            format!("{:.3}", g_share / cases as f64),
            format!("{:.3}", l_share / cases as f64),
            format!("{min_share:.3}"),
        ]);
    }
    table.verdict(format!(
        "local search share >= {min_overall:.3} everywhere (guarantee 1/2; 2/3 is the HS limit)"
    ));
    table
}

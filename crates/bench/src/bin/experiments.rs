//! Experiment driver: regenerates every table of the reproduction, and
//! records the engine perf trajectory machine-readably.
//!
//! Usage:
//!   experiments              # run everything
//!   experiments e4 e16       # run selected experiments
//!   experiments --list       # show the catalog
//!   experiments --json PATH  # run the engine perf suite and write the
//!                            # per-benchmark median wall-clock JSON
//!                            # (BENCH_engine.json by convention);
//!                            # optional: --instances N --samples N

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments:");
        for (id, desc) in gaps_bench::catalog() {
            println!("  {id:<4} {desc}");
        }
        return;
    }
    if args.iter().any(|a| a == "--json") {
        let path = flag_value(&args, "--json").unwrap_or_else(|| {
            eprintln!("error: --json needs a file path (e.g. --json BENCH_engine.json)");
            std::process::exit(2);
        });
        let instances = numeric_flag(&args, "--instances", 600);
        let samples = numeric_flag(&args, "--samples", 3);
        eprintln!(
            "measuring engine trajectory ({instances} instances, {samples} samples per point)…"
        );
        let suite = gaps_bench::perf::engine_trajectory(instances, samples);
        for r in &suite.results {
            eprintln!("  {:<28} median {:>12} ns", r.name, r.median_ns);
        }
        for (name, value) in &suite.derived {
            eprintln!("  {name:<36} {value:.3}");
        }
        std::fs::write(&path, suite.to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
        return;
    }
    let start = Instant::now();
    let tables = gaps_bench::run(&args);
    if tables.is_empty() {
        eprintln!("no experiment matches {args:?}; try --list");
        std::process::exit(2);
    }
    for t in &tables {
        println!("{t}");
    }
    println!(
        "ran {} experiment(s) in {:.1}s",
        tables.len(),
        start.elapsed().as_secs_f64()
    );
}

/// Value following `flag`, if present and not itself a flag.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn numeric_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("bad {flag} value {v:?}")),
    }
}

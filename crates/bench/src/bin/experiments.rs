//! Experiment driver: regenerates every table of the reproduction.
//!
//! Usage:
//!   experiments              # run everything
//!   experiments e4 e16       # run selected experiments
//!   experiments --list       # show the catalog

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments:");
        for (id, desc) in gaps_bench::catalog() {
            println!("  {id:<4} {desc}");
        }
        return;
    }
    let start = Instant::now();
    let tables = gaps_bench::run(&args);
    if tables.is_empty() {
        eprintln!("no experiment matches {args:?}; try --list");
        std::process::exit(2);
    }
    for t in &tables {
        println!("{t}");
    }
    println!(
        "ran {} experiment(s) in {:.1}s",
        tables.len(),
        start.elapsed().as_secs_f64()
    );
}

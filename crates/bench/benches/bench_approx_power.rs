//! E4 companion: end-to-end cost of the Theorem 3 pipeline
//! (3-set packing + augmenting completion) as instances grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::multi_interval::approx_min_power;
use gaps_workloads::multi_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_min_power");
    for &n in &[10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(7_000 + n as u64);
        let inst = multi_interval::feasible_slots(&mut rng, n, (3 * n) as i64, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| approx_min_power(inst, 2.0, 16).expect("feasible").power)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_approx
}
criterion_main!(benches);

//! Substrate benchmark: Hopcroft–Karp vs Kuhn on job×slot graphs (the
//! feasibility primitive every algorithm in the paper leans on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_matching::{hopcroft_karp, kuhn, BipartiteGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_graph(n: usize, degree: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for u in 0..n as u32 {
        for _ in 0..degree {
            edges.push((u, rng.gen_range(0..n as u32)));
        }
    }
    BipartiteGraph::from_edges(n, n, edges)
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[100usize, 400, 1600] {
        let g = random_graph(n, 5, 5_000 + n as u64);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &g, |b, g| {
            b.iter(|| hopcroft_karp(g).size())
        });
        group.bench_with_input(BenchmarkId::new("kuhn", n), &g, |b, g| {
            b.iter(|| kuhn(g).size())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_matching
}
criterion_main!(benches);

//! Substrate benchmark: Hopcroft–Karp vs Kuhn on job×slot graphs (the
//! feasibility primitive every algorithm in the paper leans on), plus the
//! incremental-probe pattern the greedy schedulers hammer: one matching
//! reused across a stream of "can these slots become a gap?" queries,
//! against rebuilding a maximum matching from scratch per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_matching::{hopcroft_karp, kuhn, BipartiteGraph, IncrementalMatching};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_graph(n: usize, degree: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for u in 0..n as u32 {
        for _ in 0..degree {
            edges.push((u, rng.gen_range(0..n as u32)));
        }
    }
    BipartiteGraph::from_edges(n, n, edges)
}

/// Job×slot graph with slack: n jobs over 2n slots, each job allowed in a
/// contiguous stretch. Half the slots are spare, so most disable probes
/// succeed and the rematch paths get exercised.
fn probe_graph(n: usize) -> BipartiteGraph {
    let slots = 2 * n;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for d in 0..4u32 {
            let v = (2 * u + d) % slots as u32;
            edges.push((u, v));
        }
    }
    BipartiteGraph::from_edges(n, slots, edges)
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[400usize, 1600, 6400] {
        let g = random_graph(n, 5, 5_000 + n as u64);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &g, |b, g| {
            b.iter(|| hopcroft_karp(g).size())
        });
        group.bench_with_input(BenchmarkId::new("kuhn", n), &g, |b, g| {
            b.iter(|| kuhn(g).size())
        });
    }

    // The greedy feasibility-probe pattern: maximize once, then sweep
    // windows of slots through try_disable_many. Successful windows stay
    // disabled (the matching tightens as the sweep advances, as in the
    // greedy schedulers); failed windows roll back.
    for &n in &[400usize, 1600] {
        let g = probe_graph(n);
        group.bench_with_input(BenchmarkId::new("incremental_probes", n), &g, |b, g| {
            b.iter(|| {
                let mut inc = IncrementalMatching::new(g);
                inc.maximize();
                let slots = g.right_count() as u32;
                let mut disabled = 0usize;
                for start in (0..slots.saturating_sub(4)).step_by(7) {
                    let window: Vec<u32> = (start..start + 4).collect();
                    if inc.try_disable_many(&window) {
                        disabled += window.len();
                    }
                }
                disabled
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_matching
}
criterion_main!(benches);

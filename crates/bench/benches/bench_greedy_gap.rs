//! E6 companion: the [FHKN06] greedy baseline vs the exact DP at p = 1 —
//! the approximation should be much faster while staying within factor 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::{baptiste, greedy_gap};
use gaps_workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_gap_vs_exact");
    for &n in &[16usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(9_000 + n as u64);
        let inst = one_interval::feasible(&mut rng, n, (3 * n) as i64, 2, 1);
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| {
                greedy_gap::greedy_gap_schedule(inst)
                    .expect("feasible")
                    .gaps
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_dp", n), &inst, |b, inst| {
            b.iter(|| baptiste::min_gaps_value(inst).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_greedy
}
criterion_main!(benches);

//! E2 companion: Theorem 1 DP running time as a function of n and p.
//!
//! The claim being benchmarked: the DP is polynomial in both n and p
//! (the paper's surprise is that it is *not* n^O(p)). The Criterion series
//! over p at fixed n should grow by bounded factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::multiproc_dp::min_span_schedule;
use gaps_workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiproc_dp");
    for &n in &[16usize, 32, 48] {
        for &p in &[1u32, 2, 4] {
            let mut rng = StdRng::seed_from_u64(2_000 + n as u64 + p as u64);
            let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 4, p);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("p{p}")),
                &inst,
                |b, inst| b.iter(|| min_span_schedule(inst).expect("feasible").spans),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_dp
}
criterion_main!(benches);

//! E3 companion: Theorem 2 power DP running time over n and alpha
//! (alpha only changes arc costs, so times should be flat in alpha).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::power_dp::min_power_schedule;
use gaps_workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_power(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_dp");
    for &n in &[16usize, 32] {
        for &alpha in &[1u64, 8] {
            let mut rng = StdRng::seed_from_u64(3_000 + n as u64);
            let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 4, 2);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("alpha{alpha}")),
                &inst,
                |b, inst| b.iter(|| min_power_schedule(inst, alpha).expect("feasible").power),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_power
}
criterion_main!(benches);

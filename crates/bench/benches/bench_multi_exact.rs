//! The optimized multi-interval exact solver vs the brute-force
//! reference, per objective, on the scaled banded bench family.
//!
//! The acceptance claim behind `SolverKind::MultiExact` is a ≥ 2× median
//! win over the `brute_force` path at bit-identical optima; the
//! differential suite proves the equality, this group measures the win
//! solver-by-solver (the engine-level view lives in `bench_engine` /
//! `BENCH_engine.json`). Each iteration asserts the two solvers agree so
//! a miscompiled speedup can never be reported silently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::instance::MultiInstance;
use gaps_core::multi_exact::MultiObjective;
use gaps_core::{brute_force, multi_exact};
use gaps_engine::parallel::solve_multi_parallel;
use gaps_workloads::multi_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// One instance per banded shape, fixed seeds: identical inputs for both
/// solvers across runs.
fn family() -> Vec<(&'static str, MultiInstance)> {
    let mut rng = StdRng::seed_from_u64(0x4D17B);
    vec![
        ("n12/bands4", multi_interval::banded(&mut rng, 12, 4, 5, 3)),
        ("n14/bands3", multi_interval::banded(&mut rng, 14, 3, 8, 2)),
        ("n14/bands2", multi_interval::banded(&mut rng, 14, 2, 9, 2)),
    ]
}

fn bench_multi_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_exact");
    for (label, inst) in family() {
        let gaps = multi_exact::min_gaps_multi(&inst).map(|(v, _)| v);
        assert_eq!(
            gaps,
            brute_force::min_gaps_multi(&inst).map(|(v, _)| v),
            "optima diverged on {label}"
        );
        group.bench_with_input(BenchmarkId::new("gaps", label), &inst, |b, inst| {
            b.iter(|| multi_exact::min_gaps_multi(inst))
        });
        group.bench_with_input(BenchmarkId::new("power_a2", label), &inst, |b, inst| {
            b.iter(|| multi_exact::min_power_multi(inst, 2))
        });
        group.bench_with_input(
            BenchmarkId::new("brute_force_gaps", label),
            &inst,
            |b, inst| b.iter(|| brute_force::min_gaps_multi(inst)),
        );
    }
    group.finish();
}

/// PR-10 lever (a): dead-zone decomposition. Clustered instances whose
/// uncrossed zones peel into independent searches; the decomposed
/// production path vs a monolithic search over the identical instance.
fn bench_decomposable(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xDEC0B);
    let mut group = c.benchmark_group("multi_exact_decomposable");
    for (label, inst) in [
        ("c3n18", multi_interval::clustered(&mut rng, 3, 6, 8, 2, 5)),
        ("c4n24", multi_interval::clustered(&mut rng, 4, 6, 8, 2, 5)),
    ] {
        let (dec, stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Gaps);
        assert!(stats.component_jobs.len() >= 3, "{label} failed to peel");
        assert_eq!(
            dec.as_ref().map(|(v, _)| *v),
            multi_exact::solve_multi_undecomposed(&inst, MultiObjective::Gaps).map(|(v, _)| v),
            "optima diverged on {label}"
        );
        group.bench_with_input(BenchmarkId::new("decomposed", label), &inst, |b, inst| {
            b.iter(|| multi_exact::solve_multi_stats(inst, MultiObjective::Gaps))
        });
        group.bench_with_input(BenchmarkId::new("undecomposed", label), &inst, |b, inst| {
            b.iter(|| multi_exact::solve_multi_undecomposed(inst, MultiObjective::Gaps))
        });
    }
    group.finish();
}

/// PR-10 lever (b): the shared-incumbent parallel branch-and-bound on
/// coupled cores decomposition cannot split — every iteration re-checks
/// the bit-identical-optimum contract between worker counts.
fn bench_coupled_core(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xC09EB);
    let mut group = c.benchmark_group("multi_exact_coupled");
    for (label, inst) in [
        ("n18", multi_interval::banded(&mut rng, 18, 3, 8, 2)),
        ("n20", multi_interval::banded(&mut rng, 20, 3, 8, 2)),
    ] {
        let (reference, _) = solve_multi_parallel(&inst, MultiObjective::Gaps, 1);
        for threads in [1usize, 2, 8] {
            let (res, _) = solve_multi_parallel(&inst, MultiObjective::Gaps, threads);
            assert_eq!(
                res, reference,
                "optimum diverged at {threads} workers on {label}"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), label),
                &inst,
                |b, inst| b.iter(|| solve_multi_parallel(inst, MultiObjective::Gaps, threads)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));
    targets = bench_multi_exact, bench_decomposable, bench_coupled_core
}
criterion_main!(benches);

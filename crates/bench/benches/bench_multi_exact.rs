//! The optimized multi-interval exact solver vs the brute-force
//! reference, per objective, on the scaled banded bench family.
//!
//! The acceptance claim behind `SolverKind::MultiExact` is a ≥ 2× median
//! win over the `brute_force` path at bit-identical optima; the
//! differential suite proves the equality, this group measures the win
//! solver-by-solver (the engine-level view lives in `bench_engine` /
//! `BENCH_engine.json`). Each iteration asserts the two solvers agree so
//! a miscompiled speedup can never be reported silently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::instance::MultiInstance;
use gaps_core::{brute_force, multi_exact};
use gaps_workloads::multi_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// One instance per banded shape, fixed seeds: identical inputs for both
/// solvers across runs.
fn family() -> Vec<(&'static str, MultiInstance)> {
    let mut rng = StdRng::seed_from_u64(0x4D17B);
    vec![
        ("n12/bands4", multi_interval::banded(&mut rng, 12, 4, 5, 3)),
        ("n14/bands3", multi_interval::banded(&mut rng, 14, 3, 8, 2)),
        ("n14/bands2", multi_interval::banded(&mut rng, 14, 2, 9, 2)),
    ]
}

fn bench_multi_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_exact");
    for (label, inst) in family() {
        let gaps = multi_exact::min_gaps_multi(&inst).map(|(v, _)| v);
        assert_eq!(
            gaps,
            brute_force::min_gaps_multi(&inst).map(|(v, _)| v),
            "optima diverged on {label}"
        );
        group.bench_with_input(BenchmarkId::new("gaps", label), &inst, |b, inst| {
            b.iter(|| multi_exact::min_gaps_multi(inst))
        });
        group.bench_with_input(BenchmarkId::new("power_a2", label), &inst, |b, inst| {
            b.iter(|| multi_exact::min_power_multi(inst, 2))
        });
        group.bench_with_input(
            BenchmarkId::new("brute_force_gaps", label),
            &inst,
            |b, inst| b.iter(|| brute_force::min_gaps_multi(inst)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));
    targets = bench_multi_exact
}
criterion_main!(benches);

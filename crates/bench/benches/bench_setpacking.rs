//! E13 companion: cost of the Hurkens–Schrijver local search vs plain
//! greedy packing on random 3-set systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_setcover::packing::{greedy_packing, local_search_packing};
use gaps_setcover::SetPackingInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_packing(base: u32, sets: usize, seed: u64) -> SetPackingInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let collection = (0..sets)
        .map(|_| (0..3).map(|_| rng.gen_range(0..base)).collect())
        .collect();
    SetPackingInstance::new(base, collection)
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_packing");
    for &(base, sets) in &[(50u32, 120usize), (150, 400), (400, 1200)] {
        let inst = random_packing(base, sets, 6_000 + sets as u64);
        group.bench_with_input(BenchmarkId::new("greedy", sets), &inst, |b, inst| {
            b.iter(|| greedy_packing(inst).len())
        });
        group.bench_with_input(BenchmarkId::new("local_search", sets), &inst, |b, inst| {
            b.iter(|| local_search_packing(inst, 32).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_packing
}
criterion_main!(benches);

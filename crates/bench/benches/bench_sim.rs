//! E15/E17 companion: simulator throughput (slots simulated per second)
//! under different power policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::edf;
use gaps_sim::{simulate_schedule, Clairvoyant, SleepImmediately, Timeout};
use gaps_workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let alpha = 4u64;
    for &n in &[50usize, 200] {
        let mut rng = StdRng::seed_from_u64(10_000 + n as u64);
        let inst = one_interval::feasible(&mut rng, n, (4 * n) as i64, 3, 2);
        let sched = edf::edf(&inst).expect("feasible");
        group.bench_with_input(BenchmarkId::new("clairvoyant", n), &(), |b, _| {
            b.iter(|| simulate_schedule(&inst, &sched, alpha, &Clairvoyant { alpha }).energy)
        });
        group.bench_with_input(BenchmarkId::new("timeout", n), &(), |b, _| {
            b.iter(|| simulate_schedule(&inst, &sched, alpha, &Timeout { threshold: alpha }).energy)
        });
        group.bench_with_input(BenchmarkId::new("sleep_now", n), &(), |b, _| {
            b.iter(|| simulate_schedule(&inst, &sched, alpha, &SleepImmediately).energy)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);

//! E11 companion: the Theorem 11 greedy's cost per round (matching probes
//! over all candidate intervals dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::min_restart::greedy_min_restart;
use gaps_workloads::multi_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_min_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_restart");
    for &n in &[10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(8_000 + n as u64);
        let inst = multi_interval::random_slots(&mut rng, n, (2 * n) as i64, 3);
        for &k in &[2u64, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("k{k}")),
                &inst,
                |b, inst| b.iter(|| greedy_min_restart(inst, k).scheduled),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_min_restart
}
criterion_main!(benches);

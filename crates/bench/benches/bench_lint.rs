//! Analyzer throughput: one full `lint_workspace` pass (walk + parallel
//! read/lex + all six rules, including the inter-procedural lock-order
//! fixpoint) over the live workspace.
//!
//! The lint gate runs on every CI build, so its latency is part of the
//! edit-compile-lint loop; this smoke bench keeps a timing line for it
//! next to the solver benches and would surface a superlinear regression
//! in the call-graph fixpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::Path;
use std::time::Duration;

fn bench_lint(c: &mut Criterion) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    // The workspace must lint clean — a dirty tree would mean the bench
    // is timing diagnostic rendering too.
    let analysis = gaps_analyzer::analyze_workspace(root).expect("workspace scan");
    assert!(analysis.is_clean(), "workspace must lint clean");
    assert!(analysis.files_scanned > 50, "scan saw the whole workspace");

    let mut group = c.benchmark_group("lint_workspace");
    group.bench_function("full_scan_all_rules", |b| {
        b.iter(|| gaps_analyzer::analyze_workspace(root).expect("workspace scan"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(300));
    targets = bench_lint
}
criterion_main!(benches);

//! E14 companion: Baptiste's single-processor DP scaling in n, compared
//! head-to-head with the general DP at p = 1 (the specialization should
//! be faster thanks to boolean edge states).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_core::{baptiste, multiproc_dp};
use gaps_workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_baptiste(c: &mut Criterion) {
    let mut group = c.benchmark_group("baptiste_vs_general");
    for &n in &[8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(4_000 + n as u64);
        let inst = one_interval::feasible(&mut rng, n, (2 * n) as i64, 4, 1);
        group.bench_with_input(BenchmarkId::new("baptiste", n), &inst, |b, inst| {
            b.iter(|| baptiste::min_spans_value(inst).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("general_p1", n), &inst, |b, inst| {
            b.iter(|| multiproc_dp::min_span_value(inst).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    targets = bench_baptiste
}
criterion_main!(benches);

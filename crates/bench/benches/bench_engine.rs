//! Engine throughput: a mixed batch through the `gaps-engine` portfolio.
//!
//! The claims being benchmarked: (1) batch throughput scales with
//! `--threads` on cold caches (the acceptance target is ≥ 2× at 4
//! threads on a ≥ 4-core machine — thread scaling cannot materialize on
//! fewer cores than threads); (2) a warm canonicalized cache
//! short-circuits solving, so the warm pass beats every cold
//! configuration by a wide margin. `experiments --json BENCH_engine.json`
//! records the same series machine-readably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaps_bench::perf::mixed_batch;
use gaps_engine::{Engine, EngineConfig, Objective};
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let batch = mixed_batch(200);
    let mut group = c.benchmark_group("engine_batch");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cold", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let engine = Engine::new(EngineConfig {
                        threads,
                        ..EngineConfig::default()
                    });
                    engine.run_batch(&batch, Objective::Gaps)
                })
            },
        );
    }

    let warm_engine = Engine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let (_, cold_report) = warm_engine.run_batch(&batch, Objective::Gaps);
    assert_eq!(cold_report.requests, batch.len());
    group.bench_function(BenchmarkId::new("warm", "threads=4"), |b| {
        b.iter(|| warm_engine.run_batch(&batch, Objective::Gaps))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(300));
    targets = bench_engine
}
criterion_main!(benches);

//! # gaps-setcover
//!
//! Set-cover and set-packing substrate for the `gap-scheduling` workspace.
//!
//! The SPAA 2007 paper uses these classic problems in two directions:
//!
//! * **Hardness sources** (Theorems 4–10): set cover and B-set cover are
//!   reduced *to* gap/power scheduling, transferring the Ω(lg n) and
//!   Ω(lg α) inapproximability bounds. The gadget builders live in
//!   `gaps-reductions`; this crate supplies the instances, an exact solver
//!   (to verify gadget roundtrips on small inputs), and the greedy
//!   H(n)-approximation (to drive end-to-end experiments).
//! * **Algorithmic engine** (Theorem 3): the (1 + (2/3 + ε)α)-approximation
//!   schedules pairs of jobs in 2-blocks found by a **3-set packing**; the
//!   required packing quality comes from Hurkens–Schrijver-style local
//!   search ([`packing::local_search_packing`]).
//!
//! Elements and set indices are plain `u32`s; instances are validated on
//! construction.

mod exact;
mod greedy;
mod instance;
pub mod packing;

pub use exact::exact_min_cover;
pub use greedy::greedy_cover;
pub use instance::{CoverError, SetCoverInstance};
pub use packing::SetPackingInstance;

//! Maximum k-set packing: greedy, Hurkens–Schrijver-style local search, and
//! an exact solver for small instances.
//!
//! Theorem 3 of the paper schedules pairs of jobs in consecutive time slots
//! `(t, t+1)`; each candidate pair is a **3-set** `{job_a, job_b, slot_t}`
//! over the base set (jobs ∪ slots), and a maximum disjoint subcollection is
//! a maximum set packing. Hurkens–Schrijver \[HS89\] show local search with
//! swaps of size ≤ t approaches a 2/k share of the optimum for k-set
//! packing; for the paper's k = 2 pipeline (3-sets), the share approaches
//! 2/3, which is exactly the constant in the (1 + (2/3 + ε)α) bound.
//!
//! [`local_search_packing`] implements pure additions, (1 out, 2 in), and
//! (2 out, 3 in) improvements; experiment E13 measures the achieved share
//! against the exact optimum.

/// A set-packing instance: a base set `{0, …, base_size−1}` and a
/// collection of subsets; the goal is a maximum subcollection of pairwise
/// disjoint sets.
#[derive(Clone, Debug)]
pub struct SetPackingInstance {
    base_size: u32,
    sets: Vec<Vec<u32>>,
    /// Bitmask representation of each set, `⌈base_size/64⌉` words per set.
    masks: Vec<Vec<u64>>,
    words: usize,
}

impl SetPackingInstance {
    /// Build an instance; sets are sorted and deduplicated.
    ///
    /// # Panics
    /// Panics if a set references an element `>= base_size`.
    pub fn new(base_size: u32, sets: Vec<Vec<u32>>) -> SetPackingInstance {
        let words = (base_size as usize).div_ceil(64).max(1);
        let mut clean = Vec::with_capacity(sets.len());
        let mut masks = Vec::with_capacity(sets.len());
        for (i, mut set) in sets.into_iter().enumerate() {
            set.sort_unstable();
            set.dedup();
            let mut mask = vec![0u64; words];
            for &e in &set {
                assert!(
                    e < base_size,
                    "set {i} contains out-of-range element {e} (base_size = {base_size})"
                );
                mask[(e / 64) as usize] |= 1 << (e % 64);
            }
            clean.push(set);
            masks.push(mask);
        }
        SetPackingInstance {
            base_size,
            sets: clean,
            masks,
            words,
        }
    }

    /// Base-set size.
    #[inline]
    pub fn base_size(&self) -> u32 {
        self.base_size
    }

    /// Number of candidate sets.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `i`, sorted.
    #[inline]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }

    /// Are sets `i` and `j` disjoint?
    #[inline]
    pub fn disjoint(&self, i: usize, j: usize) -> bool {
        self.masks[i]
            .iter()
            .zip(&self.masks[j])
            .all(|(a, b)| a & b == 0)
    }

    /// Is set `i` disjoint from an accumulated occupancy mask?
    #[inline]
    fn disjoint_from_mask(&self, i: usize, occupied: &[u64]) -> bool {
        self.masks[i].iter().zip(occupied).all(|(a, b)| a & b == 0)
    }

    fn add_to_mask(&self, i: usize, occupied: &mut [u64]) {
        for (w, m) in occupied.iter_mut().zip(&self.masks[i]) {
            *w |= m;
        }
    }

    fn remove_from_mask(&self, i: usize, occupied: &mut [u64]) {
        for (w, m) in occupied.iter_mut().zip(&self.masks[i]) {
            *w &= !m;
        }
    }

    /// Check that `chosen` is a valid packing (pairwise disjoint, in range).
    pub fn verify_packing(&self, chosen: &[usize]) -> Result<(), String> {
        let mut occupied = vec![0u64; self.words];
        for &i in chosen {
            if i >= self.sets.len() {
                return Err(format!("unknown set index {i}"));
            }
            if !self.disjoint_from_mask(i, &occupied) {
                return Err(format!("set {i} overlaps an earlier chosen set"));
            }
            self.add_to_mask(i, &mut occupied);
        }
        Ok(())
    }
}

/// Greedy maximal packing: scan sets in index order, keep every set disjoint
/// from those already kept. Guarantees a 1/k share of the optimum for
/// k-bounded sets.
pub fn greedy_packing(inst: &SetPackingInstance) -> Vec<usize> {
    let mut occupied = vec![0u64; inst.words];
    let mut chosen = Vec::new();
    for i in 0..inst.set_count() {
        if !inst.sets[i].is_empty() && inst.disjoint_from_mask(i, &occupied) {
            inst.add_to_mask(i, &mut occupied);
            chosen.push(i);
        }
    }
    chosen
}

/// Hurkens–Schrijver-style local-search packing.
///
/// Starts from [`greedy_packing`] and applies, until fixpoint (or
/// `max_rounds` sweeps):
///
/// 1. **additions** — any unused set disjoint from the packing enters;
/// 2. **(1, 2)-swaps** — one chosen set leaves, two disjoint sets that
///    conflict only with it enter;
/// 3. **(2, 3)-swaps** — two chosen sets leave, three enter.
///
/// Every move strictly increases the packing size, so termination is
/// immediate (size ≤ set count). For 3-bounded sets the (1,2)-local optimum
/// already guarantees a 1/2 share; the (2,3) moves push typical instances
/// close to the 2/3 share that the paper's constant assumes (measured in
/// experiment E13).
pub fn local_search_packing(inst: &SetPackingInstance, max_rounds: usize) -> Vec<usize> {
    let mut chosen: Vec<usize> = greedy_packing(inst);
    let mut in_packing = vec![false; inst.set_count()];
    for &i in &chosen {
        in_packing[i] = true;
    }

    for _ in 0..max_rounds {
        let mut improved = false;

        // Occupancy mask of the current packing.
        let mut occupied = vec![0u64; inst.words];
        for &i in &chosen {
            inst.add_to_mask(i, &mut occupied);
        }

        // 1. Free additions.
        for (i, included) in in_packing.iter_mut().enumerate() {
            if !*included && !inst.sets[i].is_empty() && inst.disjoint_from_mask(i, &occupied) {
                *included = true;
                chosen.push(i);
                inst.add_to_mask(i, &mut occupied);
                improved = true;
            }
        }

        // Conflict lists: for every unused set, which chosen sets it hits.
        // `owner[e]` = chosen set containing element e (packing sets are
        // disjoint, so at most one).
        let mut owner = vec![usize::MAX; inst.base_size as usize];
        for &c in &chosen {
            for &e in inst.set(c) {
                owner[e as usize] = c;
            }
        }
        let conflicts = |i: usize| -> Vec<usize> {
            let mut cs: Vec<usize> = inst
                .set(i)
                .iter()
                .filter_map(|&e| {
                    let o = owner[e as usize];
                    (o != usize::MAX).then_some(o)
                })
                .collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        };

        // 2. (1, 2)-swaps: candidates conflicting with exactly one chosen
        // set, grouped by that set.
        let mut single_conflict: Vec<Vec<usize>> = vec![Vec::new(); inst.set_count()];
        let mut double_conflict: Vec<(usize, usize, usize)> = Vec::new();
        for (i, &included) in in_packing.iter().enumerate() {
            if included || inst.sets[i].is_empty() {
                continue;
            }
            let cs = conflicts(i);
            match cs.len() {
                0 => unreachable!("free additions were exhausted above"),
                1 => single_conflict[cs[0]].push(i),
                2 => double_conflict.push((i, cs[0], cs[1])),
                _ => {}
            }
        }
        let mut removed = vec![false; inst.set_count()];
        'swap12: for ci in 0..chosen.len() {
            let c = chosen[ci];
            let cands = &single_conflict[c];
            for (ai, &a) in cands.iter().enumerate() {
                for &b in &cands[ai + 1..] {
                    if inst.disjoint(a, b) {
                        // Swap c out; a, b in.
                        in_packing[c] = false;
                        removed[c] = true;
                        in_packing[a] = true;
                        in_packing[b] = true;
                        chosen.retain(|&x| x != c);
                        chosen.push(a);
                        chosen.push(b);
                        improved = true;
                        break 'swap12;
                    }
                }
            }
        }
        if improved {
            continue;
        }

        // 3. (2, 3)-swaps: pick a candidate with exactly two conflicts
        // {c1, c2}; the other two entrants must conflict only within
        // {c1, c2} and be mutually disjoint.
        'swap23: for &(a, c1, c2) in &double_conflict {
            // Entrant pool: disjoint from `a`, conflicts ⊆ {c1, c2}.
            let pool: Vec<usize> = single_conflict[c1]
                .iter()
                .chain(&single_conflict[c2])
                .copied()
                .chain(
                    double_conflict
                        .iter()
                        .filter(|&&(_, d1, d2)| d1 == c1 && d2 == c2)
                        .map(|&(i, _, _)| i),
                )
                .filter(|&i| i != a && inst.disjoint(a, i))
                .collect();
            for (bi, &b) in pool.iter().enumerate() {
                for &d in &pool[bi + 1..] {
                    if inst.disjoint(b, d) {
                        in_packing[c1] = false;
                        in_packing[c2] = false;
                        in_packing[a] = true;
                        in_packing[b] = true;
                        in_packing[d] = true;
                        chosen.retain(|&x| x != c1 && x != c2);
                        chosen.push(a);
                        chosen.push(b);
                        chosen.push(d);
                        improved = true;
                        break 'swap23;
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }

    debug_assert!(inst.verify_packing(&chosen).is_ok());
    chosen
}

/// Exact maximum packing by branch and bound. Exponential; for the small
/// instances of tests and ratio experiments.
pub fn exact_max_packing(inst: &SetPackingInstance) -> Vec<usize> {
    // Order sets by increasing size: small sets block less.
    let mut order: Vec<usize> = (0..inst.set_count())
        .filter(|&i| !inst.sets[i].is_empty())
        .collect();
    order.sort_by_key(|&i| inst.sets[i].len());
    let mut best = greedy_packing(inst);
    let mut chosen = Vec::new();
    let mut occupied = vec![0u64; inst.words];
    branch(inst, &order, 0, &mut occupied, &mut chosen, &mut best);
    best
}

fn branch(
    inst: &SetPackingInstance,
    order: &[usize],
    pos: usize,
    occupied: &mut Vec<u64>,
    chosen: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    if chosen.len() > best.len() {
        *best = chosen.clone();
    }
    // Bound: even taking every remaining set cannot beat the incumbent.
    if pos >= order.len() || chosen.len() + (order.len() - pos) <= best.len() {
        return;
    }
    let s = order[pos];
    if inst.disjoint_from_mask(s, occupied) {
        inst.add_to_mask(s, occupied);
        chosen.push(s);
        branch(inst, order, pos + 1, occupied, chosen, best);
        chosen.pop();
        inst.remove_from_mask(s, occupied);
    }
    branch(inst, order, pos + 1, occupied, chosen, best);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple_instance() -> SetPackingInstance {
        // Base {0..8}; a perfect partition into 3 triples exists, plus
        // overlapping decoys that greedy may grab first.
        SetPackingInstance::new(
            9,
            vec![
                vec![0, 1, 3], // decoy crossing two partition triples
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![6, 7, 8],
                vec![2, 4, 6], // decoy
            ],
        )
    }

    #[test]
    fn greedy_is_maximal_and_valid() {
        let inst = triple_instance();
        let g = greedy_packing(&inst);
        inst.verify_packing(&g).unwrap();
        // Maximality: no unused set is disjoint from all chosen.
        for i in 0..inst.set_count() {
            if !g.contains(&i) {
                assert!(
                    g.iter().any(|&c| !inst.disjoint(i, c)),
                    "set {i} could still be added"
                );
            }
        }
    }

    #[test]
    fn local_search_beats_greedy_on_decoys() {
        let inst = triple_instance();
        let g = greedy_packing(&inst);
        let ls = local_search_packing(&inst, 100);
        inst.verify_packing(&ls).unwrap();
        assert!(ls.len() >= g.len());
        assert_eq!(ls.len(), 3, "perfect partition should be found");
    }

    #[test]
    fn exact_max_packing_optimal_on_partition() {
        let inst = triple_instance();
        let opt = exact_max_packing(&inst);
        inst.verify_packing(&opt).unwrap();
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn empty_sets_never_packed() {
        let inst = SetPackingInstance::new(3, vec![vec![], vec![0], vec![]]);
        assert_eq!(greedy_packing(&inst), vec![1]);
        assert_eq!(local_search_packing(&inst, 10), vec![1]);
        assert_eq!(exact_max_packing(&inst), vec![1]);
    }

    #[test]
    fn one_two_swap_fires() {
        // Greedy (index order) takes {0,1} (set 0) blocking both {0,2} and
        // {1,3}; a (1,2)-swap must recover the optimum of 2.
        let inst = SetPackingInstance::new(4, vec![vec![0, 1], vec![0, 2], vec![1, 3]]);
        assert_eq!(greedy_packing(&inst).len(), 1);
        let ls = local_search_packing(&inst, 10);
        inst.verify_packing(&ls).unwrap();
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn two_three_swap_fires() {
        // Chosen pair {0,1,2}, {3,4,5} (indices 0,1) blocks the triple
        // partition {0,1,6},{2,3,7},{4,5,8}: a (2,3)-swap is required.
        let inst = SetPackingInstance::new(
            9,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 1, 6],
                vec![2, 3, 7],
                vec![4, 5, 8],
            ],
        );
        assert_eq!(greedy_packing(&inst).len(), 2);
        let ls = local_search_packing(&inst, 10);
        inst.verify_packing(&ls).unwrap();
        assert_eq!(ls.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out-of-range element")]
    fn out_of_range_element_panics() {
        SetPackingInstance::new(2, vec![vec![0, 7]]);
    }

    #[test]
    fn verify_packing_detects_overlap() {
        let inst = SetPackingInstance::new(3, vec![vec![0, 1], vec![1, 2]]);
        assert!(inst.verify_packing(&[0]).is_ok());
        assert!(inst.verify_packing(&[0, 1]).is_err());
        assert!(inst.verify_packing(&[5]).is_err());
    }

    #[test]
    fn large_base_multiword_masks() {
        // Elements beyond 64 exercise multi-word masks.
        let inst = SetPackingInstance::new(
            200,
            vec![vec![0, 100, 199], vec![1, 101, 198], vec![0, 101, 197]],
        );
        assert!(inst.disjoint(0, 1));
        assert!(!inst.disjoint(0, 2));
        assert!(!inst.disjoint(1, 2));
        let opt = exact_max_packing(&inst);
        assert_eq!(opt.len(), 2);
    }
}

//! The classic greedy H(n)-approximation for set cover.

use crate::SetCoverInstance;

/// Greedy set cover: repeatedly pick the set covering the most uncovered
/// elements. Returns the chosen set indices in pick order, or `None` if the
/// instance is infeasible.
///
/// The ratio is H(n) ≤ ln n + 1, matching (up to constants) the Ω(lg n)
/// hardness the paper transfers to multi-interval scheduling in Theorems
/// 4 and 6.
///
/// ```
/// use gaps_setcover::{SetCoverInstance, greedy_cover};
/// let inst = SetCoverInstance::new(4, vec![vec![0, 1, 2], vec![2, 3], vec![0]]).unwrap();
/// let cover = greedy_cover(&inst).unwrap();
/// inst.verify_cover(&cover).unwrap();
/// assert_eq!(cover.len(), 2);
/// ```
pub fn greedy_cover(inst: &SetCoverInstance) -> Option<Vec<usize>> {
    let n = inst.universe_size() as usize;
    let mut covered = vec![false; n];
    let mut remaining = n;
    let mut chosen = Vec::new();

    while remaining > 0 {
        let (best, gain) = (0..inst.set_count())
            .map(|i| {
                let gain = inst
                    .set(i)
                    .iter()
                    .filter(|&&e| !covered[e as usize])
                    .count();
                (i, gain)
            })
            .max_by_key(|&(_, gain)| gain)?;
        if gain == 0 {
            return None; // some element is in no set
        }
        chosen.push(best);
        for &e in inst.set(best) {
            if !covered[e as usize] {
                covered[e as usize] = true;
                remaining -= 1;
            }
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_covers_simple_instance() {
        let inst =
            SetCoverInstance::new(5, vec![vec![0, 1], vec![2, 3], vec![4], vec![0, 2, 4]]).unwrap();
        let cover = greedy_cover(&inst).unwrap();
        inst.verify_cover(&cover).unwrap();
    }

    #[test]
    fn greedy_returns_none_on_infeasible() {
        let inst = SetCoverInstance::new(2, vec![vec![0]]).unwrap();
        assert_eq!(greedy_cover(&inst), None);
    }

    #[test]
    fn greedy_on_empty_universe_is_empty() {
        let inst = SetCoverInstance::new(0, vec![vec![]]).unwrap();
        assert_eq!(greedy_cover(&inst), Some(vec![]));
    }

    #[test]
    fn greedy_exhibits_log_gap_on_classic_bad_family() {
        // Classic tight family: universe of 2^k + 2^k elements arranged so
        // greedy picks k+1 sets while OPT is 2. We use k = 3 (n = 14... use
        // the standard construction with rows R0, R1 and columns C_i of
        // sizes 8, 4, 2).
        // Universe: 0..13. Rows: evens / odds of each column block.
        // Columns: C0 = {0..7}, C1 = {8..11}, C2 = {12..13}.
        let c0: Vec<u32> = (0..8).collect();
        let c1: Vec<u32> = (8..12).collect();
        let c2: Vec<u32> = (12..14).collect();
        let row0: Vec<u32> = (0..14).filter(|e| e % 2 == 0).collect();
        let row1: Vec<u32> = (0..14).filter(|e| e % 2 == 1).collect();
        let inst = SetCoverInstance::new(14, vec![row0, row1, c0, c1, c2]).unwrap();
        let cover = greedy_cover(&inst).unwrap();
        inst.verify_cover(&cover).unwrap();
        // Greedy takes C0 (8 > 7), then C1... then C2 or rows; in any case
        // at least 3 sets, while OPT = 2 (the two rows).
        assert!(
            cover.len() >= 3,
            "greedy should be suboptimal here, got {cover:?}"
        );
        assert_eq!(crate::exact_min_cover(&inst).unwrap().len(), 2);
    }
}

//! Set-cover instances.

use std::fmt;

/// Errors raised by [`SetCoverInstance`] construction and solution checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// A set references an element `>= universe_size`.
    ElementOutOfRange { set: usize, element: u32 },
    /// Some element belongs to no set, so no cover exists.
    UncoverableElement { element: u32 },
    /// A proposed solution references a set index `>= sets.len()`.
    SetOutOfRange { set: usize },
    /// A proposed solution leaves an element uncovered.
    NotACover { element: u32 },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::ElementOutOfRange { set, element } => {
                write!(f, "set {set} contains out-of-range element {element}")
            }
            CoverError::UncoverableElement { element } => {
                write!(
                    f,
                    "element {element} belongs to no set; instance is infeasible"
                )
            }
            CoverError::SetOutOfRange { set } => write!(f, "solution uses unknown set {set}"),
            CoverError::NotACover { element } => {
                write!(f, "solution leaves element {element} uncovered")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// An instance of (unweighted) set cover: a universe `{0, …, n−1}` and a
/// collection of subsets. The goal is to choose the fewest sets whose union
/// is the whole universe.
///
/// This is the source problem of the paper's Theorems 4 and 6; the
/// **B-set cover** restriction (every set has size ≤ B, Theorems 5 and 10)
/// is the same type with [`SetCoverInstance::max_set_size`] ≤ B.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetCoverInstance {
    universe_size: u32,
    sets: Vec<Vec<u32>>,
}

impl SetCoverInstance {
    /// Build and validate an instance. Sets are sorted and deduplicated.
    ///
    /// Fails if a set mentions an out-of-range element. An element covered
    /// by no set is allowed at construction (the instance is then
    /// infeasible; [`SetCoverInstance::is_feasible`] reports it).
    pub fn new(universe_size: u32, sets: Vec<Vec<u32>>) -> Result<SetCoverInstance, CoverError> {
        let mut sets = sets;
        for (i, set) in sets.iter_mut().enumerate() {
            set.sort_unstable();
            set.dedup();
            if let Some(&e) = set.iter().find(|&&e| e >= universe_size) {
                return Err(CoverError::ElementOutOfRange { set: i, element: e });
            }
        }
        Ok(SetCoverInstance {
            universe_size,
            sets,
        })
    }

    /// Number of elements in the universe.
    #[inline]
    pub fn universe_size(&self) -> u32 {
        self.universe_size
    }

    /// Number of sets in the collection.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `i`, sorted.
    #[inline]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }

    /// All sets.
    #[inline]
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// Size of the largest set (the `B` of B-set cover); 0 if no sets.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True iff every element belongs to at least one set.
    pub fn is_feasible(&self) -> bool {
        self.first_uncoverable().is_none()
    }

    /// The smallest element covered by no set, if any.
    pub fn first_uncoverable(&self) -> Option<u32> {
        let mut covered = vec![false; self.universe_size as usize];
        for set in &self.sets {
            for &e in set {
                covered[e as usize] = true;
            }
        }
        covered.iter().position(|&c| !c).map(|e| e as u32)
    }

    /// Check that `chosen` (set indices) forms a cover.
    pub fn verify_cover(&self, chosen: &[usize]) -> Result<(), CoverError> {
        let mut covered = vec![false; self.universe_size as usize];
        for &i in chosen {
            let set = self
                .sets
                .get(i)
                .ok_or(CoverError::SetOutOfRange { set: i })?;
            for &e in set {
                covered[e as usize] = true;
            }
        }
        match covered.iter().position(|&c| !c) {
            Some(e) => Err(CoverError::NotACover { element: e as u32 }),
            None => Ok(()),
        }
    }

    /// For every element, the list of sets containing it.
    pub fn element_to_sets(&self) -> Vec<Vec<usize>> {
        let mut map = vec![Vec::new(); self.universe_size as usize];
        for (i, set) in self.sets.iter().enumerate() {
            for &e in set {
                map[e as usize].push(i);
            }
        }
        map
    }

    /// A trivially feasible lower bound on the optimum: `⌈n / B⌉` where `B`
    /// is the largest set size (used in the Theorem 5 analysis: the optimal
    /// B-set cover has size ≥ n/B).
    pub fn size_lower_bound(&self) -> usize {
        let b = self.max_set_size();
        if b == 0 {
            return usize::MAX;
        }
        (self.universe_size as usize).div_ceil(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let inst = SetCoverInstance::new(4, vec![vec![3, 1, 1, 0], vec![2]]).unwrap();
        assert_eq!(inst.set(0), &[0, 1, 3]);
        assert_eq!(inst.max_set_size(), 3);
        assert!(inst.is_feasible());
    }

    #[test]
    fn out_of_range_element_rejected() {
        let err = SetCoverInstance::new(2, vec![vec![0, 5]]).unwrap_err();
        assert_eq!(err, CoverError::ElementOutOfRange { set: 0, element: 5 });
    }

    #[test]
    fn infeasible_instance_detected() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1]]).unwrap();
        assert!(!inst.is_feasible());
        assert_eq!(inst.first_uncoverable(), Some(2));
    }

    #[test]
    fn verify_cover_accepts_and_rejects() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1], vec![2], vec![0]]).unwrap();
        inst.verify_cover(&[0, 1]).unwrap();
        assert_eq!(
            inst.verify_cover(&[0, 2]),
            Err(CoverError::NotACover { element: 2 })
        );
        assert_eq!(
            inst.verify_cover(&[9]),
            Err(CoverError::SetOutOfRange { set: 9 })
        );
    }

    #[test]
    fn element_to_sets_inverts_membership() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let map = inst.element_to_sets();
        assert_eq!(map[0], vec![0]);
        assert_eq!(map[1], vec![0, 1]);
        assert_eq!(map[2], vec![1]);
    }

    #[test]
    fn size_lower_bound_is_ceiling() {
        let inst = SetCoverInstance::new(5, vec![vec![0, 1], vec![2, 3], vec![4]]).unwrap();
        assert_eq!(inst.size_lower_bound(), 3); // ceil(5/2)
    }

    #[test]
    fn empty_universe_is_feasible() {
        let inst = SetCoverInstance::new(0, vec![]).unwrap();
        assert!(inst.is_feasible());
        inst.verify_cover(&[]).unwrap();
    }
}

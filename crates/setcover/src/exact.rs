//! Exact minimum set cover by branch and bound.
//!
//! Exponential in the worst case; intended for the small instances used to
//! verify the hardness-gadget roundtrips (Theorems 4–10), where exact
//! optima on *both* sides of a reduction must coincide.

use crate::SetCoverInstance;

/// Compute a minimum set cover, or `None` if the instance is infeasible.
///
/// Branches on the lowest-indexed uncovered element (one of the sets
/// containing it must be chosen — this keeps the branching factor at the
/// element's frequency rather than the number of sets), with two prunes:
/// the incumbent bound and a greedy-coverage lower bound.
pub fn exact_min_cover(inst: &SetCoverInstance) -> Option<Vec<usize>> {
    if inst.universe_size() == 0 {
        return Some(Vec::new());
    }
    if !inst.is_feasible() {
        return None;
    }
    let element_sets = inst.element_to_sets();
    // Upper bound from greedy to prune early.
    let greedy = crate::greedy_cover(inst).expect("feasible instance");
    let mut best: Vec<usize> = greedy;
    let mut covered = vec![0u32; inst.universe_size() as usize];
    let mut chosen: Vec<usize> = Vec::new();
    let max_set = inst.max_set_size().max(1);
    branch(
        inst,
        &element_sets,
        max_set,
        &mut covered,
        0,
        &mut chosen,
        &mut best,
    );
    Some(best)
}

fn branch(
    inst: &SetCoverInstance,
    element_sets: &[Vec<usize>],
    max_set: usize,
    covered: &mut [u32],
    mut first_uncovered: usize,
    chosen: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    while first_uncovered < covered.len() && covered[first_uncovered] > 0 {
        first_uncovered += 1;
    }
    if first_uncovered == covered.len() {
        if chosen.len() < best.len() {
            *best = chosen.clone();
        }
        return;
    }
    // Lower bound: every remaining set covers at most `max_set` of the
    // uncovered elements.
    let uncovered = covered[first_uncovered..]
        .iter()
        .filter(|&&c| c == 0)
        .count();
    if chosen.len() + uncovered.div_ceil(max_set) >= best.len() {
        return;
    }
    for &s in &element_sets[first_uncovered] {
        chosen.push(s);
        for &e in inst.set(s) {
            covered[e as usize] += 1;
        }
        branch(
            inst,
            element_sets,
            max_set,
            covered,
            first_uncovered,
            chosen,
            best,
        );
        for &e in inst.set(s) {
            covered[e as usize] -= 1;
        }
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_finds_optimal_two_rows() {
        // Rows vs columns family where greedy is fooled but OPT = 2.
        let row0: Vec<u32> = (0..6).filter(|e| e % 2 == 0).collect();
        let row1: Vec<u32> = (0..6).filter(|e| e % 2 == 1).collect();
        let inst =
            SetCoverInstance::new(6, vec![row0, row1, vec![0, 1, 2, 3], vec![4, 5]]).unwrap();
        let opt = exact_min_cover(&inst).unwrap();
        inst.verify_cover(&opt).unwrap();
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn exact_handles_singletons() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1], vec![2]]).unwrap();
        let opt = exact_min_cover(&inst).unwrap();
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn exact_on_infeasible_returns_none() {
        let inst = SetCoverInstance::new(2, vec![vec![1]]).unwrap();
        assert_eq!(exact_min_cover(&inst), None);
    }

    #[test]
    fn exact_never_beaten_by_greedy() {
        // A few structured instances.
        let cases = vec![
            SetCoverInstance::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]).unwrap(),
            SetCoverInstance::new(
                6,
                vec![
                    vec![0, 1, 2],
                    vec![3, 4, 5],
                    vec![0, 3],
                    vec![1, 4],
                    vec![2, 5],
                ],
            )
            .unwrap(),
            SetCoverInstance::new(1, vec![vec![0], vec![0]]).unwrap(),
        ];
        for inst in cases {
            let opt = exact_min_cover(&inst).unwrap();
            let greedy = crate::greedy_cover(&inst).unwrap();
            inst.verify_cover(&opt).unwrap();
            assert!(opt.len() <= greedy.len());
        }
    }

    #[test]
    fn exact_empty_universe() {
        let inst = SetCoverInstance::new(0, vec![]).unwrap();
        assert_eq!(exact_min_cover(&inst), Some(vec![]));
    }
}

//! Property-based tests for set cover and set packing.

use gaps_setcover::packing::{exact_max_packing, greedy_packing, local_search_packing};
use gaps_setcover::{exact_min_cover, greedy_cover, SetCoverInstance, SetPackingInstance};
use proptest::prelude::*;

/// Random feasible set-cover instance: universe ≤ n, sets ≤ s of size ≤ b,
/// plus singleton patches so every element is coverable.
fn arb_cover(n: u32, s: usize, b: usize) -> impl Strategy<Value = SetCoverInstance> {
    (1..=n).prop_flat_map(move |univ| {
        proptest::collection::vec(proptest::collection::vec(0..univ, 1..=b), 1..=s).prop_map(
            move |mut sets| {
                // Patch coverage: add singletons for uncovered elements.
                let mut covered = vec![false; univ as usize];
                for set in &sets {
                    for &e in set {
                        covered[e as usize] = true;
                    }
                }
                for (e, c) in covered.iter().enumerate() {
                    if !c {
                        sets.push(vec![e as u32]);
                    }
                }
                SetCoverInstance::new(univ, sets).unwrap()
            },
        )
    })
}

/// Random 3-bounded set-packing instance.
fn arb_packing(base: u32, s: usize) -> impl Strategy<Value = SetPackingInstance> {
    (3..=base).prop_flat_map(move |b| {
        proptest::collection::vec(proptest::collection::vec(0..b, 1..=3), 0..=s)
            .prop_map(move |sets| SetPackingInstance::new(b, sets))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Greedy always produces a valid cover on feasible instances, and the
    /// exact solver never does worse.
    #[test]
    fn greedy_valid_exact_no_worse(inst in arb_cover(10, 8, 4)) {
        let greedy = greedy_cover(&inst).expect("instance was patched feasible");
        inst.verify_cover(&greedy).unwrap();
        let exact = exact_min_cover(&inst).unwrap();
        inst.verify_cover(&exact).unwrap();
        prop_assert!(exact.len() <= greedy.len());
        // H(n) ratio sanity: greedy ≤ (ln n + 1) · OPT.
        let h = ((inst.universe_size() as f64).ln() + 1.0).max(1.0);
        prop_assert!((greedy.len() as f64) <= h * exact.len() as f64 + 1e-9);
    }

    /// Exact cover size is a true lower bound over many random covers.
    #[test]
    fn exact_is_minimum_among_random_subsets(inst in arb_cover(8, 6, 3), seed in 0u64..1000) {
        let exact = exact_min_cover(&inst).unwrap();
        // Try a few random subsets of the same size minus one: none covers.
        let k = exact.len();
        if k > 0 {
            let mut rng = seed;
            for _ in 0..20 {
                let mut subset = Vec::new();
                for _ in 0..k - 1 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    subset.push((rng >> 33) as usize % inst.set_count());
                }
                prop_assert!(inst.verify_cover(&subset).is_err() || subset.len() >= k,
                    "found a cover smaller than the 'exact' optimum");
            }
        }
    }

    /// All packing algorithms return valid packings with the expected
    /// ordering: greedy ≤ local search ≤ exact.
    #[test]
    fn packing_quality_ordering(inst in arb_packing(12, 10)) {
        let g = greedy_packing(&inst);
        let ls = local_search_packing(&inst, 64);
        let ex = exact_max_packing(&inst);
        inst.verify_packing(&g).unwrap();
        inst.verify_packing(&ls).unwrap();
        inst.verify_packing(&ex).unwrap();
        prop_assert!(g.len() <= ls.len());
        prop_assert!(ls.len() <= ex.len());
        // Greedy maximality gives the 1/k bound for 3-bounded sets.
        prop_assert!(ex.len() <= 3 * g.len().max(1));
    }

    /// Local search achieves at least half the optimum on 3-bounded sets
    /// ((1,2)-local optimality guarantee).
    #[test]
    fn local_search_half_share(inst in arb_packing(12, 12)) {
        let ls = local_search_packing(&inst, 64);
        let ex = exact_max_packing(&inst);
        prop_assert!(2 * ls.len() >= ex.len(),
            "local search {} vs optimum {}", ls.len(), ex.len());
    }
}

//! SIGTERM/SIGINT → a process-global "please drain" flag.
//!
//! The container has no `libc` crate, so the two symbols we need are
//! declared directly against the platform C library. The handler does
//! the only async-signal-safe thing it can: store to an atomic that the
//! accept loop polls. Everything else about shutdown (drain the queue,
//! join the pool, flush the report) happens on ordinary threads.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// POSIX signal numbers (Linux values; this workspace targets Linux).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_terminate(_signum: i32) {
    // A relaxed store would do, but SeqCst costs nothing here and an
    // atomic store is async-signal-safe either way.
    TERMINATE.store(true, SeqCst);
}

// SAFETY: `signal(2)` is in every POSIX C library with exactly this
// shape (the returned previous-handler pointer is opaque to us, so it
// is declared as usize and discarded).
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Install the drain-on-SIGTERM/SIGINT handlers. Idempotent.
pub fn install() {
    // SAFETY: installing a handler that only stores to a static atomic
    // is async-signal-safe; `signal` itself has no other preconditions.
    unsafe {
        let _ = signal(SIGTERM, on_terminate);
        let _ = signal(SIGINT, on_terminate);
    }
}

/// True once a termination signal has been delivered.
pub fn termination_requested() -> bool {
    TERMINATE.load(SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install();
        install();
        // No signal has been sent to the test process.
        assert!(!termination_requested());
    }
}

//! The line-delimited wire protocol.
//!
//! Every frame is one `\n`-terminated line of UTF-8 (CR before the LF is
//! tolerated). Client → server:
//!
//! ```text
//! REQ <id> <instance>     solve one instance
//! PING                    liveness probe
//! STATS                   metrics snapshot
//! DRAIN                   graceful shutdown: stop accepting, finish
//!                         in-flight work, flush the final report
//! SESSION begin <policy> [alpha]
//!                         open this connection's online session under
//!                         a sim power policy (timeout|sleep|never;
//!                         alpha defaults to 1)
//! SESSION arrive <t>      reveal the next arrival at slot t (≥ the
//!                         session frontier)
//! SESSION step [n]        reveal n (default 1) idle slots, no arrival
//! SESSION end             close the session: solve the revealed
//!                         instance offline, report the realized
//!                         competitive ratio
//! ```
//!
//! `<id>` is an opaque client-chosen token (`[A-Za-z0-9_.:-]`, ≤ 64
//! bytes) echoed back on the response; ids must be unique among a
//! connection's in-flight requests. `<instance>` is the
//! `gaps_workloads::serialize` text of exactly one instance with every
//! newline replaced by `;` (the instance grammar never contains a
//! literal `;`, so the encoding is trivially reversible).
//!
//! Server → client:
//!
//! ```text
//! RES <id> <body>         result; <body> is byte-identical to the
//!                         `gaps batch` result line minus its index
//! ERR <id> <reason>       request failed; `-` as <id> when the frame
//!                         was too mangled to carry one
//! BUSY <id>               admission queue full — backpressure, retry
//! PONG                    PING reply
//! STATS v3 … STATS end    snapshot block, one `stat <key> <value>`
//!                         line per metric (v2 added pool_workers,
//!                         per-solver p50, per-policy ratio rows; v3
//!                         adds the `search.*` branch-and-bound rows:
//!                         nodes expanded, subtree tasks/steals,
//!                         incumbent updates, component histogram)
//! DRAINING                DRAIN acknowledged
//! SESSION begun …         session opened
//! SESSION t=… …           arrive/step acknowledged with the live state
//! SESSION end …           closing summary with the competitive ratio
//! ```
//!
//! `SESSION` frames are handled synchronously on the connection's
//! reader thread (a session is inherently serial — each decision
//! depends on the previous slot), so they never touch the solve pool's
//! admission queue; a malformed or out-of-order `SESSION` verb is
//! answered with `ERR -` and neither the session nor the connection
//! dies.
//!
//! Responses to different requests may interleave in any order; the id
//! is the only correlation. Malformed input of any shape — truncated
//! lines, oversized frames, invalid UTF-8, unknown verbs — is answered
//! with `ERR`, never by dropping the connection or the process.

use std::io::BufRead;

/// Hard per-frame byte budget. A line longer than this is consumed (so
/// the stream stays synchronized) and answered with `ERR`, bounding
/// per-connection memory no matter what the client sends.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Request-id character policy (see module docs).
pub const MAX_ID_BYTES: usize = 64;

/// One parsed client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Solve one instance; `text` is the decoded (newline-restored)
    /// instance text.
    Req {
        /// Client-chosen correlation token.
        id: String,
        /// Instance text in `gaps_workloads::serialize` format.
        text: String,
    },
    /// Liveness probe.
    Ping,
    /// Metrics snapshot request.
    Stats,
    /// Graceful-shutdown request.
    Drain,
    /// Online-session verb (per-connection state machine).
    Session(SessionCmd),
}

/// The `SESSION` sub-verbs. Argument validation that needs session
/// state (frontier ordering, advance caps) happens in the handler; the
/// parser only guarantees shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionCmd {
    /// `SESSION begin <policy> [alpha]` — open a session.
    Begin {
        /// Online policy wire name (validated against the sim crate's
        /// roster by the handler).
        policy: String,
        /// Wake-up cost α (defaults to 1).
        alpha: u64,
    },
    /// `SESSION arrive <t>` — reveal the next arrival.
    Arrive {
        /// Arrival slot.
        t: i64,
    },
    /// `SESSION step [n]` — reveal `n` idle slots (defaults to 1).
    Step {
        /// Idle slots to reveal.
        n: u64,
    },
    /// `SESSION end` — close and report the ratio.
    End,
}

/// Why a frame was rejected; `id` is present when the frame carried a
/// usable request id to address the `ERR` to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// Echoable request id, if one was recovered.
    pub id: Option<String>,
    /// Human-readable reason (single line).
    pub reason: String,
}

impl FrameError {
    fn anon(reason: impl Into<String>) -> FrameError {
        FrameError {
            id: None,
            reason: reason.into(),
        }
    }
}

/// How reading one raw line failed (the line itself was consumed, so
/// the caller can keep reading the stream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineError {
    /// The line exceeded [`MAX_FRAME_BYTES`].
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
}

impl LineError {
    /// Wire-facing reason text.
    pub fn reason(&self) -> String {
        match self {
            LineError::TooLong => format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
            LineError::BadUtf8 => "frame is not valid UTF-8".to_string(),
        }
    }
}

/// Read one `\n`-terminated line with a hard length cap.
///
/// Returns `Ok(None)` at EOF. An oversized or non-UTF-8 line is fully
/// consumed (through its newline) and reported as `Some(Err(..))`, so
/// the protocol stays line-synchronized and the daemon can answer `ERR`
/// and keep serving. A final line without a trailing newline is
/// delivered; a trailing CR is stripped.
pub fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> std::io::Result<Option<Result<String, LineError>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos > limit {
                    overflow = true;
                }
                if !overflow {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !overflow && buf.len() + len > limit {
                    overflow = true;
                    buf.clear();
                }
                if !overflow {
                    buf.extend_from_slice(chunk);
                }
                reader.consume(len);
            }
        }
    }
    if overflow {
        return Ok(Some(Err(LineError::TooLong)));
    }
    match String::from_utf8(buf) {
        Ok(mut line) => {
            if line.ends_with('\r') {
                line.pop();
            }
            Ok(Some(Ok(line)))
        }
        Err(_) => Ok(Some(Err(LineError::BadUtf8))),
    }
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_BYTES
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// Parse one already-read line into a [`Frame`].
///
/// Blank lines and `#` comments parse to `Ok(None)` (ignored), matching
/// the instance file format's conventions.
pub fn parse_frame(line: &str) -> Result<Option<Frame>, FrameError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "PING" => Ok(Some(Frame::Ping)),
        "STATS" => Ok(Some(Frame::Stats)),
        "DRAIN" => Ok(Some(Frame::Drain)),
        "REQ" => {
            let (id, payload) = match rest.split_once(' ') {
                Some((id, p)) => (id.trim(), p.trim()),
                None => (rest, ""),
            };
            if !valid_id(id) {
                return Err(FrameError::anon(format!(
                    "bad request id (want 1..={MAX_ID_BYTES} bytes of [A-Za-z0-9_.:-])"
                )));
            }
            if payload.is_empty() {
                return Err(FrameError {
                    id: Some(id.to_string()),
                    reason: "REQ carries no instance payload".to_string(),
                });
            }
            Ok(Some(Frame::Req {
                id: id.to_string(),
                text: payload.replace(';', "\n"),
            }))
        }
        "SESSION" => parse_session(rest).map(|cmd| Some(Frame::Session(cmd))),
        other => Err(FrameError::anon(format!("unknown verb {other:?}"))),
    }
}

/// Parse the words after `SESSION `.
fn parse_session(rest: &str) -> Result<SessionCmd, FrameError> {
    let mut words = rest.split_whitespace();
    let sub = words.next().unwrap_or("");
    let cmd = match sub {
        "begin" => {
            let policy = words
                .next()
                .ok_or_else(|| FrameError::anon("SESSION begin needs a policy name"))?;
            let alpha = match words.next() {
                None => 1,
                Some(raw) => raw.parse::<u64>().map_err(|_| {
                    FrameError::anon(format!("SESSION begin: bad alpha {raw:?} (want a u64)"))
                })?,
            };
            SessionCmd::Begin {
                policy: policy.to_string(),
                alpha,
            }
        }
        "arrive" => {
            let raw = words
                .next()
                .ok_or_else(|| FrameError::anon("SESSION arrive needs an arrival slot"))?;
            let t = raw.parse::<i64>().map_err(|_| {
                FrameError::anon(format!("SESSION arrive: bad slot {raw:?} (want an i64)"))
            })?;
            SessionCmd::Arrive { t }
        }
        "step" => {
            let n = match words.next() {
                None => 1,
                Some(raw) => raw.parse::<u64>().map_err(|_| {
                    FrameError::anon(format!("SESSION step: bad count {raw:?} (want a u64)"))
                })?,
            };
            SessionCmd::Step { n }
        }
        "end" => SessionCmd::End,
        "" => {
            return Err(FrameError::anon(
                "SESSION needs a sub-verb (begin|arrive|step|end)",
            ))
        }
        other => {
            return Err(FrameError::anon(format!(
                "unknown SESSION sub-verb {other:?} (begin|arrive|step|end)"
            )))
        }
    };
    if let Some(extra) = words.next() {
        return Err(FrameError::anon(format!(
            "SESSION {sub}: unexpected trailing argument {extra:?}"
        )));
    }
    Ok(cmd)
}

/// Encode an instance's serialized text as a one-line `REQ` payload
/// (the inverse of the decode in [`parse_frame`]). Exposed for clients
/// and tests.
pub fn encode_payload(instance_text: &str) -> String {
    instance_text.trim_end_matches('\n').replace('\n', ";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &[u8], limit: usize) -> Vec<Result<String, LineError>> {
        let mut reader = BufReader::with_capacity(8, input);
        let mut out = Vec::new();
        while let Some(item) = read_line_limited(&mut reader, limit).expect("in-memory io") {
            out.push(item);
        }
        out
    }

    #[test]
    fn reads_lines_and_strips_cr() {
        let lines = read_all(b"alpha\r\nbeta\ngamma", 100);
        assert_eq!(
            lines,
            vec![
                Ok("alpha".to_string()),
                Ok("beta".to_string()),
                Ok("gamma".to_string()),
            ]
        );
    }

    #[test]
    fn oversized_line_is_consumed_and_reported() {
        let input = format!("{}\nshort\n", "x".repeat(50));
        let lines = read_all(input.as_bytes(), 10);
        assert_eq!(
            lines,
            vec![Err(LineError::TooLong), Ok("short".to_string())],
            "stream stays synchronized after the oversized frame"
        );
    }

    #[test]
    fn exactly_at_the_limit_is_fine() {
        let input = format!("{}\n", "y".repeat(10));
        let lines = read_all(input.as_bytes(), 10);
        assert_eq!(lines, vec![Ok("y".repeat(10))]);
    }

    #[test]
    fn bad_utf8_is_consumed_and_reported() {
        let lines = read_all(b"ok\n\xff\xfe bad\nok2\n", 100);
        assert_eq!(
            lines,
            vec![
                Ok("ok".to_string()),
                Err(LineError::BadUtf8),
                Ok("ok2".to_string()),
            ]
        );
    }

    #[test]
    fn parses_control_verbs() {
        assert_eq!(parse_frame("PING").unwrap(), Some(Frame::Ping));
        assert_eq!(parse_frame("STATS").unwrap(), Some(Frame::Stats));
        assert_eq!(parse_frame("DRAIN").unwrap(), Some(Frame::Drain));
        assert_eq!(parse_frame("").unwrap(), None);
        assert_eq!(parse_frame("  # comment").unwrap(), None);
    }

    #[test]
    fn parses_req_and_decodes_payload() {
        let frame = parse_frame("REQ job-1 instance v1;processors 1;job 0 2").unwrap();
        assert_eq!(
            frame,
            Some(Frame::Req {
                id: "job-1".to_string(),
                text: "instance v1\nprocessors 1\njob 0 2".to_string(),
            })
        );
    }

    #[test]
    fn rejects_malformed_reqs_with_addressable_errors() {
        // No id at all.
        let err = parse_frame("REQ").unwrap_err();
        assert_eq!(err.id, None);
        assert!(err.reason.contains("bad request id"));
        // An id full of junk.
        let err = parse_frame("REQ sp@ce!id instance v1").unwrap_err();
        assert_eq!(err.id, None);
        // Overlong id.
        let long = "a".repeat(MAX_ID_BYTES + 1);
        assert!(parse_frame(&format!("REQ {long} multi v1")).is_err());
        // Id fine, payload missing: the error is addressable.
        let err = parse_frame("REQ ok-id").unwrap_err();
        assert_eq!(err.id.as_deref(), Some("ok-id"));
        assert!(err.reason.contains("payload"));
        // Unknown verb.
        let err = parse_frame("SOLVE x instance v1").unwrap_err();
        assert!(err.reason.contains("unknown verb"));
    }

    #[test]
    fn parses_session_verbs() {
        assert_eq!(
            parse_frame("SESSION begin timeout 3").unwrap(),
            Some(Frame::Session(SessionCmd::Begin {
                policy: "timeout".to_string(),
                alpha: 3,
            }))
        );
        assert_eq!(
            parse_frame("SESSION begin sleep").unwrap(),
            Some(Frame::Session(SessionCmd::Begin {
                policy: "sleep".to_string(),
                alpha: 1,
            })),
            "alpha defaults to 1"
        );
        assert_eq!(
            parse_frame("SESSION arrive 42").unwrap(),
            Some(Frame::Session(SessionCmd::Arrive { t: 42 }))
        );
        assert_eq!(
            parse_frame("SESSION step").unwrap(),
            Some(Frame::Session(SessionCmd::Step { n: 1 }))
        );
        assert_eq!(
            parse_frame("SESSION step 7").unwrap(),
            Some(Frame::Session(SessionCmd::Step { n: 7 }))
        );
        assert_eq!(
            parse_frame("SESSION end").unwrap(),
            Some(Frame::Session(SessionCmd::End))
        );
    }

    #[test]
    fn rejects_malformed_session_verbs() {
        for (line, needle) in [
            ("SESSION", "sub-verb"),
            ("SESSION settle", "unknown SESSION sub-verb"),
            ("SESSION begin", "needs a policy"),
            ("SESSION begin timeout nine", "bad alpha"),
            ("SESSION begin timeout 2 extra", "trailing"),
            ("SESSION arrive", "needs an arrival"),
            ("SESSION arrive soon", "bad slot"),
            ("SESSION step minus", "bad count"),
            ("SESSION end now", "trailing"),
        ] {
            let err = parse_frame(line).unwrap_err();
            assert_eq!(err.id, None, "{line}");
            assert!(err.reason.contains(needle), "{line}: {}", err.reason);
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let text = "multi v1\njob 1 4\njob 2\n";
        let encoded = encode_payload(text);
        assert!(!encoded.contains('\n'));
        let frame = parse_frame(&format!("REQ r1 {encoded}")).unwrap().unwrap();
        let Frame::Req { text: decoded, .. } = frame else {
            panic!("expected REQ");
        };
        assert_eq!(decoded, text.trim_end_matches('\n'));
    }
}

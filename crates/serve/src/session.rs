//! Per-connection protocol session: read frames, answer them, never
//! die.
//!
//! One reader thread per connection (drawn from the connection pool)
//! owns the read half; the write half sits behind a `parking_lot` mutex
//! shared with every solve-pool worker answering this connection's
//! requests, so responses from different requests interleave whole-line
//! at a time. The writer lock is a leaf: nothing else is ever acquired
//! under it, and no channel operation happens while it is held.
//!
//! `SESSION` frames are the exception to the fan-out model: an online
//! session is inherently serial (each arrival's sleep/wake decision
//! depends on everything revealed before it), so the reader thread
//! drives the [`OnlineTracker`] synchronously and never touches the
//! solve pool for it. The one offline solve at `SESSION end` also runs
//! on the reader thread — it is the session's last act and nothing else
//! on this connection can be waiting behind it.

use crate::protocol::{self, Frame, FrameError, SessionCmd};
use crate::Shared;
use gaps_engine::pool::SubmitError;
use gaps_engine::{BatchInstance, OnlineTracker};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Write one reply line (the text may itself contain newlines for
/// multi-line blocks like `STATS`). Write errors mean the client went
/// away; the reader will see EOF and end the session, so they are
/// deliberately ignored here.
fn send_line(writer: &Mutex<TcpStream>, text: &str) {
    let framed = format!("{text}\n");
    let mut stream = writer.lock();
    let _ = stream.write_all(framed.as_bytes());
}

/// Decode a `REQ` payload into exactly one instance.
fn parse_one_instance(text: &str) -> Result<BatchInstance, String> {
    // Error text travels on a single `ERR` line.
    let mut instances = gaps_engine::split_stream(text).map_err(|e| e.replace('\n', "; "))?;
    match instances.len() {
        1 => Ok(instances.pop().expect("length checked")),
        0 => Err("REQ payload contains no instance".to_string()),
        n => Err(format!(
            "REQ payload contains {n} instances; exactly one expected"
        )),
    }
}

/// Render and send the `STATS` block.
fn send_stats(shared: &Shared, writer: &Mutex<TcpStream>) {
    let metrics = shared.engine.metrics();
    metrics.set_queue_depth(shared.pool.queued());
    metrics.set_pool_workers(shared.pool.workers());
    let snapshot = metrics.snapshot();
    let mut block = String::from("STATS v3\n");
    block.push_str(&format!(
        "stat uptime_s {}\n",
        shared.started.elapsed().as_secs()
    ));
    for (key, value) in snapshot.stat_rows() {
        block.push_str(&format!("stat {key} {value}\n"));
    }
    block.push_str("STATS end");
    send_line(writer, &block);
}

/// RAII ownership of one request's liveness bookkeeping: the in-flight
/// gauge and the per-connection duplicate-id set. Dropping the claim —
/// on the happy path, on an early return, or while a solver panic
/// unwinds through the pool's `catch_unwind` — releases both. Before
/// this guard existed the worker closure cleaned up only after a
/// successful `send_line`, so a panicking solver leaked the gauge and
/// poisoned the id forever.
struct InflightClaim {
    shared: Arc<Shared>,
    inflight: Arc<Mutex<HashSet<String>>>,
    id: String,
}

impl InflightClaim {
    fn enter(
        shared: Arc<Shared>,
        inflight: Arc<Mutex<HashSet<String>>>,
        id: String,
    ) -> InflightClaim {
        shared.engine.metrics().inflight_enter();
        InflightClaim {
            shared,
            inflight,
            id,
        }
    }
}

impl Drop for InflightClaim {
    fn drop(&mut self) {
        self.shared.engine.metrics().inflight_exit();
        self.inflight.lock().remove(&self.id);
    }
}

fn handle_req(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    inflight: &Arc<Mutex<HashSet<String>>>,
    id: String,
    text: String,
) {
    let metrics = shared.engine.metrics();
    if shared.draining() {
        send_line(writer, &format!("ERR {id} draining; not accepting work"));
        return;
    }
    let inst = match parse_one_instance(&text) {
        Ok(inst) => inst,
        Err(reason) => {
            metrics.record_protocol_error();
            send_line(writer, &format!("ERR {id} {reason}"));
            return;
        }
    };
    if !inflight.lock().insert(id.clone()) {
        metrics.record_protocol_error();
        send_line(
            writer,
            &format!("ERR {id} duplicate request id; still in flight"),
        );
        return;
    }
    // The shed decision is made at admission (not inside the worker) so
    // it reflects the queue state the request actually experienced.
    let shed = shared.should_shed(inst.job_count());
    let job = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(writer);
        let inflight = Arc::clone(inflight);
        let id = id.clone();
        move || {
            let claim =
                InflightClaim::enter(Arc::clone(&shared), Arc::clone(&inflight), id.clone());
            let metrics = shared.engine.metrics();
            metrics.set_queue_depth(shared.pool.queued());
            let outcome = shared.engine.solve_request(&inst, shared.objective, shed);
            send_line(&writer, &format!("RES {id} {}", outcome.body));
            drop(claim);
        }
    };
    match shared.pool.try_submit(job) {
        Ok(()) => metrics.set_queue_depth(shared.pool.queued()),
        Err(SubmitError::Full) => {
            metrics.record_rejected();
            inflight.lock().remove(&id);
            send_line(writer, &format!("BUSY {id}"));
        }
        Err(SubmitError::Closed) => {
            inflight.lock().remove(&id);
            send_line(writer, &format!("ERR {id} shutting down"));
        }
    }
}

/// Drive the connection's (at most one) online session. Every
/// out-of-order or malformed step is answered with `ERR -` and counted
/// as a protocol error; the session — and the connection — survive.
fn handle_session(
    shared: &Shared,
    writer: &Mutex<TcpStream>,
    slot: &mut Option<OnlineTracker>,
    cmd: SessionCmd,
) {
    let metrics = shared.engine.metrics();
    match cmd {
        SessionCmd::Begin { policy, alpha } => {
            if shared.draining() {
                send_line(writer, "ERR - draining; not accepting sessions");
                return;
            }
            if slot.is_some() {
                metrics.record_protocol_error();
                send_line(writer, "ERR - SESSION already active (end it first)");
                return;
            }
            match OnlineTracker::new(&policy, alpha) {
                Ok(tracker) => {
                    send_line(
                        writer,
                        &format!(
                            "SESSION begun policy={} alpha={alpha}",
                            tracker.policy_name()
                        ),
                    );
                    *slot = Some(tracker);
                }
                Err(reason) => {
                    metrics.record_protocol_error();
                    send_line(writer, &format!("ERR - {reason}"));
                }
            }
        }
        SessionCmd::Arrive { t } => {
            let Some(tracker) = slot.as_mut() else {
                metrics.record_protocol_error();
                send_line(writer, "ERR - no SESSION active (begin first)");
                return;
            };
            match tracker.arrive(t) {
                Ok(state) => send_session_state(writer, state),
                Err(reason) => {
                    metrics.record_protocol_error();
                    send_line(writer, &format!("ERR - {reason}"));
                }
            }
        }
        SessionCmd::Step { n } => {
            let Some(tracker) = slot.as_mut() else {
                metrics.record_protocol_error();
                send_line(writer, "ERR - no SESSION active (begin first)");
                return;
            };
            match tracker.step(n) {
                Ok(state) => send_session_state(writer, state),
                Err(reason) => {
                    metrics.record_protocol_error();
                    send_line(writer, &format!("ERR - {reason}"));
                }
            }
        }
        SessionCmd::End => {
            let Some(tracker) = slot.take() else {
                metrics.record_protocol_error();
                send_line(writer, "ERR - no SESSION active (begin first)");
                return;
            };
            match tracker.finish(&shared.engine) {
                Ok(summary) => send_line(writer, &format!("SESSION end {}", summary.line())),
                Err(reason) => send_line(writer, &format!("ERR - {reason}")),
            }
        }
    }
}

fn send_session_state(writer: &Mutex<TcpStream>, state: gaps_engine::SessionState) {
    let mode = if state.awake { "awake" } else { "asleep" };
    send_line(
        writer,
        &format!(
            "SESSION t={} state={mode} online={}",
            state.frontier, state.online_cost
        ),
    );
}

/// Serve one connection until EOF, a socket error, or server shutdown
/// (which closes the socket under us). Every malformed frame is
/// answered with `ERR` and the session continues.
pub(crate) fn serve_connection(shared: Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        shared.unregister_conn(conn_id);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(stream));
    let inflight: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
    // At most one online session per connection, owned by the reader
    // thread; it dies with the connection.
    let mut session: Option<OnlineTracker> = None;
    // The loop ends on EOF, an io error, or the drain path shutting the
    // socket down under us — all shapes the `while let` rejects.
    while let Ok(Some(item)) = protocol::read_line_limited(&mut reader, protocol::MAX_FRAME_BYTES) {
        let line = match item {
            Ok(line) => line,
            Err(line_err) => {
                shared.engine.metrics().record_protocol_error();
                send_line(&writer, &format!("ERR - {}", line_err.reason()));
                continue;
            }
        };
        match protocol::parse_frame(&line) {
            Ok(None) => {}
            Ok(Some(Frame::Ping)) => send_line(&writer, "PONG"),
            Ok(Some(Frame::Stats)) => send_stats(&shared, &writer),
            Ok(Some(Frame::Drain)) => {
                shared.request_drain();
                send_line(&writer, "DRAINING");
            }
            Ok(Some(Frame::Req { id, text })) => {
                handle_req(&shared, &writer, &inflight, id, text);
            }
            Ok(Some(Frame::Session(cmd))) => {
                handle_session(&shared, &writer, &mut session, cmd);
            }
            Err(FrameError { id, reason }) => {
                shared.engine.metrics().record_protocol_error();
                let id = id.as_deref().unwrap_or("-");
                send_line(&writer, &format!("ERR {id} {reason}"));
            }
        }
    }
    shared.unregister_conn(conn_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_engine::pool::TaskPool;
    use gaps_engine::{Engine, EngineConfig, Objective};
    use std::io::BufRead;
    use std::net::TcpListener;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    fn shared() -> Arc<Shared> {
        Arc::new(Shared {
            engine: Engine::new(EngineConfig::default()),
            pool: TaskPool::new(1, 4),
            objective: Objective::Gaps,
            started: Instant::now(),
            shed_jobs: usize::MAX,
            shed_depth: u64::MAX,
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        })
    }

    /// A connected loopback pair: the server half goes behind the
    /// writer mutex, the client half reads the replies back.
    fn socket_pair() -> (Mutex<TcpStream>, BufReader<TcpStream>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (Mutex::new(server), BufReader::new(client))
    }

    fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        line.trim_end().to_string()
    }

    /// Regression for the in-flight leak: the worker closure used to
    /// clean up only after a successful send, so a panicking solver
    /// left the gauge high and the request id claimed forever. The
    /// RAII claim must release both even when the panic unwinds
    /// through `catch_unwind` (as it does in the pool's worker loop).
    #[test]
    fn inflight_claim_releases_on_solver_panic() {
        let shared = shared();
        let inflight: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
        assert!(inflight.lock().insert("r1".to_string()));
        let claim =
            InflightClaim::enter(Arc::clone(&shared), Arc::clone(&inflight), "r1".to_string());
        assert_eq!(shared.engine.metrics().snapshot().in_flight, 1);
        let unwound = catch_unwind(AssertUnwindSafe(move || {
            let _claim = claim;
            panic!("solver stub panics");
        }));
        assert!(unwound.is_err(), "the stub must actually panic");
        assert_eq!(
            shared.engine.metrics().snapshot().in_flight,
            0,
            "in-flight gauge leaked past the panic"
        );
        assert!(
            !inflight.lock().contains("r1"),
            "request id leaked past the panic"
        );
        // A retry under the same id must be admissible again.
        assert!(inflight.lock().insert("r1".to_string()));
        shared.pool.shutdown();
    }

    #[test]
    fn inflight_claim_releases_on_happy_path_drop() {
        let shared = shared();
        let inflight: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
        inflight.lock().insert("ok".to_string());
        let claim =
            InflightClaim::enter(Arc::clone(&shared), Arc::clone(&inflight), "ok".to_string());
        drop(claim);
        assert_eq!(shared.engine.metrics().snapshot().in_flight, 0);
        assert!(!inflight.lock().contains("ok"));
        shared.pool.shutdown();
    }

    /// The session state machine survives every out-of-order verb with
    /// `ERR -`, and a well-formed run reports the tracker's exact
    /// summary line.
    #[test]
    fn session_state_machine_answers_err_and_survives() {
        let shared = shared();
        let (writer, mut reader) = socket_pair();
        let mut slot: Option<OnlineTracker> = None;

        // Arrive / step / end before begin.
        handle_session(&shared, &writer, &mut slot, SessionCmd::Arrive { t: 0 });
        assert!(read_reply(&mut reader).starts_with("ERR - no SESSION active"));
        handle_session(&shared, &writer, &mut slot, SessionCmd::Step { n: 1 });
        assert!(read_reply(&mut reader).starts_with("ERR - no SESSION active"));
        handle_session(&shared, &writer, &mut slot, SessionCmd::End);
        assert!(read_reply(&mut reader).starts_with("ERR - no SESSION active"));

        // Unknown policy leaves the slot empty.
        handle_session(
            &shared,
            &writer,
            &mut slot,
            SessionCmd::Begin {
                policy: "clairvoyant".to_string(),
                alpha: 2,
            },
        );
        assert!(read_reply(&mut reader).starts_with("ERR - "));
        assert!(slot.is_none());

        // A real session: begin, double-begin refused, arrivals echo
        // state, end reports the summary.
        handle_session(
            &shared,
            &writer,
            &mut slot,
            SessionCmd::Begin {
                policy: "timeout".to_string(),
                alpha: 4,
            },
        );
        assert_eq!(
            read_reply(&mut reader),
            "SESSION begun policy=timeout alpha=4"
        );
        handle_session(
            &shared,
            &writer,
            &mut slot,
            SessionCmd::Begin {
                policy: "timeout".to_string(),
                alpha: 4,
            },
        );
        assert!(read_reply(&mut reader).starts_with("ERR - SESSION already active"));
        for (t, expect) in [
            (0, "SESSION t=1 state=awake online=5"),
            (2, "SESSION t=3 state=awake online=7"),
            (20, "SESSION t=21 state=awake online=16"),
        ] {
            handle_session(&shared, &writer, &mut slot, SessionCmd::Arrive { t });
            assert_eq!(read_reply(&mut reader), expect);
        }
        // A backwards arrival is refused but the session survives.
        handle_session(&shared, &writer, &mut slot, SessionCmd::Arrive { t: 1 });
        assert!(read_reply(&mut reader).contains("behind the frontier"));
        assert!(slot.is_some());
        handle_session(&shared, &writer, &mut slot, SessionCmd::End);
        assert_eq!(
            read_reply(&mut reader),
            "SESSION end policy=timeout alpha=4 jobs=3 online=16 offline=12 ratio=1.3333"
        );
        assert!(slot.is_none(), "end consumes the session");

        // Draining refuses new sessions.
        shared.request_drain();
        handle_session(
            &shared,
            &writer,
            &mut slot,
            SessionCmd::Begin {
                policy: "timeout".to_string(),
                alpha: 1,
            },
        );
        assert!(read_reply(&mut reader).starts_with("ERR - draining"));
        shared.pool.shutdown();
    }
}

//! Per-connection protocol session: read frames, answer them, never
//! die.
//!
//! One reader thread per connection (drawn from the connection pool)
//! owns the read half; the write half sits behind a `parking_lot` mutex
//! shared with every solve-pool worker answering this connection's
//! requests, so responses from different requests interleave whole-line
//! at a time. The writer lock is a leaf: nothing else is ever acquired
//! under it, and no channel operation happens while it is held.

use crate::protocol::{self, Frame, FrameError};
use crate::Shared;
use gaps_engine::pool::SubmitError;
use gaps_engine::BatchInstance;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Write one reply line (the text may itself contain newlines for
/// multi-line blocks like `STATS`). Write errors mean the client went
/// away; the reader will see EOF and end the session, so they are
/// deliberately ignored here.
fn send_line(writer: &Mutex<TcpStream>, text: &str) {
    let framed = format!("{text}\n");
    let mut stream = writer.lock();
    let _ = stream.write_all(framed.as_bytes());
}

/// Decode a `REQ` payload into exactly one instance.
fn parse_one_instance(text: &str) -> Result<BatchInstance, String> {
    // Error text travels on a single `ERR` line.
    let mut instances = gaps_engine::split_stream(text).map_err(|e| e.replace('\n', "; "))?;
    match instances.len() {
        1 => Ok(instances.pop().expect("length checked")),
        0 => Err("REQ payload contains no instance".to_string()),
        n => Err(format!(
            "REQ payload contains {n} instances; exactly one expected"
        )),
    }
}

/// Render and send the `STATS` block.
fn send_stats(shared: &Shared, writer: &Mutex<TcpStream>) {
    shared
        .engine
        .metrics()
        .set_queue_depth(shared.pool.queued());
    let snapshot = shared.engine.metrics().snapshot();
    let mut block = String::from("STATS v1\n");
    block.push_str(&format!(
        "stat uptime_s {}\n",
        shared.started.elapsed().as_secs()
    ));
    for (key, value) in snapshot.stat_rows() {
        block.push_str(&format!("stat {key} {value}\n"));
    }
    block.push_str("STATS end");
    send_line(writer, &block);
}

fn handle_req(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    inflight: &Arc<Mutex<HashSet<String>>>,
    id: String,
    text: String,
) {
    let metrics = shared.engine.metrics();
    if shared.draining() {
        send_line(writer, &format!("ERR {id} draining; not accepting work"));
        return;
    }
    let inst = match parse_one_instance(&text) {
        Ok(inst) => inst,
        Err(reason) => {
            metrics.record_protocol_error();
            send_line(writer, &format!("ERR {id} {reason}"));
            return;
        }
    };
    if !inflight.lock().insert(id.clone()) {
        metrics.record_protocol_error();
        send_line(
            writer,
            &format!("ERR {id} duplicate request id; still in flight"),
        );
        return;
    }
    // The shed decision is made at admission (not inside the worker) so
    // it reflects the queue state the request actually experienced.
    let shed = shared.should_shed(inst.job_count());
    let job = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(writer);
        let inflight = Arc::clone(inflight);
        let id = id.clone();
        move || {
            let metrics = shared.engine.metrics();
            metrics.inflight_enter();
            metrics.set_queue_depth(shared.pool.queued());
            let outcome = shared.engine.solve_request(&inst, shared.objective, shed);
            send_line(&writer, &format!("RES {id} {}", outcome.body));
            metrics.inflight_exit();
            inflight.lock().remove(&id);
        }
    };
    match shared.pool.try_submit(job) {
        Ok(()) => metrics.set_queue_depth(shared.pool.queued()),
        Err(SubmitError::Full) => {
            metrics.record_rejected();
            inflight.lock().remove(&id);
            send_line(writer, &format!("BUSY {id}"));
        }
        Err(SubmitError::Closed) => {
            inflight.lock().remove(&id);
            send_line(writer, &format!("ERR {id} shutting down"));
        }
    }
}

/// Serve one connection until EOF, a socket error, or server shutdown
/// (which closes the socket under us). Every malformed frame is
/// answered with `ERR` and the session continues.
pub(crate) fn serve_connection(shared: Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        shared.unregister_conn(conn_id);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(stream));
    let inflight: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
    // The loop ends on EOF, an io error, or the drain path shutting the
    // socket down under us — all shapes the `while let` rejects.
    while let Ok(Some(item)) = protocol::read_line_limited(&mut reader, protocol::MAX_FRAME_BYTES) {
        let line = match item {
            Ok(line) => line,
            Err(line_err) => {
                shared.engine.metrics().record_protocol_error();
                send_line(&writer, &format!("ERR - {}", line_err.reason()));
                continue;
            }
        };
        match protocol::parse_frame(&line) {
            Ok(None) => {}
            Ok(Some(Frame::Ping)) => send_line(&writer, "PONG"),
            Ok(Some(Frame::Stats)) => send_stats(&shared, &writer),
            Ok(Some(Frame::Drain)) => {
                shared.request_drain();
                send_line(&writer, "DRAINING");
            }
            Ok(Some(Frame::Req { id, text })) => {
                handle_req(&shared, &writer, &inflight, id, text);
            }
            Err(FrameError { id, reason }) => {
                shared.engine.metrics().record_protocol_error();
                let id = id.as_deref().unwrap_or("-");
                send_line(&writer, &format!("ERR {id} {reason}"));
            }
        }
    }
    shared.unregister_conn(conn_id);
}

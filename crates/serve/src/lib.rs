//! # gaps-serve
//!
//! A long-running scheduling service over the `gaps-engine` pipeline:
//! the ROADMAP's production-shaped surface, and the substrate the
//! online-arrivals follow-on (Chen–Kao–Lee–Rutter–Wagner-style
//! competitive tracking) needs — a continuously running engine instead
//! of a batch lifetime.
//!
//! Clients speak the line-delimited TCP protocol of [`protocol`]
//! (`REQ`/`RES` with client-chosen correlation ids, plus
//! `PING`/`STATS`/`DRAIN` control verbs and the `SESSION
//! begin/arrive/step/end` online-session family). Every request flows
//! through the same `canonicalize → cache → route → solve` loop as
//! `gaps batch` ([`gaps_engine::Engine::solve_request`]), so a serve
//! round-trip is bit-identical to the batch result line for the same
//! instance — and an online session drives the same
//! [`gaps_engine::OnlineTracker`] as `gaps batch --replay-online`, so
//! its ratio line is bit-identical too.
//!
//! The solve pool is *elastic*: [`ServeConfig::threads`] core workers
//! are always running, and under queue pressure the pool grows up to
//! [`ServeConfig::max_threads`], shedding the extra workers again once
//! they sit idle.
//!
//! Operationally the daemon is built around three pressure valves:
//!
//! * **Backpressure** — admission goes through a bounded
//!   [`gaps_engine::pool::TaskPool`] queue via a non-blocking submit; a
//!   full queue answers `BUSY <id>` immediately instead of stalling
//!   the connection.
//! * **Overload shedding** — an instance whose job count exceeds
//!   [`ServeConfig::shed_jobs`], or any instance arriving while the
//!   queue is at least [`ServeConfig::shed_depth`] deep, is solved with
//!   the degraded router ([`gaps_engine::RouterConfig::shed`]): the
//!   approximate chain answers in polynomial time and the result is
//!   not cached.
//! * **Graceful drain** — SIGTERM, SIGINT, or a `DRAIN` frame stops
//!   accepting, finishes every queued and in-flight request (their
//!   `RES` lines are flushed), closes connections, and returns the
//!   final [`MetricsSnapshot`].
//!
//! Live metrics come from the engine-lifetime
//! [`gaps_engine::MetricsRegistry`], snapshotted by `STATS` and by an
//! optional stderr report ticker.

pub mod protocol;
mod session;
pub mod signal;

use gaps_engine::pool::{self, TaskPool};
use gaps_engine::{Engine, EngineConfig, MetricsSnapshot, Objective};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
// Wall-clock reads are legal here: `crates/serve` is on the analyzer's
// determinism-rule allowlist (the daemon's tickers and uptime are
// clock consumers by design; solve results never depend on them).
use std::time::{Duration, Instant};

/// Daemon construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub listen: String,
    /// Core solve-pool worker threads (always running).
    pub threads: usize,
    /// Elastic solve-pool ceiling: under queue pressure the pool grows
    /// up to this many workers, and the extras retire after
    /// [`gaps_engine::pool::DEFAULT_IDLE_TIMEOUT`] idle. Clamped up to
    /// `threads` (a ceiling below the core count means "fixed pool").
    pub max_threads: usize,
    /// Bounded admission-queue capacity; a full queue answers `BUSY`.
    pub queue_capacity: usize,
    /// Maximum simultaneously served connections.
    pub max_conns: usize,
    /// Objective every request is solved under.
    pub objective: Objective,
    /// Shed any instance with more jobs than this (default: never).
    pub shed_jobs: usize,
    /// Shed every instance admitted while the queue is at least this
    /// deep (default: never).
    pub shed_depth: u64,
    /// Print a metrics snapshot to stderr this often (default: off).
    pub report_interval: Option<Duration>,
    /// Engine (cache + router) configuration. The engine's own
    /// `threads` field is ignored here; the serve pool uses
    /// [`ServeConfig::threads`].
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:7477".to_string(),
            threads: 4,
            max_threads: 4,
            queue_capacity: 256,
            max_conns: 32,
            objective: Objective::Gaps,
            shed_jobs: usize::MAX,
            shed_depth: u64::MAX,
            report_interval: None,
            engine: EngineConfig::default(),
        }
    }
}

/// State shared between the accept loop, connection readers, and
/// solve-pool workers.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) pool: TaskPool,
    pub(crate) objective: Objective,
    /// Bind time, for the `uptime_s` stat and report-ticker prefix.
    pub(crate) started: Instant,
    shed_jobs: usize,
    shed_depth: u64,
    draining: AtomicBool,
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    /// True once shutdown has been requested by any path (`DRAIN`
    /// frame, SIGTERM/SIGINT).
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(SeqCst) || signal::termination_requested()
    }

    pub(crate) fn request_drain(&self) {
        self.draining.store(true, SeqCst);
    }

    pub(crate) fn should_shed(&self, jobs: usize) -> bool {
        jobs > self.shed_jobs || self.pool.queued() >= self.shed_depth
    }

    pub(crate) fn unregister_conn(&self, conn_id: u64) {
        self.conns.lock().retain(|(id, _)| *id != conn_id);
    }
}

/// A bound-but-not-yet-running daemon. Splitting bind from run lets
/// callers (the CLI, tests) learn the actual listen address — port 0
/// resolves at bind time — before the accept loop takes the thread.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_conns: usize,
    report_interval: Option<Duration>,
}

impl Server {
    /// Bind the listen socket and assemble the engine + pools.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("cannot bind {}: {e}", config.listen))?;
        // `--threads` doubles as the intra-instance worker count for big
        // multi-interval instances: an "inherit" (0) router setting picks
        // up the serve pool's core size rather than the engine default.
        let mut engine_config = config.engine.clone();
        if engine_config.router.multi_exact_threads == 0 {
            engine_config.router.multi_exact_threads = config.threads.max(1);
        }
        let shared = Arc::new(Shared {
            engine: Engine::new(engine_config),
            pool: TaskPool::elastic(
                config.threads,
                config.max_threads.max(config.threads),
                config.queue_capacity,
                pool::DEFAULT_IDLE_TIMEOUT,
            ),
            objective: config.objective,
            started: Instant::now(),
            shed_jobs: config.shed_jobs,
            shed_depth: config.shed_depth,
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            shared,
            max_conns: config.max_conns.max(1),
            report_interval: config.report_interval,
        })
    }

    /// The address actually bound (resolves a `:0` request).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read local addr: {e}"))
    }

    /// Run the accept loop until drain is requested, then shut down
    /// gracefully: finish queued and in-flight requests, flush their
    /// responses, close every connection, and return the final metrics
    /// snapshot.
    pub fn run(self) -> Result<MetricsSnapshot, String> {
        signal::install();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set listener non-blocking: {e}"))?;
        let ticker = self.report_interval.map(|interval| {
            let shared = Arc::clone(&self.shared);
            pool::background("report-ticker", move || {
                let step = Duration::from_millis(100);
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if shared.draining() {
                            return;
                        }
                        let chunk = step.min(interval - slept);
                        std::thread::sleep(chunk);
                        slept += chunk;
                    }
                    let metrics = shared.engine.metrics();
                    metrics.set_queue_depth(shared.pool.queued());
                    metrics.set_pool_workers(shared.pool.workers());
                    eprintln!(
                        "serve: up={}s {}",
                        shared.started.elapsed().as_secs(),
                        shared.engine.metrics().snapshot()
                    );
                }
            })
        });

        // Connection readers live in their own pool: `max_conns` workers,
        // minimal queue, so connection over-admission is refused at
        // accept time rather than parked invisibly.
        let conn_pool = TaskPool::new(self.max_conns, 1);
        let mut next_conn_id = 0u64;
        while !self.shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if conn_pool.active() + conn_pool.queued() >= self.max_conns as u64 {
                        refuse_connection(stream);
                        continue;
                    }
                    // The accepted socket may inherit the listener's
                    // non-blocking mode; sessions want blocking reads.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    // Keep a handle so drain can shut the socket down
                    // under a blocked reader.
                    if let Ok(clone) = stream.try_clone() {
                        self.shared.conns.lock().push((conn_id, clone));
                    }
                    let shared = Arc::clone(&self.shared);
                    let admitted = conn_pool
                        .try_submit(move || session::serve_connection(shared, conn_id, stream));
                    if admitted.is_err() {
                        // Raced past the capacity check; the dropped
                        // closure closed the socket.
                        self.shared.unregister_conn(conn_id);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Drain sequence. Order matters: finish solving (their `RES`
        // lines need live sockets) before closing connections.
        self.shared.pool.shutdown();
        for (_, stream) in self.shared.conns.lock().iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        conn_pool.shutdown();
        if let Some(handle) = ticker {
            let _ = handle.join();
        }
        self.shared.engine.metrics().set_queue_depth(0);
        Ok(self.shared.engine.metrics().snapshot())
    }
}

/// Tell an over-capacity client why it is being dropped. Best-effort.
fn refuse_connection(mut stream: TcpStream) {
    use std::io::Write;
    let _ = stream.write_all(b"ERR - connection limit reached\n");
}

/// Bind and run in one call — the CLI entry point.
pub fn run(config: ServeConfig) -> Result<MetricsSnapshot, String> {
    Server::bind(config)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_never_shed() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.shed_jobs, usize::MAX);
        assert_eq!(cfg.shed_depth, u64::MAX);
        assert!(cfg.report_interval.is_none());
    }

    #[test]
    fn bind_resolves_port_zero_and_drain_flag_round_trips() {
        let server = Server::bind(ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.local_addr().expect("addr");
        assert_ne!(addr.port(), 0);
        assert!(!server.shared.draining());
        server.shared.request_drain();
        assert!(server.shared.draining());
    }

    #[test]
    fn shed_policy_keys_on_jobs_and_queue_depth() {
        let server = Server::bind(ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            shed_jobs: 8,
            shed_depth: 1_000,
            ..ServeConfig::default()
        })
        .expect("bind");
        assert!(!server.shared.should_shed(8));
        assert!(server.shared.should_shed(9));
        // Empty queue (depth 0) < 1000, so depth alone does not shed.
        assert!(!server.shared.should_shed(1));
    }

    #[test]
    fn bad_listen_address_is_a_clean_error() {
        let err = match Server::bind(ServeConfig {
            listen: "not-an-address".to_string(),
            ..ServeConfig::default()
        }) {
            Err(e) => e,
            Ok(_) => panic!("binding a junk address must fail"),
        };
        assert!(err.contains("cannot bind"), "{err}");
    }
}

//! End-to-end daemon tests over a real TCP socket: batch parity,
//! malformed-input resilience, backpressure, shedding, stats, and
//! graceful drain.
//!
//! Each test binds an ephemeral port, runs the accept loop on a
//! background thread (via `gaps_engine::pool::background` — the
//! workspace's one sanctioned spawn point), and talks to it like a real
//! client.

use gaps_engine::pool;
use gaps_engine::{split_stream, Engine, EngineConfig, MetricsSnapshot, Objective};
use gaps_serve::protocol::{encode_payload, MAX_FRAME_BYTES};
use gaps_serve::{ServeConfig, Server};
use gaps_workloads::streams;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A running daemon plus the channel its final snapshot arrives on.
struct Daemon {
    addr: SocketAddr,
    done: crossbeam::channel::Receiver<Result<MetricsSnapshot, String>>,
}

fn start(config: ServeConfig) -> Daemon {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let (tx, done) = crossbeam::channel::unbounded();
    pool::background("test-daemon", move || {
        let _ = tx.send(server.run());
    });
    Daemon { addr, done }
}

impl Daemon {
    /// Wait for the accept loop to return its final metrics snapshot.
    fn finish(self) -> MetricsSnapshot {
        self.done
            .recv()
            .expect("daemon thread reports")
            .expect("daemon exits cleanly")
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone read half"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send line");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send raw bytes");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv line");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Read until `STATS end`, returning the `stat` rows as a map.
    fn recv_stats(&mut self) -> HashMap<String, String> {
        assert_eq!(self.recv(), "STATS v3");
        let mut rows = HashMap::new();
        loop {
            let line = self.recv();
            if line == "STATS end" {
                return rows;
            }
            let mut words = line.splitn(3, ' ');
            assert_eq!(words.next(), Some("stat"), "unexpected stats line {line:?}");
            let key = words.next().expect("stat key").to_string();
            let value = words.next().expect("stat value").to_string();
            rows.insert(key, value);
        }
    }
}

/// A distinct ~3.5ms instance: 16 jobs over a dense 90-slot pattern is
/// routed to the exponential-in-jobs `multi_exact` solver, so one of
/// these occupies a worker for ~1000× the cost of admitting a request —
/// which makes queue-full behaviour deterministic to provoke. `salt`
/// perturbs the slot pattern so repeated requests miss the cache.
fn heavy_instance_text(salt: usize) -> String {
    let mut out = String::from("multi v1\n");
    for job in 0..16 {
        out.push_str("job");
        for t in 0..90 {
            if (t + job + salt).is_multiple_of(2) {
                out.push_str(&format!(" {t}"));
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn five_hundred_instances_bit_match_gaps_batch_at_one_and_four_threads() {
    let text = streams::mixed_stream(36);
    let chunks = streams::instance_chunks(&text);
    let instances = split_stream(&text).expect("stream parses");
    assert!(instances.len() >= 500, "want 500+, got {}", instances.len());
    let chunks = &chunks[..500];
    let engine = Engine::new(EngineConfig::default());
    let (expected, _) = engine.run_batch(&instances[..500], Objective::Gaps);

    for threads in [1usize, 4] {
        let daemon = start(ServeConfig {
            threads,
            queue_capacity: 64,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(daemon.addr);
        // Request in bounded bursts so neither the admission queue nor
        // the socket buffers are asked to hold the whole load at once.
        let mut bodies: HashMap<String, String> = HashMap::new();
        for (burst_no, burst) in chunks.chunks(50).enumerate() {
            for (offset, chunk) in burst.iter().enumerate() {
                let id = burst_no * 50 + offset;
                client.send(&format!("REQ i-{id} {}", encode_payload(chunk)));
            }
            for _ in burst {
                let line = client.recv();
                let mut words = line.splitn(3, ' ');
                assert_eq!(words.next(), Some("RES"), "unexpected reply {line:?}");
                let id = words.next().expect("id").to_string();
                let body = words.next().expect("body").to_string();
                assert!(bodies.insert(id, body).is_none(), "duplicate reply");
            }
        }
        for (index, expected_line) in expected.iter().enumerate() {
            let (_, expected_body) = expected_line.split_once(' ').expect("indexed line");
            assert_eq!(
                bodies.get(&format!("i-{index}")).map(String::as_str),
                Some(expected_body),
                "serve diverged from gaps batch at instance {index} (threads {threads})"
            );
        }
        client.send("DRAIN");
        assert_eq!(client.recv(), "DRAINING");
        let snapshot = daemon.finish();
        assert_eq!(snapshot.requests, 500);
        assert!(
            snapshot.cache_hits >= 20,
            "the stream's duplicate chunks should hit the cache: {snapshot}"
        );
        assert_eq!(snapshot.in_flight, 0, "{snapshot}");
    }
}

#[test]
fn malformed_input_corpus_is_answered_with_err_and_the_daemon_survives() {
    // One worker, so the duplicate-id probe below can park requests
    // behind slow blockers deterministically.
    let daemon = start(ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(daemon.addr);

    // Unknown verb.
    client.send("FROB x");
    assert!(client.recv().starts_with("ERR - unknown verb"));
    // Truncated REQ: verb alone, then id without payload.
    client.send("REQ");
    assert!(client.recv().starts_with("ERR - bad request id"));
    client.send("REQ trunc-1");
    assert!(client.recv().starts_with("ERR trunc-1 "));
    // Junk id.
    client.send("REQ b@d!id instance v1");
    assert!(client.recv().starts_with("ERR - bad request id"));
    // Payload that parses as no known instance format.
    client.send("REQ p-1 garbage v9;job 0 1");
    assert!(client.recv().starts_with("ERR p-1 "));
    // Payload with a malformed job line.
    client.send("REQ p-2 instance v1;processors 1;job zero two");
    assert!(client.recv().starts_with("ERR p-2 "));
    // Payload holding two instances where one is required.
    client.send("REQ p-3 instance v1;processors 1;job 0 1;instance v1;processors 1;job 0 1");
    let line = client.recv();
    assert!(
        line.starts_with("ERR p-3 ") && line.contains("exactly one"),
        "{line:?}"
    );
    // Oversized frame: consumed, reported, stream stays synchronized.
    let huge = format!("REQ big {}\n", "x".repeat(MAX_FRAME_BYTES + 10));
    client.send_raw(huge.as_bytes());
    assert!(client.recv().starts_with("ERR - frame exceeds"));
    // Invalid UTF-8.
    client.send_raw(b"REQ utf8 \xff\xfe instance\n");
    assert_eq!(client.recv(), "ERR - frame is not valid UTF-8");
    // Duplicate in-flight id: stack five slow blockers onto the single
    // worker, then send the same id twice back-to-back. The first copy
    // is parked in the queue behind ~17ms of blockers when the reader
    // (µs later) meets the second — which must be rejected.
    let mut burst = String::new();
    for i in 0..5 {
        burst.push_str(&format!(
            "REQ blk-{i} {}\n",
            encode_payload(&heavy_instance_text(i))
        ));
    }
    let heavy = encode_payload(&heavy_instance_text(7));
    burst.push_str(&format!("REQ dup {heavy}\nREQ dup {heavy}\n"));
    client.send_raw(burst.as_bytes());
    let mut res = 0;
    let mut dup_err = 0;
    for _ in 0..7 {
        let line = client.recv();
        if line.starts_with("ERR dup duplicate request id") {
            dup_err += 1;
        } else {
            assert!(line.starts_with("RES "), "{line:?}");
            res += 1;
        }
    }
    assert_eq!(
        (res, dup_err),
        (6, 1),
        "exactly one copy of the duplicate id is served"
    );
    // …but an id becomes reusable once its response has been sent.
    client.send(&format!("REQ dup {heavy}"));
    assert!(client.recv().starts_with("RES dup "), "cache-warm reuse");

    // After all that abuse the daemon still serves normally.
    client.send("PING");
    assert_eq!(client.recv(), "PONG");
    client.send("REQ ok instance v1;processors 1;job 0 1");
    assert!(client.recv().starts_with("RES ok one n=1 "));
    client.send("DRAIN");
    assert_eq!(client.recv(), "DRAINING");
    let snapshot = daemon.finish();
    assert!(
        snapshot.protocol_errors >= 10,
        "every corpus entry is counted: {snapshot}"
    );
}

#[test]
fn full_queue_answers_busy_instead_of_stalling() {
    let daemon = start(ServeConfig {
        threads: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(daemon.addr);
    // Flood 40 distinct slow requests in one write. With one worker
    // (~3.5ms per solve) and a one-slot queue, the reader admits at
    // most a couple before every subsequent submit sees a full queue.
    let mut flood = String::new();
    for i in 0..40 {
        flood.push_str(&format!(
            "REQ f-{i} {}\n",
            encode_payload(&heavy_instance_text(i))
        ));
    }
    client.send_raw(flood.as_bytes());
    let mut res = 0u64;
    let mut busy = 0u64;
    for _ in 0..40 {
        let line = client.recv();
        match line.split(' ').next() {
            Some("RES") => res += 1,
            Some("BUSY") => busy += 1,
            _ => panic!("unexpected reply under load: {line:?}"),
        }
    }
    assert_eq!(res + busy, 40);
    assert!(
        busy >= 1,
        "a one-slot queue under a 40-request flood must push back"
    );
    assert!(res >= 1, "admitted requests still complete");
    // Backpressure is per-request, not a wedge: the daemon keeps serving.
    client.send("PING");
    assert_eq!(client.recv(), "PONG");
    client.send("DRAIN");
    assert_eq!(client.recv(), "DRAINING");
    let snapshot = daemon.finish();
    assert_eq!(snapshot.rejected, busy, "{snapshot}");
    assert_eq!(snapshot.requests, res, "{snapshot}");
}

#[test]
fn shed_mode_degrades_oversized_instances_instead_of_refusing() {
    let daemon = start(ServeConfig {
        shed_jobs: 8,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(daemon.addr);
    // 16 jobs > shed_jobs: served by the approximate chain, not the
    // exact solver the router would normally pick.
    client.send(&format!(
        "REQ big {}",
        encode_payload(&heavy_instance_text(1))
    ));
    let line = client.recv();
    assert!(line.starts_with("RES big multi n=16 "), "{line:?}");
    assert!(
        !line.contains("solver=multi_exact"),
        "shed requests must not reach the exact solver: {line:?}"
    );
    // A small instance on the same connection still gets full service.
    client.send("REQ small instance v1;processors 1;job 0 1");
    let line = client.recv();
    assert!(line.starts_with("RES small one n=1 gaps="), "{line:?}");
    client.send("STATS");
    let rows = client.recv_stats();
    assert_eq!(rows.get("requests").map(String::as_str), Some("2"));
    assert_eq!(rows.get("shed").map(String::as_str), Some("1"));
    assert!(rows.contains_key("uptime_s"), "{rows:?}");
    client.send("DRAIN");
    assert_eq!(client.recv(), "DRAINING");
    assert_eq!(daemon.finish().shed, 1);
}

#[test]
fn online_session_reports_tracker_ratio_and_stats_v2_rows() {
    let daemon = start(ServeConfig {
        threads: 2,
        max_threads: 4,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(daemon.addr);
    client.send("SESSION begin timeout 4");
    assert_eq!(client.recv(), "SESSION begun policy=timeout alpha=4");
    for (t, expect) in [
        (0, "SESSION t=1 state=awake online=5"),
        (2, "SESSION t=3 state=awake online=7"),
        (20, "SESSION t=21 state=awake online=16"),
    ] {
        client.send(&format!("SESSION arrive {t}"));
        assert_eq!(client.recv(), expect);
    }
    // Trailing idle: timeout(4) stays awake 4 slots then sleeps.
    client.send("SESSION step 6");
    assert_eq!(client.recv(), "SESSION t=27 state=asleep online=20");
    client.send("SESSION end");
    assert_eq!(
        client.recv(),
        "SESSION end policy=timeout alpha=4 jobs=3 online=20 offline=12 ratio=1.6667"
    );
    // Ordinary requests still work on the same connection, and the
    // STATS v3 rows carry the per-policy ratio and pool-worker gauges.
    client.send("REQ after instance v1;processors 1;job 0 1");
    assert!(client.recv().starts_with("RES after one n=1 "));
    client.send("STATS");
    let rows = client.recv_stats();
    assert_eq!(
        rows.get("policy.timeout.sessions").map(String::as_str),
        Some("1")
    );
    assert_eq!(
        rows.get("policy.timeout.ratio_mean").map(String::as_str),
        Some("1.6667")
    );
    assert_eq!(
        rows.get("policy.timeout.ratio_max").map(String::as_str),
        Some("1.6667")
    );
    assert_eq!(rows.get("pool_workers").map(String::as_str), Some("2"));
    // The SESSION end offline solve plus the explicit REQ.
    assert_eq!(rows.get("requests").map(String::as_str), Some("2"));
    assert!(rows.contains_key("solver.forced_chain.p50_us"), "{rows:?}");
    // v3: the search.* rows are always present (zero here — no
    // multi-exact branch-and-bound ran on this connection).
    assert_eq!(
        rows.get("search.nodes_expanded").map(String::as_str),
        Some("0")
    );
    assert!(rows.contains_key("search.subtree_steals"), "{rows:?}");
    client.send("DRAIN");
    assert_eq!(client.recv(), "DRAINING");
    daemon.finish();
}

#[test]
fn malformed_session_corpus_is_answered_with_err_and_the_session_survives() {
    let daemon = start(ServeConfig::default());
    let mut client = Client::connect(daemon.addr);

    // Out-of-order verbs before any session exists.
    client.send("SESSION arrive 3");
    assert!(client.recv().starts_with("ERR - no SESSION active"));
    client.send("SESSION step 1");
    assert!(client.recv().starts_with("ERR - no SESSION active"));
    client.send("SESSION end");
    assert!(client.recv().starts_with("ERR - no SESSION active"));
    // Parse-level garbage.
    client.send("SESSION");
    assert!(client.recv().starts_with("ERR - "));
    client.send("SESSION commence timeout 2");
    assert!(client.recv().starts_with("ERR - unknown SESSION sub-verb"));
    client.send("SESSION begin");
    assert!(client.recv().starts_with("ERR - "));
    client.send("SESSION begin timeout nope");
    assert!(client.recv().starts_with("ERR - "));
    // Unknown and online-incapable policies.
    client.send("SESSION begin warp 2");
    assert!(client.recv().starts_with("ERR - unknown online policy"));
    client.send("SESSION begin clairvoyant 2");
    assert!(client.recv().contains("lookahead"));

    // A real session now begins; double-begin is refused without
    // killing it.
    client.send("SESSION begin timeout 2");
    assert_eq!(client.recv(), "SESSION begun policy=timeout alpha=2");
    client.send("SESSION begin timeout 2");
    assert!(client.recv().starts_with("ERR - SESSION already active"));
    client.send("SESSION arrive 5");
    assert_eq!(client.recv(), "SESSION t=6 state=awake online=3");
    // Time running backwards is refused; the session keeps going.
    client.send("SESSION arrive 2");
    assert!(client.recv().contains("behind the frontier"));
    client.send("SESSION end");
    assert!(client.recv().starts_with("SESSION end policy=timeout "));
    // End-without-begin again now that the session is consumed.
    client.send("SESSION end");
    assert!(client.recv().starts_with("ERR - no SESSION active"));

    // The connection still serves everything else.
    client.send("PING");
    assert_eq!(client.recv(), "PONG");
    client.send("DRAIN");
    assert_eq!(client.recv(), "DRAINING");
    let snapshot = daemon.finish();
    assert!(
        snapshot.protocol_errors >= 12,
        "every corpus entry is counted: {snapshot}"
    );
}

#[test]
fn drain_finishes_queued_work_before_closing_connections() {
    let daemon = start(ServeConfig {
        threads: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(daemon.addr);
    // Five slow requests, then DRAIN in the same write: every admitted
    // request must still be answered before the socket closes.
    let mut burst = String::new();
    for i in 0..5 {
        burst.push_str(&format!(
            "REQ d-{i} {}\n",
            encode_payload(&heavy_instance_text(10 + i))
        ));
    }
    burst.push_str("DRAIN\n");
    client.send_raw(burst.as_bytes());
    let mut res = 0;
    let mut draining = 0;
    for _ in 0..6 {
        let line = client.recv();
        if line == "DRAINING" {
            draining += 1;
        } else {
            assert!(line.starts_with("RES d-"), "{line:?}");
            res += 1;
        }
    }
    assert_eq!((res, draining), (5, 1));
    let snapshot = daemon.finish();
    assert_eq!(snapshot.requests, 5);
    assert_eq!(snapshot.in_flight, 0, "{snapshot}");
    assert_eq!(snapshot.queue_depth, 0, "{snapshot}");
}

#[test]
fn requests_after_drain_are_refused() {
    let daemon = start(ServeConfig::default());
    let mut client = Client::connect(daemon.addr);
    client.send("REQ warm instance v1;processors 1;job 0 1");
    assert!(client.recv().starts_with("RES warm "));
    client.send_raw(b"DRAIN\nREQ late instance v1;processors 1;job 0 1\n");
    assert_eq!(client.recv(), "DRAINING");
    let line = client.recv();
    assert!(
        line.starts_with("ERR late draining"),
        "late requests are refused, not silently dropped: {line:?}"
    );
    let snapshot = daemon.finish();
    assert_eq!(snapshot.requests, 1);
}

//! Pool shutdown discipline: a worker that panics mid-batch must bring
//! the whole `map_ordered` call down promptly — never hang the feeder or
//! the collector — and must leave nothing behind that corrupts the next
//! batch. The bounded work channel and the unbounded result channel both
//! detect peer disconnection, so every blocking site has an exit path;
//! these tests exercise that path from the public API.
//!
//! Under `--features sanitize` the same file also proves the runtime
//! checker reaches code running *inside* pool workers (the feature
//! unifies down through the vendored stubs), and that its thread-local
//! held-guard state unwinds cleanly with a panicking worker.

use gaps_engine::pool::map_ordered;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A worker panic mid-batch propagates out of `map_ordered` instead of
/// deadlocking the feeder (blocked on a bounded send) or the collector
/// (blocked on a recv that can no longer be satisfied). The test
/// finishing at all is the liveness assertion; the harness would hang
/// forever on a regression.
#[test]
fn panicking_worker_does_not_hang_the_pool() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        map_ordered((0..100u64).collect::<Vec<_>>(), 4, |_, x| {
            if x == 37 {
                panic!("poisoned item");
            }
            x * 2
        })
    }));
    assert!(err.is_err(), "the worker panic must re-raise, not vanish");
}

/// Same liveness property in the tightest configuration: one worker, so
/// the panic kills the *only* receiver while the feeder still has items
/// queued. The bounded channel's disconnection check is what unblocks
/// the feeder here.
#[test]
fn single_worker_panic_unblocks_the_feeder() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        map_ordered((0..500u64).collect::<Vec<_>>(), 1, |_, x| {
            if x == 0 {
                panic!("first item poisons the only worker");
            }
            x
        })
    }));
    assert!(err.is_err());
}

/// A panicked batch must not poison later ones: each `map_ordered` call
/// builds a fresh scope with fresh threads, so a follow-up batch still
/// returns byte-identical, input-ordered results across thread counts.
#[test]
fn pool_recovers_after_a_panicked_batch() {
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        map_ordered((0..64u64).collect::<Vec<_>>(), 3, |_, x| {
            if x % 7 == 5 {
                panic!("poison");
            }
            x
        })
    }));
    assert!(poisoned.is_err());

    let items: Vec<u64> = (0..200).collect();
    let one = map_ordered(items.clone(), 1, |i, x| (i as u64) * 1_000 + x);
    let many = map_ordered(items, 8, |i, x| (i as u64) * 1_000 + x);
    assert_eq!(one, many, "order determinism survives a prior panic");
    assert_eq!(one[199], 199 * 1_000 + 199);
}

/// A worker panicking *while holding a lock guard* must release it on
/// unwind: the shared mutex stays usable for the recovery batch. Under
/// `sanitize` this additionally proves the checker's thread-local held
/// stack pops during unwind instead of leaking a phantom hold.
#[test]
fn guard_held_at_panic_is_released_on_unwind() {
    let counter = parking_lot::Mutex::new(0u64);
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        map_ordered((0..16u64).collect::<Vec<_>>(), 2, |_, x| {
            let mut n = counter.lock();
            *n += 1;
            if x == 9 {
                panic!("poison under guard");
            }
        })
    }));
    assert!(poisoned.is_err());

    // The recovery batch re-takes the same mutex from fresh workers; a
    // leaked hold (or, under sanitize, a stale held-stack entry) would
    // deadlock or false-positive here.
    map_ordered((0..32u64).collect::<Vec<_>>(), 4, |_, _| {
        *counter.lock() += 1;
    });
    assert!(*counter.lock() >= 32, "recovery batch ran to completion");
}

/// The sanitizer must see through the pool: a blocking channel op under
/// a guard *inside a worker closure* panics with both sites named, same
/// as it would on the main thread. The panic is caught inside the worker
/// so the batch itself completes and we can assert on every message.
#[cfg(feature = "sanitize")]
#[test]
fn sanitize_detects_channel_op_under_lock_inside_workers() {
    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    let msgs = map_ordered((0..4u64).collect::<Vec<_>>(), 2, |_, x| {
        let m = parking_lot::Mutex::new(());
        let (tx, _rx) = crossbeam::channel::bounded::<u64>(1);
        let g = m.lock();
        // analyzer: allow(concurrency): deliberately provoking the sanitizer
        let err = catch_unwind(AssertUnwindSafe(|| tx.send(x).is_err()))
            .expect_err("sanitizer must refuse send under a guard");
        drop(g);
        panic_message(err)
    });
    assert_eq!(msgs.len(), 4);
    for msg in &msgs {
        assert!(msg.contains("channel `send`"), "{msg}");
        assert!(msg.contains("Mutex::lock"), "{msg}");
    }
}

//! Property tests for the intrusive-list LRU cache: the rewrite from
//! scan-based eviction to O(1) list splicing must preserve exact LRU
//! semantics. A naive model cache (Vec ordered least-recent-first) is
//! replayed against the real one over random op sequences.

use gaps_engine::ShardedCache;
use proptest::prelude::*;

/// Reference LRU: a Vec of (key, value), least recently used first.
struct ModelLru {
    capacity: usize,
    entries: Vec<(String, String)>,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<String> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1.clone();
        self.entries.push(entry);
        Some(value)
    }

    fn insert(&mut self, key: String, value: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0); // least recently used
        }
        self.entries.push((key, value));
    }
}

/// An op sequence: (is_insert, key id, value id).
fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
    proptest::collection::vec(
        (0u8..2, 0u8..12, 0u8..250).prop_map(|(op, k, v)| (op == 1, k, v)),
        1..=max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single shard: the real cache agrees with the model on every get
    /// result, on residency, and on the full eviction order.
    #[test]
    fn single_shard_matches_model_lru(capacity in 1usize..6, ops in arb_ops(60)) {
        let cache = ShardedCache::new(capacity, 1);
        let mut model = ModelLru::new(capacity);
        for (is_insert, k, v) in ops {
            let key = format!("k{k}");
            if is_insert {
                cache.insert(key.clone(), format!("v{v}"));
                model.insert(key, format!("v{v}"));
            } else {
                prop_assert_eq!(cache.get(&key), model.get(&key), "get({}) diverged", key);
            }
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
            prop_assert_eq!(cache.len(), model.entries.len());
            // Eviction order must match exactly, LRU first.
            let order = cache.lru_order_of_shard(0);
            let model_order: Vec<String> =
                model.entries.iter().map(|(k, _)| k.clone()).collect();
            prop_assert_eq!(order, model_order, "LRU order diverged");
        }
    }

    /// Any shard count: total capacity is never exceeded, and get-after-put
    /// round-trips while the cache has spare room (no eviction can have
    /// touched the key).
    #[test]
    fn sharded_capacity_and_round_trip(
        capacity in 1usize..40,
        shards in 1usize..9,
        keys in proptest::collection::vec(0u16..500, 1..=50),
    ) {
        let cache = ShardedCache::new(capacity, shards);
        let mut distinct = Vec::new();
        for k in keys {
            let key = format!("key-{k}");
            cache.insert(key.clone(), format!("val-{k}"));
            if !distinct.contains(&k) {
                distinct.push(k);
            }
            // Freshly inserted keys must be readable immediately: the
            // insert either hit a shard with room or evicted that shard's
            // LRU, never the key just written.
            prop_assert_eq!(cache.get(&key), Some(format!("val-{k}")));
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
            if distinct.len() <= capacity / shards {
                // No shard can have overflowed yet (even the worst-case
                // all-in-one-shard skew fits the smallest shard budget),
                // so every distinct key must still round-trip.
                for &d in &distinct {
                    prop_assert_eq!(
                        cache.get(&format!("key-{d}")),
                        Some(format!("val-{d}")),
                        "key-{} lost before any shard could be full", d
                    );
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.entries, cache.len());
        prop_assert!(stats.hits > 0);
    }

    /// The hottest key of a skewed stream is never the one evicted.
    #[test]
    fn hot_key_survives_skewed_stream(cold_keys in proptest::collection::vec(0u16..300, 1..=80)) {
        let cache = ShardedCache::new(4, 1);
        cache.insert("hot".into(), "h".into());
        for k in cold_keys {
            prop_assert_eq!(cache.get("hot"), Some("h".into()), "hot key evicted");
            cache.insert(format!("cold-{k}"), "c".into());
        }
        prop_assert_eq!(cache.get("hot"), Some("h".into()));
    }
}

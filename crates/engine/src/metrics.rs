//! Observability for both engine lifecycles: the batch-lifetime
//! [`EngineReport`] (one summary per finite batch) and the continuously
//! updated [`MetricsRegistry`] a long-running service snapshots at any
//! instant (latency histograms per solver, cache hit rate, queue depth,
//! in-flight gauge).
//!
//! Both deliberately travel on side channels (stderr report, `STATS`
//! responses): result lines on stdout must be byte-identical across
//! thread counts, and wall-clock numbers are not.
//!
//! The registry never reads a clock itself — callers hand it measured
//! [`Duration`]s — but this module stays on the determinism-rule exempt
//! list because the batch report stores wall-clock durations.

use gaps_core::multi_exact::SearchStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::time::Duration;

/// Upper edges of the per-component job-count histogram buckets
/// (log₂-spaced up to the solver's 64-job mask cap).
pub const COMPONENT_BUCKET_EDGES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Accumulated branch-and-bound search effort across multi-exact solves:
/// the aggregate view of [`gaps_core::multi_exact::SearchStats`] that
/// `STATS v3` and the batch report print.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchTotals {
    /// Branch-and-bound states expanded (memo misses) across solves.
    pub nodes_expanded: u64,
    /// Subtree tasks enumerated by parallel solves.
    pub subtree_tasks: u64,
    /// Subtree tasks executed by a non-primary worker (stolen).
    pub subtree_steals: u64,
    /// Shared-incumbent tightenings across parallel solves.
    pub incumbent_updates: u64,
    /// Decomposed-component size histogram; bucket `i` counts components
    /// with at most [`COMPONENT_BUCKET_EDGES`]`[i]` jobs (first bucket
    /// that fits).
    pub components: [u64; COMPONENT_BUCKET_EDGES.len()],
}

impl SearchTotals {
    /// Fold one solve's statistics in.
    pub fn record(&mut self, stats: &SearchStats) {
        self.nodes_expanded += stats.nodes_expanded;
        self.subtree_tasks += stats.subtree_tasks;
        self.subtree_steals += stats.subtree_steals;
        self.incumbent_updates += stats.incumbent_updates;
        for &jobs in &stats.component_jobs {
            let bucket = COMPONENT_BUCKET_EDGES
                .iter()
                .position(|&edge| jobs as u64 <= edge)
                .unwrap_or(COMPONENT_BUCKET_EDGES.len() - 1);
            self.components[bucket] += 1;
        }
    }

    /// Componentwise difference (`self − earlier`), used to scope the
    /// lifetime registry's totals down to one batch.
    pub fn since(&self, earlier: &SearchTotals) -> SearchTotals {
        let mut components = [0u64; COMPONENT_BUCKET_EDGES.len()];
        for (i, slot) in components.iter_mut().enumerate() {
            *slot = self.components[i].saturating_sub(earlier.components[i]);
        }
        SearchTotals {
            nodes_expanded: self.nodes_expanded.saturating_sub(earlier.nodes_expanded),
            subtree_tasks: self.subtree_tasks.saturating_sub(earlier.subtree_tasks),
            subtree_steals: self.subtree_steals.saturating_sub(earlier.subtree_steals),
            incumbent_updates: self
                .incumbent_updates
                .saturating_sub(earlier.incumbent_updates),
            components,
        }
    }

    /// True iff no search effort was recorded.
    pub fn is_empty(&self) -> bool {
        *self == SearchTotals::default()
    }
}

/// Order statistics over per-request latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Fastest request.
    pub min: Duration,
    /// Median request.
    pub median: Duration,
    /// 95th-percentile request (nearest-rank).
    pub p95: Duration,
    /// Slowest request.
    pub max: Duration,
}

/// Summarize a latency sample set (all zeros when empty).
pub fn summarize_latencies(mut samples: Vec<Duration>) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_unstable();
    let rank = |q_num: usize, q_den: usize| {
        // Nearest-rank percentile: ceil(q * n) as a 1-based rank.
        let n = samples.len();
        samples[(q_num * n).div_ceil(q_den).clamp(1, n) - 1]
    };
    LatencySummary {
        min: samples[0],
        median: rank(1, 2),
        p95: rank(19, 20),
        max: *samples.last().expect("non-empty"),
    }
}

/// Everything the engine observed while serving one batch.
#[derive(Clone, Debug, Default)]
pub struct EngineReport {
    /// Requests served (= result lines emitted).
    pub requests: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Requests answered from the result cache in this batch.
    pub cache_hits: u64,
    /// Requests that went to a solver in this batch.
    pub cache_misses: u64,
    /// Entries resident in the cache after the batch.
    pub cache_entries: usize,
    /// How many requests each solver handled (cache hits excluded).
    pub solver_counts: BTreeMap<&'static str, usize>,
    /// Per-solver-family latency order statistics (cache hits excluded):
    /// where the batch's time actually went, solver by solver — the
    /// router-mix view the portfolio is tuned against.
    pub solver_latency: BTreeMap<&'static str, LatencySummary>,
    /// Per-request latency order statistics.
    pub latency: LatencySummary,
    /// Branch-and-bound search effort spent by this batch's multi-exact
    /// solves (all zeros when none ran).
    pub search: SearchTotals,
    /// End-to-end batch wall clock.
    pub wall: Duration,
}

impl EngineReport {
    /// Fraction of requests answered from the cache (0.0 for an empty
    /// batch).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Requests per second of batch wall clock (0.0 for an instant or
    /// empty batch).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} request(s) on {} thread(s) in {:.1?} ({:.0} req/s)",
            self.requests,
            self.threads,
            self.wall,
            self.throughput()
        )?;
        writeln!(
            f,
            "cache:  {} hit(s) / {} miss(es) ({:.1}% hit rate), {} entrie(s) resident",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.cache_entries
        )?;
        write!(f, "router:")?;
        if self.solver_counts.is_empty() {
            write!(f, " (all requests served from cache)")?;
        }
        for (solver, count) in &self.solver_counts {
            write!(f, " {solver}={count}")?;
        }
        writeln!(f)?;
        for (solver, lat) in &self.solver_latency {
            writeln!(
                f,
                "        {solver}: median {:.1?} / p95 {:.1?} / max {:.1?}",
                lat.median, lat.p95, lat.max
            )?;
        }
        if !self.search.is_empty() {
            write!(
                f,
                "search: {} node(s) expanded, {} subtree task(s) ({} stolen), {} incumbent update(s), components",
                self.search.nodes_expanded,
                self.search.subtree_tasks,
                self.search.subtree_steals,
                self.search.incumbent_updates,
            )?;
            for (edge, count) in COMPONENT_BUCKET_EDGES.iter().zip(&self.search.components) {
                if *count > 0 {
                    write!(f, " le{edge}={count}")?;
                }
            }
            writeln!(f)?;
        }
        write!(
            f,
            "latency: min {:.1?} / median {:.1?} / p95 {:.1?} / max {:.1?}",
            self.latency.min, self.latency.median, self.latency.p95, self.latency.max
        )
    }
}

/// Log₂-bucketed latency histogram over microseconds.
///
/// Bucket `b > 0` covers `[2^(b-1), 2^b)` µs; bucket 0 is sub-µs. The
/// shape makes [`Histogram::merge`] a plain vector add, so per-thread
/// recorders can be combined without rebanking, and quantiles degrade
/// gracefully (nearest rank over buckets, reported at the bucket's upper
/// edge, clamped to the observed min/max).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; Histogram::BUCKETS],
    count: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; Histogram::BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Bucket count: log₂ µs up to ~2³⁸ µs (≈ 3 days), then saturating.
    const BUCKETS: usize = 40;

    fn bucket(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(Histogram::BUCKETS - 1)
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, sample: Duration) {
        let us = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
        self.counts[Histogram::bucket(us)] += 1;
        self.count += 1;
        self.sum_us += u128::from(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Fold another histogram into this one (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            *into += from;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_us)
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_micros((self.sum_us / u128::from(self.count)) as u64)
        }
    }

    /// Nearest-rank quantile `num/den` (e.g. `1/2`, `19/20`), reported
    /// at the containing bucket's upper edge and clamped to the observed
    /// range. Zero when empty.
    pub fn quantile(&self, num: u64, den: u64) -> Duration {
        assert!(den > 0 && num <= den, "quantile must be within [0, 1]");
        if self.is_empty() {
            return Duration::ZERO;
        }
        let rank = (num * self.count).div_ceil(den).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if idx == 0 {
                    0
                } else if idx == Histogram::BUCKETS - 1 {
                    // The saturating top bucket has no finite upper edge
                    // (it absorbs everything from 2^(BUCKETS-2) µs up to
                    // u64::MAX µs), so the only honest report is the
                    // observed maximum.
                    self.max_us
                } else {
                    (1u64 << idx) - 1
                };
                return Duration::from_micros(upper.clamp(self.min_us, self.max_us));
            }
        }
        Duration::from_micros(self.max_us)
    }
}

/// Running competitive-ratio statistics for one online policy: session
/// count, mean, and worst case. Small enough to copy into snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RatioStats {
    /// Completed online sessions under this policy.
    pub sessions: u64,
    sum: f64,
    /// Worst realized ratio.
    pub max: f64,
}

impl RatioStats {
    /// Fold in one completed session's realized ratio.
    pub fn record(&mut self, ratio: f64) {
        self.sessions += 1;
        self.sum += ratio;
        if ratio > self.max {
            self.max = ratio;
        }
    }

    /// Mean realized ratio (zero when no sessions completed).
    pub fn mean(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.sum / self.sessions as f64
        }
    }
}

/// Continuously updated service metrics, shared by reference across
/// recorder threads and snapshotted at any instant by `STATS` / the
/// stderr ticker.
///
/// Counter discipline: a recorder bumps `requests` *first*, then the
/// breakdown counters (hit/miss/shed); [`MetricsRegistry::snapshot`]
/// reads the breakdowns *before* `requests`. Every breakdown increment
/// therefore has its request increment ordered before it, which gives
/// every snapshot the invariant `cache_hits + cache_misses ≤ requests`
/// without a global lock around the counters.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    pool_workers: AtomicU64,
    latency: Mutex<Histogram>,
    per_solver: Mutex<BTreeMap<&'static str, Histogram>>,
    per_policy: Mutex<BTreeMap<&'static str, RatioStats>>,
    search: Mutex<SearchTotals>,
}

impl MetricsRegistry {
    /// Fresh registry, all zeros.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Record one completed request: which solver ran (`None` on a cache
    /// hit), whether the cache answered, whether the shed chain served
    /// it, and the measured latency.
    pub fn record_request(
        &self,
        solver: Option<&'static str>,
        cache_hit: bool,
        shed: bool,
        elapsed: Duration,
    ) {
        // `requests` first — see the struct docs for the snapshot
        // invariant this ordering buys.
        self.requests.fetch_add(1, SeqCst);
        if cache_hit {
            self.cache_hits.fetch_add(1, SeqCst);
        } else {
            self.cache_misses.fetch_add(1, SeqCst);
        }
        if shed {
            self.shed.fetch_add(1, SeqCst);
        }
        self.latency.lock().record(elapsed);
        if let Some(name) = solver {
            self.per_solver
                .lock()
                .entry(name)
                .or_default()
                .record(elapsed);
        }
    }

    /// Record an admission refusal (`BUSY`): the queue was full.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, SeqCst);
    }

    /// Record a malformed frame answered with `ERR`.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, SeqCst);
    }

    /// A request entered the engine (admitted, not yet answered).
    pub fn inflight_enter(&self) {
        self.in_flight.fetch_add(1, SeqCst);
    }

    /// A request left the engine (answered or failed).
    pub fn inflight_exit(&self) {
        // Saturating: a stray exit must never wrap the gauge to 2⁶⁴.
        let _ = self
            .in_flight
            .fetch_update(SeqCst, SeqCst, |v| Some(v.saturating_sub(1)));
    }

    /// Publish the admission queue's current depth.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, SeqCst);
    }

    /// Publish the solve pool's current live worker count (elastic
    /// pools grow and shrink it between snapshots).
    pub fn set_pool_workers(&self, workers: u64) {
        self.pool_workers.store(workers, SeqCst);
    }

    /// Record one multi-exact solve's branch-and-bound effort (nodes
    /// expanded, component histogram, subtree tasks/steals, incumbent
    /// updates). Once per solve, so a plain mutex is fine.
    pub fn record_search(&self, stats: &SearchStats) {
        self.search.lock().record(stats);
    }

    /// The lifetime search-effort totals (batch reports subtract two of
    /// these to scope effort down to one batch).
    pub fn search_totals(&self) -> SearchTotals {
        self.search.lock().clone()
    }

    /// Record one completed online session's realized competitive ratio
    /// under the named policy.
    pub fn record_session_ratio(&self, policy: &'static str, ratio: f64) {
        self.per_policy
            .lock()
            .entry(policy)
            .or_default()
            .record(ratio);
    }

    /// A consistent point-in-time copy of every counter, gauge, and
    /// histogram. See the struct docs for the ordering invariant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Breakdown counters strictly before `requests`.
        let cache_hits = self.cache_hits.load(SeqCst);
        let cache_misses = self.cache_misses.load(SeqCst);
        let shed = self.shed.load(SeqCst);
        let requests = self.requests.load(SeqCst);
        MetricsSnapshot {
            requests,
            cache_hits,
            cache_misses,
            shed,
            rejected: self.rejected.load(SeqCst),
            protocol_errors: self.protocol_errors.load(SeqCst),
            in_flight: self.in_flight.load(SeqCst),
            queue_depth: self.queue_depth.load(SeqCst),
            pool_workers: self.pool_workers.load(SeqCst),
            latency: self.latency.lock().clone(),
            per_solver: self.per_solver.lock().clone(),
            per_policy: self.per_policy.lock().clone(),
            search: self.search.lock().clone(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Requests answered (hits + misses, including shed requests).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that went to a solver.
    pub cache_misses: u64,
    /// Requests served by the degraded (shed) chain.
    pub shed: u64,
    /// Admissions refused with `BUSY`.
    pub rejected: u64,
    /// Malformed frames answered with `ERR`.
    pub protocol_errors: u64,
    /// Requests admitted but not yet answered.
    pub in_flight: u64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Live solve-pool workers at snapshot time (0 when no pool
    /// publishes it).
    pub pool_workers: u64,
    /// Latency distribution over every answered request.
    pub latency: Histogram,
    /// Latency distribution per solver family (cache hits excluded).
    pub per_solver: BTreeMap<&'static str, Histogram>,
    /// Competitive-ratio running statistics per online policy.
    pub per_policy: BTreeMap<&'static str, RatioStats>,
    /// Lifetime branch-and-bound search effort (multi-exact solves).
    pub search: SearchTotals,
}

impl MetricsSnapshot {
    /// Fraction of requests answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Flat `(key, value)` rows, stable order — the `STATS` wire body
    /// and the ticker line are both rendered from this.
    pub fn stat_rows(&self) -> Vec<(String, String)> {
        let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let mut rows = vec![
            ("requests".to_string(), self.requests.to_string()),
            ("cache_hits".to_string(), self.cache_hits.to_string()),
            ("cache_misses".to_string(), self.cache_misses.to_string()),
            (
                "cache_hit_rate".to_string(),
                format!("{:.4}", self.hit_rate()),
            ),
            ("shed".to_string(), self.shed.to_string()),
            ("rejected".to_string(), self.rejected.to_string()),
            (
                "protocol_errors".to_string(),
                self.protocol_errors.to_string(),
            ),
            ("in_flight".to_string(), self.in_flight.to_string()),
            ("queue_depth".to_string(), self.queue_depth.to_string()),
            ("pool_workers".to_string(), self.pool_workers.to_string()),
            (
                "latency_p50_us".to_string(),
                us(self.latency.quantile(1, 2)).to_string(),
            ),
            (
                "latency_p95_us".to_string(),
                us(self.latency.quantile(19, 20)).to_string(),
            ),
            (
                "latency_max_us".to_string(),
                us(self.latency.max()).to_string(),
            ),
        ];
        for (solver, hist) in &self.per_solver {
            rows.push((format!("solver.{solver}.count"), hist.count().to_string()));
            rows.push((
                format!("solver.{solver}.p50_us"),
                us(hist.quantile(1, 2)).to_string(),
            ));
            rows.push((
                format!("solver.{solver}.p95_us"),
                us(hist.quantile(19, 20)).to_string(),
            ));
        }
        rows.push((
            "search.nodes_expanded".to_string(),
            self.search.nodes_expanded.to_string(),
        ));
        rows.push((
            "search.subtree_tasks".to_string(),
            self.search.subtree_tasks.to_string(),
        ));
        rows.push((
            "search.subtree_steals".to_string(),
            self.search.subtree_steals.to_string(),
        ));
        rows.push((
            "search.incumbent_updates".to_string(),
            self.search.incumbent_updates.to_string(),
        ));
        for (edge, count) in COMPONENT_BUCKET_EDGES.iter().zip(&self.search.components) {
            rows.push((format!("search.components_le_{edge}"), count.to_string()));
        }
        for (policy, stats) in &self.per_policy {
            rows.push((
                format!("policy.{policy}.sessions"),
                stats.sessions.to_string(),
            ));
            rows.push((
                format!("policy.{policy}.ratio_mean"),
                format!("{:.4}", stats.mean()),
            ));
            rows.push((
                format!("policy.{policy}.ratio_max"),
                format!("{:.4}", stats.max),
            ));
        }
        rows
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req={} hit={:.1}% shed={} busy={} err={} inflight={} queue={} \
             p50={:.1?} p95={:.1?} max={:.1?}",
            self.requests,
            100.0 * self.hit_rate(),
            self.shed,
            self.rejected,
            self.protocol_errors,
            self.in_flight,
            self.queue_depth,
            self.latency.quantile(1, 2),
            self.latency.quantile(19, 20),
            self.latency.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn summary_orders_statistics() {
        let s = summarize_latencies(vec![ms(5), ms(1), ms(3), ms(2), ms(4)]);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.median, ms(3));
        assert_eq!(s.max, ms(5));
        assert_eq!(s.p95, ms(5));
    }

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(summarize_latencies(vec![]), LatencySummary::default());
    }

    #[test]
    fn p95_uses_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = summarize_latencies(samples);
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.median, ms(50));
    }

    #[test]
    fn hit_rate_and_throughput_handle_edges() {
        let empty = EngineReport::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.throughput(), 0.0);

        let report = EngineReport {
            requests: 100,
            cache_hits: 75,
            cache_misses: 25,
            wall: Duration::from_secs(2),
            ..EngineReport::default()
        };
        assert_eq!(report.hit_rate(), 0.75);
        assert_eq!(report.throughput(), 50.0);
    }

    #[test]
    fn display_mentions_every_section() {
        let mut report = EngineReport {
            requests: 3,
            threads: 2,
            cache_hits: 1,
            cache_misses: 2,
            cache_entries: 2,
            ..EngineReport::default()
        };
        report.solver_counts.insert("baptiste_dp", 2);
        report.solver_latency.insert(
            "baptiste_dp",
            summarize_latencies(vec![ms(1), ms(2), ms(3)]),
        );
        let text = report.to_string();
        for needle in [
            "engine:",
            "cache:",
            "router:",
            "latency:",
            "baptiste_dp=2",
            "baptiste_dp: median",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }

    #[test]
    fn histogram_records_and_bounds_quantiles() {
        let mut h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(1, 2), Duration::ZERO);
        for n in [1u64, 2, 3, 10, 100, 1_000] {
            h.record(ms(n));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), ms(1));
        assert_eq!(h.max(), ms(1_000));
        // Bucketed quantiles over-report by at most 2×, never under min
        // or over max, and stay monotone in q.
        let p50 = h.quantile(1, 2);
        let p95 = h.quantile(19, 20);
        assert!(p50 >= ms(3) && p50 <= ms(10), "p50 = {p50:?}");
        assert!(p95 >= ms(100), "p95 = {p95:?}");
        assert!(p50 <= p95 && p95 <= h.quantile(1, 1));
        assert_eq!(h.quantile(1, 1), h.max());
    }

    /// Pin the bucket boundaries the quantile math leans on: 1µs is the
    /// sole member of bucket 1 (upper edge 1µs), 2µs opens bucket 2
    /// (upper edge 3µs, clamped to the observed max), and samples past
    /// the saturating top bucket's lower edge must be reported at the
    /// observed maximum — not the former phantom `2^39 - 1` edge.
    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        let us = |n: u64| Duration::from_micros(n);

        // 1µs: bucket 1 covers [1, 2); quantile reports its upper edge
        // (2^1 - 1 = 1µs) exactly.
        let mut h = Histogram::default();
        h.record(us(1));
        assert_eq!(h.quantile(1, 2), us(1));
        assert_eq!(h.quantile(1, 1), us(1));

        // 2µs: bucket 2 covers [2, 4) with raw upper edge 3µs; the
        // observed-range clamp pulls the report back to the true max.
        let mut h = Histogram::default();
        h.record(us(2));
        assert_eq!(h.quantile(1, 2), us(2));
        let mut h = Histogram::default();
        h.record(us(2));
        h.record(us(3));
        assert_eq!(h.quantile(1, 1), us(3));

        // Top-bucket overflow: with {1µs, 2^45µs} the max lands in the
        // saturating bucket (index BUCKETS-1). Asking for the max
        // quantile must report 2^45µs; the deleted dead arm used to
        // leave the raw edge at 2^39 - 1 µs, *below* the sample.
        let mut h = Histogram::default();
        h.record(us(1));
        h.record(us(1 << 45));
        assert_eq!(h.quantile(1, 1), us(1 << 45));
        assert_eq!(h.quantile(1, 2), us(1));
        // Two top-bucket samples: every quantile rank resolves there.
        let mut h = Histogram::default();
        h.record(us(1 << 40));
        h.record(us(1 << 45));
        assert_eq!(h.quantile(1, 2), us(1 << 45));
        assert_eq!(h.quantile(1, 1), us(1 << 45));
    }

    #[test]
    fn histogram_merge_is_bucketwise_add() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for n in 1..=50u64 {
            a.record(ms(n));
            both.record(ms(n));
        }
        for n in 51..=100u64 {
            b.record(ms(n));
            both.record(ms(n));
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), ms(1));
        assert_eq!(a.max(), ms(100));
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn histogram_mean_and_zero_samples() {
        let mut h = Histogram::default();
        h.record(Duration::ZERO);
        h.record(ms(2));
        assert_eq!(h.mean(), ms(1));
        assert_eq!(h.min(), Duration::ZERO);
        assert!(h.quantile(1, 4) <= h.quantile(3, 4));
    }

    #[test]
    fn registry_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.record_request(Some("baptiste_dp"), false, false, ms(2));
        reg.record_request(None, true, false, ms(1));
        reg.record_request(Some("theorem3_approx"), false, true, ms(3));
        reg.record_rejected();
        reg.record_protocol_error();
        reg.inflight_enter();
        reg.inflight_enter();
        reg.inflight_exit();
        reg.set_queue_depth(5);
        let snap = reg.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.latency.count(), 3);
        assert_eq!(snap.per_solver.len(), 2);
        assert_eq!(snap.per_solver["baptiste_dp"].count(), 1);
        assert!((snap.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn inflight_gauge_saturates_at_zero() {
        let reg = MetricsRegistry::new();
        reg.inflight_exit();
        assert_eq!(reg.snapshot().in_flight, 0);
    }

    #[test]
    fn ratio_stats_track_mean_and_max() {
        let mut stats = RatioStats::default();
        assert_eq!(stats.mean(), 0.0);
        stats.record(1.0);
        stats.record(2.0);
        stats.record(1.5);
        assert_eq!(stats.sessions, 3);
        assert!((stats.mean() - 1.5).abs() < 1e-12);
        assert_eq!(stats.max, 2.0);

        let reg = MetricsRegistry::new();
        reg.record_session_ratio("timeout", 1.2);
        reg.record_session_ratio("timeout", 1.8);
        reg.record_session_ratio("never-sleep", 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.per_policy.len(), 2);
        assert_eq!(snap.per_policy["timeout"].sessions, 2);
        assert!((snap.per_policy["timeout"].mean() - 1.5).abs() < 1e-12);
        assert_eq!(snap.per_policy["never-sleep"].max, 3.0);
    }

    #[test]
    fn stat_rows_cover_the_wire_keys() {
        let reg = MetricsRegistry::new();
        reg.record_request(Some("brute_force"), false, false, ms(1));
        reg.record_session_ratio("timeout", 1.25);
        reg.set_pool_workers(4);
        let rows = reg.snapshot().stat_rows();
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        for key in [
            "requests",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "shed",
            "rejected",
            "protocol_errors",
            "in_flight",
            "queue_depth",
            "pool_workers",
            "latency_p50_us",
            "latency_p95_us",
            "latency_max_us",
            "solver.brute_force.count",
            "solver.brute_force.p50_us",
            "solver.brute_force.p95_us",
            "policy.timeout.sessions",
            "policy.timeout.ratio_mean",
            "policy.timeout.ratio_max",
            "search.nodes_expanded",
            "search.subtree_tasks",
            "search.subtree_steals",
            "search.incumbent_updates",
            "search.components_le_1",
            "search.components_le_64",
        ] {
            assert!(keys.contains(&key), "missing {key} in {keys:?}");
        }
        // Keys are single tokens: the wire format is `stat <key> <value>`.
        for (k, v) in &rows {
            assert!(!k.contains(' ') && !v.contains(' '), "{k}={v}");
        }
        let text = reg.snapshot().to_string();
        assert!(text.contains("req=1"), "{text}");
    }

    #[test]
    fn search_totals_bucket_components_and_diff() {
        let mut totals = SearchTotals::default();
        totals.record(&SearchStats {
            nodes_expanded: 100,
            component_jobs: vec![1, 2, 3, 9, 64],
            subtree_tasks: 7,
            subtree_steals: 2,
            incumbent_updates: 3,
        });
        assert_eq!(totals.nodes_expanded, 100);
        // 1 → le1, 2 → le2, 3 → le4, 9 → le16, 64 → le64.
        assert_eq!(totals.components, [1, 1, 1, 0, 1, 0, 1]);

        let mut later = totals.clone();
        later.record(&SearchStats {
            nodes_expanded: 50,
            component_jobs: vec![5],
            subtree_tasks: 1,
            subtree_steals: 0,
            incumbent_updates: 1,
        });
        let delta = later.since(&totals);
        assert_eq!(delta.nodes_expanded, 50);
        assert_eq!(delta.subtree_tasks, 1);
        assert_eq!(delta.incumbent_updates, 1);
        assert_eq!(delta.components, [0, 0, 0, 1, 0, 0, 0]);
        assert!(!delta.is_empty());
        assert!(later.since(&later).is_empty());
    }

    #[test]
    fn registry_accumulates_search_effort() {
        let reg = MetricsRegistry::new();
        assert!(reg.search_totals().is_empty());
        reg.record_search(&SearchStats {
            nodes_expanded: 10,
            component_jobs: vec![4],
            subtree_tasks: 0,
            subtree_steals: 0,
            incumbent_updates: 0,
        });
        reg.record_search(&SearchStats {
            nodes_expanded: 5,
            component_jobs: vec![30],
            subtree_tasks: 12,
            subtree_steals: 4,
            incumbent_updates: 2,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.search.nodes_expanded, 15);
        assert_eq!(snap.search.subtree_steals, 4);
        let rows = snap.stat_rows();
        let get = |key: &str| {
            rows.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("search.nodes_expanded"), "15");
        assert_eq!(get("search.subtree_tasks"), "12");
        assert_eq!(get("search.components_le_4"), "1");
        assert_eq!(get("search.components_le_32"), "1");
    }

    #[test]
    fn report_display_includes_search_only_when_present() {
        let quiet = EngineReport::default();
        assert!(!quiet.to_string().contains("search:"));
        let mut busy = EngineReport::default();
        busy.search.record(&SearchStats {
            nodes_expanded: 42,
            component_jobs: vec![2, 2],
            subtree_tasks: 6,
            subtree_steals: 1,
            incumbent_updates: 2,
        });
        let text = busy.to_string();
        assert!(text.contains("search: 42 node(s) expanded"), "{text}");
        assert!(text.contains("6 subtree task(s) (1 stolen)"), "{text}");
        assert!(text.contains("le2=2"), "{text}");
    }

    #[test]
    fn snapshot_breakdowns_never_exceed_requests_under_contention() {
        let reg = MetricsRegistry::new();
        crossbeam::scope(|s| {
            for t in 0..4 {
                let reg = &reg;
                s.spawn(move |_| {
                    for i in 0..500u64 {
                        reg.record_request(
                            Some("trivial"),
                            (i + t) % 3 == 0,
                            false,
                            Duration::from_micros(i),
                        );
                    }
                });
            }
            // Snapshot concurrently with the recorders: the breakdown
            // totals must never outrun the request counter, and counters
            // must be monotone across snapshots.
            let mut last = 0u64;
            for _ in 0..200 {
                let snap = reg.snapshot();
                assert!(
                    snap.cache_hits + snap.cache_misses <= snap.requests,
                    "hits {} + misses {} > requests {}",
                    snap.cache_hits,
                    snap.cache_misses,
                    snap.requests
                );
                assert!(snap.requests >= last, "requests went backwards");
                last = snap.requests;
            }
        })
        .expect("scope join");
        let final_snap = reg.snapshot();
        assert_eq!(final_snap.requests, 2_000);
        assert_eq!(
            final_snap.cache_hits + final_snap.cache_misses,
            final_snap.requests
        );
        assert_eq!(final_snap.latency.count(), 2_000);
    }
}

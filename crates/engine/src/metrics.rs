//! Per-batch observability: latency distribution, cache effectiveness,
//! and the solver mix, collected into an [`EngineReport`].
//!
//! The report deliberately travels on a side channel (the CLI prints it
//! to stderr): result lines on stdout must be byte-identical across
//! thread counts, and wall-clock numbers are not.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Order statistics over per-request latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Fastest request.
    pub min: Duration,
    /// Median request.
    pub median: Duration,
    /// 95th-percentile request (nearest-rank).
    pub p95: Duration,
    /// Slowest request.
    pub max: Duration,
}

/// Summarize a latency sample set (all zeros when empty).
pub fn summarize_latencies(mut samples: Vec<Duration>) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_unstable();
    let rank = |q_num: usize, q_den: usize| {
        // Nearest-rank percentile: ceil(q * n) as a 1-based rank.
        let n = samples.len();
        samples[(q_num * n).div_ceil(q_den).clamp(1, n) - 1]
    };
    LatencySummary {
        min: samples[0],
        median: rank(1, 2),
        p95: rank(19, 20),
        max: *samples.last().expect("non-empty"),
    }
}

/// Everything the engine observed while serving one batch.
#[derive(Clone, Debug, Default)]
pub struct EngineReport {
    /// Requests served (= result lines emitted).
    pub requests: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Requests answered from the result cache in this batch.
    pub cache_hits: u64,
    /// Requests that went to a solver in this batch.
    pub cache_misses: u64,
    /// Entries resident in the cache after the batch.
    pub cache_entries: usize,
    /// How many requests each solver handled (cache hits excluded).
    pub solver_counts: BTreeMap<&'static str, usize>,
    /// Per-solver-family latency order statistics (cache hits excluded):
    /// where the batch's time actually went, solver by solver — the
    /// router-mix view the portfolio is tuned against.
    pub solver_latency: BTreeMap<&'static str, LatencySummary>,
    /// Per-request latency order statistics.
    pub latency: LatencySummary,
    /// End-to-end batch wall clock.
    pub wall: Duration,
}

impl EngineReport {
    /// Fraction of requests answered from the cache (0.0 for an empty
    /// batch).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Requests per second of batch wall clock (0.0 for an instant or
    /// empty batch).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} request(s) on {} thread(s) in {:.1?} ({:.0} req/s)",
            self.requests,
            self.threads,
            self.wall,
            self.throughput()
        )?;
        writeln!(
            f,
            "cache:  {} hit(s) / {} miss(es) ({:.1}% hit rate), {} entrie(s) resident",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.cache_entries
        )?;
        write!(f, "router:")?;
        if self.solver_counts.is_empty() {
            write!(f, " (all requests served from cache)")?;
        }
        for (solver, count) in &self.solver_counts {
            write!(f, " {solver}={count}")?;
        }
        writeln!(f)?;
        for (solver, lat) in &self.solver_latency {
            writeln!(
                f,
                "        {solver}: median {:.1?} / p95 {:.1?} / max {:.1?}",
                lat.median, lat.p95, lat.max
            )?;
        }
        write!(
            f,
            "latency: min {:.1?} / median {:.1?} / p95 {:.1?} / max {:.1?}",
            self.latency.min, self.latency.median, self.latency.p95, self.latency.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn summary_orders_statistics() {
        let s = summarize_latencies(vec![ms(5), ms(1), ms(3), ms(2), ms(4)]);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.median, ms(3));
        assert_eq!(s.max, ms(5));
        assert_eq!(s.p95, ms(5));
    }

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(summarize_latencies(vec![]), LatencySummary::default());
    }

    #[test]
    fn p95_uses_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = summarize_latencies(samples);
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.median, ms(50));
    }

    #[test]
    fn hit_rate_and_throughput_handle_edges() {
        let empty = EngineReport::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.throughput(), 0.0);

        let report = EngineReport {
            requests: 100,
            cache_hits: 75,
            cache_misses: 25,
            wall: Duration::from_secs(2),
            ..EngineReport::default()
        };
        assert_eq!(report.hit_rate(), 0.75);
        assert_eq!(report.throughput(), 50.0);
    }

    #[test]
    fn display_mentions_every_section() {
        let mut report = EngineReport {
            requests: 3,
            threads: 2,
            cache_hits: 1,
            cache_misses: 2,
            cache_entries: 2,
            ..EngineReport::default()
        };
        report.solver_counts.insert("baptiste_dp", 2);
        report.solver_latency.insert(
            "baptiste_dp",
            summarize_latencies(vec![ms(1), ms(2), ms(3)]),
        );
        let text = report.to_string();
        for needle in [
            "engine:",
            "cache:",
            "router:",
            "latency:",
            "baptiste_dp=2",
            "baptiste_dp: median",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
    }
}

//! Online sessions with live competitive-ratio tracking.
//!
//! The paper's setting is inherently online: a power-managed processor
//! must decide, slot by slot, whether to stay awake without knowing
//! future arrivals. [`OnlineTracker`] is that loop made concrete — it
//! feeds revealed arrivals through a [`gaps_sim`] power policy's
//! incremental entry point ([`gaps_sim::OnlineRun`]), and on `finish`
//! solves the *revealed* instance offline through the ordinary
//! [`Engine::solve_request`] pipeline to report the realized
//! competitive ratio `online / offline`.
//!
//! Both front ends drive the identical tracker: the serve daemon's
//! `SESSION begin/arrive/step/end` verbs live, and `gaps batch
//! --replay-online <policy>` offline — which is what makes their ratio
//! lines bit-identical for the same arrival stream.
//!
//! The offline optimum comes for free from the router: every arrival
//! becomes a rigid unit job (`release == deadline == t`, strictly
//! increasing), so the revealed instance routes to the polynomial
//! `forced_chain` path and the power objective returns the exact
//! `active slots + α per wake-up` optimum at any stream length.

use crate::{BatchInstance, Engine, Objective};
use gaps_core::{Instance, Time};
use gaps_sim::policy::OnlineRun;
use gaps_sim::{NeverSleep, PowerPolicy, SleepImmediately, Timeout};

/// Largest idle span one `arrive`/`step` may walk. The tracker advances
/// slot by slot (the policy is consulted per slot), so an unbounded
/// jump would spin the session for an attacker-controlled while; real
/// gaps in this model are tiny multiples of α.
pub const MAX_ADVANCE: u64 = 1 << 20;

/// Resolve an online policy by its wire name. `clairvoyant` is
/// deliberately absent: it needs gap lookahead, which an online session
/// by definition cannot provide.
pub fn parse_online_policy(
    name: &str,
    alpha: u64,
) -> Result<Box<dyn PowerPolicy + Send + Sync>, String> {
    match name {
        "timeout" => Ok(Box::new(Timeout { threshold: alpha })),
        "sleep" | "sleep-immediately" => Ok(Box::new(SleepImmediately)),
        "never" | "never-sleep" => Ok(Box::new(NeverSleep)),
        "clairvoyant" => Err(
            "policy `clairvoyant` needs lookahead; it cannot run online \
             (choose timeout|sleep|never)"
                .to_string(),
        ),
        other => Err(format!(
            "unknown online policy {other:?} (choose timeout|sleep|never)"
        )),
    }
}

/// Point-in-time view of a session, echoed after every `arrive`/`step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionState {
    /// First slot not yet revealed (next arrival must be ≥ this).
    pub frontier: Time,
    /// Is the simulated processor currently active?
    pub awake: bool,
    /// Online energy accrued so far.
    pub online_cost: u64,
    /// Arrivals revealed so far.
    pub jobs: usize,
}

/// Everything `SESSION end` (and one `--replay-online` line) reports.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineSummary {
    /// Policy wire name.
    pub policy: &'static str,
    /// Wake-up cost the ratio is measured against.
    pub alpha: u64,
    /// Arrivals revealed over the session.
    pub jobs: usize,
    /// Energy the online policy paid.
    pub online_cost: u64,
    /// Energy the offline optimum pays for the same revealed instance.
    pub offline_cost: u64,
}

impl OnlineSummary {
    /// Realized competitive ratio. An empty session (both costs zero)
    /// is ratio 1 by convention; `offline == 0` implies `online == 0`
    /// because the processor starts asleep and only jobs wake it.
    pub fn ratio(&self) -> f64 {
        if self.offline_cost == 0 {
            1.0
        } else {
            self.online_cost as f64 / self.offline_cost as f64
        }
    }

    /// The canonical single-line rendering both front ends emit. Fixed
    /// 4-decimal ratio so serve and replay output compare byte for
    /// byte.
    pub fn line(&self) -> String {
        format!(
            "policy={} alpha={} jobs={} online={} offline={} ratio={:.4}",
            self.policy,
            self.alpha,
            self.jobs,
            self.online_cost,
            self.offline_cost,
            self.ratio()
        )
    }
}

/// One online session: arrivals revealed one at a time, a policy
/// deciding sleep/wake per slot, and an offline solve at the end.
pub struct OnlineTracker {
    run: OnlineRun,
    alpha: u64,
    frontier: Time,
    arrivals: Vec<Time>,
}

impl OnlineTracker {
    /// Start a session under the named policy. Time begins at slot 0
    /// with the processor asleep.
    pub fn new(policy_name: &str, alpha: u64) -> Result<OnlineTracker, String> {
        let policy = parse_online_policy(policy_name, alpha)?;
        Ok(OnlineTracker {
            run: OnlineRun::new(policy, alpha),
            alpha,
            frontier: 0,
            arrivals: Vec::new(),
        })
    }

    /// Reveal the next arrival at slot `t`. Any slots between the
    /// frontier and `t` are walked as idle (the policy decides each),
    /// then the job runs. Arrivals must not precede the frontier —
    /// time only moves forward — and may not jump more than
    /// [`MAX_ADVANCE`] slots at once.
    pub fn arrive(&mut self, t: Time) -> Result<SessionState, String> {
        if t < self.frontier {
            return Err(format!(
                "arrival at t={t} is behind the frontier (next free slot is {})",
                self.frontier
            ));
        }
        let span = (t - self.frontier) as u64;
        if span > MAX_ADVANCE {
            return Err(format!(
                "arrival at t={t} jumps {span} idle slots past the frontier (cap {MAX_ADVANCE})"
            ));
        }
        for _ in 0..span {
            self.run.idle_slot();
        }
        self.run.job_slot();
        self.frontier = t + 1;
        self.arrivals.push(t);
        Ok(self.state())
    }

    /// Advance `n` revealed-idle slots with no arrival (e.g. trailing
    /// idleness before `end`).
    pub fn step(&mut self, n: u64) -> Result<SessionState, String> {
        if n > MAX_ADVANCE {
            return Err(format!("step of {n} slots exceeds the cap ({MAX_ADVANCE})"));
        }
        for _ in 0..n {
            self.run.idle_slot();
        }
        self.frontier += n as Time;
        Ok(self.state())
    }

    /// The session's current view.
    pub fn state(&self) -> SessionState {
        SessionState {
            frontier: self.frontier,
            awake: self.run.awake(),
            online_cost: self.run.cost(),
            jobs: self.arrivals.len(),
        }
    }

    /// The revealed arrival times, in order.
    pub fn arrivals(&self) -> &[Time] {
        &self.arrivals
    }

    /// Canonical wire name of the policy driving this session.
    pub fn policy_name(&self) -> &'static str {
        self.run.policy_name()
    }

    /// Close the session: solve the revealed instance offline through
    /// the engine (rigid unit jobs route to the exact polynomial
    /// `forced_chain` power path), record the realized ratio in the
    /// engine's metrics under the policy's name, and return the
    /// summary.
    pub fn finish(&self, engine: &Engine) -> Result<OnlineSummary, String> {
        let inst = Instance::from_windows(self.arrivals.iter().map(|&t| (t, t)), 1)
            .map_err(|e| format!("revealed instance is malformed: {e:?}"))?;
        let objective = Objective::Power { alpha: self.alpha };
        let outcome = engine.solve_request(&BatchInstance::One(inst), objective, false);
        let offline_cost = outcome
            .body
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("power="))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| {
                format!(
                    "offline solve returned no power value for the revealed instance: {}",
                    outcome.body
                )
            })?;
        let summary = OnlineSummary {
            policy: self.run.policy_name(),
            alpha: self.alpha,
            jobs: self.arrivals.len(),
            online_cost: self.run.cost(),
            offline_cost,
        };
        engine
            .metrics()
            .record_session_ratio(summary.policy, summary.ratio());
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    #[test]
    fn policy_names_resolve_and_clairvoyant_is_refused() {
        for name in [
            "timeout",
            "sleep",
            "sleep-immediately",
            "never",
            "never-sleep",
        ] {
            assert!(parse_online_policy(name, 2).is_ok(), "{name}");
        }
        let err = parse_online_policy("clairvoyant", 2)
            .err()
            .expect("clairvoyant refused");
        assert!(err.contains("lookahead"), "{err}");
        let err = parse_online_policy("nope", 2)
            .err()
            .expect("unknown refused");
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn arrivals_walk_gaps_and_track_cost() {
        let alpha = 3;
        let mut t = OnlineTracker::new("timeout", alpha).expect("policy");
        // First arrival at 0: wake (α) + run (1).
        let s = t.arrive(0).expect("in order");
        assert_eq!(s.online_cost, alpha + 1);
        assert!(s.awake);
        assert_eq!(s.frontier, 1);
        // Gap of 1 < α is bridged: +1 idle-active +1 busy.
        let s = t.arrive(2).expect("in order");
        assert_eq!(s.online_cost, alpha + 1 + 2);
        // Huge gap: α idle-active slots, sleep, wake (α) + run (1) on
        // top of the α+3 already paid.
        let s = t.arrive(100).expect("in order");
        assert_eq!(s.online_cost, (alpha + 3) + alpha + alpha + 1);
        assert_eq!(s.jobs, 3);
    }

    #[test]
    fn time_never_runs_backwards_and_jumps_are_capped() {
        let mut t = OnlineTracker::new("timeout", 2).expect("policy");
        t.arrive(5).expect("in order");
        let err = t.arrive(5).unwrap_err();
        assert!(err.contains("behind the frontier"), "{err}");
        let err = t.arrive(Time::MAX - 1).unwrap_err();
        assert!(err.contains("cap"), "{err}");
        let err = t.step(MAX_ADVANCE + 1).unwrap_err();
        assert!(err.contains("cap"), "{err}");
        // The failed calls changed nothing.
        assert_eq!(t.state().jobs, 1);
        assert_eq!(t.state().frontier, 6);
    }

    #[test]
    fn finish_reports_the_exact_offline_optimum() {
        let alpha = 4;
        let engine = engine();
        let mut t = OnlineTracker::new("timeout", alpha).expect("policy");
        // Arrivals 0, 2, 20: offline pays 3 busy + min(1,α) bridged +
        // the long gap slept (α for the second wake) + α for the first
        // wake = 3 + 1 + 4 + 4 = 12.
        for at in [0, 2, 20] {
            t.arrive(at).expect("in order");
        }
        let summary = t.finish(&engine).expect("offline solve");
        assert_eq!(summary.offline_cost, 12);
        // Online timeout(4): wake 4 + busy 1 | idle 1 + busy 1 | idle 4,
        // sleep, wake 4 + busy 1 = 16.
        assert_eq!(summary.online_cost, 16);
        assert!((summary.ratio() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(
            summary.line(),
            "policy=timeout alpha=4 jobs=3 online=16 offline=12 ratio=1.3333"
        );
        // The ratio landed in the engine metrics under the policy name.
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.per_policy["timeout"].sessions, 1);
        assert!(snap.requests >= 1, "offline solve is a real request");
    }

    #[test]
    fn empty_session_is_ratio_one() {
        let engine = engine();
        let t = OnlineTracker::new("sleep", 2).expect("policy");
        let summary = t.finish(&engine).expect("empty instance solves");
        assert_eq!(summary.online_cost, 0);
        assert_eq!(summary.offline_cost, 0);
        assert_eq!(summary.ratio(), 1.0);
        assert_eq!(
            summary.line(),
            "policy=sleep-immediately alpha=2 jobs=0 online=0 offline=0 ratio=1.0000"
        );
    }

    /// The ski-rental guarantee end to end: timeout(α) never exceeds
    /// twice the offline optimum, on a deliberately gap-heavy stream.
    #[test]
    fn timeout_stays_two_competitive_end_to_end() {
        let alpha = 3;
        let engine = engine();
        let mut tracker = OnlineTracker::new("timeout", alpha).expect("policy");
        let mut at: Time = 0;
        for k in 0..60u64 {
            tracker.arrive(at).expect("in order");
            // Gap pattern sweeping below/at/above the threshold.
            at += 1 + (k % (2 * alpha + 2)) as Time;
        }
        let summary = tracker.finish(&engine).expect("offline solve");
        assert!(summary.offline_cost > 0);
        assert!(
            summary.ratio() <= 2.0,
            "ski-rental bound violated: {}",
            summary.line()
        );
    }
}

//! Portfolio routing: pick the right solver for each instance's shape.
//!
//! The paper's algorithms have sharply different sweet spots — Baptiste's
//! single-processor DP, the Theorem 1/2 multiprocessor DPs, exhaustive
//! search (only viable on small multi-interval instances), and the
//! Theorem 3 approximation (power only, but polynomial for any size).
//! Related work makes the same point from the other direction:
//! Baptiste–Chrobak–Dürr (arXiv:0908.3505) and Bidlingmaier's greedy
//! minimum-energy scheduling (arXiv:2307.00949) both key their algorithm
//! choice on instance shape (unit vs. arbitrary jobs, laxity, processor
//! count). The router reads those features off the canonical instance and
//! dispatches; instances no exact solver can handle flow down a
//! configurable **fallback chain** of approximate/bounding solvers.
//!
//! Routing is a pure function of the canonical form, so a cached result
//! and a freshly routed one can never disagree on the solver tag.

use crate::{BatchInstance, Objective};
use gaps_core::instance::Instance;
use gaps_core::time::run_count;
use gaps_core::{
    baptiste, brute_force, lower_bounds, multi_exact, multi_interval, multiproc_dp, power, power_dp,
};

/// Every solver the portfolio can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SolverKind {
    /// Zero jobs: every objective is 0 by definition.
    Trivial,
    /// One-interval, `p = 1`, zero laxity: the schedule is forced, so the
    /// objective is read directly off the sorted release times.
    ForcedChain,
    /// Baptiste's `p = 1` dynamic program (\[Bap06\]), all objectives.
    BaptisteDp,
    /// Theorem 1 multiprocessor gap/span DP.
    MultiprocDp,
    /// Theorem 2 multiprocessor power DP.
    PowerDp,
    /// Optimized multi-interval exact solver (branch-and-bound with
    /// memoization; see [`gaps_core::multi_exact`]). Precedes
    /// [`SolverKind::BruteForce`] in the multi-interval chain.
    MultiExact,
    /// Exhaustive reference solver (small multi-interval instances only;
    /// kept as the differential oracle and reachable when
    /// [`RouterConfig::use_multi_exact`] is off).
    BruteForce,
    /// Theorem 3 `(1 + (2/3 + ε)α)`-approximation (multi-interval power).
    Theorem3Approx,
    /// Lemma 3 completion: any feasible schedule, ≤ 1 gap per job — an
    /// upper bound for large multi-interval instances.
    Lemma3Greedy,
    /// Report the objective's lower bound only (last-resort fallback;
    /// does not certify feasibility).
    LowerBound,
}

impl SolverKind {
    /// Stable tag used in result lines and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Trivial => "trivial",
            SolverKind::ForcedChain => "forced_chain",
            SolverKind::BaptisteDp => "baptiste_dp",
            SolverKind::MultiprocDp => "multiproc_dp",
            SolverKind::PowerDp => "power_dp",
            SolverKind::MultiExact => "multi_exact",
            SolverKind::BruteForce => "brute_force",
            SolverKind::Theorem3Approx => "theorem3_approx",
            SolverKind::Lemma3Greedy => "lemma3_greedy",
            SolverKind::LowerBound => "lower_bound",
        }
    }
}

/// Solvers eligible for the large-multi-interval fallback chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackSolver {
    /// Theorem 3 approximation — applicable to the power objective only.
    Theorem3Approx,
    /// Lemma 3 feasible completion — applicable to every objective.
    Lemma3Greedy,
    /// Objective lower bound — applicable to every objective.
    LowerBound,
}

impl FallbackSolver {
    /// Parse a CLI-facing fallback name.
    pub fn parse(name: &str) -> Result<FallbackSolver, String> {
        match name {
            "approx" | "theorem3" => Ok(FallbackSolver::Theorem3Approx),
            "greedy" | "lemma3" => Ok(FallbackSolver::Lemma3Greedy),
            "bound" | "lower-bound" => Ok(FallbackSolver::LowerBound),
            other => Err(format!(
                "unknown fallback solver {other:?} (expected approx|greedy|bound)"
            )),
        }
    }

    fn applies_to(self, objective: Objective) -> bool {
        match self {
            FallbackSolver::Theorem3Approx => matches!(objective, Objective::Power { .. }),
            FallbackSolver::Lemma3Greedy | FallbackSolver::LowerBound => true,
        }
    }

    fn kind(self) -> SolverKind {
        match self {
            FallbackSolver::Theorem3Approx => SolverKind::Theorem3Approx,
            FallbackSolver::Lemma3Greedy => SolverKind::Lemma3Greedy,
            FallbackSolver::LowerBound => SolverKind::LowerBound,
        }
    }
}

/// Router knobs: when exhaustive search is allowed and what to do when it
/// is not.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Exhaustive search is allowed only up to this many live slots…
    pub exact_max_slots: usize,
    /// …and this many jobs.
    pub exact_max_jobs: usize,
    /// Route in-range multi-interval instances to the optimized exact
    /// solver ([`SolverKind::MultiExact`]) instead of the brute-force
    /// reference. On by default; turning it off restores the seed
    /// routing (used by the perf trajectory to measure the win and by
    /// differential experiments).
    pub use_multi_exact: bool,
    /// The optimized exact solver's state space is exponential in the
    /// *job* count, not the slot count — and component decomposition
    /// means only the largest coupled core pays that cost — so it
    /// accepts far more slots…
    pub multi_exact_max_slots: usize,
    /// …and far more jobs than the brute-force ceiling (64 is the
    /// solver's hard mask-width cap).
    pub multi_exact_max_jobs: usize,
    /// Intra-instance workers for the parallel branch-and-bound. `0`
    /// means *inherit the engine's worker-thread count* (resolved by
    /// `Engine::new`); `1` forces the sequential path.
    pub multi_exact_threads: usize,
    /// Smallest job count worth fanning a single instance's subtrees out
    /// over the pool; below it the sequential solve wins on overhead.
    /// The default (one above the old 16-job cap) parallelizes exactly
    /// the instances this ceiling-raise admits.
    pub multi_exact_parallel_min_jobs: usize,
    /// Local-search rounds for the Theorem 3 set packing (the paper's ε).
    pub approx_rounds: usize,
    /// Tried in order for multi-interval instances too large for
    /// exhaustive search; the first chain entry applicable to the
    /// objective wins. An empty or inapplicable chain degrades to
    /// [`FallbackSolver::LowerBound`].
    pub fallback: Vec<FallbackSolver>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            exact_max_slots: 64,
            exact_max_jobs: 14,
            use_multi_exact: true,
            multi_exact_max_slots: 384,
            multi_exact_max_jobs: 64,
            multi_exact_threads: 0,
            multi_exact_parallel_min_jobs: 17,
            approx_rounds: 64,
            fallback: vec![FallbackSolver::Theorem3Approx, FallbackSolver::Lemma3Greedy],
        }
    }
}

impl RouterConfig {
    /// Degraded copy used under overload shedding: the exponential
    /// multi-interval exact solvers are switched off entirely, so every
    /// multi-interval instance flows straight down the (polynomial)
    /// fallback chain. One-interval routing is untouched — the DPs are
    /// polynomial and not worth shedding.
    pub fn shed(&self) -> RouterConfig {
        RouterConfig {
            exact_max_slots: 0,
            exact_max_jobs: 0,
            use_multi_exact: false,
            ..self.clone()
        }
    }
}

/// Shape features the router keys on, extracted from a canonical instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Features {
    /// Multi-interval (`multi v1`) vs. one-interval (`instance v1`).
    pub multi_interval: bool,
    /// Number of jobs `n`.
    pub jobs: usize,
    /// Processor count (1 for multi-interval instances).
    pub processors: u32,
    /// Maximum window length (one-interval: max laxity + 1; multi: max
    /// allowed-set size). 1 means the schedule is fully forced.
    pub max_window: u64,
    /// Live slots (size of the union of allowed/usable slots).
    pub slots: usize,
}

/// Extract routing features.
pub fn features(inst: &BatchInstance) -> Features {
    match inst {
        BatchInstance::One(one) => Features {
            multi_interval: false,
            jobs: one.job_count(),
            processors: one.processors(),
            max_window: one.jobs().iter().map(|j| j.window_len()).max().unwrap_or(0),
            slots: one.horizon().map_or(0, |h| h.len() as usize),
        },
        BatchInstance::Multi(multi) => Features {
            multi_interval: true,
            jobs: multi.job_count(),
            processors: 1,
            max_window: multi
                .jobs()
                .iter()
                .map(|j| j.times().len() as u64)
                .max()
                .unwrap_or(0),
            slots: multi.slot_union().len(),
        },
    }
}

/// Pick a solver for an instance with the given features.
pub fn route(feat: &Features, objective: Objective, cfg: &RouterConfig) -> SolverKind {
    if feat.jobs == 0 {
        return SolverKind::Trivial;
    }
    if !feat.multi_interval {
        if feat.processors == 1 {
            return if feat.max_window == 1 {
                SolverKind::ForcedChain
            } else {
                SolverKind::BaptisteDp
            };
        }
        return match objective {
            Objective::Power { .. } => SolverKind::PowerDp,
            Objective::Gaps | Objective::Spans => SolverKind::MultiprocDp,
        };
    }
    if cfg.use_multi_exact
        && feat.slots <= cfg.multi_exact_max_slots
        && feat.jobs <= cfg.multi_exact_max_jobs
    {
        return SolverKind::MultiExact;
    }
    if feat.slots <= cfg.exact_max_slots && feat.jobs <= cfg.exact_max_jobs {
        return SolverKind::BruteForce;
    }
    cfg.fallback
        .iter()
        .find(|f| f.applies_to(objective))
        .map(|f| f.kind())
        .unwrap_or(SolverKind::LowerBound)
}

/// Route and solve a **canonical** instance, returning the chosen solver
/// and the result payload (e.g. `gaps=2`, `power<=9.50`, `infeasible`).
///
/// The payload is a pure function of `(instance, objective, cfg)` — no
/// randomness, clocks, or thread-dependence (the parallel
/// branch-and-bound is bit-deterministic by construction) — which is
/// what makes both the result cache and the deterministic batch output
/// sound.
pub fn solve(
    inst: &BatchInstance,
    objective: Objective,
    cfg: &RouterConfig,
) -> (SolverKind, String) {
    solve_observed(inst, objective, cfg, None)
}

/// [`solve`] with search-effort observation: multi-exact solves report
/// their [`gaps_core::multi_exact::SearchStats`] (nodes expanded,
/// component histogram, subtree tasks/steals, incumbent updates) into
/// the registry. The payload is unaffected — observation never alters
/// routing or results.
pub fn solve_observed(
    inst: &BatchInstance,
    objective: Objective,
    cfg: &RouterConfig,
    observer: Option<&crate::metrics::MetricsRegistry>,
) -> (SolverKind, String) {
    let kind = route(&features(inst), objective, cfg);
    let payload = match (kind, inst) {
        (SolverKind::Trivial, _) => exact(objective.label(), Some(0)),
        (SolverKind::ForcedChain, BatchInstance::One(one)) => forced_chain(one, objective),
        (SolverKind::BaptisteDp, BatchInstance::One(one)) => {
            let value = match objective {
                Objective::Gaps => baptiste::min_gaps_value(one),
                Objective::Spans => baptiste::min_spans_value(one),
                Objective::Power { alpha } => baptiste::min_power_value(one, alpha),
            };
            exact(objective.label(), value)
        }
        (SolverKind::MultiprocDp, BatchInstance::One(one)) => {
            let value = match objective {
                Objective::Gaps => multiproc_dp::min_gap_value(one),
                Objective::Spans => multiproc_dp::min_span_value(one),
                Objective::Power { .. } => unreachable!("power routes to PowerDp"),
            };
            exact(objective.label(), value)
        }
        (SolverKind::PowerDp, BatchInstance::One(one)) => {
            let Objective::Power { alpha } = objective else {
                unreachable!("PowerDp only routes for the power objective")
            };
            exact(objective.label(), power_dp::min_power_value(one, alpha))
        }
        (SolverKind::MultiExact, BatchInstance::Multi(multi)) => {
            let multi_objective = match objective {
                Objective::Gaps => multi_exact::MultiObjective::Gaps,
                Objective::Spans => multi_exact::MultiObjective::Spans,
                Objective::Power { alpha } => multi_exact::MultiObjective::Power { alpha },
            };
            // Fan the branch-and-bound out across intra-instance workers
            // only where the subtree overhead pays for itself: several
            // configured threads *and* a job count above the sequential
            // sweet spot. Both paths are bit-identical.
            let parallel = cfg.multi_exact_threads > 1
                && multi.job_count() >= cfg.multi_exact_parallel_min_jobs;
            let (result, stats) = if parallel {
                crate::parallel::solve_multi_parallel(
                    multi,
                    multi_objective,
                    cfg.multi_exact_threads,
                )
            } else {
                multi_exact::solve_multi_stats(multi, multi_objective)
            };
            if let Some(metrics) = observer {
                metrics.record_search(&stats);
            }
            exact(objective.label(), result.map(|(v, _)| v))
        }
        (SolverKind::BruteForce, BatchInstance::Multi(multi)) => {
            let value = match objective {
                Objective::Gaps => brute_force::min_gaps_multi(multi).map(|(v, _)| v),
                Objective::Spans => brute_force::min_spans_multi(multi).map(|(v, _)| v),
                Objective::Power { alpha } => {
                    brute_force::min_power_multi(multi, alpha).map(|(v, _)| v)
                }
            };
            exact(objective.label(), value)
        }
        (SolverKind::Theorem3Approx, BatchInstance::Multi(multi)) => {
            let Objective::Power { alpha } = objective else {
                unreachable!("Theorem3Approx only routes for the power objective")
            };
            match multi_interval::approx_min_power(multi, alpha as f64, cfg.approx_rounds) {
                Some(res) => format!("power<={:.2}", res.power),
                None => "infeasible".to_string(),
            }
        }
        (SolverKind::Lemma3Greedy, BatchInstance::Multi(multi)) => {
            match multi_interval::complete_schedule(multi, &vec![None; multi.job_count()]) {
                Some(sched) => match objective {
                    Objective::Gaps => format!("gaps<={}", sched.gap_count()),
                    Objective::Spans => format!("spans<={}", sched.span_count()),
                    Objective::Power { alpha } => {
                        format!("power<={}", power::power_cost_single(&sched, alpha))
                    }
                },
                None => "infeasible".to_string(),
            }
        }
        (SolverKind::LowerBound, BatchInstance::Multi(multi)) => {
            let bound = match objective {
                Objective::Gaps => lower_bounds::min_gaps_lower_bound(multi),
                Objective::Spans => lower_bounds::min_spans_lower_bound(multi),
                Objective::Power { alpha } => lower_bounds::min_power_lower_bound(multi, alpha),
            };
            format!("{}>={bound}", objective.label())
        }
        (kind, _) => unreachable!("router dispatched {kind:?} to the wrong instance flavor"),
    };
    (kind, payload)
}

fn exact(label: &str, value: Option<u64>) -> String {
    match value {
        Some(v) => format!("{label}={v}"),
        None => "infeasible".to_string(),
    }
}

/// Zero-laxity single-processor fast path: every job's slot is forced, so
/// feasibility is just "no duplicate releases" and the objective falls
/// out of the run structure of the release times.
fn forced_chain(inst: &Instance, objective: Objective) -> String {
    let mut times: Vec<_> = inst.jobs().iter().map(|j| j.release).collect();
    times.sort_unstable();
    if times.windows(2).any(|w| w[0] == w[1]) {
        return "infeasible".to_string();
    }
    let value = match objective {
        Objective::Gaps => (run_count(&times) as u64).saturating_sub(1),
        Objective::Spans => run_count(&times) as u64,
        Objective::Power { alpha } => power::processor_power(&times, alpha),
    };
    format!("{}={value}", objective.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::instance::{Instance, MultiInstance};

    fn one(windows: &[(i64, i64)], p: u32) -> BatchInstance {
        BatchInstance::One(Instance::from_windows(windows.iter().copied(), p).unwrap())
    }

    fn multi(times: &[Vec<i64>]) -> BatchInstance {
        BatchInstance::Multi(MultiInstance::from_times(times.to_vec()).unwrap())
    }

    #[test]
    fn routing_matches_instance_shape() {
        let cfg = RouterConfig::default();
        let gaps = Objective::Gaps;
        let power = Objective::Power { alpha: 2 };
        let pick = |inst: &BatchInstance, obj| route(&features(inst), obj, &cfg);

        assert_eq!(
            pick(&BatchInstance::One(Instance::new(vec![], 1).unwrap()), gaps),
            SolverKind::Trivial
        );
        assert_eq!(
            pick(&one(&[(0, 0), (2, 2)], 1), gaps),
            SolverKind::ForcedChain
        );
        assert_eq!(
            pick(&one(&[(0, 1), (2, 2)], 1), gaps),
            SolverKind::BaptisteDp
        );
        assert_eq!(pick(&one(&[(0, 1)], 2), gaps), SolverKind::MultiprocDp);
        assert_eq!(pick(&one(&[(0, 1)], 2), power), SolverKind::PowerDp);
        assert_eq!(
            pick(&multi(&[vec![0, 2], vec![1]]), gaps),
            SolverKind::MultiExact
        );

        // The deliberately unoptimized oracle stays reachable when the
        // optimized path is switched off.
        let oracle_only = RouterConfig {
            use_multi_exact: false,
            ..RouterConfig::default()
        };
        assert_eq!(
            route(
                &features(&multi(&[vec![0, 2], vec![1]])),
                gaps,
                &oracle_only
            ),
            SolverKind::BruteForce
        );

        // 80 jobs clears even the raised 64-job multi-exact ceiling.
        let big: Vec<Vec<i64>> = (0..80).map(|i| vec![2 * i, 2 * i + 1]).collect();
        assert_eq!(pick(&multi(&big), power), SolverKind::Theorem3Approx);
        assert_eq!(pick(&multi(&big), gaps), SolverKind::Lemma3Greedy);

        let no_fallback = RouterConfig {
            fallback: vec![],
            ..RouterConfig::default()
        };
        assert_eq!(
            route(&features(&multi(&big)), gaps, &no_fallback),
            SolverKind::LowerBound
        );
    }

    #[test]
    fn raised_caps_keep_multi_exact_routing_at_64_jobs_384_slots() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.multi_exact_max_jobs, 64);
        assert_eq!(cfg.multi_exact_max_slots, 384);
        // Exactly at the ceiling: 64 jobs, 384 distinct slots.
        let at_cap: Vec<Vec<i64>> = (0..64)
            .map(|i| (0..6).map(|k| 6 * i + k).collect())
            .collect();
        let at_cap = multi(&at_cap);
        assert_eq!(
            route(&features(&at_cap), Objective::Gaps, &cfg),
            SolverKind::MultiExact
        );
        // One past either cap falls to the fallback chain.
        let too_many_jobs: Vec<Vec<i64>> = (0..65).map(|i| vec![2 * i]).collect();
        assert_eq!(
            route(&features(&multi(&too_many_jobs)), Objective::Gaps, &cfg),
            SolverKind::Lemma3Greedy
        );
    }

    #[test]
    fn forced_chain_agrees_with_the_dp() {
        let inst = one(&[(0, 0), (1, 1), (5, 5), (9, 9)], 1);
        let cfg = RouterConfig::default();
        let (kind, payload) = solve(&inst, Objective::Gaps, &cfg);
        assert_eq!(kind, SolverKind::ForcedChain);
        let BatchInstance::One(raw) = &inst else {
            unreachable!()
        };
        let expected = multiproc_dp::min_gap_value(raw).unwrap();
        assert_eq!(payload, format!("gaps={expected}"));

        let (_, power_payload) = solve(&inst, Objective::Power { alpha: 3 }, &cfg);
        let expected = power_dp::min_power_value(raw, 3).unwrap();
        assert_eq!(power_payload, format!("power={expected}"));
    }

    #[test]
    fn forced_chain_detects_collisions() {
        let inst = one(&[(4, 4), (4, 4)], 1);
        let (_, payload) = solve(&inst, Objective::Gaps, &RouterConfig::default());
        assert_eq!(payload, "infeasible");
    }

    #[test]
    fn baptiste_and_multiproc_payloads_are_exact() {
        let cfg = RouterConfig::default();
        let single = one(&[(0, 2), (0, 2), (5, 7)], 1);
        let (kind, payload) = solve(&single, Objective::Gaps, &cfg);
        assert_eq!(kind, SolverKind::BaptisteDp);
        assert_eq!(payload, "gaps=1");

        let dual = one(&[(0, 1), (0, 1), (0, 1)], 2);
        let (kind, payload) = solve(&dual, Objective::Spans, &cfg);
        assert_eq!(kind, SolverKind::MultiprocDp);
        assert_eq!(payload, "spans=2");
    }

    #[test]
    fn multi_exact_and_fallbacks_cover_multi() {
        let cfg = RouterConfig::default();
        let small = multi(&[vec![0, 1], vec![0, 1]]);
        let (kind, payload) = solve(&small, Objective::Gaps, &cfg);
        assert_eq!(kind, SolverKind::MultiExact);
        assert_eq!(payload, "gaps=0");

        // Same instance through the oracle: identical payload, different
        // solver tag — the bit-identical-optimum contract in miniature.
        let oracle = RouterConfig {
            use_multi_exact: false,
            ..RouterConfig::default()
        };
        let (kind, oracle_payload) = solve(&small, Objective::Gaps, &oracle);
        assert_eq!(kind, SolverKind::BruteForce);
        assert_eq!(oracle_payload, "gaps=0");

        let big: Vec<Vec<i64>> = (0..80).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let big = multi(&big);
        let (kind, payload) = solve(&big, Objective::Power { alpha: 2 }, &cfg);
        assert_eq!(kind, SolverKind::Theorem3Approx);
        assert!(payload.starts_with("power<="), "payload = {payload}");

        let (kind, payload) = solve(&big, Objective::Gaps, &cfg);
        assert_eq!(kind, SolverKind::Lemma3Greedy);
        assert!(payload.starts_with("gaps<="), "payload = {payload}");
    }

    #[test]
    fn infeasible_instances_say_so() {
        let cfg = RouterConfig::default();
        // Two jobs forced into one slot.
        let clash = multi(&[vec![3], vec![3]]);
        let (_, payload) = solve(&clash, Objective::Gaps, &cfg);
        assert_eq!(payload, "infeasible");
        // One-interval: three unit-window jobs on one processor, same slot.
        let overfull = one(&[(1, 1), (1, 1), (1, 1)], 1);
        let (_, payload) = solve(&overfull, Objective::Spans, &cfg);
        assert_eq!(payload, "infeasible");
    }

    #[test]
    fn fallback_parsing_round_trips() {
        assert_eq!(
            FallbackSolver::parse("approx").unwrap(),
            FallbackSolver::Theorem3Approx
        );
        assert_eq!(
            FallbackSolver::parse("greedy").unwrap(),
            FallbackSolver::Lemma3Greedy
        );
        assert_eq!(
            FallbackSolver::parse("bound").unwrap(),
            FallbackSolver::LowerBound
        );
        assert!(FallbackSolver::parse("magic").is_err());
    }

    #[test]
    fn solver_names_are_stable() {
        // These tags appear in result lines; renaming them is a
        // wire-format change.
        assert_eq!(SolverKind::BaptisteDp.name(), "baptiste_dp");
        assert_eq!(SolverKind::MultiExact.name(), "multi_exact");
        assert_eq!(SolverKind::Theorem3Approx.name(), "theorem3_approx");
    }
}

//! A sharded LRU cache from canonical instance keys to finished result
//! lines.
//!
//! Keys come from [`crate::canonical`]; values are the fully formatted
//! result payloads (objective value + solver tag), so a hit bypasses the
//! solver *and* the formatter and is guaranteed byte-identical to a miss.
//!
//! Sharding: the key hash picks one of `shards` independent
//! `parking_lot::Mutex`-protected maps, so concurrent workers rarely
//! contend on the same lock. Each shard keeps its entries on an
//! **intrusive doubly-linked LRU list** threaded through a preallocated
//! slab: a hit splices its node to the front, an insert into a full shard
//! unlinks the tail — both O(1), no scans, no per-operation allocation
//! beyond the stored strings. (The seed implementation scanned the whole
//! shard for the minimum clock on every eviction, O(shard capacity).)
//!
//! Hit/miss counters are relaxed atomics: they feed the
//! [`crate::metrics::EngineReport`] and tolerate the usual
//! increment-vs-read races.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the solver.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Sentinel for "no node" in the intrusive list.
const NIL: u32 = u32::MAX;

/// One slab node: the stored pair plus its LRU-list links. The key is an
/// `Arc<str>` shared with the index entry, so each (often long,
/// canonical-instance) key is stored once.
struct Node {
    key: Arc<str>,
    value: String,
    /// Towards more recently used (NIL at the head).
    prev: u32,
    /// Towards less recently used (NIL at the tail).
    next: u32,
}

/// One shard: hash index into a slab of nodes threaded on an intrusive
/// most-recent-first list.
struct Shard {
    /// Key → slab index (keys shared with the nodes).
    index: HashMap<Arc<str>, u32>,
    /// Node storage; freed slots are reused via `free`.
    slab: Vec<Node>,
    /// Reusable slab slots (from removals, if any ever happen).
    free: Vec<u32>,
    /// Most recently used node, NIL when empty.
    head: u32,
    /// Least recently used node, NIL when empty.
    tail: u32,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            index: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlink node `i` from the list (it keeps its slab slot).
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.slab[i as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            x => self.slab[x as usize].prev = prev,
        }
    }

    /// Link node `i` at the head (most recently used).
    fn link_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let n = &mut self.slab[i as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.slab[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Splice an existing node to the front — the O(1) "touch".
    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Evict the least-recently-used entry — O(1) via the tail pointer.
    fn evict_tail(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict called on an empty shard");
        self.unlink(victim);
        let key = Arc::clone(&self.slab[victim as usize].key);
        self.slab[victim as usize].key = Arc::from("");
        self.slab[victim as usize].value = String::new();
        let removed = self.index.remove(key.as_ref());
        debug_assert_eq!(removed, Some(victim));
        self.free.push(victim);
    }

    fn insert(&mut self, key: String, value: String, capacity: usize) {
        if let Some(&i) = self.index.get(key.as_str()) {
            self.slab[i as usize].value = value;
            self.touch(i);
            return;
        }
        if self.index.len() >= capacity {
            self.evict_tail();
        }
        let key: Arc<str> = Arc::from(key);
        let i = match self.free.pop() {
            Some(i) => {
                let n = &mut self.slab[i as usize];
                n.key = Arc::clone(&key);
                n.value = value;
                i
            }
            None => {
                self.slab.push(Node {
                    key: Arc::clone(&key),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.index.insert(key, i);
        self.link_front(i);
    }
}

/// Sharded LRU result cache. A capacity of 0 disables caching entirely
/// (every lookup misses, inserts are dropped).
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budgets; they sum to exactly the requested total
    /// capacity, so the user-facing memory bound is honored precisely.
    capacities: Vec<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Build a cache holding at most `capacity` entries total, spread
    /// over up to `shards` locks. The shard count is clamped to the
    /// capacity (never more locks than entries) and the budget is split
    /// exactly — no rounding up per shard.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shard_count = shards.max(1).min(capacity.max(1));
        let capacities: Vec<usize> = (0..shard_count)
            .map(|i| capacity / shard_count + usize::from(i < capacity % shard_count))
            .collect();
        ShardedCache {
            shards: capacities
                .iter()
                .map(|&c| Mutex::new(Shard::new(c)))
                .collect(),
            capacities,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// False iff built with capacity 0.
    pub fn is_enabled(&self) -> bool {
        self.capacities.iter().any(|&c| c > 0)
    }

    fn shard_for(&self, key: &str) -> (&Mutex<Shard>, usize) {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        (&self.shards[index], self.capacities[index])
    }

    /// Look up a canonical key, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_for(key).0.lock();
        match shard.index.get(key).copied() {
            Some(i) => {
                shard.touch(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(shard.slab[i as usize].value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a result, evicting the shard's least-recently-
    /// used entry in O(1) if the shard is full.
    pub fn insert(&self, key: String, value: String) {
        if !self.is_enabled() {
            return;
        }
        let (shard, capacity) = self.shard_for(&key);
        if capacity == 0 {
            return; // a zero-budget shard (capacity < shard count) holds nothing
        }
        shard.lock().insert(key, value, capacity);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().index.len()).sum()
    }

    /// True iff no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the lifetime hit/miss counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Keys of one shard in least-recently-used-first order (test
    /// observability for the eviction order; shard 0 of a single-shard
    /// cache sees every key).
    #[doc(hidden)]
    pub fn lru_order_of_shard(&self, shard: usize) -> Vec<String> {
        let shard = self.shards[shard].lock();
        let mut keys = Vec::with_capacity(shard.index.len());
        let mut i = shard.tail;
        while i != NIL {
            let n = &shard.slab[i as usize];
            keys.push(n.key.to_string());
            i = n.prev;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ShardedCache::new(8, 2);
        assert_eq!(cache.get("k"), None);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), Some("v".into()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ShardedCache::new(0, 4);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // Single shard so the eviction order is fully observable.
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        assert_eq!(cache.get("a"), Some("1".into())); // refresh a
        cache.insert("c".into(), "3".into()); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some("1".into()));
        assert_eq!(cache.get("c"), Some("3".into()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_a_resident_key_updates_in_place() {
        let cache = ShardedCache::new(1, 1);
        cache.insert("k".into(), "old".into());
        cache.insert("k".into(), "new".into());
        assert_eq!(cache.get("k"), Some("new".into()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        cache.insert("a".into(), "1'".into()); // refresh a by reinsert
        cache.insert("c".into(), "3".into()); // must evict b, not a
        assert_eq!(cache.get("a"), Some("1'".into()));
        assert_eq!(cache.get("b"), None);
    }

    #[test]
    fn lru_order_is_observable_and_exact() {
        let cache = ShardedCache::new(4, 1);
        for k in ["a", "b", "c", "d"] {
            cache.insert(k.into(), "v".into());
        }
        assert_eq!(cache.lru_order_of_shard(0), vec!["a", "b", "c", "d"]);
        cache.get("b");
        assert_eq!(cache.lru_order_of_shard(0), vec!["a", "c", "d", "b"]);
        cache.insert("e".into(), "v".into()); // evicts a
        assert_eq!(cache.lru_order_of_shard(0), vec!["c", "d", "b", "e"]);
    }

    #[test]
    fn eviction_reuses_slab_slots() {
        let cache = ShardedCache::new(2, 1);
        for i in 0..100 {
            cache.insert(format!("key-{i}"), i.to_string());
            assert!(cache.len() <= 2);
        }
        // The slab must not have grown past capacity + the in-flight slot.
        let shard = cache.shards[0].lock();
        assert!(shard.slab.len() <= 3, "slab grew to {}", shard.slab.len());
    }

    #[test]
    fn shards_share_total_capacity() {
        let cache = ShardedCache::new(64, 8);
        for i in 0..64 {
            cache.insert(format!("key-{i}"), i.to_string());
        }
        // Hash skew can evict a few entries early, but the bulk stays.
        assert!(cache.len() > 32, "len = {}", cache.len());
        assert!(cache.len() <= 64);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache = ShardedCache::new(128, 8);
        crossbeam::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move |_| {
                    for i in 0..100 {
                        let key = format!("key-{}", (t * 100 + i) % 50);
                        if cache.get(&key).is_none() {
                            cache.insert(key, "v".into());
                        }
                    }
                });
            }
        })
        .expect("threads join");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert!(stats.entries <= 50);
    }
}

//! A sharded LRU cache from canonical instance keys to finished result
//! lines.
//!
//! Keys come from [`crate::canonical`]; values are the fully formatted
//! result payloads (objective value + solver tag), so a hit bypasses the
//! solver *and* the formatter and is guaranteed byte-identical to a miss.
//!
//! Sharding: the key hash picks one of `shards` independent
//! `parking_lot::Mutex`-protected maps, so concurrent workers rarely
//! contend on the same lock. Each shard runs its own LRU clock; eviction
//! scans the shard for the least-recently-used entry, which is O(shard
//! capacity) — shards are small (total capacity / shard count), and the
//! scan only runs when a full shard takes an insert. Swap in a linked
//! LRU list if profiles ever show eviction on a hot path.
//!
//! Hit/miss counters are relaxed atomics: they feed the
//! [`crate::metrics::EngineReport`] and tolerate the usual
//! increment-vs-read races.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the solver.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    value: String,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    clock: u64,
}

/// Sharded LRU result cache. A capacity of 0 disables caching entirely
/// (every lookup misses, inserts are dropped).
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budgets; they sum to exactly the requested total
    /// capacity, so the user-facing memory bound is honored precisely.
    capacities: Vec<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// Build a cache holding at most `capacity` entries total, spread
    /// over up to `shards` locks. The shard count is clamped to the
    /// capacity (never more locks than entries) and the budget is split
    /// exactly — no rounding up per shard.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shard_count = shards.max(1).min(capacity.max(1));
        let capacities = (0..shard_count)
            .map(|i| capacity / shard_count + usize::from(i < capacity % shard_count))
            .collect();
        ShardedCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacities,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// False iff built with capacity 0.
    pub fn is_enabled(&self) -> bool {
        self.capacities.iter().any(|&c| c > 0)
    }

    fn shard_for(&self, key: &str) -> (&Mutex<Shard>, usize) {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        (&self.shards[index], self.capacities[index])
    }

    /// Look up a canonical key, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_for(key).0.lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a result, evicting the shard's least-recently-
    /// used entry if the shard is full.
    pub fn insert(&self, key: String, value: String) {
        if !self.is_enabled() {
            return;
        }
        let (shard, capacity) = self.shard_for(&key);
        let mut shard = shard.lock();
        shard.clock += 1;
        let clock = shard.clock;
        if capacity == 0 {
            return; // a zero-budget shard (capacity < shard count) holds nothing
        }
        if !shard.entries.contains_key(&key) && shard.entries.len() >= capacity {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("full shard has entries");
            shard.entries.remove(&victim);
        }
        shard.entries.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True iff no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the lifetime hit/miss counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ShardedCache::new(8, 2);
        assert_eq!(cache.get("k"), None);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), Some("v".into()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ShardedCache::new(0, 4);
        cache.insert("k".into(), "v".into());
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        // Single shard so the eviction order is fully observable.
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".into(), "1".into());
        cache.insert("b".into(), "2".into());
        assert_eq!(cache.get("a"), Some("1".into())); // refresh a
        cache.insert("c".into(), "3".into()); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some("1".into()));
        assert_eq!(cache.get("c"), Some("3".into()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_a_resident_key_updates_in_place() {
        let cache = ShardedCache::new(1, 1);
        cache.insert("k".into(), "old".into());
        cache.insert("k".into(), "new".into());
        assert_eq!(cache.get("k"), Some("new".into()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_share_total_capacity() {
        let cache = ShardedCache::new(64, 8);
        for i in 0..64 {
            cache.insert(format!("key-{i}"), i.to_string());
        }
        // Hash skew can evict a few entries early, but the bulk stays.
        assert!(cache.len() > 32, "len = {}", cache.len());
        assert!(cache.len() <= 64);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let cache = ShardedCache::new(128, 8);
        crossbeam::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move |_| {
                    for i in 0..100 {
                        let key = format!("key-{}", (t * 100 + i) % 50);
                        if cache.get(&key).is_none() {
                            cache.insert(key, "v".into());
                        }
                    }
                });
            }
        })
        .expect("threads join");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert!(stats.entries <= 50);
    }
}

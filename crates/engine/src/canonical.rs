//! Instance canonicalization: the cache key is the instance *modulo*
//! everything the objective value cannot see.
//!
//! Two requests hit the same cache entry iff they are equivalent under
//!
//! 1. **dead-zone compression** (`gaps_core::compress`) — stretches of
//!    time no job can use are shrunk to width 1 (gap/span objectives) or
//!    `α + 1` (power objective), which also normalizes the time origin:
//!    the first live slot always maps to 0, so time-shifted copies of an
//!    instance collide;
//! 2. **job reordering** — every solver is invariant under permuting the
//!    job list, so jobs are sorted (`(release, deadline)` for one-interval
//!    jobs, lexicographic slot lists for multi-interval jobs);
//! 3. the **objective tag** — gap and power compression disagree, and the
//!    power value depends on `α`, so the tag (`gaps` / `spans` /
//!    `power:α`) is part of the key.
//!
//! Both transformations preserve the optimal objective value (the
//! invariants proven and tested in `gaps_core::compress`), so a cached
//! result line is valid verbatim for every instance sharing the key —
//! solving the canonical instance gives bit-identical output to solving
//! the original.

use crate::{BatchInstance, Objective};
use gaps_core::compress;
use gaps_core::instance::{Instance, MultiInstance};
use gaps_workloads::serialize;

/// A canonicalized request: the cache key and the equivalent (compressed,
/// sorted) instance the router actually solves.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// Objective tag + canonical serialization; equal keys ⇒ equal
    /// optimal objective values.
    pub key: String,
    /// The canonical instance (same optimal value as the original).
    pub instance: BatchInstance,
}

/// Canonicalize an instance for `objective`.
pub fn canonicalize(inst: &BatchInstance, objective: Objective) -> CanonicalForm {
    let instance = match inst {
        BatchInstance::One(one) => BatchInstance::One(canonical_one(one, objective)),
        BatchInstance::Multi(multi) => BatchInstance::Multi(canonical_multi(multi, objective)),
    };
    let body = match &instance {
        BatchInstance::One(one) => serialize::instance_to_text(one),
        BatchInstance::Multi(multi) => serialize::multi_to_text(multi),
    };
    CanonicalForm {
        key: format!("{}\n{body}", objective.cache_tag()),
        instance,
    }
}

fn canonical_one(inst: &Instance, objective: Objective) -> Instance {
    let (compressed, _map) = match objective {
        Objective::Power { alpha } => compress::compress_instance_power(inst, alpha),
        Objective::Gaps | Objective::Spans => compress::compress_instance_gap(inst),
    };
    let mut jobs = compressed.jobs().to_vec();
    jobs.sort_unstable_by_key(|j| (j.release, j.deadline));
    Instance::new(jobs, compressed.processors()).expect("sorting preserves validity")
}

fn canonical_multi(inst: &MultiInstance, objective: Objective) -> MultiInstance {
    let (compressed, _map) = match objective {
        Objective::Power { alpha } => compress::compress_multi_power(inst, alpha),
        Objective::Gaps | Objective::Spans => compress::compress_multi_gap(inst),
    };
    let mut jobs = compressed.jobs().to_vec();
    jobs.sort_unstable_by(|a, b| a.times().cmp(b.times()));
    MultiInstance::new(jobs).expect("sorting preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::instance::{Instance, MultiInstance};

    fn one(windows: &[(i64, i64)], p: u32) -> BatchInstance {
        BatchInstance::One(Instance::from_windows(windows.iter().copied(), p).unwrap())
    }

    #[test]
    fn time_shifted_copies_share_a_key() {
        let a = one(&[(0, 2), (5, 6)], 1);
        let b = one(&[(100, 102), (105, 106)], 1);
        assert_eq!(
            canonicalize(&a, Objective::Gaps).key,
            canonicalize(&b, Objective::Gaps).key
        );
    }

    #[test]
    fn job_order_does_not_matter() {
        let a = one(&[(0, 2), (4, 6)], 2);
        let b = one(&[(4, 6), (0, 2)], 2);
        assert_eq!(
            canonicalize(&a, Objective::Spans).key,
            canonicalize(&b, Objective::Spans).key
        );
    }

    #[test]
    fn dead_zones_collapse_under_the_gap_tag() {
        let near = BatchInstance::Multi(MultiInstance::from_times([vec![0], vec![10]]).unwrap());
        let far = BatchInstance::Multi(MultiInstance::from_times([vec![0], vec![1_000]]).unwrap());
        assert_eq!(
            canonicalize(&near, Objective::Gaps).key,
            canonicalize(&far, Objective::Gaps).key
        );
        // Power compression keeps zone lengths up to α + 1, so with a
        // large α these two instances are genuinely different.
        let alpha = Objective::Power { alpha: 50 };
        assert_ne!(
            canonicalize(&near, alpha).key,
            canonicalize(&far, alpha).key
        );
    }

    #[test]
    fn objective_and_alpha_partition_the_key_space() {
        let inst = one(&[(0, 3), (2, 5)], 1);
        let keys = [
            canonicalize(&inst, Objective::Gaps).key,
            canonicalize(&inst, Objective::Spans).key,
            canonicalize(&inst, Objective::Power { alpha: 1 }).key,
            canonicalize(&inst, Objective::Power { alpha: 2 }).key,
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn processor_count_is_part_of_the_key() {
        let a = one(&[(0, 3)], 1);
        let b = one(&[(0, 3)], 2);
        assert_ne!(
            canonicalize(&a, Objective::Gaps).key,
            canonicalize(&b, Objective::Gaps).key
        );
    }

    #[test]
    fn empty_instances_canonicalize() {
        let empty = BatchInstance::One(Instance::new(vec![], 2).unwrap());
        let form = canonicalize(&empty, Objective::Power { alpha: 3 });
        assert!(form.key.contains("power:3"));
        let empty_multi = BatchInstance::Multi(MultiInstance::new(vec![]).unwrap());
        let form = canonicalize(&empty_multi, Objective::Gaps);
        assert!(form.key.starts_with("gaps"));
    }
}

//! Intra-instance parallel branch-and-bound driver.
//!
//! [`gaps_core::multi_exact::ParallelPlan`] exposes a solve as data —
//! decomposed components, each with a canonical root frontier and a
//! shared atomic incumbent — because the analyzer pins thread creation
//! to [`crate::pool`]. This module is the other half: it fans the
//! subtree tasks out over [`crate::pool::map_ordered_counted`], folds
//! the outcomes back in task order, and turns the per-worker execution
//! counts into the *steal* statistic (`tasks run by any worker but the
//! first`) that `STATS v3` reports.
//!
//! Determinism: outcomes are reassembled by task index and
//! `ParallelPlan::finish` picks per-component winners by canonical root
//! order, so the returned value *and witness schedule* are bit-identical
//! for every thread count — the differential suite re-proves this at
//! `--threads 1/2/8` on every run.

use gaps_core::instance::MultiInstance;
use gaps_core::multi_exact::{MultiObjective, ParallelPlan, SearchStats};
use gaps_core::schedule::MultiSchedule;

use crate::pool;

/// Solve a multi-interval instance exactly with `threads` intra-instance
/// workers; `None` iff infeasible. With `threads <= 1` the plan still
/// runs (inline, no pool spawn) so the statistics stay comparable.
///
/// The returned [`SearchStats`] carries nodes expanded, the component
/// size histogram, subtree task/steal counts, and incumbent updates.
pub fn solve_multi_parallel(
    inst: &MultiInstance,
    objective: MultiObjective,
    threads: usize,
) -> (Option<(u64, MultiSchedule)>, SearchStats) {
    let Some(plan) = ParallelPlan::new(inst, objective) else {
        return (None, SearchStats::default());
    };
    let tasks = plan.tasks();
    let (outcomes, steals) = if threads <= 1 || tasks.len() <= 1 {
        // Nothing to fan out: run inline and spare the scope setup.
        (tasks.iter().map(|t| plan.run_task(t)).collect(), 0)
    } else {
        let (outcomes, executed) =
            pool::map_ordered_counted(tasks, threads, |_, task| plan.run_task(&task));
        (outcomes, executed.iter().skip(1).sum::<u64>())
    };
    let (value, sched, mut stats) = plan.finish(&outcomes);
    stats.subtree_steals = steals;
    (Some((value, sched)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::multi_exact;

    fn inst(times: &[Vec<i64>]) -> MultiInstance {
        MultiInstance::from_times(times.to_vec()).unwrap()
    }

    /// A coupled core (no decomposition cuts) plus satellite bands: the
    /// shape the parallel path exists for.
    fn mixed_instance() -> MultiInstance {
        let mut jobs: Vec<Vec<i64>> = (0..10)
            .map(|j| (0..20).filter(|t| (t + j) % 3 != 0).collect())
            .collect();
        jobs.push(vec![40, 41]);
        jobs.push(vec![41, 42]);
        jobs.push(vec![60]);
        inst(&jobs)
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let i = mixed_instance();
        for obj in [
            MultiObjective::Gaps,
            MultiObjective::Spans,
            MultiObjective::Power { alpha: 4 },
        ] {
            let (seq, _) = multi_exact::solve_multi_stats(&i, obj);
            let (sv, ss) = seq.unwrap();
            for threads in [1usize, 2, 8] {
                let (par, stats) = solve_multi_parallel(&i, obj, threads);
                let (pv, ps) = par.unwrap();
                assert_eq!(sv, pv, "value diverged at {threads} threads");
                assert_eq!(
                    ss.times(),
                    ps.times(),
                    "schedule diverged at {threads} threads"
                );
                assert!(stats.subtree_tasks > 0);
            }
        }
    }

    #[test]
    fn steals_are_zero_on_one_thread() {
        let (_, stats) = solve_multi_parallel(&mixed_instance(), MultiObjective::Spans, 1);
        assert_eq!(stats.subtree_steals, 0);
        assert!(stats.nodes_expanded > 0);
        assert_eq!(stats.component_jobs, vec![10, 2, 1]);
    }

    #[test]
    fn infeasible_instances_return_none() {
        let i = inst(&[vec![5], vec![5]]);
        let (res, _) = solve_multi_parallel(&i, MultiObjective::Gaps, 4);
        assert!(res.is_none());
    }
}

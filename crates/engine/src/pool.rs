//! Fixed worker pool over the `crossbeam` scope + bounded-channel stubs.
//!
//! [`map_ordered`] fans a work list out to `threads` workers through a
//! **bounded** MPMC channel (so an enormous batch never materializes in
//! the queue all at once — backpressure caps the in-flight window at
//! `2 × threads` items) and reassembles results **by index**, so the
//! output order is that of the input regardless of which worker finished
//! first. That reassembly is what makes `gaps batch` byte-identical
//! across `--threads 1/2/8`.
//!
//! Results travel back over an unbounded channel: workers never block on
//! the way out, so the only backpressure point is work intake and the
//! pool cannot deadlock (the collector drains exactly `items.len()`
//! results while the feeder is still pushing).

use crossbeam::channel;

/// Apply `f` to every `(index, item)` pair on a pool of `threads` workers
/// (at least one) and return the results in input order.
///
/// `f` must be deterministic per item for the output to be reproducible —
/// the pool guarantees *order*, the caller guarantees *values*.
///
/// # Panics
/// Re-raises panics from worker threads after the scope joins.
pub fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    // More workers than items would just be idle OS threads (and an
    // absurd request, e.g. `--threads 500000`, would die in spawn).
    let threads = threads.clamp(1, total);
    let (work_tx, work_rx) = channel::bounded::<(usize, T)>(threads * 2);
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                for (index, item) in work_rx {
                    // The collector only disappears early if a sibling
                    // panicked; stop quietly and let the scope re-raise.
                    if result_tx.send((index, f(index, item))).is_err() {
                        break;
                    }
                }
            });
        }
        // Only workers hold live clones now; when the feeder below drops
        // `work_tx`, their intake iterators end.
        drop(work_rx);
        drop(result_tx);
        for pair in items.into_iter().enumerate() {
            work_tx.send(pair).expect("a worker is alive to receive");
        }
        drop(work_tx);
        for _ in 0..total {
            let (index, value) = result_rx.recv().expect("every item yields a result");
            results[index] = Some(value);
        }
    })
    .expect("worker threads join");
    results
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let doubled = map_ordered(items, 8, |_, x| x * 2);
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        let items: Vec<u64> = (0..200).collect();
        let one = map_ordered(items.clone(), 1, |i, x| (i as u64) * 1000 + x);
        let many = map_ordered(items, 7, |i, x| (i as u64) * 1000 + x);
        assert_eq!(one, many);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = map_ordered((0..300).collect::<Vec<_>>(), 4, |_, x: i32| {
            calls.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(results.len(), 300);
        assert_eq!(calls.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<i32> = map_ordered(Vec::<i32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = map_ordered(vec![1, 2, 3], 0, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn absurd_thread_counts_are_clamped_to_the_item_count() {
        let out = map_ordered(vec![1, 2, 3], 500_000, |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        let offsets: Vec<i64> = vec![10, 20, 30];
        let offsets = &offsets;
        let out = map_ordered(vec![0usize, 1, 2], 3, |_, i| offsets[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}

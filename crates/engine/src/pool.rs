//! Fixed worker pool over the `crossbeam` scope + bounded-channel stubs.
//!
//! [`map_ordered`] fans a work list out to `threads` workers through a
//! **bounded** MPMC channel (so an enormous batch never materializes in
//! the queue all at once — backpressure caps the in-flight window at
//! `2 × threads` items) and reassembles results **by index**, so the
//! output order is that of the input regardless of which worker finished
//! first. That reassembly is what makes `gaps batch` byte-identical
//! across `--threads 1/2/8`.
//!
//! Results travel back over an unbounded channel: workers never block on
//! the way out, so the only backpressure point is work intake and the
//! pool cannot deadlock (the collector drains exactly `items.len()`
//! results while the feeder is still pushing).
//!
//! For open-ended traffic (the serve daemon) the batch-shaped
//! [`map_ordered`] is the wrong lifecycle: there is no "end of input" to
//! join on. [`TaskPool`] keeps the same discipline — bounded intake,
//! crossbeam-channel fan-out — but lives for the process: submit jobs
//! with [`TaskPool::try_submit`] (non-blocking, `Full` is the admission
//! backpressure signal), observe [`TaskPool::queued`] /
//! [`TaskPool::active`], and drain with [`TaskPool::shutdown`].
//!
//! A [`TaskPool::elastic`] pool additionally grows past its core size
//! under queue pressure — up to a hard `max_threads` cap — and shrinks
//! back when the extra workers sit idle past a timeout. Growth happens
//! on the submit path (all workers busy with jobs waiting, or the
//! bounded queue momentarily full); shrink is each grown worker retiring
//! itself after `idle_timeout` with no work. Elasticity never touches
//! [`map_ordered`], whose index-reassembly determinism is
//! worker-count-independent by construction. The idle-shrink timer is a
//! real wall-clock read (`Instant`), which is why this file sits on the
//! analyzer determinism rule's explicit allowlist.
//!
//! This module is the workspace's only sanctioned `thread::spawn` site
//! (the analyzer's `concurrency` rule pins that); [`background`] is the
//! escape hatch for the few long-lived utility threads (report ticker,
//! connection readers) that are not worker-pool shaped.

use crossbeam::channel::{self, RecvTimeoutError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Apply `f` to every `(index, item)` pair on a pool of `threads` workers
/// (at least one) and return the results in input order.
///
/// `f` must be deterministic per item for the output to be reproducible —
/// the pool guarantees *order*, the caller guarantees *values*.
///
/// # Panics
/// Re-raises panics from worker threads after the scope joins.
pub fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    // More workers than items would just be idle OS threads (and an
    // absurd request, e.g. `--threads 500000`, would die in spawn).
    let threads = threads.clamp(1, total);
    let (work_tx, work_rx) = channel::bounded::<(usize, T)>(threads * 2);
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                for (index, item) in work_rx {
                    // The collector only disappears early if a sibling
                    // panicked; stop quietly and let the scope re-raise.
                    if result_tx.send((index, f(index, item))).is_err() {
                        break;
                    }
                }
            });
        }
        // Only workers hold live clones now; when the feeder below drops
        // `work_tx`, their intake iterators end.
        drop(work_rx);
        drop(result_tx);
        for pair in items.into_iter().enumerate() {
            work_tx.send(pair).expect("a worker is alive to receive");
        }
        drop(work_tx);
        for _ in 0..total {
            let (index, value) = result_rx.recv().expect("every item yields a result");
            results[index] = Some(value);
        }
    })
    .expect("worker threads join");
    results
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect()
}

/// [`map_ordered`] with per-worker task accounting: returns the results
/// in input order plus how many items each of the `threads` workers
/// actually executed (index 0 = first worker). The parallel
/// branch-and-bound driver uses the counts to report *steals* — subtree
/// tasks that ran on a worker other than the first — without perturbing
/// the deterministic index reassembly.
///
/// # Panics
/// Re-raises panics from worker threads after the scope joins.
pub fn map_ordered_counted<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, Vec<u64>)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return (Vec::new(), vec![0; threads.max(1)]);
    }
    let threads = threads.clamp(1, total);
    let executed: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let (work_tx, work_rx) = channel::bounded::<(usize, T)>(threads * 2);
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    crossbeam::scope(|s| {
        for counter in &executed {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                for (index, item) in work_rx {
                    counter.fetch_add(1, SeqCst);
                    if result_tx.send((index, f(index, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(work_rx);
        drop(result_tx);
        for pair in items.into_iter().enumerate() {
            work_tx.send(pair).expect("a worker is alive to receive");
        }
        drop(work_tx);
        for _ in 0..total {
            let (index, value) = result_rx.recv().expect("every item yields a result");
            results[index] = Some(value);
        }
    })
    .expect("worker threads join");
    let results = results
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect();
    let executed = executed.into_iter().map(AtomicU64::into_inner).collect();
    (results, executed)
}

/// Spawn one named long-lived utility thread. Kept here so the
/// analyzer's pool-only-spawn rule stays a single-file invariant; every
/// caller gets a `gaps-`-prefixed thread name for debuggability.
pub fn background<F>(name: &str, f: F) -> thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    thread::Builder::new()
        .name(format!("gaps-{name}"))
        .spawn(f)
        .expect("spawn background thread")
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`TaskPool::try_submit`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded intake queue is at capacity — the backpressure signal
    /// (serve answers `BUSY`).
    Full,
    /// The pool has been shut down and accepts nothing.
    Closed,
}

/// Gauges shared between the pool handle and its workers.
#[derive(Debug, Default)]
struct PoolGauges {
    queued: AtomicU64,
    active: AtomicU64,
    panicked: AtomicU64,
    /// Live worker threads right now (core + grown, before retirement).
    workers: AtomicU64,
    /// High-water mark of `workers`.
    peak_workers: AtomicU64,
    /// Monotone spawn counter; names grown workers uniquely.
    spawn_seq: AtomicU64,
}

/// Dequeue-and-run one job with the shared gauge discipline; both the
/// core and the grown worker loops funnel through here.
fn run_job(gauges: &PoolGauges, job: Job) {
    gauges.queued.fetch_sub(1, SeqCst);
    gauges.active.fetch_add(1, SeqCst);
    // A panicking job must not kill the worker: the pool would silently
    // shrink and queued requests would never be answered.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    gauges.active.fetch_sub(1, SeqCst);
    if outcome.is_err() {
        gauges.panicked.fetch_add(1, SeqCst);
    }
}

/// A long-lived worker pool with a bounded intake queue and explicit
/// backpressure — the serve daemon's execution substrate.
///
/// Unlike [`map_ordered`] there is no ordering contract: each job
/// carries its own reply path (request id), so completions may
/// interleave freely. Admission is strictly non-blocking
/// ([`TaskPool::try_submit`] uses `try_send`), so no caller ever stalls
/// on a full queue — it is told [`SubmitError::Full`] and sheds instead.
#[derive(Debug)]
pub struct TaskPool {
    gauges: Arc<PoolGauges>,
    sender: Mutex<Option<channel::Sender<Job>>>,
    /// Kept so grown workers can be attached to the same intake queue
    /// after construction.
    receiver: channel::Receiver<Job>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    max_threads: usize,
    idle_timeout: Duration,
}

/// How long a grown worker idles before retiring itself.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_millis(500);

impl TaskPool {
    /// Start `threads` workers (at least one) behind a bounded intake
    /// queue of `queue_capacity` jobs (at least one). The pool stays at
    /// this size forever — fixed pools are `elastic` with `max ==
    /// core`.
    pub fn new(threads: usize, queue_capacity: usize) -> TaskPool {
        TaskPool::elastic(threads, threads, queue_capacity, DEFAULT_IDLE_TIMEOUT)
    }

    /// Start an elastic pool: `core_threads` permanent workers (at
    /// least one), growing up to `max_threads` under queue pressure,
    /// with grown workers retiring after `idle_timeout` without work.
    pub fn elastic(
        core_threads: usize,
        max_threads: usize,
        queue_capacity: usize,
        idle_timeout: Duration,
    ) -> TaskPool {
        let core_threads = core_threads.max(1);
        let max_threads = max_threads.max(core_threads);
        let (tx, rx) = channel::bounded::<Job>(queue_capacity.max(1));
        let gauges = Arc::new(PoolGauges::default());
        let workers = (0..core_threads)
            .map(|i| {
                let rx = rx.clone();
                let gauges = Arc::clone(&gauges);
                gauges.workers.fetch_add(1, SeqCst);
                gauges.peak_workers.fetch_max(i as u64 + 1, SeqCst);
                thread::Builder::new()
                    .name(format!("gaps-worker-{i}"))
                    .spawn(move || {
                        for job in rx {
                            run_job(&gauges, job);
                        }
                        gauges.workers.fetch_sub(1, SeqCst);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        TaskPool {
            gauges,
            sender: Mutex::new(Some(tx)),
            receiver: rx,
            workers: Mutex::new(workers),
            max_threads,
            idle_timeout,
        }
    }

    /// Spawn one grown worker if the live count is below the cap.
    /// Returns whether a worker was added. The slot is reserved with an
    /// atomic compare-and-update, so concurrent submitters never
    /// overshoot `max_threads`; no lock is held anywhere near the
    /// worker's channel loop.
    fn spawn_extra(&self) -> bool {
        let cap = self.max_threads as u64;
        if self
            .gauges
            .workers
            .fetch_update(SeqCst, SeqCst, |w| (w < cap).then_some(w + 1))
            .is_err()
        {
            return false;
        }
        let rx = self.receiver.clone();
        let gauges = Arc::clone(&self.gauges);
        let idle_timeout = self.idle_timeout;
        let seq = self.gauges.spawn_seq.fetch_add(1, SeqCst);
        self.gauges
            .peak_workers
            .fetch_max(self.gauges.workers.load(SeqCst), SeqCst);
        let spawned = thread::Builder::new()
            .name(format!("gaps-worker-x{seq}"))
            .spawn(move || {
                // Patience deadline, not a raw recv_timeout: the worker
                // retires only once it has *accumulated* idle_timeout of
                // continuous idleness, robust to early condvar wakeups.
                let mut idle_since = Instant::now();
                loop {
                    match rx.recv_timeout(idle_timeout) {
                        Ok(job) => {
                            run_job(&gauges, job);
                            idle_since = Instant::now();
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if idle_since.elapsed() >= idle_timeout {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                gauges.workers.fetch_sub(1, SeqCst);
            });
        match spawned {
            Ok(handle) => {
                // Retired workers' handles stay in the registry until
                // shutdown joins them; the threads themselves are gone.
                self.workers.lock().push(handle);
                true
            }
            Err(_) => {
                self.gauges.workers.fetch_sub(1, SeqCst);
                false
            }
        }
    }

    /// Grow if the queue shows pressure: jobs waiting while every live
    /// worker is busy.
    fn maybe_grow(&self) {
        if self.gauges.queued.load(SeqCst) > 0
            && self.gauges.active.load(SeqCst) >= self.gauges.workers.load(SeqCst)
        {
            self.spawn_extra();
        }
    }

    /// Submit a job without blocking. `Err(Full)` is the backpressure
    /// signal; `Err(Closed)` means the pool was shut down. On an
    /// elastic pool a full queue first tries to grow a worker and
    /// retries the send once before refusing.
    pub fn try_submit<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        // Clone the sender out of the guard so the (non-blocking) channel
        // op below runs with no lock held.
        let sender = match self.sender.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(SubmitError::Closed),
        };
        // Count before sending so a worker's decrement (which can only
        // follow a successful send) never underflows the gauge.
        self.gauges.queued.fetch_add(1, SeqCst);
        match sender.try_send(Box::new(job)) {
            Ok(()) => {
                self.maybe_grow();
                Ok(())
            }
            Err(err) if err.is_full() && self.spawn_extra() => {
                // Grew under a full queue: retry once so the admission
                // that *triggered* the growth benefits from it.
                match sender.try_send(err.into_inner()) {
                    Ok(()) => Ok(()),
                    Err(err) => {
                        self.gauges.queued.fetch_sub(1, SeqCst);
                        Err(if err.is_full() {
                            SubmitError::Full
                        } else {
                            SubmitError::Closed
                        })
                    }
                }
            }
            Err(err) => {
                self.gauges.queued.fetch_sub(1, SeqCst);
                Err(if err.is_full() {
                    SubmitError::Full
                } else {
                    SubmitError::Closed
                })
            }
        }
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queued(&self) -> u64 {
        self.gauges.queued.load(SeqCst)
    }

    /// Live worker threads right now (grown workers included until they
    /// retire).
    pub fn workers(&self) -> u64 {
        self.gauges.workers.load(SeqCst)
    }

    /// High-water mark of live workers over the pool's lifetime.
    pub fn peak_workers(&self) -> u64 {
        self.gauges.peak_workers.load(SeqCst)
    }

    /// Jobs currently executing.
    pub fn active(&self) -> u64 {
        self.gauges.active.load(SeqCst)
    }

    /// Jobs that panicked (caught; the worker survived).
    pub fn panicked(&self) -> u64 {
        self.gauges.panicked.load(SeqCst)
    }

    /// Stop accepting, run every already-queued job, and join the
    /// workers. Idempotent; the graceful-shutdown drain.
    pub fn shutdown(&self) {
        let sender = self.sender.lock().take();
        // Dropping the last pool-held sender ends the workers' intake
        // iterators once the queue drains.
        drop(sender);
        let workers = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let doubled = map_ordered(items, 8, |_, x| x * 2);
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        let items: Vec<u64> = (0..200).collect();
        let one = map_ordered(items.clone(), 1, |i, x| (i as u64) * 1000 + x);
        let many = map_ordered(items, 7, |i, x| (i as u64) * 1000 + x);
        assert_eq!(one, many);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = map_ordered((0..300).collect::<Vec<_>>(), 4, |_, x: i32| {
            calls.fetch_add(1, SeqCst);
            x
        });
        assert_eq!(results.len(), 300);
        assert_eq!(calls.load(SeqCst), 300);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<i32> = map_ordered(Vec::<i32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = map_ordered(vec![1, 2, 3], 0, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn absurd_thread_counts_are_clamped_to_the_item_count() {
        let out = map_ordered(vec![1, 2, 3], 500_000, |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        let offsets: Vec<i64> = vec![10, 20, 30];
        let offsets = &offsets;
        let out = map_ordered(vec![0usize, 1, 2], 3, |_, i| offsets[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn counted_variant_matches_and_accounts_for_every_item() {
        let items: Vec<u64> = (0..250).collect();
        let (out, counts) = map_ordered_counted(items.clone(), 4, |_, x| x * 3);
        assert_eq!(out, map_ordered(items, 4, |_, x| x * 3));
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), 250);
    }

    #[test]
    fn counted_variant_on_one_thread_reports_no_steals() {
        let (out, counts) = map_ordered_counted(vec![1u64, 2, 3], 1, |_, x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(counts, vec![3]);
    }

    #[test]
    fn counted_variant_handles_empty_input() {
        let (out, counts) = map_ordered_counted(Vec::<i32>::new(), 6, |_, x| x);
        assert!(out.is_empty());
        assert_eq!(counts, vec![0; 6]);
    }

    #[test]
    fn task_pool_runs_submitted_jobs_and_drains_on_shutdown() {
        let pool = TaskPool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, SeqCst);
            })
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(done.load(SeqCst), 50);
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.active(), 0);
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn task_pool_reports_full_then_recovers() {
        let pool = TaskPool::new(1, 1);
        // Gate the single worker so the queue can actually fill.
        let (gate_tx, gate_rx) = channel::bounded::<()>(4);
        pool.try_submit(move || {
            let _ = gate_rx.recv();
        })
        .expect("first job admitted");
        // Wait for the worker to pick the blocker up, then fill the
        // one-slot queue; the next submit must refuse, not block.
        while pool.active() == 0 {
            std::hint::spin_loop();
        }
        pool.try_submit(|| {}).expect("second job fills the queue");
        let mut saw_full = false;
        for _ in 0..100 {
            match pool.try_submit(|| {}) {
                Err(SubmitError::Full) => {
                    saw_full = true;
                    break;
                }
                // A race (worker dequeued between submits) re-fills;
                // keep probing.
                Ok(()) => {}
                Err(SubmitError::Closed) => panic!("pool is not closed"),
            }
        }
        assert!(saw_full, "a bounded queue must eventually report Full");
        gate_tx.send(()).expect("worker is alive");
        pool.shutdown();
    }

    #[test]
    fn task_pool_refuses_after_shutdown() {
        let pool = TaskPool::new(1, 4);
        pool.shutdown();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Closed));
        // Shutdown twice is fine.
        pool.shutdown();
    }

    #[test]
    fn task_pool_survives_a_panicking_job() {
        let pool = TaskPool::new(1, 8);
        let done = Arc::new(AtomicUsize::new(0));
        pool.try_submit(|| panic!("job panics")).expect("admitted");
        let done2 = Arc::clone(&done);
        pool.try_submit(move || {
            done2.fetch_add(1, SeqCst);
        })
        .expect("admitted after panic");
        pool.shutdown();
        assert_eq!(done.load(SeqCst), 1, "worker survived the panic");
        assert_eq!(pool.panicked(), 1);
    }

    /// Spin until `cond` holds or ~2s pass; elastic resize is
    /// asynchronous, so tests wait on the gauges rather than sleeping
    /// fixed amounts.
    fn wait_until(cond: impl Fn() -> bool) -> bool {
        for _ in 0..2_000 {
            if cond() {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn elastic_pool_grows_under_pressure_and_shrinks_when_idle() {
        let pool = TaskPool::elastic(1, 3, 8, Duration::from_millis(30));
        assert_eq!(pool.workers(), 1);
        let (gate_tx, gate_rx) = channel::bounded::<()>(8);
        let done = Arc::new(AtomicUsize::new(0));
        // Submit three blocked jobs, letting each be picked up before
        // the next: every later submit then observes genuine pressure
        // (all live workers busy, a job queued) and grows the pool.
        for n in 1..=3u64 {
            let gate_rx = gate_rx.clone();
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                let _ = gate_rx.recv();
                done.fetch_add(1, SeqCst);
            })
            .expect("queue has room");
            assert!(
                wait_until(|| pool.active() == n),
                "job {n} picked up (active = {})",
                pool.active()
            );
        }
        assert_eq!(
            pool.workers(),
            3,
            "three blocked jobs against one core worker grow to the cap"
        );
        assert_eq!(pool.peak_workers(), 3);
        for _ in 0..3 {
            gate_tx.send(()).expect("a worker is alive");
        }
        assert!(wait_until(|| done.load(SeqCst) == 3), "all jobs ran");
        // Grown workers retire after idling past the timeout; the core
        // worker stays.
        assert!(
            wait_until(|| pool.workers() == 1),
            "grown workers retired (workers = {})",
            pool.workers()
        );
        // A shrunk pool still accepts and runs work.
        let done2 = Arc::clone(&done);
        pool.try_submit(move || {
            done2.fetch_add(1, SeqCst);
        })
        .expect("accepts after shrink");
        pool.shutdown();
        assert_eq!(done.load(SeqCst), 4);
        assert_eq!(pool.workers(), 0, "every worker joined");
        assert_eq!(pool.peak_workers(), 3);
    }

    #[test]
    fn fixed_pool_never_grows() {
        let pool = TaskPool::new(2, 1);
        assert_eq!(pool.workers(), 2);
        let (gate_tx, gate_rx) = channel::bounded::<()>(8);
        for n in 1..=2u64 {
            let gate_rx = gate_rx.clone();
            pool.try_submit(move || {
                let _ = gate_rx.recv();
            })
            .expect("admitted");
            // Let the one-slot queue drain before the next submit.
            assert!(wait_until(|| pool.active() == n), "job {n} picked up");
        }
        pool.try_submit(|| {}).expect("fills the one-slot queue");
        // Queue full + all workers busy: a fixed pool must refuse, not
        // grow.
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Full));
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.peak_workers(), 2);
        gate_tx.send(()).expect("alive");
        gate_tx.send(()).expect("alive");
        pool.shutdown();
    }

    #[test]
    fn elastic_pool_reports_full_only_at_the_cap() {
        let pool = TaskPool::elastic(1, 2, 1, Duration::from_millis(200));
        let (gate_tx, gate_rx) = channel::bounded::<()>(8);
        let submit_blocked = |pool: &TaskPool| {
            let gate_rx = gate_rx.clone();
            pool.try_submit(move || {
                let _ = gate_rx.recv();
            })
        };
        // Saturate: every admission either runs (on a core or grown
        // worker) or queues; only once workers == cap and the queue is
        // full may Full surface.
        let mut admitted = 0;
        let mut saw_full = false;
        for _ in 0..50 {
            match submit_blocked(&pool) {
                Ok(()) => admitted += 1,
                Err(SubmitError::Full) => {
                    saw_full = true;
                    break;
                }
                Err(SubmitError::Closed) => panic!("pool is not closed"),
            }
        }
        assert!(saw_full, "the bounded queue still backpressures");
        // 2 workers (grown to cap) + 1 queued slot.
        assert!(admitted >= 3, "admitted {admitted}");
        assert_eq!(pool.workers(), 2, "grew exactly to the cap");
        for _ in 0..admitted {
            gate_tx.send(()).expect("alive");
        }
        pool.shutdown();
    }

    #[test]
    fn background_thread_is_named_and_joinable() {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let handle = background("test-util", move || {
            ran2.fetch_add(1, SeqCst);
        });
        handle.join().expect("background thread joins");
        assert_eq!(ran.load(SeqCst), 1);
    }
}

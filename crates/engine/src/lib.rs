//! # gaps-engine
//!
//! A concurrent batch-solving layer between the paper's solvers and the
//! outside world: accept a *stream* of scheduling instances, solve each
//! with the best-fitting algorithm, and answer at scale.
//!
//! The pipeline, per request:
//!
//! 1. **Canonicalize** ([`canonical`]) — dead-zone compression
//!    (`gaps_core::compress`) plus job sorting normalizes away time
//!    shifts, job order, and dead time, yielding a cache key under which
//!    equivalent instances collide.
//! 2. **Cache** ([`cache`]) — a sharded LRU maps canonical keys to
//!    finished result lines; hits skip solving entirely.
//! 3. **Route** ([`router`]) — misses go to a portfolio router that picks
//!    a solver from the instance's shape (one- vs. multi-interval,
//!    processor count, laxity, size, objective, α), with a configurable
//!    fallback chain for instances no exact solver can take.
//! 4. **Execute** ([`pool`]) — a fixed worker pool built on the
//!    `crossbeam` scope + bounded-channel stubs runs requests in
//!    parallel and reassembles results in input order, so output is
//!    deterministic for any thread count.
//!
//! Per-batch latency, cache, and router metrics land in an
//! [`EngineReport`] ([`metrics`]).
//!
//! ```
//! use gaps_engine::{Engine, EngineConfig, Objective};
//!
//! let text = "\
//! instance v1
//! processors 1
//! job 0 2
//! job 1 3
//! instance v1
//! processors 1
//! job 100 102
//! job 101 103
//! ";
//! let engine = Engine::new(EngineConfig::default());
//! let (out, report) = engine.run_batch_text(text, Objective::Gaps).unwrap();
//! assert_eq!(out.lines().count(), 2);
//! // The second instance is a time-shifted copy of the first: the
//! // canonicalized cache collapses them into one solve. (Served on one
//! // thread here, so the hit is guaranteed; with more threads the two
//! // requests can race to a double-miss — the *output* stays identical
//! // either way, see `tests/engine_batch.rs`.)
//! assert_eq!(report.cache_hits, 1);
//! ```

pub mod cache;
pub mod canonical;
pub mod metrics;
pub mod online;
pub mod parallel;
pub mod pool;
pub mod router;

pub use cache::{CacheStats, ShardedCache};
pub use metrics::{
    summarize_latencies, EngineReport, Histogram, LatencySummary, MetricsRegistry, MetricsSnapshot,
    RatioStats, SearchTotals,
};
pub use online::{OnlineSummary, OnlineTracker, SessionState};
pub use router::{FallbackSolver, Features, RouterConfig, SolverKind};

use gaps_core::instance::{Instance, MultiInstance};
use gaps_workloads::serialize;
use std::time::Instant;

/// What to minimize, batch-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Number of gaps (idle periods) — the paper's Theorem 1 objective.
    Gaps,
    /// Number of spans (wake-ups).
    Spans,
    /// Total power: active slots + `alpha` per wake-up (Theorem 2).
    Power {
        /// Transition (wake-up) cost.
        alpha: u64,
    },
}

impl Objective {
    /// Parse the CLI spelling (`gaps` / `spans` / `power` + alpha).
    pub fn parse(name: &str, alpha: u64) -> Result<Objective, String> {
        match name {
            "gaps" => Ok(Objective::Gaps),
            "spans" => Ok(Objective::Spans),
            "power" => Ok(Objective::Power { alpha }),
            other => Err(format!("unknown objective {other:?}")),
        }
    }

    /// The result-line label (`gaps=…`, `spans=…`, `power=…`).
    pub fn label(self) -> &'static str {
        match self {
            Objective::Gaps => "gaps",
            Objective::Spans => "spans",
            Objective::Power { .. } => "power",
        }
    }

    /// Cache-key prefix; includes `alpha` because the power optimum (and
    /// power compression) depend on it.
    pub fn cache_tag(self) -> String {
        match self {
            Objective::Gaps => "gaps".to_string(),
            Objective::Spans => "spans".to_string(),
            Objective::Power { alpha } => format!("power:{alpha}"),
        }
    }
}

/// Either flavor of instance the batch stream can carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchInstance {
    /// Release/deadline jobs on `p` processors (`instance v1`).
    One(Instance),
    /// Allowed-slot jobs on one processor (`multi v1`).
    Multi(MultiInstance),
}

impl BatchInstance {
    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        match self {
            BatchInstance::One(inst) => inst.job_count(),
            BatchInstance::Multi(inst) => inst.job_count(),
        }
    }

    /// Result-line tag: `one` or `multi`.
    pub fn kind_label(&self) -> &'static str {
        match self {
            BatchInstance::One(_) => "one",
            BatchInstance::Multi(_) => "multi",
        }
    }
}

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// Total result-cache entries across shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shard (lock) count.
    pub cache_shards: usize,
    /// Portfolio router configuration.
    pub router: RouterConfig,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            threads: 1,
            cache_capacity: 4096,
            cache_shards: 16,
            router: RouterConfig::default(),
        }
    }
}

/// The solving engine. Construct once, feed it forever: the result
/// cache and the [`MetricsRegistry`] persist across every
/// [`Engine::run_batch`] / [`Engine::solve_request`] call, so repeated
/// traffic gets warm-cache latencies and the metrics reflect the whole
/// lifetime — which is exactly what a long-running service snapshots.
pub struct Engine {
    config: EngineConfig,
    cache: ShardedCache,
    metrics: MetricsRegistry,
}

/// What the engine hands back for one request.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Result body: `<one|multi> n=<jobs> <payload> solver=<tag>` — the
    /// batch result line minus its leading index, and the serve `RES`
    /// body after the request id, so the two surfaces are bit-identical
    /// by construction.
    pub body: String,
    /// Which solver ran (`None` on a cache hit).
    pub solver: Option<SolverKind>,
    /// Answered from the result cache.
    pub cache_hit: bool,
    /// Served by the degraded shed chain.
    pub shed: bool,
    /// Request wall clock.
    pub elapsed: std::time::Duration,
}

impl Engine {
    /// Build an engine. A router `multi_exact_threads` of 0 ("inherit")
    /// resolves to the engine's worker-thread count here, so big
    /// multi-interval instances get intra-instance parallelism from the
    /// same `--threads` knob that fans batches out.
    pub fn new(mut config: EngineConfig) -> Engine {
        if config.router.multi_exact_threads == 0 {
            config.router.multi_exact_threads = config.threads.max(1);
        }
        let cache = ShardedCache::new(config.cache_capacity, config.cache_shards);
        Engine {
            config,
            cache,
            metrics: MetricsRegistry::new(),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime cache statistics (across every batch served so far).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine-lifetime metrics registry (every request ever solved,
    /// whichever surface it arrived on).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Solve one instance through the full canonicalize → cache → route
    /// pipeline. This is the shared engine loop: `run_batch` fans it out
    /// over the ordered pool, the serve daemon calls it per request.
    ///
    /// With `shed` set the router runs a degraded config
    /// ([`RouterConfig::shed`]) and the result is **not** cached: a shed
    /// answer may be approximate where the normal route is exact, and
    /// caching it would poison later full-service requests for the same
    /// canonical key. Cache *reads* still happen — an exact answer that
    /// is already paid for is the cheapest possible response.
    pub fn solve_request(
        &self,
        inst: &BatchInstance,
        objective: Objective,
        shed: bool,
    ) -> RequestOutcome {
        let request_start = Instant::now();
        let flavor = inst.kind_label();
        let jobs = inst.job_count();
        let form = canonical::canonicalize(inst, objective);
        let (payload, solver, cache_hit) = match self.cache.get(&form.key) {
            Some(cached) => (cached, None, true),
            None if shed => {
                let (kind, body) = router::solve_observed(
                    &form.instance,
                    objective,
                    &self.config.router.shed(),
                    Some(&self.metrics),
                );
                (format!("{body} solver={}", kind.name()), Some(kind), false)
            }
            None => {
                let (kind, body) = router::solve_observed(
                    &form.instance,
                    objective,
                    &self.config.router,
                    Some(&self.metrics),
                );
                let payload = format!("{body} solver={}", kind.name());
                self.cache.insert(form.key, payload.clone());
                (payload, Some(kind), false)
            }
        };
        let elapsed = request_start.elapsed();
        self.metrics
            .record_request(solver.map(SolverKind::name), cache_hit, shed, elapsed);
        RequestOutcome {
            body: format!("{flavor} n={jobs} {payload}"),
            solver,
            cache_hit,
            shed,
            elapsed,
        }
    }

    /// Solve a batch, returning one result line per instance — in input
    /// order, independent of thread count — plus the batch report.
    ///
    /// Line format:
    /// `<index> <one|multi> n=<jobs> <payload> solver=<tag>` where the
    /// payload is `gaps=2` (exact), `power<=9.50` (upper bound),
    /// `gaps>=1` (lower bound), or `infeasible`.
    pub fn run_batch(
        &self,
        instances: &[BatchInstance],
        objective: Objective,
    ) -> (Vec<String>, EngineReport) {
        let start = Instant::now();
        let search_before = self.metrics.search_totals();
        let refs: Vec<&BatchInstance> = instances.iter().collect();
        let outcomes = pool::map_ordered(refs, self.config.threads, |index, inst| {
            let outcome = self.solve_request(inst, objective, false);
            (format!("{index} {}", outcome.body), outcome)
        });

        let mut report = EngineReport {
            requests: outcomes.len(),
            threads: self.config.threads.max(1),
            cache_entries: self.cache.len(),
            ..EngineReport::default()
        };
        let mut latencies = Vec::with_capacity(outcomes.len());
        let mut lines = Vec::with_capacity(outcomes.len());
        let mut by_solver: std::collections::BTreeMap<&'static str, Vec<std::time::Duration>> =
            std::collections::BTreeMap::new();
        for (line, outcome) in outcomes {
            if outcome.cache_hit {
                report.cache_hits += 1;
            } else {
                report.cache_misses += 1;
            }
            if let Some(kind) = outcome.solver {
                *report.solver_counts.entry(kind.name()).or_insert(0) += 1;
                by_solver
                    .entry(kind.name())
                    .or_default()
                    .push(outcome.elapsed);
            }
            latencies.push(outcome.elapsed);
            lines.push(line);
        }
        report.solver_latency = by_solver
            .into_iter()
            .map(|(name, samples)| (name, summarize_latencies(samples)))
            .collect();
        report.latency = summarize_latencies(latencies);
        report.search = self.metrics.search_totals().since(&search_before);
        report.wall = start.elapsed();
        (lines, report)
    }

    /// [`Engine::run_batch`] over a concatenated-instance text stream
    /// (see [`split_stream`]); returns the newline-joined result block.
    pub fn run_batch_text(
        &self,
        text: &str,
        objective: Objective,
    ) -> Result<(String, EngineReport), String> {
        let instances = split_stream(text)?;
        let (lines, report) = self.run_batch(&instances, objective);
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        Ok((out, report))
    }
}

/// Split a text stream of concatenated instances (each starting with an
/// `instance v1` or `multi v1` header, exactly the `gaps_workloads`
/// serialize format) into parsed instances. Comments and blank lines are
/// allowed anywhere, including before the first header.
pub fn split_stream(text: &str) -> Result<Vec<BatchInstance>, String> {
    let mut chunks: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line == "instance v1" || line == "multi v1" {
            chunks.push((lineno + 1, String::new()));
        } else if chunks.is_empty() && !line.is_empty() && !line.starts_with('#') {
            return Err(format!(
                "line {}: expected an 'instance v1' or 'multi v1' header, got {line:?}",
                lineno + 1
            ));
        }
        if let Some((_, chunk)) = chunks.last_mut() {
            chunk.push_str(raw);
            chunk.push('\n');
        }
    }
    chunks
        .into_iter()
        .map(|(lineno, chunk)| {
            let parsed = if chunk.trim_start().starts_with("multi v1") {
                serialize::multi_from_text(&chunk).map(BatchInstance::Multi)
            } else {
                serialize::instance_from_text(&chunk).map(BatchInstance::One)
            };
            parsed.map_err(|e| format!("instance starting at line {lineno}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_core::instance::Instance;
    use gaps_workloads::{multi_interval, one_interval};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_stream(count: usize) -> Vec<BatchInstance> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(match i % 4 {
                0 => BatchInstance::One(one_interval::feasible(&mut rng, 6, 12, 2, 1)),
                1 => BatchInstance::One(one_interval::uniform(&mut rng, 5, 10, 3, 2)),
                2 => BatchInstance::Multi(multi_interval::feasible_slots(&mut rng, 5, 9, 2)),
                _ => BatchInstance::One(one_interval::fixed_laxity(&mut rng, 6, 14, 0, 1)),
            });
        }
        out
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let batch = mixed_stream(60);
        let mut outputs = Vec::new();
        for threads in [1, 2, 8] {
            let engine = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let (lines, report) = engine.run_batch(&batch, Objective::Gaps);
            assert_eq!(report.requests, 60);
            outputs.push(lines);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn cache_does_not_change_output_only_speed() {
        let batch = mixed_stream(40);
        let cached = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let uncached = Engine::new(EngineConfig {
            threads: 4,
            cache_capacity: 0,
            ..EngineConfig::default()
        });
        let (with_cache, _) = cached.run_batch(&batch, Objective::Power { alpha: 2 });
        let (without_cache, report) = uncached.run_batch(&batch, Objective::Power { alpha: 2 });
        assert_eq!(with_cache, without_cache);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn warm_cache_reports_hits() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let batch = mixed_stream(30);
        let (cold_lines, cold) = engine.run_batch(&batch, Objective::Gaps);
        let (warm_lines, warm) = engine.run_batch(&batch, Objective::Gaps);
        assert_eq!(cold_lines, warm_lines);
        assert_eq!(warm.cache_hits, 30, "every repeat request should hit");
        assert!(warm.hit_rate() > 0.99);
        assert!(cold.cache_misses > 0);
    }

    #[test]
    fn report_counts_solvers_and_latencies() {
        let engine = Engine::new(EngineConfig::default());
        let (_, report) = engine.run_batch(&mixed_stream(20), Objective::Gaps);
        assert_eq!(report.requests, 20);
        let solved: usize = report.solver_counts.values().sum();
        assert_eq!(solved as u64, report.cache_misses);
        assert!(report.latency.max >= report.latency.min);
        // Per-family latencies cover exactly the families that solved.
        let count_keys: Vec<_> = report.solver_counts.keys().collect();
        let latency_keys: Vec<_> = report.solver_latency.keys().collect();
        assert_eq!(count_keys, latency_keys);
        for lat in report.solver_latency.values() {
            assert!(lat.max <= report.latency.max);
        }
    }

    #[test]
    fn split_stream_parses_concatenated_instances() {
        let text = "# leading comment\n\ninstance v1\nprocessors 2\njob 0 3\n\nmulti v1\njob 1 4\njob 2\ninstance v1\nprocessors 1\n";
        let parsed = split_stream(text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].kind_label(), "one");
        assert_eq!(parsed[1].kind_label(), "multi");
        assert_eq!(parsed[2].job_count(), 0);
    }

    #[test]
    fn split_stream_rejects_junk() {
        assert!(split_stream("not a header\n").is_err());
        let err = split_stream("instance v1\nprocessors 1\njob zero 1\n").unwrap_err();
        assert!(err.contains("starting at line 1"), "err = {err}");
        assert!(split_stream("").unwrap().is_empty());
    }

    #[test]
    fn batch_text_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = one_interval::feasible(&mut rng, 5, 10, 2, 1);
        let b = multi_interval::feasible_slots(&mut rng, 4, 8, 1);
        let text = format!(
            "{}{}",
            serialize::instance_to_text(&a),
            serialize::multi_to_text(&b)
        );
        let engine = Engine::new(EngineConfig::default());
        let (out, report) = engine.run_batch_text(&text, Objective::Spans).unwrap();
        assert_eq!(report.requests, 2);
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with("0 one n=5 spans="), "out = {out}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::new(EngineConfig::default());
        let (out, report) = engine.run_batch_text("", Objective::Gaps).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.requests, 0);
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    fn solve_request_body_matches_the_batch_line_tail() {
        let batch = mixed_stream(25);
        let batch_engine = Engine::new(EngineConfig::default());
        let (lines, _) = batch_engine.run_batch(&batch, Objective::Gaps);
        let request_engine = Engine::new(EngineConfig::default());
        for (i, inst) in batch.iter().enumerate() {
            let outcome = request_engine.solve_request(inst, Objective::Gaps, false);
            assert_eq!(format!("{i} {}", outcome.body), lines[i]);
        }
    }

    #[test]
    fn shed_requests_degrade_and_skip_the_cache_write() {
        let mut rng = StdRng::seed_from_u64(9);
        // Small multi-interval instance: normal routing is exact
        // (multi_exact); under shed it must take the fallback chain.
        let inst = BatchInstance::Multi(multi_interval::feasible_slots(&mut rng, 5, 9, 2));
        let engine = Engine::new(EngineConfig::default());
        let shed = engine.solve_request(&inst, Objective::Gaps, true);
        assert!(shed.shed);
        assert!(!shed.cache_hit);
        let solver = shed.solver.expect("shed requests still solve");
        assert!(
            matches!(solver, SolverKind::Lemma3Greedy | SolverKind::LowerBound),
            "shed routed to {solver:?}"
        );
        // The shed (possibly inexact) answer must not have been cached:
        // the same request at full service misses and solves exactly.
        let full = engine.solve_request(&inst, Objective::Gaps, false);
        assert!(!full.cache_hit, "shed result must not poison the cache");
        assert_eq!(full.solver, Some(SolverKind::MultiExact));
        // …and the exact answer IS cached, and served even to shed
        // requests (cache reads stay enabled under shed).
        let warm = engine.solve_request(&inst, Objective::Gaps, true);
        assert!(warm.cache_hit);
        assert_eq!(warm.body, full.body);
    }

    #[test]
    fn engine_metrics_accumulate_across_calls() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let batch = mixed_stream(30);
        engine.run_batch(&batch, Objective::Gaps);
        engine.run_batch(&batch, Objective::Gaps);
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.requests, 60);
        assert_eq!(snap.cache_hits + snap.cache_misses, 60);
        assert!(snap.cache_hits >= 30, "second pass should be all hits");
        assert_eq!(snap.latency.count(), 60);
        assert!(!snap.per_solver.is_empty());
    }

    #[test]
    fn batch_report_scopes_search_effort_to_the_batch() {
        use gaps_core::instance::MultiInstance;
        // A coupled core whose span optimum (2) strictly beats every
        // lower bound (the union is one run, so hosting/skeleton say 1):
        // the early-closed shortcut cannot fire and the search must open.
        // Satellites push the job count past the parallel threshold (17)
        // while staying inside the raised 64-job multi-exact cap.
        let mut jobs: Vec<Vec<i64>> = vec![
            vec![0, 1],
            vec![0, 1],
            vec![8, 9],
            vec![8, 9],
            vec![2, 3, 4, 5, 6, 7],
        ];
        for k in 0..12 {
            jobs.push(vec![100 + 3 * k, 101 + 3 * k]);
        }
        let inst = BatchInstance::Multi(MultiInstance::from_times(jobs).unwrap());
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let (lines, report) = engine.run_batch(std::slice::from_ref(&inst), Objective::Gaps);
        assert!(
            lines[0].contains("solver=multi_exact"),
            "raised caps should keep this on the exact path: {}",
            lines[0]
        );
        assert!(report.search.nodes_expanded > 0);
        assert!(report.search.subtree_tasks > 0, "parallel path should run");
        assert!(report.search.components.iter().sum::<u64>() > 0);
        // A second identical batch is a pure cache hit: its report must
        // show zero *new* search effort even though the lifetime totals
        // kept their history.
        let (_, warm) = engine.run_batch(std::slice::from_ref(&inst), Objective::Gaps);
        assert!(warm.search.is_empty(), "cache hit must not re-search");
        assert!(!engine.metrics().search_totals().is_empty());
    }

    #[test]
    fn equivalent_instances_collide_in_the_cache() {
        let engine = Engine::new(EngineConfig::default());
        let base = Instance::from_windows([(0, 2), (4, 5)], 1).unwrap();
        let shifted = Instance::from_windows([(1_000, 1_002), (1_004, 1_005)], 1).unwrap();
        let (lines, report) = engine.run_batch(
            &[BatchInstance::One(base), BatchInstance::One(shifted)],
            Objective::Gaps,
        );
        assert_eq!(report.cache_hits, 1, "shifted copy should hit");
        // Identical payload after the index column.
        let tail = |s: &str| s.split_once(' ').unwrap().1.to_string();
        assert_eq!(tail(&lines[0]), tail(&lines[1]));
    }
}

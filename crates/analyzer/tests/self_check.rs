//! The analyzer's ultimate fixture is the workspace itself: the live
//! tree must lint clean, with every rule having real code in scope.
//! This is the same check CI runs as `gaps lint`, wired as a plain test
//! so `cargo test` alone catches violations.

use gaps_analyzer::{analyze_workspace, find_workspace_root, render_text};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn live_workspace_is_clean() {
    let analysis = analyze_workspace(&workspace_root()).expect("analyzable");
    assert!(
        analysis.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        render_text(&analysis.diagnostics)
    );
    // A walker bug that silently skipped the tree would also "pass";
    // pin a floor well below the real file count (> 100 today).
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned: {}",
        analysis.files_scanned
    );
}

#[test]
fn fixtures_are_not_walked() {
    let root = workspace_root();
    let analysis = analyze_workspace(&root).expect("analyzable");
    // The deliberately-bad fixtures under tests/fixtures would light up
    // every rule if the walker descended into them.
    assert!(
        analysis.diagnostics.is_empty(),
        "fixtures leaked into the workspace walk:\n{}",
        render_text(&analysis.diagnostics)
    );
    let fixture = root.join("crates/analyzer/tests/fixtures/panic_free_bad.rs");
    assert!(fixture.exists(), "fixture corpus went missing");
}

// Fixture: every concurrency-discipline violation at once.
use std::sync::Mutex;

fn spawns() {
    std::thread::spawn(|| {});
}

fn lock_across_send(state: &parking_lot::Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let g = state.lock();
    tx.send(*g).ok();
}

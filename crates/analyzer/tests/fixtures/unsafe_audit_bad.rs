// Fixture: unsafe without its proof obligation.
fn f(p: *const u64) -> u64 {
    unsafe { p.read() }
}

// SAFETY: the caller guarantees `q` is valid, aligned, and unaliased.
fn g(q: *const u64) -> u64 {
    unsafe { q.read() }
}

// Fixture: panics in solver hot-path code.
fn f(x: Option<u64>, y: Result<u64, ()>) -> u64 {
    let a = x.unwrap();
    let b = y.expect("should be fine");
    if a + b > 100 {
        panic!("overflow-ish");
    }
    todo!()
}

// The escape hatch works when justified:
fn g(x: Option<u64>) -> u64 {
    // analyzer: allow(panic-free): x was checked by the caller
    x.expect("checked")
}

#[cfg(test)]
mod tests {
    fn in_tests_unwrap_is_fine(x: Option<u64>) -> u64 {
        x.unwrap()
    }
}

// Fixture: references outside the vendored API manifests.
use rand::distributions::Bernoulli; // not in vendor/rand/API.txt
use rand::rngs::StdRng; // fine: manifest covers rand::rngs

fn f() {
    let _ = rand::thread_rng(); // not in the manifest either
    let _ = crossbeam::channel::unbounded::<u32>(); // fine
}

// Fixture: malformed escape hatches.
fn f(x: Option<u64>) -> u64 {
    // analyzer: allow(panic-free)
    let a = x.expect("no justification given");
    // analyzer: allow(made-up-rule): this rule does not exist
    a
}

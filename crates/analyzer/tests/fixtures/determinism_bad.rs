// Fixture: wall-clock reads in solver logic.
use std::time::Instant;

fn f() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

fn g() {
    let _ = std::time::SystemTime::now();
}

//! Deliberately violating fixture for the `lock-order` rule: `drain`
//! and `report` take the same two locks in opposite orders (a cycle),
//! and `submit` holds a guard across a call into channel-blocking code.

pub struct Router {
    pub queue: parking_lot::Mutex<Vec<u64>>,
    pub stats: parking_lot::Mutex<u64>,
    pub rx: crossbeam::channel::Receiver<u64>,
}

impl Router {
    pub fn drain(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        let _ = (q.len(), *s);
    }

    pub fn report(&self) {
        let s = self.stats.lock();
        let q = self.queue.lock();
        let _ = (q.len(), *s);
    }

    pub fn wait_for_ack(&self) {
        let _ = self.rx.recv();
    }

    pub fn submit(&self) {
        let g = self.queue.lock();
        self.wait_for_ack();
        let _ = g.len();
    }
}
